//! End-to-end distributed spatial join — the paper's exemplar
//! application ("find all pairs of rivers and cities that intersect").
//!
//! Generates two synthetic OSM-like layers (lake polygons and road
//! polylines), joins them on a 4-node × 4-rank job, and prints the
//! per-phase breakdown the paper reports in Figures 17–19.
//!
//! ```text
//! cargo run --release --example spatial_join
//! ```

use mpi_vector_io::datagen::{ShapeGen, SpatialDistribution};
use mpi_vector_io::prelude::*;

fn main() {
    let fs = SimFs::new(FsConfig::gpfs_roger());
    let world = Rect::new(0.0, 0.0, 100.0, 100.0);
    let dist = SpatialDistribution::Clustered {
        clusters: 12,
        skew: 1.1,
        spread: 0.03,
    };

    // Layer A: lake-like polygons. Layer B: road-like polylines.
    let lakes_bytes = mpi_vector_io::datagen::write_wkt_dataset(
        &fs,
        "lakes.wkt",
        ShapeKind::Polygon,
        ShapeGen::lake_polygons(),
        &dist,
        world,
        3000,
        42,
    );
    let roads_bytes = mpi_vector_io::datagen::write_wkt_dataset(
        &fs,
        "roads.wkt",
        ShapeKind::Line,
        ShapeGen::road_edges(),
        &dist,
        world,
        6000,
        43,
    );
    println!("lakes: 3000 polygons / {lakes_bytes} bytes");
    println!("roads: 6000 polylines / {roads_bytes} bytes");

    let topo = Topology::new(4, 4);
    fs.set_active_ranks(topo.ranks());
    let opts = JoinOptions {
        grid: GridSpec::square(16),
        decomp: mpi_vector_io::core::decomp::DecompPolicy::Uniform(CellMap::RoundRobin),
        read: ReadOptions::default(),
        windows: 1,
        ..Default::default()
    };
    let reports = World::run(WorldConfig::new(topo), move |comm| {
        spatial_join(comm, &fs, "lakes.wkt", "roads.wkt", &opts).expect("join")
    });

    let pairs: usize = reports.iter().map(|r| r.pairs.len()).sum();
    let candidates: u64 = reports.iter().map(|r| r.filter_candidates).sum();
    let refined: u64 = reports.iter().map(|r| r.refine_tests).sum();
    let b = reports[0].breakdown;

    println!("\nfilter candidates : {candidates}");
    println!("refine tests       : {refined} (after reference-point dedup)");
    println!("intersecting pairs : {pairs}");
    println!("\nphase breakdown (max over ranks, virtual seconds):");
    println!("{}", b.row("lakes ⋈ roads"));
    println!("\nsample results:");
    for (l, r) in reports.iter().flat_map(|r| &r.pairs).take(5) {
        println!("  {l} intersects {r}");
    }
    assert!(pairs > 0, "clustered layers must intersect somewhere");
}
