//! MPI-IO design-space tour: the three access levels, the two boundary
//! strategies, and the Lustre aggregator rule — the study behind the
//! paper's Figures 8–11.
//!
//! ```text
//! cargo run --release --example io_levels
//! ```

use mpi_vector_io::msim::io::select_readers;
use mpi_vector_io::prelude::*;

fn make_fs(osts: u32, stripe: u64) -> (std::sync::Arc<SimFs>, u64) {
    let fs = SimFs::new(FsConfig::lustre_comet());
    let file = fs
        .create("data.wkt", Some(StripeSpec::new(osts, stripe)))
        .expect("create");
    let mut text = String::new();
    for i in 0..20_000 {
        text.push_str(&format!(
            "LINESTRING ({} 0, {} 1)\tedge-{i}\n",
            i % 97,
            (i + 1) % 97
        ));
    }
    file.append(text.as_bytes());
    let len = file.len();
    (fs, len)
}

fn timed_read(
    fs: &std::sync::Arc<SimFs>,
    topo: Topology,
    level: AccessLevel,
    strategy: BoundaryStrategy,
    block: u64,
) -> f64 {
    fs.set_active_ranks(topo.ranks());
    let fs = std::sync::Arc::clone(fs);
    let opts = ReadOptions::default()
        .with_level(level)
        .with_strategy(strategy)
        .with_block_size(block)
        .with_max_geometry_bytes(4096);
    let times = World::run(WorldConfig::new(topo), move |comm| {
        read_partition_text(comm, &fs, "data.wkt", &opts).expect("read");
        comm.now()
    });
    times.into_iter().fold(0.0, f64::max)
}

fn main() {
    let topo = Topology::new(4, 4);
    let block = 64 << 10;

    println!("contiguous reads of one striped WKT file, 16 ranks / 4 nodes:");
    for (osts, label) in [(8u32, "8 OSTs"), (32, "32 OSTs")] {
        let (fs, bytes) = make_fs(osts, block);
        let l0 = timed_read(
            &fs,
            topo,
            AccessLevel::Level0,
            BoundaryStrategy::Message,
            block,
        );
        let (fs, _) = make_fs(osts, block);
        let l1 = timed_read(
            &fs,
            topo,
            AccessLevel::Level1,
            BoundaryStrategy::Message,
            block,
        );
        let (fs, _) = make_fs(osts, block);
        let ovl = timed_read(
            &fs,
            topo,
            AccessLevel::Level0,
            BoundaryStrategy::Overlap,
            block,
        );
        println!(
            "  {label}: {bytes} bytes — L0 message {l0:.4}s | L1 collective {l1:.4}s | L0 overlap {ovl:.4}s"
        );
        println!(
            "    -> independent beats collective: {} | message beats overlap: {}",
            l0 < l1,
            l0 < ovl
        );
    }

    println!("\nROMIO aggregator selection on Lustre (the Figure 11 cliffs):");
    println!("  nodes  readers(64 OSTs)  readers(96 OSTs)");
    for nodes in [8usize, 16, 24, 32, 48, 64, 72] {
        println!(
            "  {nodes:>5}  {:>16}  {:>16}",
            select_readers(FsKind::Lustre, 64, nodes, None),
            select_readers(FsKind::Lustre, 96, nodes, None)
        );
    }
    println!("\nnote the non-divisor node counts (24, 48, 72) wasting nodes — the paper's cliffs.");
}
