//! Quickstart: partitioned parallel reading of a WKT file.
//!
//! Builds a small world, writes a WKT dataset onto a simulated Lustre
//! filesystem, and reads it back through MPI-Vector-IO's partitioned
//! reader on a 2-node × 4-rank job — the smallest end-to-end tour of the
//! library.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mpi_vector_io::prelude::*;

fn main() {
    // 1. A simulated Lustre filesystem (COMET calibration) holding one
    //    WKT-per-line dataset, striped over 8 OSTs in 1 MiB stripes.
    let fs = SimFs::new(FsConfig::lustre_comet());
    let file = fs
        .create("demo/lakes.wkt", Some(StripeSpec::new(8, 1 << 20)))
        .expect("create file");
    let mut text = String::new();
    for i in 0..1000 {
        let x = (i % 40) as f64;
        let y = (i / 40) as f64;
        text.push_str(&format!(
            "POLYGON (({x} {y}, {} {y}, {} {}, {x} {}, {x} {y}))\tlake-{i}\n",
            x + 0.8,
            x + 0.8,
            y + 0.8,
            y + 0.8
        ));
    }
    file.append(text.as_bytes());
    println!("dataset: {} bytes, 1000 polygons", file.len());

    // 2. An SPMD job: 2 nodes x 4 ranks. Every rank reads its partition
    //    (Algorithm 1: block reads + ring repair of split records), parses
    //    it, and reports.
    let topo = Topology::new(2, 4);
    fs.set_active_ranks(topo.ranks());
    let results = World::run(WorldConfig::new(topo), |comm| {
        let opts = ReadOptions::default().with_block_size(16 << 10);
        let feats = read_features(comm, &fs, "demo/lakes.wkt", &opts, &WktLineParser)
            .expect("partitioned read");

        // Spatial-aware MPI: global extent via the MPI_UNION reduction.
        let local_mbr = feats
            .iter()
            .fold(Rect::EMPTY, |acc, f| acc.union(&f.geometry.envelope()));
        let global = comm.allreduce(local_mbr, 32, &spops::UnionRect);

        let total = comm.allreduce_u64(feats.len() as u64, |a, b| a + b);
        (comm.rank(), feats.len(), total, global, comm.now())
    });

    println!("\nrank  local  global  virtual-time");
    for (rank, local, total, global, now) in &results {
        println!("{rank:>4}  {local:>5}  {total:>6}  {now:.6}s  (extent {global})");
    }
    let total = results[0].2;
    assert_eq!(total, 1000, "every polygon delivered exactly once");
    println!("\nOK: 1000/1000 polygons partitioned, parsed, and globally accounted.");
}
