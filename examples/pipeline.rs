//! The streaming ingest pipeline: multi-threaded parse → cell-map →
//! serialize with bit-identical output for any worker count.
//!
//! Builds a WKT dataset, then runs the full per-rank ingest
//! (`core::pipeline::ingest`) at 1, 2, 4 and 8 workers. The exchanged
//! result is byte-for-byte identical across worker counts — only the
//! virtual clock compresses, because parse and partition charge the
//! slowest deterministic worker lane instead of the sequential sum.
//!
//! ```text
//! cargo run --release --example pipeline
//! MVIO_PIPELINE_WORKERS=4 cargo run --release --example pipeline
//! ```

use mpi_vector_io::prelude::*;
use std::sync::Arc;

/// One WKT-per-line dataset on a fresh simulated Lustre filesystem (fresh
/// per run so the simulated OST queues start cold every time).
fn dataset(ranks: usize) -> Arc<SimFs> {
    let fs = SimFs::new(FsConfig::lustre_comet());
    let file = fs
        .create("demo/buildings.wkt", Some(StripeSpec::new(8, 1 << 20)))
        .expect("create file");
    let mut text = String::new();
    for i in 0..4000 {
        let x = (i % 80) as f64 * 0.9;
        let y = (i / 80) as f64 * 1.1;
        match i % 3 {
            0 => text.push_str(&format!("POINT ({x} {y})\tpoi-{i}\n")),
            1 => text.push_str(&format!(
                "LINESTRING ({x} {y}, {} {})\troad-{i}\n",
                x + 2.0,
                y + 0.5
            )),
            _ => text.push_str(&format!(
                "POLYGON (({x} {y}, {} {y}, {} {}, {x} {}, {x} {y}))\tbldg-{i}\n",
                x + 0.7,
                x + 0.7,
                y + 0.7,
                y + 0.7
            )),
        }
    }
    file.append(text.as_bytes());
    fs.set_active_ranks(ranks);
    fs
}

fn main() {
    let topo = Topology::new(2, 2);
    let read = ReadOptions::default().with_block_size(64 << 10);
    let mut baseline: Option<Vec<Vec<(u32, Feature)>>> = None;
    let mut t1 = 0.0f64;

    println!("ingest of 4000 features on a 2x2 job, worker sweep:\n");
    println!("workers  chunks  pairs  rank-0 owned  virtual-time  speedup");
    for workers in [1usize, 2, 4, 8] {
        let fs = dataset(topo.ranks());
        let popts = PipelineOptions::default()
            .with_workers(workers)
            .with_parse_chunk_bytes(8 << 10)
            .with_partition_chunk_records(256);
        let out = World::run(WorldConfig::new(topo), move |comm| {
            let rep = pipeline::ingest(
                comm,
                &fs,
                "demo/buildings.wkt",
                &read,
                &WktLineParser,
                &mpi_vector_io::core::decomp::DecompConfig::uniform(GridSpec::square(8)),
                &popts,
            )
            .expect("pipelined ingest");
            (rep.owned, rep.stats, comm.now())
        });
        let owned: Vec<Vec<(u32, Feature)>> = out.iter().map(|(o, _, _)| o.clone()).collect();
        let stats = out[0].1;
        let time = out.iter().map(|(_, _, t)| *t).fold(0.0, f64::max);
        if workers == 1 {
            t1 = time;
        }
        println!(
            "{workers:>7}  {:>6}  {:>5}  {:>12}  {:>10.6}s  {:>6.2}x",
            stats.parse_chunks + stats.partition_chunks,
            stats.pairs,
            owned[0].len(),
            time,
            t1 / time
        );
        // The correctness oracle: every worker count produces the exact
        // same exchanged partitioning on every rank.
        match &baseline {
            None => baseline = Some(owned),
            Some(base) => assert_eq!(base, &owned, "workers={workers} must be bit-identical"),
        }
    }
    println!("\nOK: pipeline output bit-identical at 1/2/4/8 workers; virtual time scales.");
}
