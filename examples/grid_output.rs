//! Writing distributed results back to a single file with collective and
//! non-contiguous writes — the paper's grid-based overlay output scenario
//! (§4.1: "the output needs to be written to a single file in which the
//! storage order corresponds to that of the global grid data layout in
//! row-major order … This ensures that the output file is same as if
//! produced sequentially").
//!
//! ```text
//! cargo run --release --example grid_output
//! ```

use mpi_vector_io::core::sptypes::{decode_rects, encode_rect, RECT_RECORD_BYTES};
use mpi_vector_io::msim::io::FileView;
use mpi_vector_io::prelude::*;

fn main() {
    let fs = SimFs::new(FsConfig::lustre_comet());
    let grid_side = 8u32; // 64 cells, one output record per cell
    let cells = grid_side * grid_side;
    fs.create("overlay.bin", Some(StripeSpec::new(8, 4096)))
        .unwrap();

    // Each rank owns cells round-robin and computes one result rect per
    // owned cell (here: the cell's own rectangle, standing in for an
    // overlay result). Ranks write their records non-contiguously through
    // a Level-3 view so the file comes out in row-major cell order.
    let topo = Topology::new(2, 2);
    fs.set_active_ranks(topo.ranks());
    let times = World::run(WorldConfig::new(topo), |comm| {
        let grid = mpi_vector_io::core::grid::UniformGrid::new(
            Rect::new(0.0, 0.0, 8.0, 8.0),
            GridSpec::square(grid_side),
        );
        let p = comm.size() as u64;
        let mine: Vec<u32> = (comm.rank() as u32..cells).step_by(comm.size()).collect();

        let mut buf = Vec::with_capacity(mine.len() * RECT_RECORD_BYTES);
        for &cell in &mine {
            encode_rect(&grid.cell_rect(cell), &mut buf);
        }

        let mut file = MpiFile::open(&fs, "overlay.bin", Hints::default()).unwrap();
        let record = Datatype::contiguous(RECT_RECORD_BYTES, Datatype::Byte);
        file.set_view(FileView::new(0, record).unwrap());
        file.write_all(comm, comm.rank() as u64, p, &buf).unwrap();
        comm.now()
    });

    // The assembled file must equal the sequential row-major layout.
    let data = fs.open("overlay.bin").unwrap().snapshot();
    let rects = decode_rects(&data);
    assert_eq!(rects.len(), cells as usize);
    let grid = mpi_vector_io::core::grid::UniformGrid::new(
        Rect::new(0.0, 0.0, 8.0, 8.0),
        GridSpec::square(grid_side),
    );
    for (i, r) in rects.iter().enumerate() {
        assert_eq!(*r, grid.cell_rect(i as u32), "cell {i} out of order");
    }

    println!(
        "wrote {} cells ({} bytes) from 4 ranks into one row-major file",
        cells,
        data.len()
    );
    println!(
        "max virtual completion: {:.6}s",
        times.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "file verified identical to the sequential layout — the paper's §4.1 output property."
    );
}
