//! Distributed range query over a point dataset — the "less compute
//! intensive" workload class the paper contrasts with spatial join when
//! discussing block-size granularity (§5.1.1).
//!
//! Generates an All-Nodes-style point cloud, runs a window query on an
//! 8-rank job, and cross-checks the distributed answer against a serial
//! scan.
//!
//! ```text
//! cargo run --release --example range_query
//! ```

use mpi_vector_io::core::reader::parse_buffer_serial;
use mpi_vector_io::datagen::{ShapeGen, SpatialDistribution};
use mpi_vector_io::prelude::*;

fn main() {
    let fs = SimFs::new(FsConfig::gpfs_roger());
    let world = Rect::new(-180.0, -90.0, 180.0, 90.0);
    let dist = SpatialDistribution::Clustered {
        clusters: 16,
        skew: 1.0,
        spread: 0.05,
    };
    mpi_vector_io::datagen::write_wkt_dataset(
        &fs,
        "nodes.wkt",
        ShapeKind::Point,
        ShapeGen::small_polygons(),
        &dist,
        world,
        20_000,
        7,
    );
    println!(
        "dataset: 20,000 points ({} bytes)",
        fs.open("nodes.wkt").unwrap().len()
    );

    // Query window: a 30° x 20° box.
    let query = Rect::new(-20.0, -10.0, 10.0, 10.0);

    // Serial ground truth.
    let text = String::from_utf8(fs.open("nodes.wkt").unwrap().snapshot()).unwrap();
    let serial = parse_buffer_serial(&text, &WktLineParser)
        .unwrap()
        .iter()
        .filter(|f| {
            query.contains_point(match &f.geometry {
                Geometry::Point(p) => p,
                _ => unreachable!("point dataset"),
            })
        })
        .count() as u64;

    // Distributed query on 2 nodes x 4 ranks.
    let topo = Topology::new(2, 4);
    fs.set_active_ranks(topo.ranks());
    let reports = World::run(WorldConfig::new(topo), move |comm| {
        range_query(
            comm,
            &fs,
            "nodes.wkt",
            query,
            GridSpec::square(16),
            &ReadOptions::default(),
        )
        .expect("query")
    });

    let b = reports[0].breakdown;
    println!("\nquery window      : {query}");
    println!("serial matches    : {serial}");
    println!("distributed total : {}", reports[0].total_matches);
    println!("\nphase breakdown (max over ranks, virtual seconds):");
    println!("{}", b.row("range query"));
    assert_eq!(reports[0].total_matches, serial, "distributed == serial");
    println!("\nOK: distributed range query matches the serial scan exactly.");
}
