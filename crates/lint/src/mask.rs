//! Lexical masking: a character-level pass that blanks out string
//! literals and comments (preserving line structure and delimiters) so
//! the rule matchers can pattern-match code without tripping over
//! `"call .unwrap() here"` in a message or a rule name in prose.
//!
//! The pass also extracts the three side channels the rules need:
//! per-line doc-comment text (for the collective-contract rule),
//! per-line `audit:` markers (the escape hatch for documented
//! invariants), and the `#[cfg(test)]` item regions to skip.

/// A source file after the masking pass.
pub struct MaskedFile {
    /// Raw source lines, 0-indexed.
    pub raw: Vec<String>,
    /// Masked code lines: comments blanked, string/char contents blanked
    /// (delimiters kept), same line count and per-line length as `raw`.
    pub code: Vec<String>,
    /// Doc-comment text per line (`///` / `//!` content), `None` for
    /// non-doc lines.
    pub doc: Vec<Option<String>>,
    /// Whether the line carries an `audit:` marker inside a comment.
    pub audit: Vec<bool>,
    /// Whether the line sits inside a `#[cfg(test)]`-gated item.
    pub in_test: Vec<bool>,
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    BlockComment(u32),
    Str,
    RawStr(u32),
}

impl MaskedFile {
    /// Runs the masking pass over `text`.
    pub fn new(text: &str) -> Self {
        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let mut code = Vec::with_capacity(raw.len());
        let mut doc = Vec::with_capacity(raw.len());
        let mut audit = Vec::with_capacity(raw.len());

        let mut state = State::Code;
        for line in &raw {
            let (masked, d, a, next) = mask_line(line, state);
            code.push(masked);
            doc.push(d);
            audit.push(a);
            state = next;
        }
        let in_test = test_regions(&code);
        MaskedFile {
            raw,
            code,
            doc,
            audit,
            in_test,
        }
    }
}

/// Masks one line starting in `state`; returns the masked line, any doc
/// text, whether an `audit:` marker appeared in a comment, and the state
/// carried into the next line.
fn mask_line(line: &str, mut state: State) -> (String, Option<String>, bool, State) {
    let b = line.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut doc: Option<String> = None;
    let mut audit = false;
    let mut i = 0usize;

    // A comment's text is scanned (not emitted) for the audit marker.
    // A block comment continuing from the previous line scans from 0.
    let mut comment_from: Option<usize> = match state {
        State::BlockComment(_) => Some(0),
        _ => None,
    };
    let note_comment_end = |from: &mut Option<usize>, to: usize, audit: &mut bool| {
        if let Some(f) = from.take() {
            if line[f..to].contains("audit:") {
                *audit = true;
            }
        }
    };

    while i < b.len() {
        match state {
            State::BlockComment(depth) => {
                if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                    i += 2;
                    if depth == 1 {
                        note_comment_end(&mut comment_from, i, &mut audit);
                        state = State::Code;
                    } else {
                        state = State::BlockComment(depth - 1);
                    }
                } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    i += 2;
                    state = State::BlockComment(depth + 1);
                } else {
                    i += 1;
                }
            }
            State::Str => {
                if b[i] == b'\\' {
                    i += 2; // escape: skip the escaped byte too
                } else if b[i] == b'"' {
                    out[i] = b'"';
                    i += 1;
                    state = State::Code;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b[i] == b'"' && ends_raw(b, i, hashes) {
                    out[i] = b'"';
                    i += 1 + hashes as usize;
                    state = State::Code;
                } else {
                    i += 1;
                }
            }
            State::Code => {
                let c = b[i];
                if c == b'/' && i + 1 < b.len() && b[i + 1] == b'/' {
                    // Line comment; classify doc vs plain, keep the text
                    // for the doc/audit side channels, mask the rest.
                    let rest = &line[i..];
                    if let Some(t) = rest.strip_prefix("///").or(rest.strip_prefix("//!")) {
                        doc = Some(t.trim().to_string());
                    }
                    if rest.contains("audit:") {
                        audit = true;
                    }
                    break;
                } else if c == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                    comment_from = Some(i);
                    i += 2;
                    state = State::BlockComment(1);
                } else if c == b'"' {
                    out[i] = b'"';
                    i += 1;
                    state = State::Str;
                } else if (c == b'r' || c == b'b') && is_raw_or_byte_start(b, i) {
                    let (consumed, next) = enter_raw_or_byte(b, i, &mut out);
                    i += consumed;
                    state = next;
                } else if c == b'\'' {
                    // Char literal vs lifetime: a literal closes with a
                    // quote after one (possibly escaped) character.
                    if let Some(len) = char_literal_len(b, i) {
                        out[i] = b'\'';
                        out[i + len - 1] = b'\'';
                        i += len;
                    } else {
                        out[i] = b'\'';
                        i += 1;
                    }
                } else {
                    out[i] = c;
                    i += 1;
                }
            }
        }
    }
    if let State::BlockComment(_) = state {
        note_comment_end(&mut comment_from, line.len(), &mut audit);
    }
    // Strings (plain and raw) and block comments legally span lines in
    // Rust; the state carries. Line comments never enter a state — the
    // masking loop breaks at `//` within the line.
    let next = state;
    (String::from_utf8(out).unwrap_or_default(), doc, audit, next)
}

/// Whether `b[i..]` starts a raw string (`r"`, `r#"`), byte string
/// (`b"`), or raw byte string (`br#"`).
fn is_raw_or_byte_start(b: &[u8], i: usize) -> bool {
    // Not part of a longer identifier, e.g. `attr"..."` or `var_b"`.
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && b[j] == b'\'' {
            return true; // byte char literal b'x'
        }
    }
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            j += 1;
        }
    }
    j < b.len() && b[j] == b'"'
}

/// Consumes the opening of a raw/byte string (or byte char) at `b[i]`,
/// marking delimiters in `out`; returns (bytes consumed, next state).
fn enter_raw_or_byte(b: &[u8], i: usize, out: &mut [u8]) -> (usize, State) {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j < b.len() && b[j] == b'\'' {
            // Byte char literal: b'x' or b'\n'.
            if let Some(len) = char_literal_len(b, j) {
                return (j - i + len, State::Code);
            }
            return (j - i + 1, State::Code);
        }
    }
    let mut hashes = 0u32;
    if j < b.len() && b[j] == b'r' {
        j += 1;
        while j < b.len() && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
    }
    debug_assert!(j < b.len() && b[j] == b'"');
    out[j] = b'"';
    if b[i..j].contains(&b'r') {
        (j - i + 1, State::RawStr(hashes))
    } else {
        // Plain byte string b"…": ordinary escape rules.
        (j - i + 1, State::Str)
    }
}

/// Whether the `"` at `b[i]` is followed by `hashes` `#`s, closing a raw
/// string.
fn ends_raw(b: &[u8], i: usize, hashes: u32) -> bool {
    let h = hashes as usize;
    b.len() > i + h && b[i + 1..=i + h].iter().all(|&c| c == b'#')
}

/// If a char literal starts at the `'` at `b[i]`, its total byte length
/// (`'x'` → 3, `'\n'` → 4); `None` for lifetimes.
fn char_literal_len(b: &[u8], i: usize) -> Option<usize> {
    let rest = &b[i + 1..];
    match rest.first()? {
        b'\\' => {
            // Escaped: find the closing quote within a small window
            // (covers \n, \', \u{…}).
            let close = rest.iter().take(12).position(|&c| c == b'\'')?;
            Some(close + 2)
        }
        _ => {
            // One UTF-8 scalar then a quote. Scan to the continuation
            // end of the first character.
            let mut j = 1;
            while j < rest.len() && rest[j] & 0xC0 == 0x80 {
                j += 1;
            }
            (rest.get(j) == Some(&b'\'')).then_some(j + 2)
        }
    }
}

/// Marks the lines covered by `#[cfg(test)]`-gated items: from each such
/// attribute through the end of the item it gates (brace-balanced, or
/// the first `;` for brace-less items like gated `use`s).
fn test_regions(code: &[String]) -> Vec<bool> {
    let mut in_test = vec![false; code.len()];
    let mut i = 0usize;
    while i < code.len() {
        if !code[i].contains("cfg(test)") || !code[i].contains("#[") {
            i += 1;
            continue;
        }
        // Walk forward to the gated item's end.
        let mut depth = 0i32;
        let mut opened = false;
        let mut j = i;
        while j < code.len() {
            in_test[j] = true;
            for ch in code[j].bytes() {
                match ch {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth -= 1,
                    b';' if !opened && depth == 0 => {
                        // Brace-less gated item (use/static declaration).
                        opened = true;
                        depth = 0;
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        i = j + 1;
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let m = MaskedFile::new("let x = \"foo.unwrap()\"; // .unwrap() in prose\nx.unwrap();\n");
        assert!(!m.code[0].contains("unwrap"));
        assert!(m.code[1].contains(".unwrap()"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let m = MaskedFile::new("let s = r#\"a \".expect(\" b\"#; s.expect(\"x\");");
        let c = &m.code[0];
        assert_eq!(c.matches(".expect(").count(), 1, "{c}");
    }

    #[test]
    fn multiline_block_comments_mask_until_close() {
        let m = MaskedFile::new("/* start\n .unwrap() inside\n*/ real.unwrap()");
        assert!(!m.code[1].contains("unwrap"));
        assert!(m.code[2].contains("real.unwrap()"));
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let m = MaskedFile::new("fn f<'a>(x: &'a str) { g(b'('); h('\"'); }");
        // The quote char literal must not open a string that swallows
        // the rest of the line.
        assert!(m.code[0].contains('}'));
    }

    #[test]
    fn doc_and_audit_side_channels() {
        let m = MaskedFile::new("/// Collective: all ranks.\nfn f() {}\nx(); // audit: checked\n");
        assert_eq!(m.doc[0].as_deref(), Some("Collective: all ranks."));
        assert!(m.audit[2]);
        assert!(!m.audit[0]);
    }

    #[test]
    fn cfg_test_regions_cover_the_gated_item() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn lib2() {}\n";
        let m = MaskedFile::new(src);
        assert!(!m.in_test[0]);
        assert!(m.in_test[1] && m.in_test[2] && m.in_test[3] && m.in_test[4]);
        assert!(!m.in_test[5]);
    }
}
