//! The three rule matchers. Each walks a [`MaskedFile`] and appends
//! [`Finding`]s; test regions and `// audit:`-marked lines are exempt
//! where the rule allows it.

use crate::mask::MaskedFile;
use crate::Finding;
use std::path::Path;

/// R1: no `.unwrap()` / `.expect("…")` in non-test library code.
///
/// `.expect(` is only matched with a string-literal argument so that
/// fallible parser methods *named* `expect` (taking byte arguments)
/// don't false-positive. An `// audit:` marker on the same or the
/// preceding line exempts a documented invariant.
pub fn no_panic(path: &Path, m: &MaskedFile, out: &mut Vec<Finding>) {
    for (i, line) in m.code.iter().enumerate() {
        if m.in_test[i] || audited(m, i) {
            continue;
        }
        let hit = line.contains(".unwrap()")
            || line.contains(".expect(\"")
            // Multi-line call: `.expect(` as the last code on the line.
            || line.trim_end().ends_with(".expect(");
        if hit {
            out.push(Finding {
                path: path.to_path_buf(),
                line: i + 1,
                rule: "no-panic",
                message: format!(
                    "unwrap/expect in library code (return a typed error, or document \
                     the invariant with an `// audit:` marker): `{}`",
                    m.raw[i].trim()
                ),
            });
        }
    }
}

/// R2: narrowing `as` casts inside wire-format decode functions need an
/// `// audit:` marker (or a checked conversion instead).
///
/// A "decode function" is one whose body mentions `from_le_bytes` /
/// `from_be_bytes` or one of the repo's little-endian field helpers.
/// Casts of `SCREAMING_CASE` constants and integer literals are exempt:
/// those are compile-time-known values, not wire data.
pub fn checked_narrowing(path: &Path, m: &MaskedFile, out: &mut Vec<Finding>) {
    for (start, end) in fn_spans(&m.code) {
        if m.in_test[start] {
            continue;
        }
        let body = &m.code[start..=end];
        if !body.iter().any(|l| is_decode_marker(l)) {
            continue;
        }
        for (off, line) in body.iter().enumerate() {
            let i = start + off;
            if m.in_test[i] || audited(m, i) {
                continue;
            }
            for at in narrowing_casts(line) {
                if benign_cast_source(line, at) {
                    continue;
                }
                out.push(Finding {
                    path: path.to_path_buf(),
                    line: i + 1,
                    rule: "checked-narrowing",
                    message: format!(
                        "unchecked narrowing cast in a wire-format decode path (use a \
                         checked conversion, or justify with `// audit:`): `{}`",
                        m.raw[i].trim()
                    ),
                });
            }
        }
    }
}

/// R3: every `pub fn` taking `&mut Comm` must mention "collective" in
/// its doc comment — stating the collective-matching contract (or that
/// the function has none).
pub fn collective_contract(path: &Path, m: &MaskedFile, out: &mut Vec<Finding>) {
    for (i, line) in m.code.iter().enumerate() {
        if m.in_test[i] {
            continue;
        }
        let Some(name) = pub_fn_name(line) else {
            continue;
        };
        // Accumulate the signature until its body opens or it ends in a
        // `;` (trait method declarations).
        let mut sig = String::new();
        for l in &m.code[i..m.code.len().min(i + 24)] {
            sig.push_str(l);
            sig.push(' ');
            if l.contains('{') || l.contains(';') {
                break;
            }
        }
        let Some(params) = param_list(&sig) else {
            continue;
        };
        if !takes_mut_comm(&params) {
            continue;
        }
        let doc = doc_block_above(m, i);
        if !doc.to_lowercase().contains("collective") {
            out.push(Finding {
                path: path.to_path_buf(),
                line: i + 1,
                rule: "collective-contract",
                message: format!(
                    "pub fn `{name}` takes `&mut Comm` but its doc comment does not \
                     state the collective-matching contract (say which collectives it \
                     enters and that every rank must call it — or that it is not \
                     collective)"
                ),
            });
        }
    }
}

/// Whether line `i` carries an `audit:` marker, either on the line
/// itself or anywhere in the contiguous comment block directly above it
/// (a justification often needs more than one comment line).
fn audited(m: &MaskedFile, i: usize) -> bool {
    if m.audit[i] {
        return true;
    }
    let mut k = i;
    while k > 0 {
        k -= 1;
        let is_comment = m.raw[k].trim_start().starts_with("//");
        if !is_comment {
            return false;
        }
        if m.audit[k] {
            return true;
        }
    }
    false
}

/// Brace-tracked `(start, end)` line spans of `fn` items, including
/// nested closures (a span covers the whole outer function).
fn fn_spans(code: &[String]) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < code.len() {
        if !is_fn_line(&code[i]) {
            i += 1;
            continue;
        }
        let mut depth = 0i32;
        let mut opened = false;
        let mut j = i;
        while j < code.len() {
            for ch in code[j].bytes() {
                match ch {
                    b'{' => {
                        depth += 1;
                        opened = true;
                    }
                    b'}' => depth -= 1,
                    b';' if !opened && depth == 0 => {
                        // Declaration without a body (trait method).
                        opened = true;
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                break;
            }
            j += 1;
        }
        spans.push((i, j.min(code.len() - 1)));
        i = j + 1;
    }
    spans
}

/// Whether a masked line starts a `fn` item (not `fn` in prose — the
/// masker already blanked comments and strings).
fn is_fn_line(line: &str) -> bool {
    line.split_whitespace().any(|w| w == "fn")
        || line.contains(" fn ")
        || line.trim_start().starts_with("fn ")
}

/// Whether the line touches decoded wire bytes.
fn is_decode_marker(line: &str) -> bool {
    const MARKERS: &[&str] = &[
        "from_le_bytes",
        "from_be_bytes",
        "le_u64(",
        "le_len(",
        "u64_at(",
        "u32_at(",
        "f64_at(",
        "cell_from_wire(",
        // Zero-copy frame walkers: functions that slice borrowed wire
        // buffers are decode paths even though the byte reads happen in
        // the helpers they call.
        "decode_ref(",
        "record_frames(",
        "validate_frames(",
        "count_frames(",
    ];
    MARKERS.iter().any(|p| line.contains(p))
}

/// Byte offsets of `as u8|u16|u32|usize` casts on the line.
fn narrowing_casts(line: &str) -> Vec<usize> {
    let mut found = Vec::new();
    let b = line.as_bytes();
    let mut from = 0usize;
    while let Some(p) = line[from..].find(" as ") {
        let at = from + p;
        let after = line[at + 4..].trim_start();
        let narrow = ["u8", "u16", "u32", "usize"]
            .iter()
            .any(|t| after.starts_with(t) && !ident_continues(after.as_bytes(), t.len()));
        if narrow && at > 0 && !b[at].is_ascii_alphanumeric() {
            found.push(at);
        }
        from = at + 4;
    }
    found
}

/// Whether the identifier continues past `len` bytes (so `usize` doesn't
/// match a hypothetical `usize_like` type).
fn ident_continues(b: &[u8], len: usize) -> bool {
    b.get(len)
        .is_some_and(|c| c.is_ascii_alphanumeric() || *c == b'_')
}

/// Whether the expression being cast at `at` (the offset of `" as "`) is
/// compile-time-known: a `SCREAMING_CASE` constant, an integer literal,
/// or a boolean-yielding call — values that cannot carry corrupt wire
/// data.
fn benign_cast_source(line: &str, at: usize) -> bool {
    let before = line[..at].trim_end();
    // Last identifier-ish token.
    let token: String = before
        .chars()
        .rev()
        .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    if token.is_empty() {
        return false; // cast of a parenthesized expression — flag it
    }
    if token.chars().all(|c| c.is_ascii_digit()) {
        return true; // integer literal
    }
    token
        .chars()
        .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
}

/// The function name if the masked line declares a `pub fn` (including
/// `pub(crate)` and friends).
fn pub_fn_name(line: &str) -> Option<String> {
    let t = line.trim_start();
    let rest = t.strip_prefix("pub")?;
    let rest = rest
        .strip_prefix('(')
        .map_or(rest, |r| r.split_once(')').map_or(r, |(_, after)| after));
    let rest = rest.trim_start();
    // Allow qualifiers between the visibility and `fn`.
    let mut words = rest.split_whitespace();
    loop {
        match words.next()? {
            "fn" => break,
            "const" | "unsafe" | "async" | "extern" => continue,
            w if w.starts_with('"') => continue, // extern "C"
            _ => return None,
        }
    }
    let name = words.next()?;
    let name = name.split(['(', '<']).next().unwrap_or(name);
    (!name.is_empty()).then(|| name.to_string())
}

/// The parenthesized parameter list of a signature (first balanced
/// `(...)` group after `fn`).
fn param_list(sig: &str) -> Option<String> {
    let fn_at = sig.find("fn ")?;
    let open = fn_at + sig[fn_at..].find('(')?;
    let b = sig.as_bytes();
    let mut depth = 0i32;
    for (i, &c) in b.iter().enumerate().skip(open) {
        match c {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(sig[open + 1..i].to_string());
                }
            }
            _ => {}
        }
    }
    None
}

/// Whether a parameter list contains a `&mut Comm` (or `&'a mut Comm`)
/// parameter.
fn takes_mut_comm(params: &str) -> bool {
    let mut rest = params;
    while let Some(p) = rest.find("mut ") {
        let before = rest[..p].trim_end();
        let is_ref = before.ends_with('&') || {
            // &'a mut — lifetime between & and mut.
            let no_lt = before
                .trim_end_matches(|c: char| c.is_ascii_alphanumeric() || c == '_' || c == '\'');
            before.contains('\'') && no_lt.trim_end().ends_with('&')
        };
        let after = rest[p + 4..].trim_start();
        if is_ref && (after.starts_with("Comm,") || after == "Comm" || after.starts_with("Comm)"))
            || (is_ref && after.starts_with("Comm") && !ident_continues(after.as_bytes(), 4))
        {
            return true;
        }
        rest = &rest[p + 4..];
    }
    false
}

/// The contiguous doc-comment text above line `i`, skipping attribute
/// lines between the docs and the item.
fn doc_block_above(m: &MaskedFile, i: usize) -> String {
    let mut parts: Vec<&str> = Vec::new();
    let mut k = i;
    while k > 0 {
        k -= 1;
        if let Some(d) = &m.doc[k] {
            parts.push(d);
        } else {
            let t = m.raw[k].trim();
            // Attributes and their continuation lines sit between docs
            // and the fn; plain comments also don't break the block.
            if t.starts_with("#[") || t.starts_with("//") || t.ends_with(']') || t.ends_with(',') {
                continue;
            }
            break;
        }
    }
    parts.reverse();
    parts.join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings_for(src: &str) -> Vec<(usize, &'static str)> {
        let m = MaskedFile::new(src);
        let mut out = Vec::new();
        let p = Path::new("t.rs");
        no_panic(p, &m, &mut out);
        checked_narrowing(p, &m, &mut out);
        collective_contract(p, &m, &mut out);
        out.into_iter().map(|f| (f.line, f.rule)).collect()
    }

    #[test]
    fn unwrap_in_library_code_is_flagged() {
        let f = findings_for("fn f() { x.unwrap(); }\n");
        assert_eq!(f, vec![(1, "no-panic")]);
    }

    #[test]
    fn audit_marker_exempts_expect() {
        let src = "fn f() {\n    // audit: invariant holds because …\n    x.expect(\"m\");\n}\n";
        assert!(findings_for(src).is_empty());
    }

    #[test]
    fn cfg_test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(findings_for(src).is_empty());
    }

    #[test]
    fn parser_method_named_expect_is_not_flagged() {
        assert!(findings_for("fn f() { p.expect(b'(')?; }\n").is_empty());
    }

    #[test]
    fn narrowing_in_decode_fn_is_flagged_and_consts_are_exempt() {
        let src = "fn decode(b: &[u8]) -> u32 {\n    let w = u64::from_le_bytes(a);\n    let n = w as u32;\n    let h = HEADER_LEN as usize;\n    n\n}\n";
        let f = findings_for(src);
        assert_eq!(f, vec![(3, "checked-narrowing")]);
    }

    #[test]
    fn narrowing_outside_decode_fns_is_not_flagged() {
        assert!(findings_for("fn f(x: u64) -> u32 { x as u32 }\n").is_empty());
    }

    #[test]
    fn frame_walkers_mark_a_fn_as_decode_path() {
        // The zero-copy helpers slice wire buffers without calling
        // from_le_bytes themselves — they must still pull R2 coverage.
        for call in [
            "decode_ref(buf)",
            "record_frames(buf)",
            "validate_frames(buf)",
            "count_frames(buf)",
        ] {
            let src = format!(
                "fn walk(buf: &[u8], w: u64) -> u32 {{\n    let v = {call};\n    w as u32\n}}\n"
            );
            let f = findings_for(&src);
            assert_eq!(f, vec![(3, "checked-narrowing")], "marker {call}");
        }
    }

    #[test]
    fn undocumented_mut_comm_fn_is_flagged() {
        let src = "/// Does things.\npub fn f(comm: &mut Comm) {}\n";
        assert_eq!(findings_for(src), vec![(2, "collective-contract")]);
    }

    #[test]
    fn collective_doc_satisfies_the_contract() {
        let src = "/// Collective: every rank must call it.\npub fn f(comm: &mut Comm) {}\n";
        assert!(findings_for(src).is_empty());
    }

    #[test]
    fn multiline_signature_is_parsed() {
        let src =
            "/// Plain docs.\npub fn f(\n    a: u32,\n    comm: &mut Comm,\n) -> u32 {\n    a\n}\n";
        assert_eq!(findings_for(src), vec![(2, "collective-contract")]);
    }

    #[test]
    fn non_pub_and_mut_self_fns_are_exempt_from_r3() {
        let src = "fn f(comm: &mut Comm) {}\npub fn g(&mut self) {}\n";
        assert!(findings_for(src).is_empty());
    }

    #[test]
    fn doc_block_skips_attributes() {
        let src = "/// Collective rendezvous.\n#[allow(dead_code)]\npub fn f(comm: &mut Comm) {}\n";
        assert!(findings_for(src).is_empty());
    }
}
