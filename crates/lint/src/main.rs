//! Workspace source lint — `cargo run -p lint`.
//!
//! A zero-dependency scanner enforcing three repo-specific rules that
//! `rustc`/`clippy` cannot express, all motivated by the same failure
//! class: this codebase is SPMD over collectives, where a single rank
//! panicking or diverging strands every peer at its next rendezvous.
//!
//! * **R1 `no-panic`** — no `.unwrap()` / `.expect("…")` in non-test
//!   library code. A panicking rank poisons the whole simulated world;
//!   fallible paths must return typed errors. Documented invariants may
//!   be kept as `expect` with an `// audit:` marker on the same or the
//!   preceding line explaining why the invariant holds.
//! * **R2 `checked-narrowing`** — inside wire-format decode functions
//!   (anything reading `from_le_bytes` or the repo's little-endian
//!   helpers), narrowing `as u8/u16/u32/usize` casts must carry an
//!   `// audit:` marker or use checked conversions. A corrupt frame must
//!   surface as a typed error, never alias a valid value by truncation.
//!   Casts of `SCREAMING_CASE` constants and integer literals are exempt
//!   (compile-time-known values, not wire data).
//! * **R3 `collective-contract`** — every `pub fn` taking `&mut Comm`
//!   must say the word "collective" in its doc comment: either that the
//!   call is collective (every rank must make it, in the same order) or
//!   explicitly that it is *not* collective. The hand-audited matching
//!   of collective sequences is this repo's recurring bug class; the
//!   contract belongs on the API surface.
//!
//! Scope: `src/` trees of the workspace library crates and the root
//! crate. Excluded: `crates/bench` (experiment harness, panics are its
//! error handling), this crate, `shims/` (vendored stand-ins for
//! external crates, matching their upstream APIs), `#[cfg(test)]`
//! regions, and integration-test/bench/example targets.
//!
//! Known textual limits, accepted deliberately to stay zero-dependency:
//! the scanner masks strings and comments with a character-level state
//! machine but does not parse Rust. `.expect(` is only flagged with a
//! string-literal argument, so parser-combinator methods *named*
//! `expect` (e.g. `wkt::parse`'s `self.expect(b'(')?`) don't false-
//! positive; an `.expect(msg_variable)` would be missed. R2's function
//! scoping is brace-tracking, not name resolution.

use std::fmt;
use std::path::{Path, PathBuf};

mod mask;
mod rules;

use mask::MaskedFile;

/// One lint finding.
pub struct Finding {
    /// Repo-relative path.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (`no-panic`, `checked-narrowing`,
    /// `collective-contract`).
    pub rule: &'static str,
    /// Human-readable description, including the offending snippet.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Library crates under `crates/` whose `src/` trees are scanned.
/// `bench` is the experiment harness (panics are its error handling) and
/// `lint` is this tool; both are excluded by not being listed.
const SCANNED_CRATES: &[&str] = &["core", "datagen", "geom", "msim", "pfs", "sjoin"];

fn main() {
    let root = workspace_root();
    let mut files: Vec<PathBuf> = Vec::new();
    for c in SCANNED_CRATES {
        collect_rs(&root.join("crates").join(c).join("src"), &mut files);
    }
    collect_rs(&root.join("src"), &mut files);
    files.sort();

    let mut findings: Vec<Finding> = Vec::new();
    let mut scanned = 0usize;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("lint: cannot read {}: {e}", path.display());
                std::process::exit(2);
            }
        };
        scanned += 1;
        let rel = path.strip_prefix(&root).unwrap_or(path).to_path_buf();
        let masked = MaskedFile::new(&text);
        rules::no_panic(&rel, &masked, &mut findings);
        rules::checked_narrowing(&rel, &masked, &mut findings);
        rules::collective_contract(&rel, &masked, &mut findings);
    }

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        println!("lint: {scanned} files clean");
    } else {
        println!("lint: {} finding(s) in {scanned} files", findings.len());
        std::process::exit(1);
    }
}

/// The workspace root: two levels above this crate's manifest, so the
/// binary works regardless of the invocation directory.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .unwrap_or(manifest)
}

/// Recursively collects `.rs` files under `dir` (silently skips a
/// missing directory so the root crate's `src/` is optional).
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(_) => return,
    };
    for entry in entries.flatten() {
        let p = entry.path();
        if p.is_dir() {
            collect_rs(&p, out);
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
}
