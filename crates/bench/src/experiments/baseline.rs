//! The §1 headline: "the I/O is improved by one to two orders of
//! magnitude over real-world datasets using up to 1152 CPU cores" —
//! MPI-Vector-IO's parallel partitioned reads vs the serial strategies
//! its predecessors used (master-read-and-scatter, redundant reading).

use super::{cost_scaled, install_dataset, lustre_scaled, spec, Scale};
use crate::report::Table;
use mvio_core::partition::{read_master_scatter, read_partition_text, read_redundant, ReadOptions};
use mvio_msim::{Topology, World, WorldConfig};
use mvio_pfs::{SimFs, StripeSpec};

/// Which read strategy a run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    MpiVectorIo,
    MasterScatter,
    Redundant,
}

/// Times one strategy on the scaled Roads dataset. Returns max-over-ranks
/// virtual seconds.
pub fn read_time(scale: Scale, nodes: usize, strategy: Strategy) -> f64 {
    let ds = spec("Roads");
    let fs = SimFs::new(lustre_scaled(scale));
    let topo = Topology::new(nodes, 16);
    fs.set_active_ranks(topo.ranks());
    let block = scale.block(32 << 20).max(64 << 10);
    install_dataset(
        &fs,
        &ds,
        scale,
        "roads.wkt",
        Some(StripeSpec::new(64, block)),
    );
    let opts = ReadOptions::default()
        .with_block_size(block)
        .with_max_geometry_bytes(block);
    let cfg = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let times = World::run(cfg, move |comm| {
        match strategy {
            Strategy::MpiVectorIo => read_partition_text(comm, &fs, "roads.wkt", &opts).unwrap(),
            Strategy::MasterScatter => read_master_scatter(comm, &fs, "roads.wkt", &opts).unwrap(),
            Strategy::Redundant => read_redundant(comm, &fs, "roads.wkt", &opts).unwrap(),
        };
        comm.now()
    });
    times.into_iter().fold(0.0, f64::max)
}

/// Runs the baseline comparison and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let node_sweep: Vec<usize> = if quick { vec![4] } else { vec![4, 16, 48, 72] };
    let mut t = Table::new(
        format!(
            "Headline (§1): MPI-Vector-IO vs serial baselines, Roads read (scaled 1/{})",
            scale.denominator
        ),
        &[
            "nodes",
            "procs",
            "mpi-vector-io (s)",
            "master-scatter (s)",
            "redundant (s)",
            "speedup vs master",
            "speedup vs redundant",
        ],
    );
    let d = scale.denominator as f64;
    for nodes in node_sweep {
        let mvio = read_time(scale, nodes, Strategy::MpiVectorIo);
        let master = read_time(scale, nodes, Strategy::MasterScatter);
        let redundant = read_time(scale, nodes, Strategy::Redundant);
        t.row(vec![
            nodes.to_string(),
            (nodes * 16).to_string(),
            format!("{:.2}", mvio * d),
            format!("{:.2}", master * d),
            format!("{:.2}", redundant * d),
            format!("{:.1}x", master / mvio.max(1e-12)),
            format!("{:.1}x", redundant / mvio.max(1e-12)),
        ]);
    }
    t.note("paper: I/O improved by one to two orders of magnitude using up to 1152 cores");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedup_reaches_order_of_magnitude_at_scale() {
        // Needs enough blocks that all nodes participate (the 64 KiB
        // block floor concentrates tiny replicas onto few nodes).
        let scale = Scale { denominator: 2_000 };
        let mvio = read_time(scale, 16, Strategy::MpiVectorIo);
        let master = read_time(scale, 16, Strategy::MasterScatter);
        let redundant = read_time(scale, 16, Strategy::Redundant);
        assert!(
            master / mvio > 5.0,
            "master-scatter speedup {:.1}x should approach an order of magnitude",
            master / mvio
        );
        assert!(
            redundant / mvio > 5.0,
            "redundant speedup {:.1}x",
            redundant / mvio
        );
    }

    #[test]
    fn speedup_grows_with_node_count() {
        let scale = Scale { denominator: 2_000 };
        let ratio = |nodes: usize| {
            read_time(scale, nodes, Strategy::MasterScatter)
                / read_time(scale, nodes, Strategy::MpiVectorIo).max(1e-12)
        };
        let r4 = ratio(4);
        let r16 = ratio(16);
        assert!(
            r16 > r4,
            "speedup must grow with nodes: {r4:.1}x -> {r16:.1}x"
        );
    }
}
