//! Table 3: the dataset catalog plus sequential I/O + parse times.

use super::{cost_scaled, gpfs_scaled, install_dataset, Scale};
use crate::report::{human_bytes, Table};
use mvio_core::partition::{read_features, ReadOptions};
use mvio_core::reader::WktLineParser;
use mvio_datagen::table3;
use mvio_msim::{Topology, World, WorldConfig};
use mvio_pfs::SimFs;

/// Sequentially (1 rank) reads and parses one scaled dataset; returns
/// `(scaled bytes, scaled count, full-scale-equivalent seconds)`.
pub fn sequential_io(spec_name: &str, scale: Scale) -> (u64, u64, f64) {
    let spec = super::spec(spec_name);
    let fs = SimFs::new(gpfs_scaled(scale));
    let bytes = install_dataset(&fs, &spec, scale, "seq.wkt", None);
    let cfg = WorldConfig::new(Topology::single_node(1)).with_cost(cost_scaled(scale));
    let out = World::run(cfg, |comm| {
        let feats = read_features(
            comm,
            &fs,
            "seq.wkt",
            &ReadOptions::default(),
            &WktLineParser,
        )
        .unwrap();
        (comm.now(), feats.len() as u64)
    });
    let (time, count) = out[0];
    (bytes, count, time * scale.denominator as f64)
}

/// Renders Table 3 with paper-reported and measured columns.
pub fn run(scale: Scale, quick: bool) -> String {
    let mut t = Table::new(
        format!(
            "Table 3: real-world datasets and sequential parsing time (scaled 1/{})",
            scale.denominator
        ),
        &[
            "#",
            "dataset",
            "shape",
            "paper size",
            "paper count",
            "paper I/O (s)",
            "scaled size",
            "scaled count",
            "measured full-equiv (s)",
        ],
    );
    for spec in table3() {
        if quick && spec.paper_count > 100_000_000 {
            continue; // skip the billion-shape rows in test mode
        }
        let (bytes, count, full_secs) = sequential_io(spec.name, scale);
        t.row(vec![
            spec.id.to_string(),
            spec.name.to_string(),
            spec.kind.name().to_string(),
            human_bytes(spec.paper_bytes),
            spec.paper_count.to_string(),
            format!("{:.1}", spec.paper_io_seconds),
            human_bytes(bytes),
            count.to_string(),
            format!("{full_secs:.1}"),
        ]);
    }
    t.note("measured = virtual sequential read+parse at scale, multiplied back by the denominator");
    t.note("paper trend preserved: polygons parse slowest per byte (All Objects), then points, then lines");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cemetery_full_equivalent_near_paper() {
        // Paper: 56 MB Cemetery parses sequentially in 2.1 s.
        let (_, count, full) = sequential_io("Cemetery", Scale { denominator: 100 });
        assert!(count >= 1900, "count {count}");
        assert!(
            (0.2..20.0).contains(&full),
            "Cemetery full-equivalent {full:.2}s should be near the paper's 2.1 s"
        );
    }

    #[test]
    fn per_byte_ordering_matches_paper() {
        let s = Scale {
            denominator: 100_000,
        };
        let (b_poly, _, t_poly) = sequential_io("All Objects", s);
        let (b_line, _, t_line) = sequential_io("Road Network", s);
        // Polygons must cost more per byte than lines (Table 3 trend).
        assert!(t_poly / b_poly as f64 > t_line / b_line as f64);
    }
}
