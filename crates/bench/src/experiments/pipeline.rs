//! Pipeline experiment: the intra-rank streaming ingest
//! (parse → cell-map → serialize on worker threads) swept over 1/2/4/8
//! workers.
//!
//! Not a paper figure — the paper's ranks are single-threaded — but the
//! natural extension of its overlap argument: the related parallel-I/O
//! systems in PAPERS.md overlap I/O with compute inside each process.
//! Reported times are deterministic virtual seconds (max over ranks); the
//! *overlap* column isolates the two pipelined stages, where the speedup
//! must approach the worker count, while *ingest total* includes the
//! unaccelerated read and exchange (Amdahl's law in miniature).

use super::{cost_scaled, gpfs_scaled, install_dataset, spec, Scale};
use crate::report::Table;
use mvio_core::decomp::{self, DecompConfig};
use mvio_core::grid::GridSpec;
use mvio_core::partition::{read_partition_text, ReadOptions};
use mvio_core::pipeline::{parse_chunked, partition_chunked, PipelineOptions};
use mvio_core::reader::WktLineParser;
use mvio_msim::{Topology, World, WorldConfig};
use mvio_pfs::SimFs;

/// Per-worker-count measurement: `(parse, partition, exchange, total)`
/// max-over-ranks virtual seconds for one full ingest of `dataset`, plus
/// the busiest rank's exchange counters (rounds, sent/received bytes).
#[allow(clippy::type_complexity)]
pub fn ingest_times(
    dataset: &str,
    scale: Scale,
    nodes: usize,
    ppn: usize,
    workers: usize,
) -> (f64, f64, f64, f64, mvio_core::ExchangeStats) {
    let fs = SimFs::new(gpfs_scaled(scale));
    let topo = Topology::new(nodes, ppn);
    fs.set_active_ranks(topo.ranks());
    install_dataset(&fs, &spec(dataset), scale, "data.wkt", None);
    let read = ReadOptions::default().with_block_size(64 << 10);
    let popts = PipelineOptions::default().with_workers(workers);
    let cfg = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let out = World::run(cfg, move |comm| {
        let t0 = comm.now();
        let text = read_partition_text(comm, &fs, "data.wkt", &read).unwrap();
        let t1 = comm.now();
        let (feats, _) = parse_chunked(comm, &text, &WktLineParser, &popts).unwrap();
        drop(text);
        let t2 = comm.now();
        let sd = decomp::build_global(
            comm,
            &[&feats],
            &DecompConfig::uniform(GridSpec::square(16)),
        );
        let (batch, _) = partition_chunked(comm, &*sd, &feats, &popts).unwrap();
        drop(feats);
        let t3 = comm.now();
        let (_, stats) = mvio_core::exchange::exchange_serialized(comm, batch).unwrap();
        let t4 = comm.now();
        (t1 - t0, t2 - t1, t3 - t2, t4 - t3, t4, stats)
    });
    let max = |f: fn(&(f64, f64, f64, f64, f64, mvio_core::ExchangeStats)) -> f64| {
        out.iter().map(f).fold(0.0, f64::max)
    };
    let times = (max(|t| t.1), max(|t| t.2), max(|t| t.3), max(|t| t.4));
    let busiest = out
        .iter()
        .map(|t| t.5.clone())
        .max_by_key(|s| s.bytes_sent)
        .unwrap_or_default();
    (times.0, times.1, times.2, times.3, busiest)
}

/// Runs the worker sweep and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let (nodes, ppn) = if quick { (1, 2) } else { (2, 4) };
    let dataset = "Lakes";
    let mut t = Table::new(
        format!(
            "Pipeline: streaming parse→partition ingest, {dataset} (scaled 1/{}), {} procs",
            scale.denominator,
            nodes * ppn
        ),
        &[
            "workers",
            "parse s",
            "partition s",
            "overlap s",
            "overlap speedup",
            "ingest total s",
            "total speedup",
            "exch rounds",
            "exch sent/recv MB",
        ],
    );
    let mut base_overlap = 0.0f64;
    let mut base_total = 0.0f64;
    for workers in [1usize, 2, 4, 8] {
        let (parse, part, _exch, total, xstats) = ingest_times(dataset, scale, nodes, ppn, workers);
        let overlap = parse + part;
        if workers == 1 {
            base_overlap = overlap;
            base_total = total;
        }
        t.row(vec![
            workers.to_string(),
            format!("{parse:.6}"),
            format!("{part:.6}"),
            format!("{overlap:.6}"),
            format!("{:.2}x", base_overlap / overlap),
            format!("{total:.6}"),
            format!("{:.2}x", base_total / total),
            xstats.rounds.to_string(),
            format!(
                "{:.1}/{:.1}",
                xstats.bytes_sent as f64 / (1 << 20) as f64,
                xstats.bytes_received as f64 / (1 << 20) as f64
            ),
        ]);
    }
    t.note("output is bit-identical at every worker count (asserted by the test suite)");
    t.note("exchange counters are the busiest rank's; rounds follow the MVIO_EXCHANGE_CHUNK knob (1 = blocking)");
    t.note("expectation: overlap speedup tracks the worker count; total obeys Amdahl (read+exchange stay serial)");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_workers_speed_up_the_overlapped_stages() {
        let scale = Scale {
            denominator: 20_000,
        };
        let (p1, s1, _, t1, x1) = ingest_times("Lakes", scale, 1, 2, 1);
        let (p4, s4, _, t4, x4) = ingest_times("Lakes", scale, 1, 2, 4);
        // The exchanged volume is a property of the data, not the workers.
        assert_eq!(x1.bytes_sent, x4.bytes_sent);
        assert!(x1.rounds >= 1 && x1.per_round.len() == x1.rounds as usize);
        let speedup = (p1 + s1) / (p4 + s4);
        assert!(
            speedup >= 1.5,
            "parse+partition at 4 workers must be >= 1.5x over 1 worker, got {speedup:.2}x \
             (1w {:.6}+{:.6}, 4w {:.6}+{:.6})",
            p1,
            s1,
            p4,
            s4
        );
        assert!(
            t4 < t1,
            "end-to-end ingest must also shrink: {t1:.6} -> {t4:.6}"
        );
    }
}
