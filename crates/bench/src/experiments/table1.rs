//! Table 1: the three MPI file-read access levels, demonstrated live.

use super::Scale;
use crate::report::Table;
use mvio_core::sptypes::RECT_RECORD_BYTES;
use mvio_core::views::read_rects_level3;
use mvio_datagen::write_rect_records;
use mvio_geom::Rect;
use mvio_msim::{AccessLevel, Hints, MpiFile, Topology, World, WorldConfig};
use mvio_pfs::{FsConfig, SimFs};

/// Renders Table 1, exercising each access level on a small record file
/// to prove the dispatch is real (records read are verified per level).
pub fn run(_scale: Scale, _quick: bool) -> String {
    let records = 4096u64;
    let fs = SimFs::new(FsConfig::lustre_comet());
    write_rect_records(
        &fs,
        "t1.bin",
        Rect::new(0.0, 0.0, 100.0, 100.0),
        records,
        0x7AB1,
    );

    let verify = |level: AccessLevel| -> u64 {
        let fs = std::sync::Arc::clone(&fs);
        let counts = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            let mut f = MpiFile::open(&fs, "t1.bin", Hints::default()).unwrap();
            let p = comm.size() as u64;
            match level {
                AccessLevel::Level0 | AccessLevel::Level1 => {
                    let per = records / p;
                    let mut buf = vec![0u8; (per * RECT_RECORD_BYTES as u64) as usize];
                    let off = comm.rank() as u64 * per * RECT_RECORD_BYTES as u64;
                    let n = match level {
                        AccessLevel::Level0 => f.read_at(comm, off, &mut buf).unwrap(),
                        _ => f.read_at_all(comm, off, &mut buf).unwrap(),
                    };
                    (n / RECT_RECORD_BYTES) as u64
                }
                AccessLevel::Level3 => {
                    read_rects_level3(comm, &mut f, records, 64).unwrap().len() as u64
                }
            }
        });
        counts.iter().sum()
    };

    let mut t = Table::new(
        "Table 1: three levels in MPI file read functions",
        &["level", "pattern", "records read (4 ranks)"],
    );
    for (level, name) in [
        (AccessLevel::Level0, "Level 0"),
        (AccessLevel::Level1, "Level 1"),
        (AccessLevel::Level3, "Level 3"),
    ] {
        t.row(vec![
            name.to_string(),
            level.describe().to_string(),
            verify(level).to_string(),
        ]);
    }
    t.note("each row executed live: all three levels deliver the full record set");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_levels_read_all_records() {
        let s = run(Scale::test_tiny(), true);
        // Each level's row must report the complete 4096 records.
        assert_eq!(s.matches("4096").count(), 3, "{s}");
    }
}
