//! Figure 12: binary file reading with `MPI_Type_struct` vs
//! `MPI_Type_contiguous` on GPFS (Level 1).
//!
//! The paper's explanation (§5.1.2): "in case of the struct, MPI
//! implementation internally creates the C struct based on the data type
//! definition whereas in the contiguous case, user code creates a C
//! struct using 4 contiguous floating point numbers" — i.e. the
//! contiguous path pays an extra user-side conversion pass. Both paths
//! here do the real work they model: the struct path decodes records
//! directly from the read buffer; the contiguous path materializes an
//! intermediate `[f64; 4]` array per record first (and charges the copy).

use super::{cost_scaled, gpfs_scaled, Scale};
use crate::report::Table;
use mvio_core::sptypes::{decode_rects, RECT_RECORD_BYTES};
use mvio_datagen::write_rect_records;
use mvio_geom::Rect;
use mvio_msim::{Hints, MpiFile, Topology, Work, World, WorldConfig};
use mvio_pfs::SimFs;

/// Which datatype formulation the reader uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RectDatatype {
    /// `MPI_Type_struct`: records decode in place.
    Struct,
    /// `MPI_Type_contiguous` of 4 doubles: user code assembles each
    /// record through an intermediate array.
    Contiguous,
}

/// Reads `records` MBRs collectively and decodes them with the chosen
/// datatype style. Returns max-over-ranks virtual seconds.
pub fn read_binary_rects(
    scale: Scale,
    nodes: usize,
    ppn: usize,
    records: u64,
    datatype: RectDatatype,
) -> f64 {
    let fs = SimFs::new(gpfs_scaled(scale));
    let topo = Topology::new(nodes, ppn);
    fs.set_active_ranks(topo.ranks());
    write_rect_records(
        &fs,
        "rects.bin",
        Rect::new(0.0, 0.0, 360.0, 180.0),
        records,
        0xF16,
    );
    let cfg = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let times = World::run(cfg, |comm| {
        let f = MpiFile::open(&fs, "rects.bin", Hints::default()).unwrap();
        let p = comm.size() as u64;
        let per = records.div_ceil(p);
        let my_first = comm.rank() as u64 * per;
        let my_count = per.min(records.saturating_sub(my_first));
        let mut buf = vec![0u8; (my_count * RECT_RECORD_BYTES as u64) as usize];
        f.read_at_all(comm, my_first * RECT_RECORD_BYTES as u64, &mut buf)
            .unwrap();

        let rects = match datatype {
            RectDatatype::Struct => {
                // MPI materializes the struct layout internally: one
                // bulk-memcpy-speed pass.
                comm.charge(Work::CopyBytes {
                    n: buf.len() as u64,
                });
                decode_rects(&buf)
            }
            RectDatatype::Contiguous => {
                // User code assembles each struct from 4 contiguous
                // doubles: a scalar element-by-element loop, really
                // executed, charged at a typical ~0.25 GB/s scalar-loop
                // rate rather than memcpy speed.
                comm.charge(Work::Seconds(buf.len() as f64 * 4.0e-9));
                let mut tmp = vec![0.0f64; buf.len() / 8];
                for (i, chunk) in buf.chunks_exact(8).enumerate() {
                    tmp[i] = f64::from_le_bytes(chunk.try_into().unwrap());
                }
                tmp.chunks_exact(4)
                    .map(|c| Rect::from_array([c[0], c[1], c[2], c[3]]))
                    .collect()
            }
        };
        assert_eq!(rects.len() as u64, my_count);
        comm.now()
    });
    times.into_iter().fold(0.0, f64::max)
}

/// Runs the Figure 12 comparison and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    // The paper's binary file experiments use millions of records; scale
    // the count with the denominator from a 10^8-record full size.
    let records = (100_000_000u64 / scale.denominator).max(10_000);
    let procs_sweep: Vec<usize> = if quick {
        vec![20, 40]
    } else {
        vec![20, 40, 60, 80, 100]
    };
    let mut t = Table::new(
        format!("Figure 12: binary MBR read, Type_struct vs Type_contiguous, GPFS L1 ({records} records)"),
        &["procs", "struct (s, full-scale)", "contiguous (s, full-scale)", "struct speedup"],
    );
    for procs in procs_sweep {
        let nodes = procs.div_ceil(20);
        let s = read_binary_rects(scale, nodes, 20, records, RectDatatype::Struct);
        let c = read_binary_rects(scale, nodes, 20, records, RectDatatype::Contiguous);
        let d = scale.denominator as f64;
        t.row(vec![
            procs.to_string(),
            format!("{:.3}", s * d),
            format!("{:.3}", c * d),
            format!("{:.2}x", c / s.max(1e-12)),
        ]);
    }
    t.note("paper: MPI_Type_struct performs better — the contiguous variant pays a user-side struct-assembly pass");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn struct_beats_contiguous() {
        let scale = Scale {
            denominator: 10_000,
        };
        let s = read_binary_rects(scale, 1, 4, 20_000, RectDatatype::Struct);
        let c = read_binary_rects(scale, 1, 4, 20_000, RectDatatype::Contiguous);
        assert!(s < c, "struct {s} must beat contiguous {c} (Figure 12)");
    }

    #[test]
    fn render_reports_speedup() {
        let s = run(
            Scale {
                denominator: 100_000,
            },
            true,
        );
        assert!(s.contains("struct speedup"));
    }
}
