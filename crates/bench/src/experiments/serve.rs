//! Query-serving experiment: a resident
//! [`QueryEngine`] answering Zipf-skewed
//! range/point/kNN traffic, batched versus one-query-at-a-time.
//!
//! Not a paper figure — the paper's query workload is the one-shot batch
//! join framing of §4.3 ("the second collection can be treated as
//! geometries from batch query") — but its serving-side continuation:
//! once the partitioned dataset is resident, each query batch costs one
//! validation allreduce plus two chunked exchange trips regardless of
//! batch size, so batching amortizes the per-collective latency that a
//! naive query-per-call loop pays in full. A third mode adds the hot-
//! result LRU cache, which the Zipf popularity of real frontends makes
//! effective. Reported times are deterministic virtual seconds (max over
//! ranks per serve call); the trajectory is written to
//! `BENCH_serve.json` so future PRs can track it.

use super::{cost_scaled, full_seconds, gpfs_scaled, Scale};
use crate::report::Table;
use mvio_core::decomp::DecompConfig;
use mvio_core::exchange::ExchangeChunk;
use mvio_core::grid::GridSpec;
use mvio_core::partition::ReadOptions;
use mvio_core::pipeline::{ingest, PipelineOptions};
use mvio_core::reader::WktLineParser;
use mvio_datagen::{generate_queries, QueryShape, QueryWorkload, SpatialDistribution};
use mvio_geom::Rect;
use mvio_msim::{Topology, World, WorldConfig};
use mvio_pfs::SimFs;
use mvio_sjoin::{EngineOptions, Query, QueryEngine, ServeCache};

/// Tracked floor: batched serving (cache off) must beat the naive
/// query-per-call loop at 64 ranks by at least this factor in queries
/// per virtual second. Asserted by both the unit test and the CI
/// bench-regression gate, so the two can never enforce different
/// thresholds.
pub const BATCHED_SERVE_SPEEDUP_FLOOR: f64 = 1.5;

/// One measurement: one serving mode at one rank count.
#[derive(Debug, Clone)]
pub struct Row {
    /// Serving mode label (`naive`, `batched`, `batched+cache`).
    pub mode: &'static str,
    /// World size.
    pub ranks: usize,
    /// Queries served per rank.
    pub queries: u64,
    /// Queries per serve call.
    pub batch: usize,
    /// Max-over-ranks virtual seconds for the whole query stream
    /// (full-scale equivalent).
    pub serve_s: f64,
    /// Global throughput: `ranks * queries / serve_s`.
    pub qps: f64,
    /// 99th-percentile per-query virtual latency in full-scale
    /// milliseconds (a query's latency is its serve call's
    /// max-over-ranks duration — batch completion, not first answer).
    pub p99_ms: f64,
    /// Fraction of queries answered from the LRU cache.
    pub cache_hit_rate: f64,
    /// Naive-mode qps over this mode's qps... inverted: this mode's qps
    /// over the naive mode's (1.0 for the naive row itself).
    pub speedup: f64,
}

/// Grid resolution of the resident decomposition.
const GRID_SIDE: u32 = 16;

/// Distinct features in the dataset (clustered to match the query
/// hotspots, so hot queries land on hot cells).
const FEATURES: u64 = 600;

/// Queries per rank in the naive (query-per-call) stream. Kept modest:
/// every query is a full collective round-trip.
const NAIVE_QUERIES: usize = 128;

/// Queries per rank in the batched streams.
const BATCHED_QUERIES: usize = 1024;

/// Queries per serve call in the batched streams.
const BATCH: usize = 128;

/// Per-destination byte cap for query/result shipping, small enough that
/// batches actually pipeline through multiple exchange rounds.
const SERVE_CHUNK: u64 = 4096;

/// The dataset's placement: the same clustered distribution the query
/// workload defaults to, so popular queries hit resident hot spots.
fn placement() -> SpatialDistribution {
    SpatialDistribution::Clustered {
        clusters: 12,
        skew: 1.0,
        spread: 0.05,
    }
}

/// Clustered points plus small squares over an anchored `[0,100]²`
/// world: 3 points per square keeps refine cheap relative to the
/// per-query collective cost this experiment isolates. Deterministic.
fn dataset_bytes(features: u64) -> Vec<u8> {
    let world = Rect::new(0.0, 0.0, 100.0, 100.0);
    let mut sampler = placement().sampler(world, 0x5E4E_DA7A);
    let mut text = String::new();
    text.push_str("POINT (0.0 0.0)\tanchor-min\n");
    text.push_str("POINT (100.0 100.0)\tanchor-max\n");
    for i in 0..features {
        let c = sampler.next_center();
        if i % 4 == 0 {
            let h = 0.4;
            let (x0, y0) = ((c.x - h).max(0.0), (c.y - h).max(0.0));
            let (x1, y1) = ((c.x + h).min(100.0), (c.y + h).min(100.0));
            text.push_str(&format!(
                "POLYGON (({x0:.4} {y0:.4}, {x1:.4} {y0:.4}, {x1:.4} {y1:.4}, {x0:.4} {y1:.4}, {x0:.4} {y0:.4}))\tf{i:05}\n"
            ));
        } else {
            text.push_str(&format!("POINT ({:.4} {:.4})\tf{i:05}\n", c.x, c.y));
        }
    }
    text.into_bytes()
}

/// Maps a generated [`QueryShape`] onto the engine's query type.
fn to_query(s: &QueryShape) -> Query {
    match *s {
        QueryShape::Range(r) => Query::Range(r),
        QueryShape::Point(p) => Query::Point(p),
        QueryShape::Knn { at, k } => Query::Knn { at, k },
    }
}

/// Measures one query stream: ingest once, build the resident engine,
/// then serve `queries` per-rank Zipf draws in `batch`-sized calls.
/// Returns the row with `speedup` unfilled (1.0).
fn measure_one(
    scale: Scale,
    bytes: &[u8],
    ranks: usize,
    mode: &'static str,
    queries: usize,
    batch: usize,
    cache: bool,
) -> Row {
    let fs = SimFs::new(gpfs_scaled(scale));
    fs.set_active_ranks(ranks);
    fs.create("serve.wkt", None)
        .expect("fresh fs")
        .append(bytes);
    let nodes = ranks.div_ceil(16).max(1);
    let topo = Topology::new(nodes, ranks.div_ceil(nodes));
    let world = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let out = World::run(world, move |comm| {
        let ing = ingest(
            comm,
            &fs,
            "serve.wkt",
            &ReadOptions::default(),
            &WktLineParser,
            &DecompConfig::uniform(GridSpec::square(GRID_SIDE)),
            &PipelineOptions::default().with_workers(2),
        )
        .unwrap();
        let opts = EngineOptions {
            chunk: ExchangeChunk::Bytes(SERVE_CHUNK),
            cache: if cache {
                ServeCache::Entries(1024)
            } else {
                ServeCache::Off
            },
            ..Default::default()
        };
        let mut eng = QueryEngine::from_ingest(comm, ing, &opts);
        let bounds = eng.decomposition().bounds();
        // Each rank is its own frontend: distinct seed, distinct stream.
        let shapes = generate_queries(
            bounds,
            &QueryWorkload::default(),
            queries,
            0xC0FF_EE00 ^ comm.rank() as u64,
        );
        let qs: Vec<Query> = shapes.iter().map(to_query).collect();
        let mut call_s: Vec<f64> = Vec::with_capacity(queries.div_ceil(batch));
        let mut hits = 0u64;
        let start = comm.now();
        for chunk in qs.chunks(batch) {
            let t = comm.now();
            let rep = eng.serve(comm, chunk).unwrap();
            call_s.push(comm.now() - t);
            hits += rep.stats.answered_from_cache;
        }
        (comm.now() - start, call_s, hits)
    });
    // A serve call's latency is its max over ranks; every rank makes the
    // same number of calls (same per-rank query count), so the per-call
    // vectors line up by index.
    let calls = out[0].1.len();
    let mut per_query_ms = Vec::with_capacity(queries);
    for call in 0..calls {
        let worst = out.iter().map(|r| r.1[call]).fold(0.0, f64::max);
        let ms = full_seconds(scale, worst) * 1e3;
        let in_call = batch.min(queries - call * batch);
        per_query_ms.resize(per_query_ms.len() + in_call, ms);
    }
    per_query_ms.sort_by(f64::total_cmp);
    let p99_idx =
        ((per_query_ms.len() as f64 * 0.99).ceil() as usize).clamp(1, per_query_ms.len()) - 1;
    let serve_s = full_seconds(scale, out.iter().map(|r| r.0).fold(0.0, f64::max));
    let total_q = (queries * ranks) as f64;
    let hits: u64 = out.iter().map(|r| r.2).sum();
    Row {
        mode,
        ranks,
        queries: queries as u64,
        batch,
        serve_s,
        qps: total_q / serve_s.max(f64::MIN_POSITIVE),
        p99_ms: per_query_ms[p99_idx],
        cache_hit_rate: hits as f64 / total_q,
        speedup: 1.0,
    }
}

/// Measures the three serving modes at every rank count, filling in the
/// per-rank-count throughput speedups versus the naive mode.
pub fn measure(scale: Scale, rank_counts: &[usize]) -> Vec<Row> {
    let bytes = dataset_bytes(FEATURES);
    let mut rows = Vec::new();
    for &ranks in rank_counts {
        let naive = measure_one(scale, &bytes, ranks, "naive", NAIVE_QUERIES, 1, false);
        let mut batched = measure_one(
            scale,
            &bytes,
            ranks,
            "batched",
            BATCHED_QUERIES,
            BATCH,
            false,
        );
        batched.speedup = batched.qps / naive.qps;
        let mut cached = measure_one(
            scale,
            &bytes,
            ranks,
            "batched+cache",
            BATCHED_QUERIES,
            BATCH,
            true,
        );
        cached.speedup = cached.qps / naive.qps;
        rows.push(naive);
        rows.push(batched);
        rows.push(cached);
    }
    rows
}

/// Renders the measurement rows as a JSON trajectory file body.
pub fn to_json(rows: &[Row]) -> String {
    let mut s = String::from(
        "{\n  \"experiment\": \"serve\",\n  \"metric\": \"global_queries_per_virtual_second\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"mode\": \"{}\", \"ranks\": {}, \"queries_per_rank\": {}, \"batch\": {}, \"serve_s\": {:.6}, \"qps\": {:.2}, \"p99_ms\": {:.4}, \"cache_hit_rate\": {:.4}, \"speedup\": {:.4}}}{}\n",
            r.mode,
            r.ranks,
            r.queries,
            r.batch,
            r.serve_s,
            r.qps,
            r.p99_ms,
            r.cache_hit_rate,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Runs the sweep, writes `BENCH_serve.json`, and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let rank_counts: &[usize] = if quick { &[16] } else { &[16, 64] };
    let rows = measure(scale, rank_counts);

    let mut t = Table::new(
        format!(
            "Query serving: resident engine, {FEATURES} clustered features, Zipf(1.0) \
             range/point/kNN traffic, naive (1/call) vs batched ({BATCH}/call) vs batched+LRU cache"
        ),
        &[
            "ranks",
            "mode",
            "q/rank",
            "batch",
            "serve s",
            "qps",
            "p99 ms",
            "cache hit",
            "speedup",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.ranks.to_string(),
            r.mode.to_string(),
            r.queries.to_string(),
            r.batch.to_string(),
            format!("{:.4}", r.serve_s),
            format!("{:.0}", r.qps),
            format!("{:.4}", r.p99_ms),
            format!("{:.0}%", r.cache_hit_rate * 100.0),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t.note("answers are identical across modes (oracle-checked by tests/proptest_serve.rs)");
    t.note(
        "expectation: one validation allreduce + two exchange trips per call amortize over the batch",
    );
    match std::fs::write("BENCH_serve.json", to_json(&rows)) {
        Ok(()) => t.note("trajectory written to BENCH_serve.json"),
        Err(e) => t.note(format!("could not write BENCH_serve.json: {e}")),
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance criterion: batched serving must beat the
    /// naive query-per-call loop by at least
    /// [`BATCHED_SERVE_SPEEDUP_FLOOR`] in global qps at 64 ranks under
    /// Zipf-skewed traffic (the same measurement the CI gate pins).
    #[test]
    fn batched_serving_beats_naive_at_64_ranks() {
        let rows = measure(Scale::default_repro(), &[64]);
        let naive = rows.iter().find(|r| r.mode == "naive").unwrap();
        let batched = rows.iter().find(|r| r.mode == "batched").unwrap();
        assert!(
            batched.speedup >= BATCHED_SERVE_SPEEDUP_FLOOR,
            "batched {:.0} qps vs naive {:.0} qps = {:.2}x, floor {:.2}x",
            batched.qps,
            naive.qps,
            batched.speedup,
            BATCHED_SERVE_SPEEDUP_FLOOR
        );
        // The cache can only help under Zipf popularity: it must not
        // fall below the uncached batched throughput by any real margin,
        // and it must actually hit.
        let cached = rows.iter().find(|r| r.mode == "batched+cache").unwrap();
        assert!(
            cached.cache_hit_rate > 0.5,
            "Zipf pool of 64 over 1024 draws should mostly hit: {:.2}",
            cached.cache_hit_rate
        );
    }
}
