//! Table 2: spatial datatypes × reduction operators, exercised live.

use super::Scale;
use crate::report::Table;
use mvio_core::spops::{
    support_matrix, MaxLine, MaxPoint, MaxRect, MinLine, MinPoint, MinRect, Segment, UnionRect,
};
use mvio_geom::{Point, Rect};
use mvio_msim::{Topology, World, WorldConfig};

/// Renders Table 2 after actually running each supported (type, op)
/// combination through an allreduce.
pub fn run(_scale: Scale, _quick: bool) -> String {
    // Exercise every supported combination across 4 ranks.
    let results = World::run(WorldConfig::new(Topology::single_node(4)), |comm| {
        let r = comm.rank() as f64;
        let rect = Rect::new(r, 0.0, r + 1.0 + r, 1.0 + r); // size grows with rank
        let seg = Segment::new(Point::new(0.0, 0.0), Point::new(r + 1.0, 0.0));
        let pt = Point::new(r, 3.0 - r);
        (
            comm.allreduce(rect, 32, &MinRect),
            comm.allreduce(rect, 32, &MaxRect),
            comm.allreduce(rect, 32, &UnionRect),
            comm.allreduce(seg, 32, &MinLine).length(),
            comm.allreduce(seg, 32, &MaxLine).length(),
            comm.allreduce(pt, 16, &MinPoint),
            comm.allreduce(pt, 16, &MaxPoint),
        )
    });
    let (min_r, max_r, union_r, min_l, max_l, min_p, max_p) = results[0];
    assert_eq!(min_r, Rect::new(0.0, 0.0, 1.0, 1.0));
    assert_eq!(max_r, Rect::new(3.0, 0.0, 7.0, 4.0));
    assert_eq!(union_r, Rect::new(0.0, 0.0, 7.0, 4.0));
    assert_eq!(min_l, 1.0);
    assert_eq!(max_l, 4.0);
    assert_eq!(min_p, Point::new(0.0, 0.0));
    assert_eq!(max_p, Point::new(3.0, 3.0));

    let mut t = Table::new(
        "Table 2: spatial data types and reduction operators",
        &["operator", "type", "supported", "verified live"],
    );
    for (op, ty, ok) in support_matrix() {
        t.row(vec![
            op.to_string(),
            ty.to_string(),
            if ok { "yes" } else { "no" }.to_string(),
            if ok { "allreduce checked" } else { "-" }.to_string(),
        ]);
    }
    t.note("MPI_POINT / MPI_LINE / MPI_RECT are derived datatypes (2, 4, 4 doubles)");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_all_nine_combinations() {
        let s = run(Scale::test_tiny(), true);
        assert_eq!(s.matches("MPI_MIN").count(), 3);
        assert_eq!(s.matches("MPI_MAX").count(), 3);
        assert_eq!(s.matches("MPI_UNION").count(), 3);
    }
}
