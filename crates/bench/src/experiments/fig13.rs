//! Figure 13: `MPI_Reduce` and `MPI_Scan` with the geometric `MPI_UNION`
//! operator over 100 K / 200 K / 400 K rectangles.

use super::{cost_scaled, Scale};
use crate::report::Table;
use mvio_core::spops::UnionRect;
use mvio_geom::Rect;
use mvio_msim::{ReduceOp, Topology, World, WorldConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Element-wise union of per-rank rectangle arrays — the reduction payload
/// the figure benchmarks.
struct UnionRects;

impl ReduceOp<Vec<Rect>> for UnionRects {
    fn combine(&self, a: &Vec<Rect>, b: &Vec<Rect>) -> Vec<Rect> {
        let u = UnionRect;
        a.iter().zip(b).map(|(x, y)| u.combine(x, y)).collect()
    }
}

/// Which collective the run exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collective {
    Reduce,
    Scan,
}

/// Times one union collective over `count` rects per rank. Returns
/// max-over-ranks virtual seconds and the (checked) global union of the
/// first element.
pub fn union_collective(scale: Scale, procs: usize, count: usize, which: Collective) -> f64 {
    let cfg = WorldConfig::new(Topology::new(procs.div_ceil(16).max(1), procs.min(16)))
        .with_cost(cost_scaled(scale));
    let times = World::run(cfg, move |comm| {
        let mut rng = StdRng::seed_from_u64(1300 + comm.rank() as u64);
        let rects: Vec<Rect> = (0..count)
            .map(|_| {
                let x = rng.gen_range(0.0..100.0);
                let y = rng.gen_range(0.0..100.0);
                Rect::new(
                    x,
                    y,
                    x + rng.gen_range(0.1..2.0),
                    y + rng.gen_range(0.1..2.0),
                )
            })
            .collect();
        let bytes = (count * 32) as u64;
        let before = comm.now();
        match which {
            Collective::Reduce => {
                let out = comm.reduce(0, rects, bytes, &UnionRects);
                if let Some(v) = out {
                    assert_eq!(v.len(), count);
                }
            }
            Collective::Scan => {
                let v = comm.scan(rects, bytes, &UnionRects);
                assert_eq!(v.len(), count);
            }
        }
        comm.now() - before
    });
    times.into_iter().fold(0.0, f64::max)
}

/// Runs the Figure 13 sweep and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let counts: Vec<usize> = if quick {
        vec![10_000, 20_000]
    } else {
        vec![100_000, 200_000, 400_000]
    };
    let procs_sweep: Vec<usize> = if quick {
        vec![4, 8]
    } else {
        vec![8, 16, 32, 64]
    };
    let mut headers: Vec<String> = vec!["procs".into()];
    for c in &counts {
        headers.push(format!("Reduce {}K (ms)", c / 1000));
        headers.push(format!("Scan {}K (ms)", c / 1000));
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Figure 13: MPI Reduce and Scan with the geometric UNION operator",
        &headers_ref,
    );
    for &procs in &procs_sweep {
        let mut cells = vec![procs.to_string()];
        for &c in &counts {
            let r = union_collective(scale, procs, c, Collective::Reduce);
            let s = union_collective(scale, procs, c, Collective::Scan);
            cells.push(format!("{:.2}", r * 1e3));
            cells.push(format!("{:.2}", s * 1e3));
        }
        t.row(cells);
    }
    t.note("paper: time grows with rectangle count; the tree reduction keeps growth logarithmic in processes");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_grows_with_rect_count() {
        let scale = Scale::default_repro();
        let t100 = union_collective(scale, 4, 1000, Collective::Reduce);
        let t400 = union_collective(scale, 4, 4000, Collective::Reduce);
        assert!(t400 > t100, "4x rects must cost more: {t100} vs {t400}");
    }

    #[test]
    fn scan_and_reduce_have_comparable_cost_model() {
        let scale = Scale::default_repro();
        let r = union_collective(scale, 8, 2000, Collective::Reduce);
        let s = union_collective(scale, 8, 2000, Collective::Scan);
        assert!(r > 0.0 && s > 0.0);
    }

    #[test]
    fn union_result_is_correct_under_reduction() {
        // Correctness of the elementwise operator through a real reduce.
        let out = World::run(WorldConfig::new(Topology::single_node(4)), |comm| {
            let r = comm.rank() as f64;
            let rects = vec![Rect::new(r, r, r + 1.0, r + 1.0)];
            comm.allreduce(rects, 32, &UnionRects)
        });
        for v in out {
            assert_eq!(v[0], Rect::new(0.0, 0.0, 4.0, 4.0));
        }
    }
}
