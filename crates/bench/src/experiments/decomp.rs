//! Decomposition experiment: per-rank load imbalance and simulated wall
//! time of the three spatial decompositions (uniform round-robin, Hilbert
//! runs, adaptive bisection) on uniform and clustered datagen inputs.
//!
//! Not a paper figure — the paper only ships the uniform grid — but the
//! direct measurement of its §1 motivation ("real data distribution is
//! often skewed"): on clustered inputs a hotspot that lands in one
//! uniform cell lands on one rank, capping scalability. The experiment
//! sweeps 4/16/64 ranks, reports the **max/mean per-rank feature-count
//! imbalance ratio** after the exchange, and writes the trajectory to
//! `BENCH_decomp.json` so future PRs can track it.

use super::{cost_scaled, gpfs_scaled, Scale};
use crate::report::Table;
use mvio_core::decomp::{imbalance_ratio, DecompConfig};
use mvio_core::partition::ReadOptions;
use mvio_core::pipeline::{ingest, PipelineOptions};
use mvio_core::reader::WktLineParser;
use mvio_datagen::{writer, ShapeGen, ShapeKind, SpatialDistribution};
use mvio_geom::Rect;
use mvio_msim::{Topology, World, WorldConfig};
use mvio_pfs::SimFs;
use std::sync::Arc;

/// Tracked floor: on clustered input at 16 ranks, adaptive bisection
/// must cut the max/mean imbalance at least this factor below the
/// uniform round-robin grid. Asserted by both the unit test and the CI
/// bench-regression gate, so the two can never enforce different
/// thresholds.
pub const CLUSTERED_IMBALANCE_FLOOR: f64 = 2.0;

/// One measurement: a decomposition policy on one input at one rank count.
#[derive(Debug, Clone)]
pub struct Row {
    /// Input distribution name (`uniform` | `clustered`).
    pub input: &'static str,
    /// Decomposition name (`uniform` | `hilbert` | `adaptive`).
    pub decomp: &'static str,
    /// World size.
    pub ranks: usize,
    /// Max/mean per-rank owned-feature imbalance after the exchange.
    pub imbalance: f64,
    /// Max-over-ranks virtual seconds for the full ingest.
    pub wall_s: f64,
    /// Exchange rounds the busiest rank executed (1 = blocking, more
    /// when `MVIO_EXCHANGE_CHUNK` pins a finite chunk; identical on
    /// every rank by protocol).
    pub exch_rounds: u32,
    /// Bytes the busiest rank sent through the exchange.
    pub exch_sent: u64,
    /// Bytes the busiest rank received from the exchange. "Busiest" is
    /// the receive-heaviest rank; all three counters come from that one
    /// rank, so sent/received pairs are coherent.
    pub exch_received: u64,
}

/// The two datagen inputs: spatially uniform, and OSM-style clustered
/// (tight Zipf-weighted hotspots — the skew the adaptive policy targets).
fn distributions() -> [(&'static str, SpatialDistribution); 2] {
    [
        ("uniform", SpatialDistribution::Uniform),
        (
            "clustered",
            SpatialDistribution::Clustered {
                clusters: 6,
                skew: 1.4,
                spread: 0.004,
            },
        ),
    ]
}

/// The three decomposition configurations under test. Uniform and
/// Hilbert tile 16×16 cells; adaptive bisects a 32×-finer histogram
/// (512×512) so hotspots far smaller than one coarse cell can still be
/// split across ranks.
fn configs() -> [(&'static str, DecompConfig); 3] {
    use mvio_core::grid::GridSpec;
    let base = GridSpec::square(16);
    [
        ("uniform", DecompConfig::uniform(base)),
        ("hilbert", DecompConfig::hilbert(base)),
        ("adaptive", DecompConfig::adaptive(base, 32)),
    ]
}

/// Generates `features` point records under `dist` once, returning the
/// raw WKT bytes. The bytes depend only on `(dist, features)`, so each
/// input is generated once and installed onto a **fresh** fs per
/// measurement — cold simulated OST queues every run, identical data.
fn dataset_bytes(dist: &SpatialDistribution, features: u64) -> Vec<u8> {
    writer::wkt_dataset_bytes(
        ShapeKind::Point,
        ShapeGen::small_polygons(),
        dist,
        Rect::new(-180.0, -90.0, 180.0, 90.0),
        features,
        0xDEC0_4001,
    )
}

/// Installs cached dataset bytes onto a fresh cold filesystem.
fn fresh_fs(scale: Scale, bytes: &[u8], ranks: usize) -> Arc<SimFs> {
    let fs = SimFs::new(gpfs_scaled(scale));
    fs.set_active_ranks(ranks);
    fs.create("decomp.wkt", None)
        .expect("fresh fs")
        .append(bytes);
    fs
}

/// Measures every decomposition on every input at the given rank counts.
pub fn measure(scale: Scale, features: u64, rank_counts: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for (input, dist) in distributions() {
        let bytes = dataset_bytes(&dist, features);
        for &ranks in rank_counts {
            for (decomp, cfg) in configs() {
                let fs = fresh_fs(scale, &bytes, ranks);
                let nodes = ranks.div_ceil(16).max(1);
                let topo = Topology::new(nodes, ranks.div_ceil(nodes));
                let world = WorldConfig::new(topo).with_cost(cost_scaled(scale));
                let out = World::run(world, move |comm| {
                    let rep = ingest(
                        comm,
                        &fs,
                        "decomp.wkt",
                        &ReadOptions::default().with_block_size(64 << 10),
                        &WktLineParser,
                        &cfg,
                        &PipelineOptions::default().with_workers(1),
                    )
                    .unwrap();
                    (
                        rep.owned.len() as u64,
                        comm.now(),
                        rep.exchange.rounds,
                        rep.exchange.bytes_sent,
                        rep.exchange.bytes_received,
                    )
                });
                let loads: Vec<u64> = out.iter().map(|o| o.0).collect();
                let wall = out.iter().map(|o| o.1).fold(0.0, f64::max);
                // One coherent rank's counters (the receive-heaviest —
                // the ownership hotspot), not independent per-column
                // maxima that no single rank ever exhibited.
                let busiest = out.iter().max_by_key(|o| o.4).expect("ranks >= 1");
                rows.push(Row {
                    input,
                    decomp,
                    ranks,
                    imbalance: imbalance_ratio(&loads),
                    wall_s: wall,
                    exch_rounds: busiest.2,
                    exch_sent: busiest.3,
                    exch_received: busiest.4,
                });
            }
        }
    }
    rows
}

/// Renders the measurement rows as a JSON trajectory file body.
pub fn to_json(rows: &[Row]) -> String {
    let mut s = String::from("{\n  \"experiment\": \"decomp\",\n  \"metric\": \"max_over_mean_per_rank_features\",\n  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"input\": \"{}\", \"decomp\": \"{}\", \"ranks\": {}, \"imbalance\": {:.4}, \"wall_s\": {:.6}, \"exch_rounds\": {}, \"exch_sent\": {}, \"exch_received\": {}}}{}\n",
            r.input,
            r.decomp,
            r.ranks,
            r.imbalance,
            r.wall_s,
            r.exch_rounds,
            r.exch_sent,
            r.exch_received,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Runs the sweep, writes `BENCH_decomp.json`, and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let rank_counts: &[usize] = if quick { &[4, 16] } else { &[4, 16, 64] };
    let features = if quick { 3_000 } else { 12_000 };
    let rows = measure(scale, features, rank_counts);

    let mut t = Table::new(
        format!(
            "Decomposition sweep: {features} points, per-rank load imbalance (max/mean) and ingest wall time"
        ),
        &[
            "input",
            "ranks",
            "decomp",
            "imbalance",
            "ingest s",
            "exch rounds",
            "exch sent/recv MB",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.input.to_string(),
            r.ranks.to_string(),
            r.decomp.to_string(),
            format!("{:.2}", r.imbalance),
            format!("{:.6}", r.wall_s),
            r.exch_rounds.to_string(),
            format!(
                "{:.2}/{:.2}",
                r.exch_sent as f64 / (1 << 20) as f64,
                r.exch_received as f64 / (1 << 20) as f64
            ),
        ]);
    }
    t.note("imbalance 1.0 = perfect balance; = ranks means everything on one rank");
    t.note(
        "exchange counters are the busiest rank's; received bytes mirror the ownership imbalance",
    );
    t.note("expectation: on clustered input, adaptive >= 2x lower imbalance than uniform at 16 ranks; hilbert keeps locality with balance between the two");
    match std::fs::write("BENCH_decomp.json", to_json(&rows)) {
        Ok(()) => t.note("trajectory written to BENCH_decomp.json"),
        Err(e) => t.note(format!("could not write BENCH_decomp.json: {e}")),
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance criterion: on the clustered input at 16 ranks,
    /// adaptive bisection cuts the max/mean imbalance at least 2x vs the
    /// uniform round-robin grid.
    #[test]
    fn adaptive_halves_clustered_imbalance_at_16_ranks() {
        let scale = Scale {
            denominator: 10_000,
        };
        let rows = measure(scale, 3_000, &[16]);
        let find = |input: &str, decomp: &str| -> f64 {
            rows.iter()
                .find(|r| r.input == input && r.decomp == decomp)
                .unwrap()
                .imbalance
        };
        let uni = find("clustered", "uniform");
        let ada = find("clustered", "adaptive");
        assert!(
            ada * CLUSTERED_IMBALANCE_FLOOR <= uni,
            "adaptive imbalance {ada:.2} must be >= {CLUSTERED_IMBALANCE_FLOOR}x \
             below uniform {uni:.2}"
        );
        // Sanity: on the uniform input nothing is badly imbalanced.
        assert!(find("uniform", "uniform") < 4.0);
        assert!(find("uniform", "adaptive") < 4.0);
    }

    #[test]
    fn json_trajectory_is_well_formed() {
        let rows = vec![Row {
            input: "clustered",
            decomp: "adaptive",
            ranks: 16,
            imbalance: 1.25,
            wall_s: 0.0125,
            exch_rounds: 1,
            exch_sent: 2048,
            exch_received: 4096,
        }];
        let s = to_json(&rows);
        assert!(s.contains("\"experiment\": \"decomp\""));
        assert!(s.contains("\"imbalance\": 1.2500"));
        assert!(!s.contains(",\n  ]"), "no trailing comma");
    }
}
