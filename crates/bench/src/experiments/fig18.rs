//! Figure 18: spatial-join breakdown vs process count for Lakes ⋈
//! Cemetery (datasets #2 ⋈ #1) — the *join-dominated* workload.

use super::fig17::join_run;
use super::Scale;
use crate::report::Table;

/// Process counts swept (20 ranks per ROGER node).
pub fn procs_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![4, 8]
    } else {
        vec![20, 40, 80, 160]
    }
}

/// Runs the Figure 18 sweep and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let cells = if quick { 8 } else { 32 };
    let mut t = Table::new(
        format!(
            "Figure 18: join breakdown vs processes, Lakes ⋈ Cemetery ({}x{} cells, scaled 1/{})",
            cells, cells, scale.denominator
        ),
        &[
            "procs",
            "partition (s)",
            "comm (s)",
            "join (s)",
            "total (s)",
            "dominant",
        ],
    );
    let d = scale.denominator as f64;
    for procs in procs_sweep(quick) {
        let (b, _) = join_run(scale, "Lakes", "Cemetery", procs, cells);
        let dominant = if b.compute >= b.communication && b.compute >= b.partition {
            "join"
        } else if b.communication >= b.partition {
            "comm"
        } else {
            "partition"
        };
        t.row(vec![
            procs.to_string(),
            format!("{:.2}", b.partition * d),
            format!("{:.2}", b.communication * d),
            format!("{:.2}", b.compute * d),
            format!("{:.2}", b.total * d),
            dominant.to_string(),
        ]);
    }
    t.note("paper: the spatial join time dominates and decreases with increasing process count");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_time_decreases_with_processes() {
        let scale = Scale { denominator: 2_000 };
        let (b2, _) = join_run(scale, "Lakes", "Cemetery", 2, 8);
        let (b8, _) = join_run(scale, "Lakes", "Cemetery", 8, 8);
        assert!(
            b8.compute < b2.compute,
            "join phase must shrink with ranks: {:.4} -> {:.4}",
            b2.compute,
            b8.compute
        );
        assert!(b8.total < b2.total, "total must shrink too");
    }

    #[test]
    fn lakes_join_share_exceeds_roads_join_share() {
        // The defining contrast between Figures 18 and 19: Lakes ⋈
        // Cemetery (big polygons, heavy refine) spends a larger *share* of
        // its time in the join phase than Roads ⋈ Cemetery (millions of
        // tiny polygons, exchange-bound). Shares are scale-robust even
        // when absolute dominance only emerges at full size.
        let scale = Scale { denominator: 2_000 };
        let (lakes, _) = join_run(scale, "Lakes", "Cemetery", 4, 8);
        let (roads, _) = join_run(scale, "Roads", "Cemetery", 4, 8);
        let share = |b: &mvio_sjoin::PhaseBreakdown| b.compute / (b.compute + b.communication);
        assert!(
            share(&lakes) > share(&roads),
            "lakes join share {:.3} must exceed roads join share {:.3}",
            share(&lakes),
            share(&roads)
        );
    }
}
