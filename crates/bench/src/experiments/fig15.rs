//! Figure 15: 10 GB binary file read, contiguous (Level 1) vs
//! non-contiguous (Level 3) with block sizes of 1 K / 2 K / 4 K MBR
//! records.

use super::{cost_scaled, gpfs_scaled, Scale};
use crate::report::Table;
use mvio_core::sptypes::RECT_RECORD_BYTES;
use mvio_core::views::read_rects_level3;
use mvio_datagen::write_rect_records;
use mvio_geom::Rect;
use mvio_msim::{Hints, MpiFile, Topology, World, WorldConfig};
use mvio_pfs::SimFs;

/// Block sizes (records per block) the paper sweeps.
pub const BLOCK_SIZES: [usize; 3] = [1024, 2048, 4096];

/// Times a contiguous Level-1 read of the whole record file split evenly.
pub fn contiguous_read(scale: Scale, procs: usize, records: u64) -> f64 {
    let fs = SimFs::new(gpfs_scaled(scale));
    let topo = topo_for(procs);
    fs.set_active_ranks(topo.ranks());
    write_rect_records(
        &fs,
        "mbrs.bin",
        Rect::new(0.0, 0.0, 360.0, 180.0),
        records,
        0xF15,
    );
    let cfg = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let times = World::run(cfg, |comm| {
        let f = MpiFile::open(&fs, "mbrs.bin", Hints::default()).unwrap();
        let p = comm.size() as u64;
        let per = records.div_ceil(p);
        let first = comm.rank() as u64 * per;
        let count = per.min(records.saturating_sub(first));
        let mut buf = vec![0u8; (count * RECT_RECORD_BYTES as u64) as usize];
        f.read_at_all(comm, first * RECT_RECORD_BYTES as u64, &mut buf)
            .unwrap();
        comm.now()
    });
    times.into_iter().fold(0.0, f64::max)
}

/// Times a non-contiguous Level-3 round-robin read with the given block
/// size (records per block).
pub fn noncontiguous_read(scale: Scale, procs: usize, records: u64, block_records: usize) -> f64 {
    let fs = SimFs::new(gpfs_scaled(scale));
    let topo = topo_for(procs);
    fs.set_active_ranks(topo.ranks());
    write_rect_records(
        &fs,
        "mbrs.bin",
        Rect::new(0.0, 0.0, 360.0, 180.0),
        records,
        0xF15,
    );
    let cfg = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let times = World::run(cfg, move |comm| {
        let mut f = MpiFile::open(&fs, "mbrs.bin", Hints::default()).unwrap();
        let rects = read_rects_level3(comm, &mut f, records, block_records).unwrap();
        // Ranks beyond the block count legitimately read nothing.
        let blocks = records.div_ceil(block_records as u64);
        assert!(!rects.is_empty() || comm.rank() as u64 >= blocks);
        comm.now()
    });
    times.into_iter().fold(0.0, f64::max)
}

fn topo_for(procs: usize) -> Topology {
    let nodes = procs.div_ceil(20).max(1);
    Topology::new(nodes, procs.div_ceil(nodes))
}

/// Runs the Figure 15 sweep and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    // 10 GB of 32-byte records full-scale.
    let records = ((10u64 << 30) / RECT_RECORD_BYTES as u64 / scale.denominator).max(8192);
    let procs_sweep: Vec<usize> = if quick { vec![20] } else { vec![20, 40, 80] };
    let mut headers = vec!["procs".to_string(), "contiguous (s)".to_string()];
    headers.extend(BLOCK_SIZES.iter().map(|b| format!("NC block {b} (s)")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Figure 15: binary MBR file, contiguous vs non-contiguous access, GPFS ({records} records)"
        ),
        &headers_ref,
    );
    let d = scale.denominator as f64;
    for &procs in &procs_sweep {
        let mut cells = vec![
            procs.to_string(),
            format!("{:.3}", contiguous_read(scale, procs, records) * d),
        ];
        for &b in &BLOCK_SIZES {
            cells.push(format!(
                "{:.3}",
                noncontiguous_read(scale, procs, records, b) * d
            ));
        }
        t.row(cells);
    }
    t.note("paper: contiguous is much faster; non-contiguous improves with larger blocks (less aggregation and communication overhead)");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_beats_noncontiguous() {
        let scale = Scale {
            denominator: 50_000,
        };
        let records = 16_384;
        let c = contiguous_read(scale, 4, records);
        let nc = noncontiguous_read(scale, 4, records, 256);
        assert!(
            c < nc,
            "contiguous {c} must beat non-contiguous {nc} (Figure 15)"
        );
    }

    #[test]
    fn larger_nc_blocks_are_faster() {
        let scale = Scale {
            denominator: 50_000,
        };
        let records = 16_384;
        let small = noncontiguous_read(scale, 4, records, 64);
        let large = noncontiguous_read(scale, 4, records, 1024);
        assert!(
            large < small,
            "block 1024 ({large}) must beat block 64 ({small}) (Figure 15)"
        );
    }
}
