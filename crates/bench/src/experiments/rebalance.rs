//! Online-rebalancing experiment: a moving insert hotspot versus a
//! frozen ingest-time decomposition.
//!
//! Not a paper figure — the paper partitions once ("the distribution of
//! the data is not known a priori", §4.2) — but its mutable-deployment
//! continuation: the skew that motivates adaptive decomposition at
//! ingest does not stay where it was measured. This experiment streams
//! the [`MovingHotspot`] workload (point inserts in a box that glides
//! corner-to-corner, each batch deleted again `WINDOW` steps later)
//! into a resident [`QueryEngine`] in two modes:
//!
//! * **static** — rebalancing off; the bisection computed for the base
//!   dataset serves the whole stream, and the drifting hotspot piles
//!   onto whichever ranks happen to own its current position;
//! * **rebalanced** — [`RebalancePolicy::Threshold`]: per-cell drift
//!   counters are allreduced after every update batch, and when the
//!   measured imbalance crosses the threshold the decomposition is
//!   re-bisected and **only the cells whose owner changed** migrate.
//!
//! Reported imbalance is max-over-mean of per-rank resident replica
//! counts, sampled after each step. Migrated bytes are compared against
//! what full re-shuffles at the same trigger points would have shipped
//! (the whole partition each time). The trajectory is written to
//! `BENCH_rebalance.json`.

use super::{cost_scaled, full_seconds, Scale};
use crate::report::Table;
use mvio_core::decomp::{imbalance_ratio, AdaptiveBisection, SpatialDecomposition};
use mvio_core::exchange::{serialize_record, ExchangeChunk};
use mvio_core::grid::{GridSpec, UniformGrid};
use mvio_core::Feature;
use mvio_datagen::MovingHotspot;
use mvio_geom::{Geometry, Point, Rect};
use mvio_msim::{Topology, World, WorldConfig};
use mvio_sjoin::{EngineOptions, QueryEngine, RebalancePolicy, ServeCache, Update};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tracked ceiling: with rebalancing on, the post-rebalance imbalance
/// at the end of the hotspot stream must not exceed this at any
/// measured rank count. Shared by the unit test and the CI gate (which
/// pins the ratio below), so the two can never enforce different
/// thresholds. Also the rebalance trigger threshold, so the policy is
/// asked to hold exactly the ceiling it is graded on.
pub const REBALANCED_IMBALANCE_CEILING: f64 = 1.5;

/// Tracked floor: the frozen static decomposition must end the stream
/// at least this many times more imbalanced than the rebalanced run at
/// 16 ranks — the degradation that justifies the machinery.
pub const STATIC_DEGRADATION_FLOOR: f64 = 2.0;

/// Tracked ceiling: total bytes shipped by cell-diff migration, as a
/// fraction of what full re-shuffles at the same trigger points would
/// have shipped, must stay below this. "Migrate only the diff" is the
/// point; a fraction near 1.0 would mean we rebuilt the partition.
pub const MIGRATED_FRACTION_CEILING: f64 = 0.5;

/// One measurement: one mode at one rank count.
#[derive(Debug, Clone)]
pub struct Row {
    /// Serving mode label (`static`, `rebalanced`).
    pub mode: &'static str,
    /// World size.
    pub ranks: usize,
    /// Steps in the update stream.
    pub steps: usize,
    /// Total updates applied (inserts + deletes, global).
    pub updates: u64,
    /// Replica-count imbalance after the final step.
    pub final_imbalance: f64,
    /// Worst post-step imbalance seen during the stream.
    pub peak_imbalance: f64,
    /// Rebalances that actually committed.
    pub rebalances: u64,
    /// Bytes shipped by cell-diff migration (global, all rebalances).
    pub migrated_bytes: u64,
    /// Bytes full re-shuffles at the same trigger points would have
    /// shipped: the whole resident partition, each time.
    pub reshuffle_bytes: u64,
    /// `migrated_bytes / reshuffle_bytes` (0 when nothing triggered).
    pub migrated_fraction: f64,
    /// Max-over-ranks virtual seconds for the whole update stream
    /// (full-scale equivalent).
    pub update_s: f64,
}

/// Grid resolution of the resident decomposition. Fine enough that the
/// hotspot box spans many whole cells in both axes — cell granularity
/// is what the diff migration and the re-bisection both work in.
const GRID_SIDE: u32 = 32;

/// World rectangle (anchored, so every run shares the cell tiling).
const WORLD: f64 = 100.0;

/// Uniform base features ingested before the stream starts (~2 per
/// cell). Sized so the live hotspot settles at ~20% of total weight:
/// heavy enough that a frozen decomposition visibly degrades, light
/// enough that the re-bisection's cuts stay put in cold regions and
/// the cell-diff migration stays far below a full re-shuffle.
const BASE_FEATURES: u64 = 2048;

/// Steps in the moving-hotspot stream.
const STEPS: usize = 8;

/// Point inserts per step.
const INSERTS_PER_STEP: usize = 256;

/// Steps an insert lives before the stream deletes it again.
const WINDOW: usize = 2;

/// Fraction of each world dimension the hotspot box covers: 18 units
/// ≈ 6 whole cells per axis, so the hottest single cell stays well
/// below a 64-rank per-rank mean and re-bisection has cuts available,
/// while the box is small enough to overload a frozen rank assignment.
const SPREAD: f64 = 0.18;

/// Per-destination byte cap for update routing and cell migration.
const CHUNK: u64 = 4096;

/// The moving-hotspot stream every measurement replays.
fn stream_spec() -> MovingHotspot {
    MovingHotspot {
        world: Rect::new(0.0, 0.0, WORLD, WORLD),
        steps: STEPS,
        inserts_per_step: INSERTS_PER_STEP,
        window: WINDOW,
        spread: SPREAD,
        seed: 0xD41F7,
    }
}

/// The uniform base dataset, fabricated identically on every rank.
fn base_features() -> Vec<Feature> {
    let mut rng = StdRng::seed_from_u64(0xBA5E);
    (0..BASE_FEATURES)
        .map(|i| {
            let p = Point::new(rng.gen_range(0.0..WORLD), rng.gen_range(0.0..WORLD));
            Feature::with_userdata(Geometry::Point(p), format!("base={i:05}"))
        })
        .collect()
}

/// The ingest-time decomposition: adaptive bisection balanced for the
/// base dataset (the best any one-shot partitioner can do — the drift
/// is what it cannot see).
fn base_decomposition(ranks: usize) -> (Box<dyn SpatialDecomposition>, Vec<Feature>) {
    let grid = UniformGrid::new(
        Rect::new(0.0, 0.0, WORLD, WORLD),
        GridSpec::square(GRID_SIDE),
    );
    let base = base_features();
    let mut counts = vec![0u64; grid.num_cells() as usize];
    for f in &base {
        for cell in grid.cells_overlapping(&f.geometry.envelope()) {
            counts[cell as usize] += 1;
        }
    }
    (
        Box::new(AdaptiveBisection::from_counts(grid, &counts, ranks)),
        base,
    )
}

/// Serialized wire size of this rank's resident partition — what a
/// full re-shuffle would ship from this rank.
fn partition_bytes(resident: &[(u32, Feature)]) -> u64 {
    let (mut scratch, mut out) = (Vec::new(), Vec::new());
    for (cell, f) in resident {
        serialize_record(*cell, f, &mut scratch, &mut out).expect("resident replicas serialize");
    }
    out.len() as u64
}

/// Per-rank, per-step sample returned from the simulation closure.
struct StepSample {
    owned: u64,
    rebalanced: bool,
    shipped_bytes: u64,
    partition_bytes: u64,
}

/// Replays the stream against one engine configuration and aggregates
/// the per-step samples into a row.
fn measure_one(scale: Scale, ranks: usize, mode: &'static str, policy: RebalancePolicy) -> Row {
    let nodes = ranks.div_ceil(16).max(1);
    let topo = Topology::new(nodes, ranks.div_ceil(nodes));
    let world = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let spec = stream_spec();
    let out = World::run(world, move |comm| {
        let (sd, base) = base_decomposition(comm.size());
        let owned: Vec<(u32, Feature)> = base
            .iter()
            .flat_map(|f| {
                sd.cells_for_rect_vec(&f.geometry.envelope())
                    .into_iter()
                    .map(|c| (c, f.clone()))
            })
            .filter(|(c, _)| sd.cell_to_rank(*c) == comm.rank())
            .collect();
        let opts = EngineOptions {
            chunk: ExchangeChunk::Bytes(CHUNK),
            cache: ServeCache::Off,
            rebalance: policy,
            ..Default::default()
        };
        let mut eng = QueryEngine::from_parts(comm, sd, owned, &opts);
        let mut samples = Vec::with_capacity(spec.steps);
        let start = comm.now();
        for step in spec.stream() {
            // Each rank is a frontend submitting a disjoint shard of the
            // global stream (an update must enter the system exactly
            // once; the routing exchange ships it to its owner).
            let (rank, size) = (comm.rank(), comm.size());
            let shard = move |i: &usize| i % size == rank;
            let updates: Vec<Update> = step
                .deletes
                .iter()
                .enumerate()
                .filter(|(i, _)| shard(i))
                .map(|(_, (p, id))| {
                    Update::Delete(Feature::with_userdata(Geometry::Point(*p), id.clone()))
                })
                .chain(
                    step.inserts
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| shard(i))
                        .map(|(_, (p, id))| {
                            Update::Insert(Feature::with_userdata(Geometry::Point(*p), id.clone()))
                        }),
                )
                .collect();
            eng.apply_updates(comm, &updates)
                .expect("in-bounds updates");
            let rep = eng.maybe_rebalance(comm).expect("cell spaces match");
            samples.push(StepSample {
                owned: eng.resident_replicas() as u64,
                rebalanced: rep.rebalanced,
                shipped_bytes: rep.migration.shipped_bytes,
                partition_bytes: partition_bytes(eng.resident()),
            });
        }
        (comm.now() - start, samples)
    });

    let mut peak = 0.0f64;
    let mut final_imbalance = 0.0;
    let (mut rebalances, mut migrated, mut reshuffle) = (0u64, 0u64, 0u64);
    for step in 0..STEPS {
        let loads: Vec<u64> = out.iter().map(|r| r.1[step].owned).collect();
        let imb = imbalance_ratio(&loads);
        peak = peak.max(imb);
        final_imbalance = imb;
        // `rebalanced` is collective state — identical on every rank.
        if out[0].1[step].rebalanced {
            rebalances += 1;
            migrated += out.iter().map(|r| r.1[step].shipped_bytes).sum::<u64>();
            // What a full re-shuffle at this trigger would have shipped:
            // every resident replica, on every rank.
            reshuffle += out.iter().map(|r| r.1[step].partition_bytes).sum::<u64>();
        }
    }
    let updates = (STEPS * INSERTS_PER_STEP
        + STEPS.saturating_sub(WINDOW).min(STEPS) * INSERTS_PER_STEP) as u64;
    Row {
        mode,
        ranks,
        steps: STEPS,
        updates,
        final_imbalance,
        peak_imbalance: peak,
        rebalances,
        migrated_bytes: migrated,
        reshuffle_bytes: reshuffle,
        migrated_fraction: if reshuffle > 0 {
            migrated as f64 / reshuffle as f64
        } else {
            0.0
        },
        update_s: full_seconds(scale, out.iter().map(|r| r.0).fold(0.0, f64::max)),
    }
}

/// Measures both modes at every rank count.
pub fn measure(scale: Scale, rank_counts: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &ranks in rank_counts {
        rows.push(measure_one(scale, ranks, "static", RebalancePolicy::Off));
        rows.push(measure_one(
            scale,
            ranks,
            "rebalanced",
            RebalancePolicy::Threshold(REBALANCED_IMBALANCE_CEILING),
        ));
    }
    rows
}

/// Renders the measurement rows as a JSON trajectory file body.
pub fn to_json(rows: &[Row]) -> String {
    let mut s = String::from(
        "{\n  \"experiment\": \"rebalance\",\n  \"metric\": \"replica_imbalance_ratio\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"mode\": \"{}\", \"ranks\": {}, \"steps\": {}, \"updates\": {}, \"final_imbalance\": {:.4}, \"peak_imbalance\": {:.4}, \"rebalances\": {}, \"migrated_bytes\": {}, \"reshuffle_bytes\": {}, \"migrated_fraction\": {:.4}, \"update_s\": {:.6}}}{}\n",
            r.mode,
            r.ranks,
            r.steps,
            r.updates,
            r.final_imbalance,
            r.peak_imbalance,
            r.rebalances,
            r.migrated_bytes,
            r.reshuffle_bytes,
            r.migrated_fraction,
            r.update_s,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Runs the sweep, writes `BENCH_rebalance.json`, and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let rank_counts: &[usize] = if quick { &[16] } else { &[16, 64] };
    let rows = measure(scale, rank_counts);

    let mut t = Table::new(
        format!(
            "Online rebalancing: {BASE_FEATURES} uniform base features, moving hotspot \
             ({STEPS} steps x {INSERTS_PER_STEP} inserts, {WINDOW}-step TTL), \
             frozen decomposition vs threshold-{REBALANCED_IMBALANCE_CEILING} cell-diff rebalancing"
        ),
        &[
            "ranks",
            "mode",
            "updates",
            "final imb",
            "peak imb",
            "rebalances",
            "migrated",
            "vs reshuffle",
            "update s",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.ranks.to_string(),
            r.mode.to_string(),
            r.updates.to_string(),
            format!("{:.2}", r.final_imbalance),
            format!("{:.2}", r.peak_imbalance),
            r.rebalances.to_string(),
            format!("{} B", r.migrated_bytes),
            if r.reshuffle_bytes > 0 {
                format!("{:.0}%", r.migrated_fraction * 100.0)
            } else {
                "-".to_string()
            },
            format!("{:.4}", r.update_s),
        ]);
    }
    t.note(
        "imbalance is max-over-mean of per-rank resident replica counts, sampled after each step",
    );
    t.note("answers are identical across modes (oracle-checked by tests/proptest_rebalance.rs)");
    t.note("expectation: the frozen decomposition degrades as the hotspot drifts; re-bisection holds the ceiling while shipping only owner-changed cells");
    match std::fs::write("BENCH_rebalance.json", to_json(&rows)) {
        Ok(()) => t.note("trajectory written to BENCH_rebalance.json"),
        Err(e) => t.note(format!("could not write BENCH_rebalance.json: {e}")),
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance criterion, same measurement the CI gate
    /// pins: under the moving hotspot the rebalanced engine must end
    /// within [`REBALANCED_IMBALANCE_CEILING`] at both 16 and 64 ranks
    /// while the static path degrades past
    /// [`STATIC_DEGRADATION_FLOOR`] times worse, and the cell-diff
    /// migration must ship at most [`MIGRATED_FRACTION_CEILING`] of
    /// full-reshuffle bytes.
    #[test]
    fn rebalancing_holds_the_ceiling_where_the_static_path_degrades() {
        let rows = measure(Scale::default_repro(), &[16, 64]);
        for &ranks in &[16usize, 64] {
            let stat = rows
                .iter()
                .find(|r| r.mode == "static" && r.ranks == ranks)
                .unwrap();
            let reb = rows
                .iter()
                .find(|r| r.mode == "rebalanced" && r.ranks == ranks)
                .unwrap();
            assert!(
                reb.final_imbalance <= REBALANCED_IMBALANCE_CEILING,
                "@{ranks}: rebalanced ends at {:.2}, ceiling {REBALANCED_IMBALANCE_CEILING}",
                reb.final_imbalance
            );
            assert!(
                reb.rebalances >= 1,
                "@{ranks}: drift never tripped the threshold"
            );
            assert!(
                reb.migrated_bytes > 0 && reb.migrated_fraction <= MIGRATED_FRACTION_CEILING,
                "@{ranks}: migrated {} of {} reshuffle bytes ({:.2}), ceiling {MIGRATED_FRACTION_CEILING}",
                reb.migrated_bytes,
                reb.reshuffle_bytes,
                reb.migrated_fraction
            );
            assert_eq!(stat.rebalances, 0, "@{ranks}: static mode must not migrate");
        }
        let stat16 = rows
            .iter()
            .find(|r| r.mode == "static" && r.ranks == 16)
            .unwrap();
        let reb16 = rows
            .iter()
            .find(|r| r.mode == "rebalanced" && r.ranks == 16)
            .unwrap();
        assert!(
            stat16.final_imbalance / reb16.final_imbalance >= STATIC_DEGRADATION_FLOOR,
            "static {:.2} vs rebalanced {:.2}: degradation {:.2}x under floor {STATIC_DEGRADATION_FLOOR}x",
            stat16.final_imbalance,
            reb16.final_imbalance,
            stat16.final_imbalance / reb16.final_imbalance
        );
    }
}
