//! Exchange-overlap experiment: ingest virtual time with the blocking
//! single-round all-to-all versus the chunked
//! [`ExchangePlan`](mvio_core::ExchangePlan) that overlaps each round's
//! `ialltoallv` with the serialization of the next chunk (and the
//! deserialization of the previous one).
//!
//! Not a paper figure — the paper's exchange is one blocking
//! `MPI_Alltoallv` — but the direct continuation of its overlap argument:
//! the critical path of the partitioning pipeline is the personalized
//! all-to-all, and the two-phase collective-aggregation literature in
//! PAPERS.md hides exactly this kind of transfer behind compute. The
//! workload is heavyweight polygons replicated across many grid cells, so
//! the payload volume is large relative to the (already pipelined)
//! per-object serialization — the regime where a single blocking round
//! leaves the most time on the table. Reported times are deterministic
//! virtual seconds (max over ranks); the trajectory is written to
//! `BENCH_exchange.json` so future PRs can track it.

use super::{cost_scaled, gpfs_scaled, Scale};
use crate::report::Table;
use mvio_core::decomp::DecompConfig;
use mvio_core::exchange::{ExchangeChunk, ExchangeOptions};
use mvio_core::grid::GridSpec;
use mvio_core::partition::ReadOptions;
use mvio_core::pipeline::{ingest_with_exchange, PipelineOptions};
use mvio_core::reader::WktLineParser;
use mvio_msim::{Topology, World, WorldConfig};
use mvio_pfs::SimFs;

/// Tracked floor: the chunked overlapped exchange must beat blocking
/// ingest at 16 ranks by at least this factor. Asserted by both the
/// unit test and the CI bench-regression gate, so the two can never
/// enforce different thresholds.
pub const CHUNKED_INGEST_SPEEDUP_FLOOR: f64 = 1.02;

/// One measurement: one chunk policy at one rank count.
#[derive(Debug, Clone)]
pub struct Row {
    /// Chunk policy label (`unlimited` or the byte cap).
    pub chunk: String,
    /// World size.
    pub ranks: usize,
    /// Pipelined `Alltoallv` rounds executed (max over ranks).
    pub rounds: u32,
    /// Bytes sent by the busiest rank.
    pub bytes_sent: u64,
    /// Virtual seconds of communication left exposed on the critical
    /// path (max over ranks).
    pub exposed_wait_s: f64,
    /// Max-over-ranks virtual seconds for the full ingest.
    pub ingest_s: f64,
    /// Blocking-ingest time over this ingest time (1.0 for the blocking
    /// row itself).
    pub speedup: f64,
}

/// Grid resolution: 25×25 cells over the anchored `[0,100]²` extent, so
/// one cell is exactly 4.0 units wide.
const GRID_SIDE: u32 = 25;

/// Heavyweight identical polygons, laid out for perfect balance: a
/// lattice of 500-vertex circles of radius 9.9 whose bounding boxes span
/// **exactly** 5×5 grid cells each (centers sit at `10 + 4k`, so every
/// box runs from `0.1` to `19.9` past a cell boundary), every record
/// rendered at a fixed byte width. Equal records ⇒ the file partitioner
/// hands every rank the same feature count; equal replication ⇒ every
/// rank serializes, ships and deserializes the same volume per round.
/// That isolates the overlap effect from load skew — with skewed data
/// the per-round collectives would also be measuring stragglers. Two
/// anchor points pin the global MBR to `[0,100]²`.
fn dataset_bytes(features: u64) -> Vec<u8> {
    let per_row = 21u64; // centers 10, 14, …, 90
    assert!(features <= per_row * per_row, "lattice capacity exceeded");
    let mut text = String::new();
    text.push_str("POINT (000.0000 000.0000)\tanchor-min\n");
    text.push_str("POINT (100.0000 100.0000)\tanchor-max\n");
    let verts = 500usize;
    let radius = 9.9f64;
    for i in 0..features {
        let cx = 10.0 + (i % per_row) as f64 * 4.0;
        let cy = 10.0 + (i / per_row) as f64 * 4.0;
        text.push_str("POLYGON ((");
        let mut first = String::new();
        for k in 0..verts {
            let a = k as f64 / verts as f64 * std::f64::consts::TAU;
            let coord = format!(
                "{:08.4} {:08.4}",
                cx + radius * a.cos(),
                cy + radius * a.sin()
            );
            if k == 0 {
                first = coord.clone();
            } else {
                text.push_str(", ");
            }
            text.push_str(&coord);
        }
        text.push_str(", ");
        text.push_str(&first); // close the ring
        text.push_str(&format!("))\tf{i:04}\n"));
    }
    text.into_bytes()
}

/// Workers per rank: both paths run 4 serializer lanes so the comparison
/// isolates the overlap, not the intra-rank parallelism.
const WORKERS: usize = 4;

/// Target pipelined rounds for the chunked run. Each round carries one
/// full lane group of partition chunks, so the fused path keeps the same
/// 4-lane serialization parallelism as the unfused one.
const TARGET_ROUNDS: u64 = 4;

/// Measures one full ingest of `bytes` on `ranks` ranks under `chunk`.
fn measure_one(
    scale: Scale,
    bytes: &[u8],
    ranks: usize,
    features: u64,
    chunk: ExchangeChunk,
) -> Row {
    let fs = SimFs::new(gpfs_scaled(scale));
    fs.set_active_ranks(ranks);
    fs.create("exchange.wkt", None)
        .expect("fresh fs")
        .append(bytes);
    let nodes = ranks.div_ceil(16).max(1);
    let topo = Topology::new(nodes, ranks.div_ceil(nodes));
    let world = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let ex = ExchangeOptions::with_chunk(chunk);
    // One lane group's worth of features per pipelined round.
    let feats_per_rank = features.div_ceil(ranks as u64).max(1);
    let chunk_records = (feats_per_rank / (WORKERS as u64 * TARGET_ROUNDS)).max(1) as usize;
    let out = World::run(world, move |comm| {
        let rep = ingest_with_exchange(
            comm,
            &fs,
            "exchange.wkt",
            // `None` block size = one equal split per rank: with the
            // fixed-width lattice records every rank parses the same
            // feature count.
            &ReadOptions::default(),
            &WktLineParser,
            &DecompConfig::uniform(GridSpec::square(GRID_SIDE)),
            &PipelineOptions::default()
                .with_workers(WORKERS)
                .with_partition_chunk_records(chunk_records),
            &ex,
        )
        .unwrap();
        (
            comm.now(),
            rep.exchange.rounds,
            rep.exchange.bytes_sent,
            rep.exchange.exposed_wait_s,
        )
    });
    Row {
        chunk: match chunk {
            ExchangeChunk::Unlimited => "unlimited".to_string(),
            ExchangeChunk::Bytes(b) => format!("{b}"),
            ExchangeChunk::Auto => "auto".to_string(),
        },
        ranks,
        rounds: out.iter().map(|r| r.1).max().unwrap_or(0),
        bytes_sent: out.iter().map(|r| r.2).max().unwrap_or(0),
        exposed_wait_s: out.iter().map(|r| r.3).fold(0.0, f64::max),
        ingest_s: out.iter().map(|r| r.0).fold(0.0, f64::max),
        speedup: 1.0,
    }
}

/// Measures blocking vs chunked ingest at every rank count, filling in
/// the per-rank-count speedups. The chunked run's per-destination byte
/// cap is derived from the blocking run's measured payload so each
/// destination splits into ~`TARGET_ROUNDS` (4) record-aligned rounds.
pub fn measure(scale: Scale, features: u64, rank_counts: &[usize]) -> Vec<Row> {
    let bytes = dataset_bytes(features);
    let mut rows = Vec::new();
    for &ranks in rank_counts {
        let blocking = measure_one(scale, &bytes, ranks, features, ExchangeChunk::Unlimited);
        let cap = (blocking.bytes_sent / ranks as u64 / TARGET_ROUNDS).max(1);
        let mut chunked = measure_one(scale, &bytes, ranks, features, ExchangeChunk::Bytes(cap));
        chunked.speedup = blocking.ingest_s / chunked.ingest_s;
        rows.push(blocking);
        rows.push(chunked);
    }
    rows
}

/// Renders the measurement rows as a JSON trajectory file body.
pub fn to_json(rows: &[Row]) -> String {
    let mut s = String::from(
        "{\n  \"experiment\": \"exchange\",\n  \"metric\": \"max_over_ranks_virtual_ingest_seconds\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"chunk\": \"{}\", \"ranks\": {}, \"rounds\": {}, \"bytes_sent\": {}, \"exposed_wait_s\": {:.6}, \"ingest_s\": {:.6}, \"speedup\": {:.4}}}{}\n",
            r.chunk,
            r.ranks,
            r.rounds,
            r.bytes_sent,
            r.exposed_wait_s,
            r.ingest_s,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Runs the sweep, writes `BENCH_exchange.json`, and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let rank_counts: &[usize] = if quick { &[16] } else { &[16, 64] };
    let features = if quick { 192 } else { 320 };
    let rows = measure(scale, features, rank_counts);

    let mut t = Table::new(
        format!(
            "Exchange overlap: {features} heavyweight polygons (500 verts, exact 25x replication), \
             blocking vs chunked+overlapped all-to-all (~{TARGET_ROUNDS} rounds)"
        ),
        &[
            "ranks",
            "chunk",
            "rounds",
            "sent MB",
            "exposed comm s",
            "ingest s",
            "speedup",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.ranks.to_string(),
            r.chunk.clone(),
            r.rounds.to_string(),
            format!("{:.1}", r.bytes_sent as f64 / (1 << 20) as f64),
            format!("{:.6}", r.exposed_wait_s),
            format!("{:.6}", r.ingest_s),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t.note("owned pairs are bit-identical between the two policies (asserted by the test suite)");
    t.note("expectation: chunked rounds hide the payload transfer under next-round serialization and previous-round deserialization");
    match std::fs::write("BENCH_exchange.json", to_json(&rows)) {
        Ok(()) => t.note("trajectory written to BENCH_exchange.json"),
        Err(e) => t.note(format!("could not write BENCH_exchange.json: {e}")),
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance criterion: the chunked overlapped exchange
    /// must reduce max-over-ranks virtual ingest time versus the
    /// blocking single-round protocol at 16 and 64 ranks.
    #[test]
    fn overlap_reduces_virtual_ingest_time_at_16_and_64_ranks() {
        let scale = Scale { denominator: 1000 };
        let rows = measure(scale, 320, &[16, 64]);
        for ranks in [16usize, 64] {
            let find = |chunk_is_unlimited: bool| -> &Row {
                rows.iter()
                    .find(|r| r.ranks == ranks && (r.chunk == "unlimited") == chunk_is_unlimited)
                    .unwrap()
            };
            let blocking = find(true);
            let chunked = find(false);
            assert!(chunked.rounds > 1, "{ranks} ranks: cap must multi-round");
            assert!(
                chunked.ingest_s < blocking.ingest_s,
                "{ranks} ranks: overlap must reduce ingest time \
                 ({:.6} -> {:.6})",
                blocking.ingest_s,
                chunked.ingest_s
            );
            assert!(
                chunked.exposed_wait_s < blocking.exposed_wait_s,
                "{ranks} ranks: exposed communication must shrink"
            );
        }
        // And at 16 ranks the win must be a measurable margin, not noise.
        let b16 = rows
            .iter()
            .find(|r| r.ranks == 16 && r.chunk == "unlimited")
            .unwrap();
        let c16 = rows
            .iter()
            .find(|r| r.ranks == 16 && r.chunk != "unlimited")
            .unwrap();
        let speedup = b16.ingest_s / c16.ingest_s;
        assert!(
            speedup >= CHUNKED_INGEST_SPEEDUP_FLOOR,
            "16 ranks: speedup {speedup:.3}x must be >= {CHUNKED_INGEST_SPEEDUP_FLOOR}x"
        );
    }

    #[test]
    fn json_trajectory_is_well_formed() {
        let rows = vec![Row {
            chunk: "98304".into(),
            ranks: 16,
            rounds: 6,
            bytes_sent: 1 << 20,
            exposed_wait_s: 0.001,
            ingest_s: 0.025,
            speedup: 1.15,
        }];
        let s = to_json(&rows);
        assert!(s.contains("\"experiment\": \"exchange\""));
        assert!(s.contains("\"speedup\": 1.1500"));
        assert!(!s.contains(",\n  ]"), "no trailing comma");
    }
}
