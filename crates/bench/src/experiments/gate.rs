//! Bench-regression gate: re-measures the tracked speedup ratios and
//! fails when any drops below its asserted floor.
//!
//! CI runs this (`repro -- gate`) as a dedicated job: it regenerates
//! `BENCH_decomp.json`, `BENCH_exchange.json` and `BENCH_io.json`
//! (uploaded as artifacts) and exits nonzero on a regression, so a PR
//! that silently loses one of the asserted wins fails before review.
//! The measurement parameters are pinned to the same configurations the
//! unit-test floors use — the gate deliberately ignores `--scale` and
//! `--quick`, because a floor is only meaningful at the configuration it
//! was asserted under. All quantities are deterministic virtual times,
//! so there is no run-to-run noise to filter.

use super::{decomp, exchange, io, Scale};
use crate::report::Table;

/// One tracked ratio with its floor.
#[derive(Debug, Clone)]
pub struct Check {
    /// Which tracked ratio this is.
    pub name: &'static str,
    /// Measured value.
    pub value: f64,
    /// Asserted floor the value must meet or beat.
    pub floor: f64,
}

impl Check {
    /// Whether the measured value clears the floor.
    pub fn passes(&self) -> bool {
        self.value >= self.floor
    }
}

/// Runs all tracked measurements and returns the checks. Also rewrites
/// the three `BENCH_*.json` trajectory files from the measured rows.
pub fn checks() -> Vec<Check> {
    let mut out = Vec::new();

    // Decomposition: adaptive must cut clustered imbalance >= 2x vs the
    // uniform grid at 16 ranks (same parameters as the unit-test floor).
    let rows = decomp::measure(
        Scale {
            denominator: 10_000,
        },
        3_000,
        &[16],
    );
    let find = |input: &str, policy: &str| -> f64 {
        rows.iter()
            .find(|r| r.input == input && r.decomp == policy)
            .expect("measured row")
            .imbalance
    };
    out.push(Check {
        name: "decomp: uniform/adaptive clustered imbalance @16 ranks",
        value: find("clustered", "uniform") / find("clustered", "adaptive"),
        floor: 2.0,
    });
    let _ = std::fs::write("BENCH_decomp.json", decomp::to_json(&rows));

    // Exchange: the chunked overlapped plan must beat blocking ingest by
    // >= 1.02x at 16 ranks.
    let rows = exchange::measure(Scale { denominator: 1000 }, 320, &[16, 64]);
    let ingest = |ranks: usize, unlimited: bool| -> f64 {
        rows.iter()
            .find(|r| r.ranks == ranks && (r.chunk == "unlimited") == unlimited)
            .expect("measured row")
            .ingest_s
    };
    out.push(Check {
        name: "exchange: blocking/chunked ingest @16 ranks",
        value: ingest(16, true) / ingest(16, false),
        floor: 1.02,
    });
    let _ = std::fs::write("BENCH_exchange.json", exchange::to_json(&rows));

    // Collective I/O: widening the write aggregators must beat a single
    // aggregator by >= 1.2x at 16 ranks.
    let rows = io::measure(Scale { denominator: 1000 }, 600, &[16], &[1, 4]);
    out.push(Check {
        name: "io: 1-agg/best-agg snapshot write @16 ranks",
        value: io::best_write_speedup(&rows, 16),
        floor: 1.2,
    });
    let _ = std::fs::write("BENCH_io.json", io::to_json(&rows));

    out
}

/// Runs the gate; the rendered table plus `true` when every check
/// cleared its floor.
pub fn run() -> (String, bool) {
    let checks = checks();
    let mut t = Table::new(
        "Bench-regression gate: tracked speedup ratios vs asserted floors",
        &["check", "measured", "floor", "status"],
    );
    let mut pass = true;
    for c in &checks {
        pass &= c.passes();
        t.row(vec![
            c.name.to_string(),
            format!("{:.3}x", c.value),
            format!("{:.2}x", c.floor),
            if c.passes() { "ok" } else { "REGRESSION" }.to_string(),
        ]);
    }
    t.note("BENCH_decomp.json / BENCH_exchange.json / BENCH_io.json rewritten from these rows");
    if !pass {
        t.note("at least one tracked ratio fell below its floor — failing the gate");
    }
    (t.render(), pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_floor_logic() {
        let c = Check {
            name: "x",
            value: 2.5,
            floor: 2.0,
        };
        assert!(c.passes());
        let c = Check {
            name: "x",
            value: 1.9,
            floor: 2.0,
        };
        assert!(!c.passes());
    }
}
