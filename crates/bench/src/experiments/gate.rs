//! Bench-regression gate: re-measures the tracked speedup ratios and
//! fails when any drops below its asserted floor.
//!
//! CI runs this (`repro -- gate`) as a dedicated job: it writes the
//! measured ratios to `BENCH_gate.json` (uploaded as an artifact next
//! to the full trajectories the
//! `decomp`/`exchange`/`io`/`serve`/`refine`/`rebalance` experiments
//! regenerate)
//! and exits nonzero on a regression, so a PR that silently
//! loses one of the asserted wins fails before review. The gate's
//! measurement parameters are pinned to the same configurations the
//! unit-test floors use — smaller sweeps than the full experiments, and
//! deliberately ignoring `--scale` and `--quick`, because a floor is
//! only meaningful at the configuration it was asserted under; that is
//! also why it does NOT touch the experiments' own `BENCH_*.json`
//! trajectory files. All quantities are deterministic virtual times, so
//! there is no run-to-run noise to filter.

use super::{decomp, exchange, io, rebalance, refine, serve, Scale};
use crate::report::Table;

/// One tracked ratio with its floor.
#[derive(Debug, Clone)]
pub struct Check {
    /// Which tracked ratio this is.
    pub name: &'static str,
    /// Measured value.
    pub value: f64,
    /// Asserted floor the value must meet or beat.
    pub floor: f64,
}

impl Check {
    /// Whether the measured value clears the floor.
    pub fn passes(&self) -> bool {
        self.value >= self.floor
    }
}

/// Renders the checks as a JSON trajectory body, mirroring the
/// experiments' `to_json` shape.
pub fn to_json(checks: &[Check]) -> String {
    let mut s = String::from(
        "{\n  \"experiment\": \"gate\",\n  \"metric\": \"tracked_speedup_ratio\",\n  \"rows\": [\n",
    );
    for (i, c) in checks.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"check\": \"{}\", \"measured\": {:.4}, \"floor\": {:.4}, \"pass\": {}}}{}\n",
            c.name,
            c.value,
            c.floor,
            c.passes(),
            if i + 1 < checks.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Runs all tracked measurements and returns the checks. Deliberately
/// leaves the experiments' `BENCH_*.json` files alone: the gate's
/// pinned-floor sweeps are smaller than the full experiments', and
/// overwriting the full trajectories with them would silently drop rows.
pub fn checks() -> Vec<Check> {
    let mut out = Vec::new();

    // Decomposition: adaptive must cut clustered imbalance vs the
    // uniform grid at 16 ranks (same parameters as the unit-test floor).
    let rows = decomp::measure(
        Scale {
            denominator: 10_000,
        },
        3_000,
        &[16],
    );
    let find = |input: &str, policy: &str| -> f64 {
        rows.iter()
            .find(|r| r.input == input && r.decomp == policy)
            .expect("measured row")
            .imbalance
    };
    out.push(Check {
        name: "decomp: uniform/adaptive clustered imbalance @16 ranks",
        value: find("clustered", "uniform") / find("clustered", "adaptive"),
        floor: decomp::CLUSTERED_IMBALANCE_FLOOR,
    });

    // Exchange: the chunked overlapped plan must beat blocking ingest
    // at 16 ranks.
    let rows = exchange::measure(Scale { denominator: 1000 }, 320, &[16, 64]);
    let ingest = |ranks: usize, unlimited: bool| -> f64 {
        rows.iter()
            .find(|r| r.ranks == ranks && (r.chunk == "unlimited") == unlimited)
            .expect("measured row")
            .ingest_s
    };
    out.push(Check {
        name: "exchange: blocking/chunked ingest @16 ranks",
        value: ingest(16, true) / ingest(16, false),
        floor: exchange::CHUNKED_INGEST_SPEEDUP_FLOOR,
    });

    // Collective I/O: widening the write aggregators must beat a single
    // aggregator at 16 ranks.
    let rows = io::measure(Scale { denominator: 1000 }, 600, &[16], &[1, 4]);
    out.push(Check {
        name: "io: 1-agg/best-agg snapshot write @16 ranks",
        value: io::best_write_speedup(&rows, 16),
        floor: io::AGGREGATOR_WRITE_SPEEDUP_FLOOR,
    });

    // Serving: batched query serving must beat the naive
    // query-per-call loop in global qps at 64 ranks (same parameters
    // as the unit-test floor).
    let rows = serve::measure(Scale { denominator: 1000 }, &[64]);
    let qps = |mode: &str| -> f64 {
        rows.iter()
            .find(|r| r.mode == mode && r.ranks == 64)
            .expect("measured row")
            .qps
    };
    out.push(Check {
        name: "serve: batched/naive qps @64 ranks",
        value: qps("batched") / qps("naive"),
        floor: serve::BATCHED_SERVE_SPEEDUP_FLOOR,
    });

    // Read/refine: the zero-copy frame path must beat the owned
    // deserializing read in end-to-end snapshot-join time at 64 ranks
    // (best input shape; same parameters as the unit-test floor).
    let rows = refine::measure(Scale { denominator: 1000 }, &[64]);
    out.push(Check {
        name: "refine: owned/zerocopy snapshot-join time @64 ranks",
        value: refine::best_speedup(&rows, 64),
        floor: refine::BATCHED_REFINE_SPEEDUP_FLOOR,
    });

    // Rebalancing: under the moving hotspot, the frozen static
    // decomposition must end the stream at least the floor times more
    // imbalanced than the threshold-rebalanced engine at 16 ranks
    // (same parameters as the unit-test floor, which also pins the
    // absolute imbalance ceiling and the migrated-bytes fraction).
    let rows = rebalance::measure(Scale { denominator: 1000 }, &[16]);
    let imb = |mode: &str| -> f64 {
        rows.iter()
            .find(|r| r.mode == mode && r.ranks == 16)
            .expect("measured row")
            .final_imbalance
    };
    out.push(Check {
        name: "rebalance: static/rebalanced final imbalance @16 ranks",
        value: imb("static") / imb("rebalanced"),
        floor: rebalance::STATIC_DEGRADATION_FLOOR,
    });

    out
}

/// Runs the gate; the rendered table plus `true` when every check
/// cleared its floor and `BENCH_gate.json` was written.
pub fn run() -> (String, bool) {
    let checks = checks();
    let mut t = Table::new(
        "Bench-regression gate: tracked speedup ratios vs asserted floors",
        &["check", "measured", "floor", "status"],
    );
    let mut pass = true;
    for c in &checks {
        pass &= c.passes();
        t.row(vec![
            c.name.to_string(),
            format!("{:.3}x", c.value),
            format!("{:.2}x", c.floor),
            if c.passes() { "ok" } else { "REGRESSION" }.to_string(),
        ]);
    }
    match std::fs::write("BENCH_gate.json", to_json(&checks)) {
        Ok(()) => t.note("gate measurements written to BENCH_gate.json (pinned floor configurations; the full trajectories are written by the decomp/exchange/io/serve/refine/rebalance experiments)"),
        Err(e) => {
            // Failing here keeps CI from uploading a stale checked-in
            // copy as if it were this run's measurements.
            pass = false;
            t.note(format!("could not write BENCH_gate.json: {e} — failing the gate"));
        }
    }
    if !pass {
        t.note("at least one check failed — failing the gate");
    }
    (t.render(), pass)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_floor_logic() {
        let c = Check {
            name: "x",
            value: 2.5,
            floor: 2.0,
        };
        assert!(c.passes());
        let c = Check {
            name: "x",
            value: 1.9,
            floor: 2.0,
        };
        assert!(!c.passes());
    }
}
