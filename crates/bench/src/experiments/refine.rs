//! Read/refine hot-path experiment: the snapshot-backed distributed
//! join with the owned deserializing read path versus the zero-copy
//! frame path (`MVIO_ZEROCOPY`), on a clustered and a lattice layer
//! pair.
//!
//! Not a paper figure — the paper's Figure 17 measures the whole text
//! pipeline — but the refine-side continuation of its §4.3 framing:
//! once layers are resident as binary snapshots, the join's read phase
//! is dominated by per-record deserialization (the calibrated ≈ 12 µs
//! GEOS-object cost the cost model charges per received geometry). The
//! zero-copy path keeps received records as validated wire frames and
//! decodes them in place during refine, charging only the byte-copy
//! validation scan, so identical answers arrive measurably earlier.
//! Reported times are deterministic virtual seconds (max over ranks);
//! the trajectory is written to `BENCH_refine.json`, with the peak
//! resident geometry-allocation counts alongside, so future PRs can
//! track both the time ratio and the memory behavior.

use super::{cost_scaled, full_seconds, gpfs_scaled, Scale};
use crate::report::Table;
use mvio_core::decomp::DecompPolicy;
use mvio_core::decomp::{SpatialDecomposition, UniformDecomposition};
use mvio_core::exchange::{ExchangeChunk, ZeroCopy};
use mvio_core::grid::{CellMap, GridSpec, UniformGrid};
use mvio_core::snapshot::{self, SnapshotReadOptions, SnapshotWriteOptions};
use mvio_core::Feature;
use mvio_datagen::SpatialDistribution;
use mvio_geom::{Geometry, Point, Polygon, Rect};
use mvio_msim::{Topology, World, WorldConfig};
use mvio_pfs::SimFs;
use mvio_sjoin::{spatial_join_snapshots, SnapshotJoinOptions};
use std::sync::Arc;

/// Tracked floor: the zero-copy frame path must beat the owned
/// deserializing path at 64 ranks by at least this factor in end-to-end
/// snapshot-join virtual time (best of the two input shapes). Asserted
/// by both the unit test and the CI bench-regression gate, so the two
/// can never enforce different thresholds.
pub const BATCHED_REFINE_SPEEDUP_FLOOR: f64 = 1.2;

/// One measurement: one read path on one input shape at one rank count.
#[derive(Debug, Clone)]
pub struct Row {
    /// Input shape (`clustered`, `lattice`).
    pub input: &'static str,
    /// Read path (`owned`, `zerocopy`).
    pub mode: &'static str,
    /// World size.
    pub ranks: usize,
    /// Result pairs found (global).
    pub pairs: u64,
    /// MBR-filter candidates (global).
    pub filter_candidates: u64,
    /// Exact refine tests performed (global).
    pub refine_tests: u64,
    /// Max-over-ranks virtual seconds for the whole join (full-scale
    /// equivalent).
    pub join_s: f64,
    /// Max-over-ranks peak resident geometry-payload allocations during
    /// the join phase (owned: every received record materialized up
    /// front; zerocopy: the refine arena's recycled scratch peak).
    pub max_resident_allocs: u64,
    /// Owned-path time over this mode's time (1.0 for the owned row).
    pub speedup: f64,
}

/// Features per layer.
const FEATURES: usize = 1500;

/// Grid resolution of the shared snapshot decomposition.
const GRID_SIDE: u32 = 16;

/// Per-destination byte cap for the routing exchange, small enough that
/// the reads actually pipeline through multiple rounds.
const CHUNK: u64 = 8192;

/// An axis-aligned box feature.
fn boxed(x0: f64, y0: f64, x1: f64, y1: f64, tag: String) -> Feature {
    Feature::with_userdata(
        Geometry::Polygon(
            Polygon::from_coords(
                vec![
                    Point::new(x0, y0),
                    Point::new(x1, y0),
                    Point::new(x1, y1),
                    Point::new(x0, y1),
                ],
                vec![],
            )
            .expect("axis-aligned box valid"),
        ),
        tag,
    )
}

/// Clustered layer over an anchored `[0,100]²` world: mostly points,
/// with a box minority so the join finds real overlaps inside the
/// clusters without refine swamping the read phase (a refine test costs
/// ≈ 12 owned deserializations under the calibrated model).
fn clustered_layer(salt: u64) -> Vec<Feature> {
    let world = Rect::new(0.0, 0.0, 100.0, 100.0);
    let dist = SpatialDistribution::Clustered {
        clusters: 12,
        skew: 1.0,
        spread: 0.05,
    };
    let mut sampler = dist.sampler(world, 0xDA7A_0000 ^ salt);
    let mut out = Vec::with_capacity(FEATURES + 2);
    out.push(Feature::with_userdata(
        Geometry::Point(Point::new(0.0, 0.0)),
        format!("s{salt}-anchor-min"),
    ));
    out.push(Feature::with_userdata(
        Geometry::Point(Point::new(100.0, 100.0)),
        format!("s{salt}-anchor-max"),
    ));
    for i in 0..FEATURES {
        let c = sampler.next_center();
        if i % 8 == 0 {
            let h = 0.2;
            let (x0, y0) = ((c.x - h).max(0.0), (c.y - h).max(0.0));
            let x1 = (c.x + h).min(100.0).max(x0 + 1e-6);
            let y1 = (c.y + h).min(100.0).max(y0 + 1e-6);
            out.push(boxed(x0, y0, x1, y1, format!("s{salt}-b{i:05}")));
        } else {
            out.push(Feature::with_userdata(
                Geometry::Point(Point::new(c.x, c.y)),
                format!("s{salt}-p{i:05}"),
            ));
        }
    }
    out
}

/// Lattice layer: boxes centered on a regular grid of nodes. The right
/// layer (`salt != 0`) is shifted so only every eighth node's box
/// overlaps its left twin — a sparse, perfectly regular join whose
/// refine cost stays a fraction of the read cost.
fn lattice_layer(salt: u64) -> Vec<Feature> {
    let side = (FEATURES as f64).sqrt().ceil() as usize;
    let mut out = Vec::with_capacity(FEATURES);
    for i in 0..FEATURES {
        let (gx, gy) = ((i % side) as f64, (i / side) as f64);
        let shift = if salt == 0 {
            0.0
        } else if i % 8 == 0 {
            0.3
        } else {
            0.5
        };
        let (cx, cy) = (gx + shift, gy);
        out.push(boxed(
            cx - 0.2,
            cy - 0.2,
            cx + 0.2,
            cy + 0.2,
            format!("s{salt}-n{i:05}"),
        ));
    }
    out
}

fn layers(input: &str) -> (Vec<Feature>, Vec<Feature>) {
    match input {
        "clustered" => (clustered_layer(0), clustered_layer(1)),
        "lattice" => (lattice_layer(0), lattice_layer(1)),
        other => panic!("unknown refine input {other}"),
    }
}

/// Bounds covering both layers (identical on every rank: the layer
/// generators are deterministic).
fn bounds_of(left: &[Feature], right: &[Feature]) -> Rect {
    left.iter()
        .chain(right)
        .fold(Rect::EMPTY, |a, f| a.union(&f.geometry.envelope()))
}

/// Writes the two layers as snapshots on a fresh filesystem at the
/// given world size, under a shared uniform decomposition.
fn install_snapshots(scale: Scale, input: &'static str, ranks: usize) -> Arc<SimFs> {
    let fs = SimFs::new(gpfs_scaled(scale));
    fs.set_active_ranks(ranks);
    let nodes = ranks.div_ceil(16).max(1);
    let topo = Topology::new(nodes, ranks.div_ceil(nodes));
    let world = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    {
        let fs = Arc::clone(&fs);
        World::run(world, move |comm| {
            let (left, right) = layers(input);
            let grid = UniformGrid::new(bounds_of(&left, &right), GridSpec::square(GRID_SIDE));
            let d = UniformDecomposition::new(grid, CellMap::RoundRobin, comm.size());
            for (path, layer) in [("left.snap", &left), ("right.snap", &right)] {
                let mut pairs: Vec<(u32, Feature)> = Vec::new();
                for f in layer {
                    for cell in d.cells_for_rect_vec(&f.geometry.envelope()) {
                        if d.cell_to_rank(cell) == comm.rank() {
                            pairs.push((cell, f.clone()));
                        }
                    }
                }
                snapshot::write_partitioned(
                    comm,
                    &fs,
                    path,
                    &pairs,
                    &d,
                    &SnapshotWriteOptions::default(),
                )
                .unwrap();
            }
        });
    }
    fs
}

/// Times one snapshot join on the installed layers. Returns the row
/// with `speedup` unfilled (1.0).
fn measure_one(
    scale: Scale,
    fs: &Arc<SimFs>,
    input: &'static str,
    ranks: usize,
    mode: &'static str,
    zerocopy: ZeroCopy,
) -> Row {
    let nodes = ranks.div_ceil(16).max(1);
    let topo = Topology::new(nodes, ranks.div_ceil(nodes));
    let world = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let fs = Arc::clone(fs);
    let out = World::run(world, move |comm| {
        let opts = SnapshotJoinOptions {
            decomp: DecompPolicy::Uniform(CellMap::RoundRobin),
            read: SnapshotReadOptions::default().with_chunk(ExchangeChunk::Bytes(CHUNK)),
            zerocopy,
        };
        let t = comm.now();
        let rep = spatial_join_snapshots(comm, &fs, "left.snap", "right.snap", &opts).unwrap();
        (
            comm.now() - t,
            rep.pairs.len() as u64,
            rep.filter_candidates,
            rep.refine_tests,
            rep.max_resident_allocs,
        )
    });
    Row {
        input,
        mode,
        ranks,
        pairs: out.iter().map(|r| r.1).sum(),
        filter_candidates: out.iter().map(|r| r.2).sum(),
        refine_tests: out.iter().map(|r| r.3).sum(),
        join_s: full_seconds(scale, out.iter().map(|r| r.0).fold(0.0, f64::max)),
        max_resident_allocs: out.iter().map(|r| r.4).max().unwrap_or(0),
        speedup: 1.0,
    }
}

/// Measures both read paths on both input shapes at every rank count,
/// filling in the owned-over-zerocopy time ratios. The answers are
/// bit-identical across modes (enforced here, and property-tested in
/// `tests/proptest_snapshot.rs`), so the ratio isolates the read path.
pub fn measure(scale: Scale, rank_counts: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for input in ["clustered", "lattice"] {
        for &ranks in rank_counts {
            // One fresh filesystem per measurement: the simulated fs
            // carries server-side state across worlds, so re-reading the
            // same instance would bias whichever mode runs second. The
            // layer generators are deterministic, so the two installs
            // hold bit-identical files.
            let fs = install_snapshots(scale, input, ranks);
            let owned = measure_one(scale, &fs, input, ranks, "owned", ZeroCopy::Off);
            let fs = install_snapshots(scale, input, ranks);
            let mut zc = measure_one(scale, &fs, input, ranks, "zerocopy", ZeroCopy::On);
            assert_eq!(
                (zc.pairs, zc.filter_candidates, zc.refine_tests),
                (owned.pairs, owned.filter_candidates, owned.refine_tests),
                "read paths must agree on the {input} join at {ranks} ranks"
            );
            zc.speedup = owned.join_s / zc.join_s.max(f64::MIN_POSITIVE);
            rows.push(owned);
            rows.push(zc);
        }
    }
    rows
}

/// Renders the measurement rows as a JSON trajectory file body.
pub fn to_json(rows: &[Row]) -> String {
    let mut s = String::from(
        "{\n  \"experiment\": \"refine\",\n  \"metric\": \"snapshot_join_virtual_seconds\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"input\": \"{}\", \"mode\": \"{}\", \"ranks\": {}, \"pairs\": {}, \"filter_candidates\": {}, \"refine_tests\": {}, \"join_s\": {:.6}, \"max_resident_allocs\": {}, \"speedup\": {:.4}}}{}\n",
            r.input,
            r.mode,
            r.ranks,
            r.pairs,
            r.filter_candidates,
            r.refine_tests,
            r.join_s,
            r.max_resident_allocs,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// The gate's tracked value: the best owned-over-zerocopy ratio across
/// the input shapes at the given rank count (both shapes are measured
/// and reported; the floor pins the stronger, stabler one).
pub fn best_speedup(rows: &[Row], ranks: usize) -> f64 {
    rows.iter()
        .filter(|r| r.ranks == ranks && r.mode == "zerocopy")
        .map(|r| r.speedup)
        .fold(0.0, f64::max)
}

/// Runs the sweep, writes `BENCH_refine.json`, and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let rank_counts: &[usize] = if quick { &[16] } else { &[16, 64] };
    let rows = measure(scale, rank_counts);

    let mut t = Table::new(
        format!(
            "Read/refine hot path: snapshot join of two {FEATURES}-feature layers, owned \
             deserializing read vs zero-copy wire frames (MVIO_ZEROCOPY)"
        ),
        &[
            "input",
            "ranks",
            "mode",
            "pairs",
            "candidates",
            "refines",
            "join s",
            "peak allocs",
            "speedup",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.input.to_string(),
            r.ranks.to_string(),
            r.mode.to_string(),
            r.pairs.to_string(),
            r.filter_candidates.to_string(),
            r.refine_tests.to_string(),
            format!("{:.4}", r.join_s),
            r.max_resident_allocs.to_string(),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t.note("answers are bit-identical across modes (asserted here; property-tested in tests/proptest_snapshot.rs)");
    t.note("expectation: received records stay as validated wire frames, so the ~12 µs/record deserialization drops to a byte-copy scan");
    match std::fs::write("BENCH_refine.json", to_json(&rows)) {
        Ok(()) => t.note("trajectory written to BENCH_refine.json"),
        Err(e) => t.note(format!("could not write BENCH_refine.json: {e}")),
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance criterion: the zero-copy read path must beat
    /// the owned path by at least [`BATCHED_REFINE_SPEEDUP_FLOOR`] in
    /// end-to-end snapshot-join virtual time at 64 ranks (the same
    /// measurement the CI gate pins), while actually finding pairs and
    /// keeping its peak resident allocations below the owned path's.
    #[test]
    fn zerocopy_beats_owned_at_64_ranks() {
        let rows = measure(Scale::default_repro(), &[64]);
        let best = best_speedup(&rows, 64);
        assert!(
            best >= BATCHED_REFINE_SPEEDUP_FLOOR,
            "best zerocopy speedup {best:.2}x under floor {BATCHED_REFINE_SPEEDUP_FLOOR:.2}x: {rows:?}"
        );
        for zc in rows.iter().filter(|r| r.mode == "zerocopy") {
            let owned = rows
                .iter()
                .find(|r| r.mode == "owned" && r.input == zc.input && r.ranks == zc.ranks)
                .unwrap();
            assert!(zc.pairs > 0, "{} join found nothing", zc.input);
            assert!(
                zc.max_resident_allocs <= owned.max_resident_allocs,
                "{}: zerocopy peak {} should not exceed owned peak {}",
                zc.input,
                zc.max_resident_allocs,
                owned.max_resident_allocs
            );
        }
    }
}
