//! Figure 10: message-based vs overlap file partitioning, Lakes (9 GB),
//! block 32 MB, three stripe counts.

use super::{cost_scaled, install_dataset, lustre_scaled, spec, Scale};
use crate::report::{human_bytes, Table};
use mvio_core::partition::{read_partition_text, BoundaryStrategy, ReadOptions};
use mvio_msim::{AccessLevel, Topology, World, WorldConfig};
use mvio_pfs::{SimFs, StripeSpec};

/// Stripe counts compared in the paper's figure.
pub const OST_COUNTS: [u32; 3] = [16, 32, 64];

/// Times one partitioned read with the given boundary strategy. Returns
/// max-over-ranks virtual seconds.
pub fn partition_time(
    scale: Scale,
    nodes: usize,
    ppn: usize,
    osts: u32,
    strategy: BoundaryStrategy,
) -> f64 {
    let ds = spec("Lakes");
    // Floors keep the halo above the largest scaled lake record (a
    // 1024-vertex WKT polygon is ~45 KB) while preserving the paper's
    // block:halo ratio at the default scale.
    let block = scale.block(32 << 20).max(128 << 10);
    let halo = scale.block(11 << 20).max(64 << 10); // the paper's 11 MB max geometry
    let fs = SimFs::new(lustre_scaled(scale));
    let topo = Topology::new(nodes, ppn);
    fs.set_active_ranks(topo.ranks());
    install_dataset(
        &fs,
        &ds,
        scale,
        "lakes.wkt",
        Some(StripeSpec::new(osts, block)),
    );
    let opts = ReadOptions::default()
        .with_level(AccessLevel::Level1)
        .with_strategy(strategy)
        .with_block_size(block)
        .with_max_geometry_bytes(halo);
    let cfg = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let times = World::run(cfg, |comm| {
        read_partition_text(comm, &fs, "lakes.wkt", &opts).unwrap();
        comm.now()
    });
    times.into_iter().fold(0.0, f64::max)
}

/// Runs the Figure 10 comparison and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let nodes_sweep: Vec<usize> = if quick { vec![4] } else { vec![4, 8, 16, 32] };
    let mut t = Table::new(
        format!(
            "Figure 10: message vs overlap partitioning, Lakes ({} scaled 1/{}), block 32 MB",
            human_bytes(spec("Lakes").paper_bytes),
            scale.denominator
        ),
        &[
            "OST",
            "nodes",
            "message (s, full-scale)",
            "overlap (s, full-scale)",
            "winner",
        ],
    );
    for &osts in &OST_COUNTS {
        for &nodes in &nodes_sweep {
            let msg = partition_time(scale, nodes, 16, osts, BoundaryStrategy::Message);
            let ovl = partition_time(scale, nodes, 16, osts, BoundaryStrategy::Overlap);
            let d = scale.denominator as f64;
            t.row(vec![
                osts.to_string(),
                nodes.to_string(),
                format!("{:.2}", msg * d),
                format!("{:.2}", ovl * d),
                if msg <= ovl {
                    "message".into()
                } else {
                    "overlap".into()
                },
            ]);
        }
    }
    t.note("paper: message-based wins — the 11 MB halo re-read per process outweighs exchanging the missing coordinates");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_beats_overlap() {
        let scale = Scale {
            denominator: 20_000,
        };
        let msg = partition_time(scale, 4, 4, 16, BoundaryStrategy::Message);
        let ovl = partition_time(scale, 4, 4, 16, BoundaryStrategy::Overlap);
        assert!(
            msg < ovl,
            "message strategy ({msg}s) must beat overlap ({ovl}s), as in Figure 10"
        );
    }

    #[test]
    fn render_declares_winners() {
        let s = run(
            Scale {
                denominator: 100_000,
            },
            true,
        );
        assert!(s.contains("winner"));
        assert!(s.contains("message"));
    }
}
