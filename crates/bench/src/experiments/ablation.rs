//! Ablation studies of the library's design choices — beyond the paper's
//! figures, these quantify the decisions its text argues qualitatively:
//!
//! * **cell→rank maps** — round-robin declustering (the paper's choice)
//!   vs contiguous blocks (Figure 5a's skew-prone layout) vs the
//!   locality-aware Hilbert map the paper lists as future work;
//! * **sliding-window exchange** — the memory-bounded multi-phase
//!   exchange (§4.2.3 "Handling large data exchange") vs single-shot;
//! * **block-size granularity** — the coarse-vs-fine trade-off of
//!   §5.1.1 ("grain size also impacts load balancing").

use super::{cost_scaled, gpfs_scaled, install_dataset, lustre_scaled, spec, Scale};
use crate::report::Table;
use mvio_core::grid::{CellMap, GridSpec};
use mvio_core::partition::{read_partition_text, ReadOptions};
use mvio_msim::{AccessLevel, Topology, World, WorldConfig};
use mvio_pfs::{SimFs, StripeSpec};
use mvio_sjoin::{spatial_join, JoinOptions, PhaseBreakdown};

fn join_with(scale: Scale, procs: usize, cells: u32, map: CellMap, windows: u32) -> PhaseBreakdown {
    let fs = SimFs::new(gpfs_scaled(scale));
    let nodes = procs.div_ceil(20).max(1);
    let topo = Topology::new(nodes, procs.div_ceil(nodes));
    fs.set_active_ranks(topo.ranks());
    install_dataset(&fs, &spec("Lakes"), scale, "left.wkt", None);
    install_dataset(&fs, &spec("Cemetery"), scale, "right.wkt", None);
    let opts = JoinOptions {
        grid: GridSpec::square(cells),
        decomp: mvio_core::decomp::DecompPolicy::Uniform(map),
        read: ReadOptions::default().with_block_size(64 << 10),
        windows,
        ..Default::default()
    };
    let cfg = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let out = World::run(cfg, move |comm| {
        spatial_join(comm, &fs, "left.wkt", "right.wkt", &opts)
            .unwrap()
            .breakdown
    });
    out[0]
}

/// Ablation: cell→rank assignment policies on the Lakes ⋈ Cemetery join.
pub fn maps(scale: Scale, quick: bool) -> String {
    let procs = if quick { 8 } else { 40 };
    let cells = if quick { 8u32 } else { 24 };
    let mut t = Table::new(
        format!(
            "Ablation: cell-to-rank maps, Lakes ⋈ Cemetery, {procs} procs, {cells}x{cells} cells"
        ),
        &["map", "partition (s)", "comm (s)", "join (s)", "total (s)"],
    );
    let d = scale.denominator as f64;
    for (name, map) in [
        ("round-robin", CellMap::RoundRobin),
        ("block", CellMap::Block),
        ("hilbert", CellMap::hilbert(GridSpec::square(cells))),
    ] {
        let b = join_with(scale, procs, cells, map, 1);
        t.row(vec![
            name.to_string(),
            format!("{:.2}", b.partition * d),
            format!("{:.2}", b.communication * d),
            format!("{:.2}", b.compute * d),
            format!("{:.2}", b.total * d),
        ]);
    }
    t.note("round-robin declusters hotspots (the paper's choice); block keeps locality but concentrates load; hilbert balances both");
    t.render()
}

/// Ablation: sliding-window phases on the exchange.
pub fn windows(scale: Scale, quick: bool) -> String {
    let procs = if quick { 8 } else { 40 };
    let cells = if quick { 8u32 } else { 24 };
    let mut t = Table::new(
        format!("Ablation: sliding-window exchange phases, Lakes ⋈ Cemetery, {procs} procs"),
        &["windows", "comm (s)", "total (s)"],
    );
    let d = scale.denominator as f64;
    for w in [1u32, 2, 4, 8] {
        let b = join_with(scale, procs, cells, CellMap::RoundRobin, w);
        t.row(vec![
            w.to_string(),
            format!("{:.2}", b.communication * d),
            format!("{:.2}", b.total * d),
        ]);
    }
    t.note(
        "more windows bound peak exchange memory at the cost of extra collective rounds (§4.2.3)",
    );
    t.render()
}

/// Ablation: block-size granularity for partitioned reads (paper §5.1.1).
pub fn blocks(scale: Scale, quick: bool) -> String {
    let ds = spec("Roads");
    let nodes = if quick { 2 } else { 8 };
    let mut t = Table::new(
        format!("Ablation: block-size granularity, Roads Level-0 read, {nodes} nodes x 16"),
        &[
            "block (full-scale)",
            "iterations",
            "read time (s, full-scale)",
        ],
    );
    let d = scale.denominator as f64;
    for full_block in [8u64 << 20, 16 << 20, 32 << 20, 64 << 20, 128 << 20] {
        let block = scale.block(full_block).max(16 << 10);
        let fs = SimFs::new(lustre_scaled(scale));
        let topo = Topology::new(nodes, 16);
        fs.set_active_ranks(topo.ranks());
        let bytes = install_dataset(
            &fs,
            &ds,
            scale,
            "roads.wkt",
            Some(StripeSpec::new(32, block)),
        );
        let iters = bytes.div_ceil(topo.ranks() as u64 * block);
        let opts = ReadOptions::default()
            .with_level(AccessLevel::Level0)
            .with_block_size(block)
            .with_max_geometry_bytes(block.max(16 << 10));
        let cfg = WorldConfig::new(topo).with_cost(cost_scaled(scale));
        let times = World::run(cfg, |comm| {
            read_partition_text(comm, &fs, "roads.wkt", &opts).unwrap();
            comm.now()
        });
        let time = times.into_iter().fold(0.0, f64::max);
        t.row(vec![
            crate::report::human_bytes(full_block),
            iters.to_string(),
            format!("{:.2}", time * d),
        ]);
    }
    t.note("paper §5.1.1: fewer iterations (larger blocks) means fewer file accesses and ring messages; compute-bound apps still want fine grain for balance");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_maps_produce_identical_join_results() {
        // Breakdown aside, the *answer* must not depend on the map.
        let scale = Scale {
            denominator: 50_000,
        };
        let pairs_with = |map: CellMap| {
            let fs = SimFs::new(gpfs_scaled(scale));
            fs.set_active_ranks(4);
            install_dataset(&fs, &spec("Lakes"), scale, "l.wkt", None);
            install_dataset(&fs, &spec("Cemetery"), scale, "r.wkt", None);
            let opts = JoinOptions {
                grid: GridSpec::square(8),
                decomp: mvio_core::decomp::DecompPolicy::Uniform(map),
                read: ReadOptions::default().with_block_size(128 << 10),
                windows: 1,
                ..Default::default()
            };
            let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
                spatial_join(comm, &fs, "l.wkt", "r.wkt", &opts)
                    .unwrap()
                    .pairs
            });
            let mut all: Vec<(String, String)> = out.into_iter().flatten().collect();
            all.sort();
            all
        };
        let rr = pairs_with(CellMap::RoundRobin);
        let blk = pairs_with(CellMap::Block);
        let hil = pairs_with(CellMap::hilbert(GridSpec::square(8)));
        assert_eq!(rr, blk);
        assert_eq!(rr, hil);
    }

    #[test]
    fn larger_blocks_do_not_slow_the_read() {
        let scale = Scale {
            denominator: 100_000,
        };
        let s = blocks(scale, true);
        assert!(s.contains("Ablation"));
    }
}
