//! Collective two-phase I/O experiment: persist a partitioned dataset as
//! a binary snapshot ([`mvio_core::snapshot`]) and re-read it, sweeping
//! the aggregator count, reporting aggregate **virtual bandwidth**.
//!
//! The source paper is fundamentally about parallel I/O, yet its
//! evaluation only ever *reads* text — partitioned results evaporate at
//! the end of each run. This experiment closes that loop: ingest once,
//! write the owned `(cell, feature)` pairs through the ROMIO-style
//! staged two-phase collective writer (stripe-aligned aggregator
//! flushes in `cb_buffer_size` cycles), then load them back through the
//! inverse scatter and verify the round-trip bit-identically. The
//! aggregator sweep reproduces the two-phase tradeoff the paper's §5.1.1
//! discusses: one aggregator serializes every collective-buffer cycle
//! through one rank and its node link, while the full divisor-rule width
//! spreads the cycles across OSTs and links. Reported times are
//! deterministic virtual seconds (identical on every rank for writes;
//! max over ranks for reads); the trajectory is written to
//! `BENCH_io.json` so future PRs can track it.

use super::{cost_scaled, lustre_scaled, Scale};
use crate::report::Table;
use mvio_core::decomp::DecompConfig;
use mvio_core::exchange::ExchangeChunk;
use mvio_core::grid::GridSpec;
use mvio_core::partition::ReadOptions;
use mvio_core::pipeline::{ingest, PipelineOptions};
use mvio_core::reader::WktLineParser;
use mvio_core::snapshot::{read_partitioned, SnapshotReadOptions, SnapshotWriteOptions};
use mvio_datagen::{writer, ShapeGen, ShapeKind, SpatialDistribution};
use mvio_geom::Rect;
use mvio_msim::{Hints, Topology, World, WorldConfig};
use mvio_pfs::{SimFs, StripeSpec};

/// Tracked floor: the best aggregator width must beat a single
/// aggregator on the collective snapshot write at 16 ranks by at least
/// this factor. Asserted by both the unit test and the CI
/// bench-regression gate, so the two can never enforce different
/// thresholds.
pub const AGGREGATOR_WRITE_SPEEDUP_FLOOR: f64 = 1.2;

/// One measurement: one direction (`write` or `read`) at one aggregator
/// request and one rank count.
#[derive(Debug, Clone)]
pub struct Row {
    /// `"write"` or `"read"`.
    pub op: &'static str,
    /// World size.
    pub ranks: usize,
    /// Requested aggregator count (`0` = the heuristic / divisor rule).
    pub aggregators: usize,
    /// Exact snapshot payload bytes (all sections, padding excluded).
    pub payload_bytes: u64,
    /// Virtual seconds for the collective operation (write: identical on
    /// every rank; read: max over ranks, routing exchange included).
    pub io_s: f64,
    /// Aggregate virtual bandwidth, bytes / virtual second.
    pub bandwidth: f64,
    /// Single-aggregator time over this time (1.0 for the 1-aggregator
    /// row itself) — the tracked two-phase speedup.
    pub speedup: f64,
}

/// Stripe count of the snapshot file: 8 OSTs, so every swept aggregator
/// count (1, 2, 4, 8) survives the Lustre divisor rule unchanged.
const STRIPE_COUNT: u32 = 8;
/// Stripe size, chosen so per-rank sections span several stripes.
const STRIPE_SIZE: u64 = 16 << 10;
/// Collective-buffer cycle: small enough that every aggregator runs
/// multiple chained cycles — the regime where the aggregator count
/// governs two-phase performance.
const CB_BUFFER: u64 = 64 << 10;

/// Clustered small polygons over a world extent: replication across grid
/// cells inflates the persisted payload the way real partitioned layers
/// do.
fn dataset_bytes(features: u64) -> Vec<u8> {
    writer::wkt_dataset_bytes(
        ShapeKind::Polygon,
        ShapeGen::small_polygons(),
        &SpatialDistribution::Clustered {
            clusters: 5,
            skew: 1.2,
            spread: 0.02,
        },
        Rect::new(-180.0, -90.0, 180.0, 90.0),
        features,
        0x10_BE7C4,
    )
}

/// Runs one full ingest → write snapshot → read snapshot cycle on a
/// fresh cold filesystem, returning `(write row, read row)` with
/// `speedup` left at 1.0. Panics if the reloaded pairs differ from the
/// ingested ones — the experiment carries its own round-trip oracle.
fn measure_one(scale: Scale, bytes: &[u8], ranks: usize, aggregators: usize) -> (Row, Row) {
    let fs = SimFs::new(lustre_scaled(scale));
    fs.set_active_ranks(ranks);
    fs.create("io.wkt", None).expect("fresh fs").append(bytes);
    // Two ranks per node: aggregators are per-node, so the sweep needs
    // node counts at least as large as the largest aggregator request.
    let nodes = (ranks / 2).max(1);
    let topo = Topology::new(nodes, ranks.div_ceil(nodes));
    let world = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let hints = Hints {
        cb_nodes: (aggregators > 0).then_some(aggregators),
        cb_buffer_size: CB_BUFFER,
    };
    let out = World::run(world, move |comm| {
        let rep = ingest(
            comm,
            &fs,
            "io.wkt",
            &ReadOptions::default(),
            &WktLineParser,
            &DecompConfig::uniform(GridSpec::square(16)),
            &PipelineOptions::default().with_workers(1),
        )
        .unwrap();
        let w = rep
            .write_partitioned(
                comm,
                &fs,
                "io.snap",
                &SnapshotWriteOptions::default()
                    .with_stripe(StripeSpec::new(STRIPE_COUNT, STRIPE_SIZE))
                    .with_hints(hints),
            )
            .unwrap();
        // Pin the routing exchange to one round so the read row does not
        // move with the MVIO_EXCHANGE_CHUNK environment knob.
        let ropts = SnapshotReadOptions {
            hints,
            chunk: ExchangeChunk::Unlimited,
        };
        let (back, r) = read_partitioned(comm, &fs, "io.snap", &*rep.decomp, &ropts).unwrap();
        assert_eq!(back, rep.owned, "snapshot round-trip must be bit-identical");
        (w.write_seconds, w.bytes_total, r.read_seconds)
    });
    let payload = out[0].1;
    let write_s = out.iter().map(|o| o.0).fold(0.0, f64::max);
    let read_s = out.iter().map(|o| o.2).fold(0.0, f64::max);
    let row = |op: &'static str, io_s: f64| Row {
        op,
        ranks,
        aggregators,
        payload_bytes: payload,
        io_s,
        bandwidth: if io_s > 0.0 {
            payload as f64 / io_s
        } else {
            0.0
        },
        speedup: 1.0,
    };
    (row("write", write_s), row("read", read_s))
}

/// Sweeps the aggregator counts at every rank count, filling in the
/// speedups relative to the 1-aggregator rows.
///
/// # Panics
///
/// Panics when `aggs` does not contain the 1-aggregator baseline — the
/// speedup ratios (and the regression gate built on them) would be
/// meaningless without it.
pub fn measure(scale: Scale, features: u64, rank_counts: &[usize], aggs: &[usize]) -> Vec<Row> {
    let bytes = dataset_bytes(features);
    let mut rows = Vec::new();
    for &ranks in rank_counts {
        let start = rows.len();
        let mut base: Option<(f64, f64)> = None; // 1-aggregator (write, read)
        for &a in aggs {
            let (w, r) = measure_one(scale, &bytes, ranks, a);
            if a == 1 {
                base = Some((w.io_s, r.io_s));
            }
            rows.push(w);
            rows.push(r);
        }
        // Back-filled after the whole sweep so rows measured before the
        // 1-aggregator baseline get real ratios too — the baseline's
        // position in `aggs` must not matter. Without a baseline row the
        // ratio would be meaningless, so demand one loudly rather than
        // hand the regression gate a silent 1.0.
        let (bw, br) = base.expect("aggs must include the 1-aggregator baseline");
        for row in &mut rows[start..] {
            let b = if row.op == "write" { bw } else { br };
            row.speedup = b / row.io_s;
        }
    }
    rows
}

/// The largest write speedup over the 1-aggregator baseline at the given
/// rank count — the ratio the bench-regression gate tracks.
pub fn best_write_speedup(rows: &[Row], ranks: usize) -> f64 {
    rows.iter()
        .filter(|r| r.op == "write" && r.ranks == ranks)
        .map(|r| r.speedup)
        .fold(0.0, f64::max)
}

/// Renders the measurement rows as a JSON trajectory file body.
pub fn to_json(rows: &[Row]) -> String {
    let mut s = String::from(
        "{\n  \"experiment\": \"io\",\n  \"metric\": \"virtual_bandwidth_bytes_per_second\",\n  \"rows\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"op\": \"{}\", \"ranks\": {}, \"aggregators\": {}, \"payload_bytes\": {}, \"io_s\": {:.6}, \"bandwidth\": {:.0}, \"speedup\": {:.4}}}{}\n",
            r.op,
            r.ranks,
            r.aggregators,
            r.payload_bytes,
            r.io_s,
            r.bandwidth,
            r.speedup,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Runs the sweep, writes `BENCH_io.json`, and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let rank_counts: &[usize] = if quick { &[16] } else { &[16, 64] };
    let aggs: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4, 8, 0] };
    let features = if quick { 600 } else { 2_000 };
    let rows = measure(scale, features, rank_counts, aggs);

    let mut t = Table::new(
        format!(
            "Collective two-phase snapshot I/O: {features} clustered polygons, \
             write + re-read vs aggregator count (0 = divisor-rule heuristic)"
        ),
        &[
            "ranks",
            "op",
            "aggs",
            "payload MB",
            "io s",
            "MB/s",
            "speedup",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.ranks.to_string(),
            r.op.to_string(),
            r.aggregators.to_string(),
            format!("{:.2}", r.payload_bytes as f64 / (1 << 20) as f64),
            format!("{:.6}", r.io_s),
            format!("{:.1}", r.bandwidth / (1 << 20) as f64),
            format!("{:.2}x", r.speedup),
        ]);
    }
    t.note("every run re-reads the snapshot and asserts bit-identical pairs (round-trip oracle)");
    t.note("expectation: one aggregator serializes the cb cycles; wider aggregation spreads them across OSTs and node links until the divisor-rule width");
    match std::fs::write("BENCH_io.json", to_json(&rows)) {
        Ok(()) => t.note("trajectory written to BENCH_io.json"),
        Err(e) => t.note(format!("could not write BENCH_io.json: {e}")),
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The PR's acceptance criterion: widening the aggregator set must
    /// speed the collective snapshot write up measurably over a single
    /// aggregator at 16 ranks. The same floor is enforced by the CI
    /// bench-regression gate.
    #[test]
    fn two_phase_write_scales_with_aggregators_at_16_ranks() {
        let scale = Scale { denominator: 1000 };
        let rows = measure(scale, 600, &[16], &[1, 4]);
        let best = best_write_speedup(&rows, 16);
        assert!(
            best >= AGGREGATOR_WRITE_SPEEDUP_FLOOR,
            "4 aggregators must beat 1 by >= {AGGREGATOR_WRITE_SPEEDUP_FLOOR}x, \
             got {best:.3}x"
        );
        // Bandwidth is coherent with time.
        for r in &rows {
            assert!(r.io_s > 0.0 && r.bandwidth > 0.0);
        }
    }

    #[test]
    fn json_trajectory_is_well_formed() {
        let rows = vec![Row {
            op: "write",
            ranks: 16,
            aggregators: 4,
            payload_bytes: 1 << 20,
            io_s: 0.004,
            bandwidth: 2.5e8,
            speedup: 1.42,
        }];
        let s = to_json(&rows);
        assert!(s.contains("\"experiment\": \"io\""));
        assert!(s.contains("\"speedup\": 1.4200"));
        assert!(!s.contains(",\n  ]"), "no trailing comma");
    }
}
