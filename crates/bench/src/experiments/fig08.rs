//! Figure 8: Level-0 file-read bandwidth for All Objects (92 GB), stripe
//! sizes 64 MB and 128 MB, stripe count 64, node sweep 4–72.

use super::{cost_scaled, install_dataset, lustre_scaled, node_sweep, spec, Scale};
use crate::report::{gbps, human_bytes, Table};
use mvio_core::partition::{read_partition_text, ReadOptions};
use mvio_msim::{AccessLevel, Topology, World, WorldConfig};
use mvio_pfs::{SimFs, StripeSpec};

/// Measures contiguous read bandwidth for one (nodes, stripe, block)
/// point. Returns `(bytes, max-over-ranks virtual seconds)` averaged over
/// `reps` runs (the paper averages at least 3). Thanks to latency scaling
/// (see [`super::lustre_scaled`]), `bytes / seconds` is directly
/// comparable to the paper's full-scale GB/s.
#[allow(clippy::too_many_arguments)]
pub fn bandwidth_contiguous(
    dataset: &str,
    scale: Scale,
    nodes: usize,
    ppn: usize,
    stripe: StripeSpec,
    block: u64,
    level: AccessLevel,
    reps: usize,
) -> (u64, f64) {
    let ds = spec(dataset);
    let mut total_time = 0.0;
    let mut bytes = 0;
    for _ in 0..reps.max(1) {
        let fs = SimFs::new(lustre_scaled(scale));
        let topo = Topology::new(nodes, ppn);
        fs.set_active_ranks(topo.ranks());
        bytes = install_dataset(&fs, &ds, scale, "data.wkt", Some(stripe));
        let opts = ReadOptions::default()
            .with_level(level)
            .with_block_size(block)
            .with_max_geometry_bytes(block.max(64 * 1024));
        let cfg = WorldConfig::new(topo).with_cost(cost_scaled(scale));
        let times = World::run(cfg, |comm| {
            read_partition_text(comm, &fs, "data.wkt", &opts).unwrap();
            comm.now()
        });
        total_time += times.into_iter().fold(0.0, f64::max);
    }
    (bytes, total_time / reps.max(1) as f64)
}

/// Runs the Figure 8 sweep and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let stripe_count = 64u32;
    let stripe_sizes_full: [u64; 2] = [64 << 20, 128 << 20];
    let mut t = Table::new(
        format!(
            "Figure 8: Level-0 read bandwidth, All Objects ({} scaled 1/{}), stripe count 64",
            human_bytes(spec("All Objects").paper_bytes),
            scale.denominator
        ),
        &[
            "nodes",
            "procs",
            "GB/s (64MB stripe)",
            "GB/s (128MB stripe)",
        ],
    );
    for nodes in node_sweep(quick) {
        let mut cells = vec![nodes.to_string(), (nodes * 16).to_string()];
        for full in stripe_sizes_full {
            let ssize = scale.block(full);
            let stripe = StripeSpec::new(stripe_count, ssize);
            let (bytes, time) = bandwidth_contiguous(
                "All Objects",
                scale,
                nodes,
                16,
                stripe,
                ssize,
                AccessLevel::Level0,
                3,
            );
            cells.push(gbps(bytes, time));
        }
        t.row(cells);
    }
    t.note("paper: bandwidth rises with nodes, peaks ~22 GB/s near 48 nodes, then flattens/sags");
    t.note("block size = stripe size (stripe-aligned reads), 16 ranks/node, Lustre/COMET model");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_rises_then_saturates() {
        let scale = Scale {
            denominator: 100_000,
        };
        let stripe = StripeSpec::new(64, scale.block(64 << 20));
        let (b4, t4) = bandwidth_contiguous(
            "All Objects",
            scale,
            4,
            4,
            stripe,
            stripe.size,
            AccessLevel::Level0,
            1,
        );
        let (b32, t32) = bandwidth_contiguous(
            "All Objects",
            scale,
            32,
            4,
            stripe,
            stripe.size,
            AccessLevel::Level0,
            1,
        );
        let bw4 = b4 as f64 / t4;
        let bw32 = b32 as f64 / t32;
        assert!(
            bw32 > bw4,
            "more nodes must lift bandwidth: {bw4} vs {bw32}"
        );
    }

    #[test]
    fn render_produces_rows() {
        let s = run(
            Scale {
                denominator: 200_000,
            },
            true,
        );
        assert!(s.contains("Figure 8"));
        assert!(s.lines().count() >= 5);
    }
}
