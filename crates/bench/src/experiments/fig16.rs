//! Figure 16: non-contiguous I/O for *polygon* (variable-length) data
//! with different block sizes, vs contiguous access.
//!
//! Variable-length geometries require the preprocessing the paper
//! describes: per-geometry byte lengths and displacements feed an
//! `MPI_type_indexed` view. Block size here is the number of polygons per
//! round-robin block.

use super::{cost_scaled, gpfs_scaled, install_dataset, spec, Scale};
use crate::report::Table;
use mvio_core::partition::{read_partition_text, ReadOptions};
use mvio_core::views::indexed_geometry_view;
use mvio_msim::{AccessLevel, Hints, MpiFile, Topology, World, WorldConfig};
use mvio_pfs::SimFs;
use std::sync::Arc;

/// Polygon-count block sizes the sweep uses.
pub const BLOCK_POLYGONS: [usize; 3] = [256, 512, 1024];

/// Preprocessing step: scans the WKT file once to build the per-record
/// length and offset arrays (the auxiliary arrays of §4.1).
pub fn preprocess_offsets(bytes: &[u8]) -> (Vec<u64>, Vec<u64>) {
    let mut lengths = Vec::new();
    let mut offsets = Vec::new();
    let mut start = 0u64;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'\n' {
            offsets.push(start);
            lengths.push(i as u64 + 1 - start);
            start = i as u64 + 1;
        }
    }
    if (start as usize) < bytes.len() {
        offsets.push(start);
        lengths.push(bytes.len() as u64 - start);
    }
    (lengths, offsets)
}

/// Times a Level-3 indexed read of the Lakes polygons: rank `r` reads
/// polygon blocks `r, r+p, …` of `block_polygons` records each.
pub fn noncontiguous_polygon_read(scale: Scale, procs: usize, block_polygons: usize) -> f64 {
    let ds = spec("Lakes");
    let fs = SimFs::new(gpfs_scaled(scale));
    let topo = topo_for(procs);
    fs.set_active_ranks(topo.ranks());
    install_dataset(&fs, &ds, scale, "lakes.wkt", None);
    let data = Arc::new(fs.open("lakes.wkt").unwrap().snapshot());
    let (lengths, offsets) = preprocess_offsets(&data);
    let lengths = Arc::new(lengths);
    let offsets = Arc::new(offsets);
    let cfg = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let times = World::run(cfg, move |comm| {
        let p = comm.size();
        let rank = comm.rank();
        let n = lengths.len();
        // Round-robin polygon blocks assigned to this rank.
        let mut assigned = Vec::new();
        let mut block = rank * block_polygons;
        while block < n {
            for i in block..(block + block_polygons).min(n) {
                assigned.push(i);
            }
            block += p * block_polygons;
        }
        let view = indexed_geometry_view(&lengths, &offsets, &assigned).unwrap();
        let payload: usize = assigned.iter().map(|&i| lengths[i] as usize).sum();
        let mut file = MpiFile::open(&fs, "lakes.wkt", Hints::default()).unwrap();
        file.set_view(view);
        let mut buf = vec![0u8; payload];
        file.read_all(comm, 0, 1, &mut buf).unwrap();
        comm.now()
    });
    times.into_iter().fold(0.0, f64::max)
}

/// Contiguous baseline over the same polygons (Level-1 blocked read).
pub fn contiguous_polygon_read(scale: Scale, procs: usize) -> f64 {
    let ds = spec("Lakes");
    let fs = SimFs::new(gpfs_scaled(scale));
    let topo = topo_for(procs);
    fs.set_active_ranks(topo.ranks());
    install_dataset(&fs, &ds, scale, "lakes.wkt", None);
    let opts = ReadOptions::default().with_level(AccessLevel::Level1);
    let cfg = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let times = World::run(cfg, |comm| {
        read_partition_text(comm, &fs, "lakes.wkt", &opts).unwrap();
        comm.now()
    });
    times.into_iter().fold(0.0, f64::max)
}

fn topo_for(procs: usize) -> Topology {
    let nodes = procs.div_ceil(20).max(1);
    Topology::new(nodes, procs.div_ceil(nodes))
}

/// Runs the Figure 16 sweep and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let procs_sweep: Vec<usize> = if quick { vec![20] } else { vec![20, 40, 80] };
    let mut headers = vec!["procs".to_string(), "contiguous (s)".to_string()];
    headers.extend(BLOCK_POLYGONS.iter().map(|b| format!("NC {b} polys (s)")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Figure 16: non-contiguous polygon I/O (Lakes scaled 1/{}), indexed file views",
            scale.denominator
        ),
        &headers_ref,
    );
    let d = scale.denominator as f64;
    for &procs in &procs_sweep {
        let mut cells = vec![
            procs.to_string(),
            format!("{:.3}", contiguous_polygon_read(scale, procs) * d),
        ];
        for &b in &BLOCK_POLYGONS {
            cells.push(format!(
                "{:.3}",
                noncontiguous_polygon_read(scale, procs, b) * d
            ));
        }
        t.row(cells);
    }
    t.note("paper: contiguous wins and improves steadily; NC performance is very sensitive to block size and process count because polygon lengths vary widely");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preprocessing_splits_exact_records() {
        let text = b"aaa\nbb\ncccc\n";
        let (lens, offs) = preprocess_offsets(text);
        assert_eq!(lens, vec![4, 3, 5]);
        assert_eq!(offs, vec![0, 4, 7]);
        // No trailing newline case.
        let (lens2, offs2) = preprocess_offsets(b"xx\nyyy");
        assert_eq!(lens2, vec![3, 3]);
        assert_eq!(offs2, vec![0, 3]);
    }

    #[test]
    fn contiguous_beats_indexed_noncontiguous() {
        let scale = Scale {
            denominator: 100_000,
        };
        let c = contiguous_polygon_read(scale, 4);
        let nc = noncontiguous_polygon_read(scale, 4, 16);
        assert!(c < nc, "contiguous {c} must beat NC {nc} (Figure 16)");
    }
}
