//! Experiment implementations, one module per table/figure.

pub mod ablation;
pub mod baseline;
pub mod decomp;
pub mod exchange;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod fig16;
pub mod fig17;
pub mod fig18;
pub mod fig19;
pub mod fig20;
pub mod gate;
pub mod io;
pub mod pipeline;
pub mod rebalance;
pub mod refine;
pub mod serve;
pub mod table1;
pub mod table2;
pub mod table3;

use mvio_datagen::{catalog, DatasetSpec};
use mvio_pfs::{SimFs, StripeSpec};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Scale of an experiment: paper workload sizes divided by `denominator`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    pub denominator: u64,
}

impl Scale {
    /// The default reproduction scale: 1/1000 of the paper's sizes.
    pub fn default_repro() -> Self {
        Scale { denominator: 1000 }
    }

    /// A tiny scale for unit tests of the harness itself.
    pub fn test_tiny() -> Self {
        Scale {
            denominator: 1_000_000,
        }
    }

    /// Scales a full-size byte quantity, with a floor to stay meaningful.
    pub fn bytes(&self, full: u64) -> u64 {
        (full / self.denominator).max(64 * 1024)
    }

    /// Scales a stripe/block size with a 4 KiB floor (block sizes shrink
    /// with the data so iteration counts match the paper's).
    pub fn block(&self, full: u64) -> u64 {
        (full / self.denominator).max(4 * 1024)
    }
}

/// Generated dataset bytes, cached by `(table3 row id, denominator)` so
/// repeated experiments pay generation once per process.
fn dataset_cache() -> &'static Mutex<HashMap<(usize, u64), Arc<Vec<u8>>>> {
    static CACHE: OnceLock<Mutex<HashMap<(usize, u64), Arc<Vec<u8>>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Returns the WKT bytes of a scaled Table 3 dataset (generated on first
/// use, cached afterwards).
pub fn dataset_bytes(spec: &DatasetSpec, scale: Scale) -> Arc<Vec<u8>> {
    let key = (spec.id, scale.denominator);
    if let Some(hit) = dataset_cache().lock().unwrap().get(&key) {
        return Arc::clone(hit);
    }
    let fs = SimFs::new(mvio_pfs::FsConfig::gpfs_roger());
    let rep = catalog::generate(&fs, spec, scale.denominator, 0xDA7A_5EED ^ spec.id as u64);
    let bytes = Arc::new(fs.open(&rep.path).expect("generated").snapshot());
    dataset_cache()
        .lock()
        .unwrap()
        .insert(key, Arc::clone(&bytes));
    bytes
}

/// Installs cached dataset bytes as a file on a fresh filesystem.
pub fn install_dataset(
    fs: &Arc<SimFs>,
    spec: &DatasetSpec,
    scale: Scale,
    path: &str,
    stripe: Option<StripeSpec>,
) -> u64 {
    let bytes = dataset_bytes(spec, scale);
    let f = fs.create(path, stripe).expect("fresh fs");
    f.append(bytes.as_slice());
    bytes.len() as u64
}

/// Finds a Table 3 spec by name (panics on typo — harness-internal).
pub fn spec(name: &str) -> DatasetSpec {
    catalog::table3()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown dataset {name}"))
}

/// Node counts used by the Lustre sweeps, trimmed when `quick` (tests).
pub fn node_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![4, 8]
    } else {
        vec![4, 8, 16, 24, 32, 48, 64, 72]
    }
}

/// Lustre config with per-request latency scaled down by the experiment
/// denominator.
///
/// Scaling *sizes* by `1/d` while keeping latencies fixed would distort the
/// α/β balance (latency would swamp the shrunken transfers). Scaling the
/// fixed costs by the same `1/d` makes every time contribution scale by
/// `1/d`, so **scaled bandwidth equals full-scale bandwidth** and scaled
/// times are exactly `1/d` of full-scale times.
pub fn lustre_scaled(scale: Scale) -> mvio_pfs::FsConfig {
    let mut cfg = mvio_pfs::FsConfig::lustre_comet();
    cfg.perf.request_latency /= scale.denominator as f64;
    cfg
}

/// GPFS config with scaled per-request latency (see [`lustre_scaled`]).
pub fn gpfs_scaled(scale: Scale) -> mvio_pfs::FsConfig {
    let mut cfg = mvio_pfs::FsConfig::gpfs_roger();
    cfg.perf.request_latency /= scale.denominator as f64;
    cfg
}

/// Cost model with scaled per-message latency (see [`lustre_scaled`]).
pub fn cost_scaled(scale: Scale) -> mvio_msim::CostModel {
    let mut c = mvio_msim::CostModel::calibrated();
    c.comm_latency /= scale.denominator as f64;
    c
}

/// Converts a scaled virtual time back to full-scale equivalent seconds.
pub fn full_seconds(scale: Scale, scaled_time: f64) -> f64 {
    scaled_time * scale.denominator as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_arithmetic() {
        let s = Scale { denominator: 1000 };
        assert_eq!(s.bytes(92 << 30), (92u64 << 30) / 1000);
        assert_eq!(s.block(64 << 20), (64u64 << 20) / 1000);
        // Floors.
        assert_eq!(s.bytes(1024), 64 * 1024);
        assert_eq!(s.block(1024), 4 * 1024);
    }

    #[test]
    fn dataset_cache_returns_same_bytes() {
        let s = spec("Cemetery");
        let a = dataset_bytes(&s, Scale::test_tiny());
        let b = dataset_bytes(&s, Scale::test_tiny());
        assert!(Arc::ptr_eq(&a, &b));
        assert!(!a.is_empty());
    }

    #[test]
    fn install_places_file() {
        let fs = SimFs::new(mvio_pfs::FsConfig::lustre_comet());
        let n = install_dataset(&fs, &spec("Cemetery"), Scale::test_tiny(), "cem.wkt", None);
        assert_eq!(fs.open("cem.wkt").unwrap().len(), n);
    }
}
