//! Figure 19: spatial-join breakdown vs process count for Roads ⋈
//! Cemetery (datasets #3 ⋈ #1) — the *communication-dominated* workload.
//!
//! Roads is 72 M small polygons: the per-geometry serialization /
//! deserialization and the Alltoallv payload swamp the (cheap, tiny-pair)
//! refine work, inverting Figure 18's profile.

use super::fig17::join_run;
use super::fig18::procs_sweep;
use super::Scale;
use crate::report::Table;

/// Runs the Figure 19 sweep and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let cells = if quick { 8 } else { 32 };
    let mut t = Table::new(
        format!(
            "Figure 19: join breakdown vs processes, Roads ⋈ Cemetery ({}x{} cells, scaled 1/{})",
            cells, cells, scale.denominator
        ),
        &[
            "procs",
            "partition (s)",
            "comm (s)",
            "join (s)",
            "total (s)",
            "dominant",
        ],
    );
    let d = scale.denominator as f64;
    for procs in procs_sweep(quick) {
        let (b, _) = join_run(scale, "Roads", "Cemetery", procs, cells);
        let dominant = if b.communication >= b.compute && b.communication >= b.partition {
            "comm"
        } else if b.compute >= b.partition {
            "join"
        } else {
            "partition"
        };
        t.row(vec![
            procs.to_string(),
            format!("{:.2}", b.partition * d),
            format!("{:.2}", b.communication * d),
            format!("{:.2}", b.compute * d),
            format!("{:.2}", b.total * d),
            dominant.to_string(),
        ]);
    }
    t.note("paper: the communication cost dominates the overall execution time for this pair");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roads_cemetery_is_communication_heavy() {
        // Roads ships ~20x more geometries than Lakes at equal scale; its
        // communication phase must dwarf its join phase.
        let scale = Scale {
            denominator: 20_000,
        };
        let (b, _) = join_run(scale, "Roads", "Cemetery", 4, 8);
        assert!(
            b.communication > b.compute,
            "comm {:.4} should dominate join {:.4} for Roads ⋈ Cemetery",
            b.communication,
            b.compute
        );
    }

    #[test]
    fn communication_shrinks_with_processes() {
        let scale = Scale {
            denominator: 20_000,
        };
        let (b2, _) = join_run(scale, "Roads", "Cemetery", 2, 8);
        let (b8, _) = join_run(scale, "Roads", "Cemetery", 8, 8);
        assert!(
            b8.communication < b2.communication,
            "comm must shrink with ranks: {:.4} -> {:.4}",
            b2.communication,
            b8.communication
        );
    }
}
