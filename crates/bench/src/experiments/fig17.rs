//! Figure 17: spatial-join execution-time breakdown vs number of grid
//! cells (Lakes ⋈ Cemetery, 80 processes).

use super::{cost_scaled, gpfs_scaled, install_dataset, spec, Scale};
use crate::report::Table;
use mvio_core::grid::{CellMap, GridSpec};
use mvio_core::partition::ReadOptions;
use mvio_msim::{Topology, World, WorldConfig};
use mvio_pfs::SimFs;
use mvio_sjoin::{spatial_join, JoinOptions, PhaseBreakdown};

/// Runs one distributed join and returns `(breakdown, result pairs)`.
pub fn join_run(
    scale: Scale,
    left: &str,
    right: &str,
    procs: usize,
    cells_per_side: u32,
) -> (PhaseBreakdown, u64) {
    let fs = SimFs::new(gpfs_scaled(scale));
    let nodes = procs.div_ceil(20).max(1);
    let topo = Topology::new(nodes, procs.div_ceil(nodes));
    fs.set_active_ranks(topo.ranks());
    install_dataset(&fs, &spec(left), scale, "left.wkt", None);
    install_dataset(&fs, &spec(right), scale, "right.wkt", None);
    let opts = JoinOptions {
        grid: GridSpec::square(cells_per_side),
        decomp: mvio_core::decomp::DecompPolicy::Uniform(CellMap::RoundRobin),
        // 64 KiB floor keeps blocks above the largest record even when
        // many ranks split a small scaled layer (Cemetery at 80+ procs).
        read: ReadOptions::default().with_block_size(64 << 10),
        windows: 1,
        ..Default::default()
    };
    let cfg = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let out = World::run(cfg, move |comm| {
        let rep = spatial_join(comm, &fs, "left.wkt", "right.wkt", &opts).unwrap();
        (rep.breakdown, rep.pairs.len() as u64)
    });
    let pairs: u64 = out.iter().map(|(_, n)| n).sum();
    (out[0].0, pairs)
}

/// Runs the Figure 17 sweep and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let procs = if quick { 8 } else { 80 };
    let cells_sweep: Vec<u32> = if quick {
        vec![4, 8]
    } else {
        vec![8, 16, 32, 48, 64]
    };
    let mut t = Table::new(
        format!(
            "Figure 17: join breakdown vs grid cells, Lakes ⋈ Cemetery, {procs} procs (scaled 1/{})",
            scale.denominator
        ),
        &["cells", "partition (s)", "comm (s)", "join (s)", "total (s)", "pairs"],
    );
    let d = scale.denominator as f64;
    for side in cells_sweep {
        let (b, pairs) = join_run(scale, "Lakes", "Cemetery", procs, side);
        t.row(vec![
            (side * side).to_string(),
            format!("{:.2}", b.partition * d),
            format!("{:.2}", b.communication * d),
            format!("{:.2}", b.compute * d),
            format!("{:.2}", b.total * d),
            pairs.to_string(),
        ]);
    }
    t.note("paper: overall execution time decreases as grid cells increase (finer tasks balance better); communication varies with the cell-to-process mapping");
    t.note("times are full-scale-equivalent virtual seconds; phases are max-over-ranks so they can sum above total");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finer_grids_reduce_total_time() {
        let scale = Scale { denominator: 2_000 };
        let (coarse, p1) = join_run(scale, "Lakes", "Cemetery", 8, 2);
        let (fine, p2) = join_run(scale, "Lakes", "Cemetery", 8, 12);
        assert_eq!(p1, p2, "grid resolution must not change the join result");
        assert!(
            fine.total < coarse.total,
            "finer grid {:.4}s must beat coarse {:.4}s (Figure 17)",
            fine.total,
            coarse.total
        );
    }
}
