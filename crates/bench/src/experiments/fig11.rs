//! Figure 11: Level-1 (collective) read time for Roads, stripe size
//! 16 MB, stripe counts 16/32/64/96 — exhibiting the ROMIO reader-count
//! cliffs at 24, 48 and 72 nodes.

use super::{fig08::bandwidth_contiguous, spec, Scale};
use crate::report::{human_bytes, Table};
use mvio_msim::io::select_readers;
use mvio_msim::AccessLevel;
use mvio_pfs::{FsKind, StripeSpec};

/// Stripe counts the paper sweeps in this figure.
pub const OST_COUNTS: [u32; 4] = [16, 32, 64, 96];

/// Node counts including the problematic non-divisor points.
pub fn nodes_sweep(quick: bool) -> Vec<usize> {
    if quick {
        vec![16, 24]
    } else {
        vec![8, 16, 24, 32, 48, 64, 72]
    }
}

/// Runs the Figure 11 sweep and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let ssize = scale.block(16 << 20);
    let mut headers: Vec<String> = vec!["nodes".into()];
    for o in OST_COUNTS {
        headers.push(format!("s ({o} OST)"));
        headers.push(format!("readers ({o})"));
    }
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Figure 11: Level-1 collective read time, Roads ({} scaled 1/{}), stripe size 16 MB",
            human_bytes(spec("Roads").paper_bytes),
            scale.denominator
        ),
        &headers_ref,
    );
    for nodes in nodes_sweep(quick) {
        let mut cells = vec![nodes.to_string()];
        for &osts in &OST_COUNTS {
            let stripe = StripeSpec::new(osts, ssize);
            let (_bytes, time) = bandwidth_contiguous(
                "Roads",
                scale,
                nodes,
                16,
                stripe,
                ssize,
                AccessLevel::Level1,
                3,
            );
            cells.push(format!("{:.2}", time * scale.denominator as f64));
            cells.push(select_readers(FsKind::Lustre, osts, nodes, None).to_string());
        }
        t.row(cells);
    }
    t.note("paper: drops at 24, 48 and 72 nodes — ROMIO picks the largest divisor of the stripe count <= node count, so non-divisor node counts waste nodes");
    t.note("paper: ~3.5 GB/s max with 96 OSTs at this 16 MB stripe size");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The headline mechanism: 24 nodes on a 64-OST file get only 16
    /// readers and must not beat 16 nodes by the naive 1.5x — the cliff.
    #[test]
    fn non_divisor_node_count_underperforms() {
        let scale = Scale {
            denominator: 50_000,
        };
        let ssize = scale.block(16 << 20);
        let stripe = StripeSpec::new(64, ssize);
        let (b16, t16) =
            bandwidth_contiguous("Roads", scale, 16, 4, stripe, ssize, AccessLevel::Level1, 1);
        let (b24, t24) =
            bandwidth_contiguous("Roads", scale, 24, 4, stripe, ssize, AccessLevel::Level1, 1);
        let (b32, t32) =
            bandwidth_contiguous("Roads", scale, 32, 4, stripe, ssize, AccessLevel::Level1, 1);
        let bw = |b: u64, t: f64| b as f64 / t;
        // 32 nodes (divisor) must clearly beat 24 nodes (non-divisor).
        assert!(
            bw(b32, t32) > bw(b24, t24),
            "32 nodes {:.2e} must beat 24 nodes {:.2e}",
            bw(b32, t32),
            bw(b24, t24)
        );
        // And 24 nodes gains little or nothing over 16 (same 16 readers).
        assert!(
            bw(b24, t24) < bw(b16, t16) * 1.3,
            "24-node cliff: {:.2e} vs 16-node {:.2e}",
            bw(b24, t24),
            bw(b16, t16)
        );
    }

    #[test]
    fn render_includes_reader_counts() {
        let s = run(
            Scale {
                denominator: 200_000,
            },
            true,
        );
        assert!(s.contains("readers"));
        assert!(s.contains("Figure 11"));
    }
}
