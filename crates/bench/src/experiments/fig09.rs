//! Figure 9: Level-0 read bandwidth for Roads (24 GB), fixed stripe size
//! 32 MB, stripe counts (OSTs) 16/32/64/96.

use super::{fig08::bandwidth_contiguous, node_sweep, spec, Scale};
use crate::report::{gbps, human_bytes, Table};
use mvio_msim::AccessLevel;
use mvio_pfs::StripeSpec;

/// The OST counts the paper sweeps.
pub const OST_COUNTS: [u32; 4] = [16, 32, 64, 96];

/// Runs the Figure 9 sweep and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let ssize = scale.block(32 << 20);
    let mut headers: Vec<String> = vec!["nodes".into(), "procs".into()];
    headers.extend(OST_COUNTS.iter().map(|o| format!("GB/s ({o} OST)")));
    let headers_ref: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t = Table::new(
        format!(
            "Figure 9: Level-0 read bandwidth, Roads ({} scaled 1/{}), stripe size 32 MB",
            human_bytes(spec("Roads").paper_bytes),
            scale.denominator
        ),
        &headers_ref,
    );
    for nodes in node_sweep(quick) {
        let mut cells = vec![nodes.to_string(), (nodes * 16).to_string()];
        for &osts in &OST_COUNTS {
            let stripe = StripeSpec::new(osts, ssize);
            let (bytes, time) = bandwidth_contiguous(
                "Roads",
                scale,
                nodes,
                16,
                stripe,
                ssize,
                AccessLevel::Level0,
                3,
            );
            cells.push(gbps(bytes, time));
        }
        t.row(cells);
    }
    t.note("paper: up to 8-9 GB/s; bandwidth generally increases with OST count before saturating");
    t.note("higher process counts saturate the per-OST service and the gain flattens");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_osts_lift_saturated_bandwidth() {
        let scale = Scale {
            denominator: 100_000,
        };
        let ssize = scale.block(32 << 20);
        let nodes = 16;
        let (b16, t16) = bandwidth_contiguous(
            "Roads",
            scale,
            nodes,
            4,
            StripeSpec::new(16, ssize),
            ssize,
            AccessLevel::Level0,
            1,
        );
        let (b96, t96) = bandwidth_contiguous(
            "Roads",
            scale,
            nodes,
            4,
            StripeSpec::new(96, ssize),
            ssize,
            AccessLevel::Level0,
            1,
        );
        let bw16 = b16 as f64 / t16;
        let bw96 = b96 as f64 / t96;
        assert!(
            bw96 >= bw16 * 0.95,
            "96 OSTs should not be slower than 16: {bw16} vs {bw96}"
        );
    }

    #[test]
    fn render_has_all_ost_columns() {
        let s = run(
            Scale {
                denominator: 200_000,
            },
            true,
        );
        for o in OST_COUNTS {
            assert!(s.contains(&format!("({o} OST)")));
        }
    }
}
