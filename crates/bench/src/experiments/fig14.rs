//! Figure 14: I/O + parsing performance for All Nodes (96 GB of points)
//! vs All Objects (92 GB of polygons) on GPFS, Level 1, up to ~100
//! processes.

use super::{cost_scaled, gpfs_scaled, install_dataset, spec, Scale};
use crate::report::Table;
use mvio_core::partition::{read_features, ReadOptions};
use mvio_core::reader::WktLineParser;
use mvio_msim::{AccessLevel, Topology, World, WorldConfig};
use mvio_pfs::SimFs;

/// Times I/O + parsing of a dataset with `procs` ranks (20/node, ROGER).
/// Returns `(max virtual seconds, features parsed)`.
pub fn io_plus_parse(dataset: &str, scale: Scale, procs: usize) -> (f64, u64) {
    let ds = spec(dataset);
    let fs = SimFs::new(gpfs_scaled(scale));
    let nodes = procs.div_ceil(20).max(1);
    let ppn = procs.div_ceil(nodes);
    let topo = Topology::new(nodes, ppn);
    fs.set_active_ranks(topo.ranks());
    install_dataset(&fs, &ds, scale, "data.wkt", None);
    let opts = ReadOptions::default().with_level(AccessLevel::Level1);
    let cfg = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let out = World::run(cfg, |comm| {
        let feats = read_features(comm, &fs, "data.wkt", &opts, &WktLineParser).unwrap();
        (comm.now(), feats.len() as u64)
    });
    let time = out.iter().map(|(t, _)| *t).fold(0.0, f64::max);
    let count = out.iter().map(|(_, n)| n).sum();
    (time, count)
}

/// Runs the Figure 14 sweep and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    let procs_sweep: Vec<usize> = if quick {
        vec![20, 40]
    } else {
        vec![20, 40, 60, 80, 100, 120]
    };
    let mut t = Table::new(
        format!(
            "Figure 14: I/O + parsing, All Nodes vs All Objects, GPFS Level 1 (scaled 1/{})",
            scale.denominator
        ),
        &[
            "procs",
            "All Nodes (s, full-scale)",
            "All Objects (s, full-scale)",
        ],
    );
    for procs in procs_sweep {
        let (tn, _) = io_plus_parse("All Nodes", scale, procs);
        let (to, _) = io_plus_parse("All Objects", scale, procs);
        let d = scale.denominator as f64;
        t.row(vec![
            procs.to_string(),
            format!("{:.1}", tn * d),
            format!("{:.1}", to * d),
        ]);
    }
    t.note("paper: both scale up to ~80 processes; All Objects takes longer despite similar file size because polygons parse slower than points");
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn polygons_cost_more_than_points_per_byte() {
        let scale = Scale {
            denominator: 200_000,
        };
        let (tn, cn) = io_plus_parse("All Nodes", scale, 4);
        let (to, co) = io_plus_parse("All Objects", scale, 4);
        assert!(cn > 0 && co > 0);
        // Figure 14's claim is per-dataset at similar sizes; at our scale
        // compare per-byte-normalized costs via the datasets' byte sizes.
        let bytes_n = super::super::dataset_bytes(&spec("All Nodes"), scale).len() as f64;
        let bytes_o = super::super::dataset_bytes(&spec("All Objects"), scale).len() as f64;
        assert!(
            to / bytes_o > tn / bytes_n,
            "polygon parse per byte must exceed point parse per byte"
        );
    }

    #[test]
    fn parse_scales_with_processes() {
        let scale = Scale {
            denominator: 200_000,
        };
        let (t1, _) = io_plus_parse("All Objects", scale, 2);
        let (t4, _) = io_plus_parse("All Objects", scale, 8);
        assert!(t4 < t1, "8 procs {t4} should beat 2 procs {t1}");
    }

    #[test]
    fn render_has_both_series() {
        let s = run(
            Scale {
                denominator: 500_000,
            },
            true,
        );
        assert!(s.contains("All Nodes"));
        assert!(s.contains("All Objects"));
    }
}
