//! Figure 20: execution-time breakdown for distributed spatial indexing
//! of Road Network (137 GB, 717 M edges) over 2048 grid cells —
//! "indexing of 717M edges takes only 90 seconds" with 320 processes.

use super::{cost_scaled, gpfs_scaled, install_dataset, spec, Scale};
use crate::report::Table;
use mvio_core::grid::{CellMap, GridSpec};
use mvio_core::partition::ReadOptions;
use mvio_msim::{Topology, World, WorldConfig};
use mvio_pfs::SimFs;
use mvio_sjoin::{build_distributed_index, PhaseBreakdown};

/// Runs one distributed-indexing job; returns `(breakdown, total indexed)`.
pub fn index_run(scale: Scale, procs: usize, cells_per_side: u32) -> (PhaseBreakdown, u64) {
    let fs = SimFs::new(gpfs_scaled(scale));
    let nodes = procs.div_ceil(20).max(1);
    let topo = Topology::new(nodes, procs.div_ceil(nodes));
    fs.set_active_ranks(topo.ranks());
    install_dataset(&fs, &spec("Road Network"), scale, "roadnet.wkt", None);
    let cfg = WorldConfig::new(topo).with_cost(cost_scaled(scale));
    let out = World::run(cfg, move |comm| {
        let rep = build_distributed_index(
            comm,
            &fs,
            "roadnet.wkt",
            GridSpec::square(cells_per_side),
            mvio_core::decomp::DecompPolicy::Uniform(CellMap::RoundRobin),
            &ReadOptions::default(),
        )
        .unwrap();
        (rep.breakdown, rep.indexed)
    });
    let indexed: u64 = out.iter().map(|(_, n)| n).sum();
    (out[0].0, indexed)
}

/// Runs the Figure 20 sweep and renders the table.
pub fn run(scale: Scale, quick: bool) -> String {
    // 2048 cells ≈ 45x45 grid; quick mode shrinks everything.
    let side: u32 = if quick { 8 } else { 45 };
    let procs_sweep: Vec<usize> = if quick {
        vec![4, 8]
    } else {
        vec![80, 160, 320]
    };
    let mut t = Table::new(
        format!(
            "Figure 20: indexing breakdown, Road Network over {} cells (scaled 1/{})",
            side * side,
            scale.denominator
        ),
        &[
            "procs",
            "partition (s)",
            "comm (s)",
            "indexing (s)",
            "total (s)",
            "edges indexed",
        ],
    );
    let d = scale.denominator as f64;
    for procs in procs_sweep {
        let (b, indexed) = index_run(scale, procs, side);
        t.row(vec![
            procs.to_string(),
            format!("{:.2}", b.partition * d),
            format!("{:.2}", b.communication * d),
            format!("{:.2}", b.compute * d),
            format!("{:.2}", b.total * d),
            indexed.to_string(),
        ]);
    }
    t.note(
        "paper: every phase improves with process count; 717M edges index in ~90 s at 320 procs",
    );
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_phases_improve_with_processes() {
        let scale = Scale {
            denominator: 20_000,
        };
        let (b2, n2) = index_run(scale, 2, 8);
        let (b8, n8) = index_run(scale, 8, 8);
        assert_eq!(n2, n8, "indexed count is invariant");
        assert!(
            b8.partition < b2.partition,
            "partition {} -> {}",
            b2.partition,
            b8.partition
        );
        assert!(b8.total < b2.total, "total {} -> {}", b2.total, b8.total);
    }

    #[test]
    fn full_scale_estimate_lands_near_paper_magnitude() {
        // The headline: 137 GB / 717 M edges indexed in ~90 s at 320
        // procs. Our full-scale-equivalent total should land within the
        // same order of magnitude (tens to a few hundred seconds).
        let scale = Scale {
            denominator: 50_000,
        };
        let (b, _) = index_run(scale, 320, 16);
        let full = b.total * scale.denominator as f64;
        assert!(
            (10.0..1000.0).contains(&full),
            "full-scale-equivalent indexing time {full:.1}s should be within 10x of the paper's 90s"
        );
    }
}
