//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p mvio-bench --bin repro -- all
//! cargo run --release -p mvio-bench --bin repro -- fig8 fig11
//! cargo run --release -p mvio-bench --bin repro -- --scale 10000 fig17
//! cargo run --release -p mvio-bench --bin repro -- --quick all
//! ```
//!
//! `--scale D` sets the workload denominator (default 1000 = 1/1000 of the
//! paper's dataset sizes). `--quick` trims the sweeps for smoke runs.
//! `--list` prints the valid experiment names. The special target `gate`
//! runs the bench-regression gate (tracked speedup ratios vs their
//! asserted floors; ignores `--scale`/`--quick`) and exits nonzero on a
//! regression. An unknown experiment name is rejected up front with a
//! usage message and a nonzero exit — nothing runs.

use mvio_bench::experiments::{self as ex, Scale};

const IDS: [&str; 27] = [
    "pipeline",
    "decomp",
    "exchange",
    "io",
    "serve",
    "refine",
    "rebalance",
    "table1",
    "table2",
    "table3",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "fig18",
    "fig19",
    "fig20",
    "baseline",
    "ablation-maps",
    "ablation-windows",
    "ablation-blocks",
];

fn dispatch(id: &str, scale: Scale, quick: bool) -> Option<String> {
    Some(match id {
        "pipeline" => ex::pipeline::run(scale, quick),
        "decomp" => ex::decomp::run(scale, quick),
        "exchange" => ex::exchange::run(scale, quick),
        "io" => ex::io::run(scale, quick),
        "serve" => ex::serve::run(scale, quick),
        "refine" => ex::refine::run(scale, quick),
        "rebalance" => ex::rebalance::run(scale, quick),
        "table1" => ex::table1::run(scale, quick),
        "table2" => ex::table2::run(scale, quick),
        "table3" => ex::table3::run(scale, quick),
        "fig8" => ex::fig08::run(scale, quick),
        "fig9" => ex::fig09::run(scale, quick),
        "fig10" => ex::fig10::run(scale, quick),
        "fig11" => ex::fig11::run(scale, quick),
        "fig12" => ex::fig12::run(scale, quick),
        "fig13" => ex::fig13::run(scale, quick),
        "fig14" => ex::fig14::run(scale, quick),
        "fig15" => ex::fig15::run(scale, quick),
        "fig16" => ex::fig16::run(scale, quick),
        "fig17" => ex::fig17::run(scale, quick),
        "fig18" => ex::fig18::run(scale, quick),
        "fig19" => ex::fig19::run(scale, quick),
        "fig20" => ex::fig20::run(scale, quick),
        "baseline" => ex::baseline::run(scale, quick),
        "ablation-maps" => ex::ablation::maps(scale, quick),
        "ablation-windows" => ex::ablation::windows(scale, quick),
        "ablation-blocks" => ex::ablation::blocks(scale, quick),
        _ => return None,
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::default_repro();
    let mut quick = false;
    let mut targets: Vec<String> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let d: u64 = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("missing/invalid --scale value"));
                scale = Scale {
                    denominator: d.max(1),
                };
            }
            "--quick" => quick = true,
            "--help" | "-h" => usage(""),
            "--list" => {
                for id in IDS {
                    println!("{id}");
                }
                println!("gate");
                return;
            }
            "all" => targets.extend(IDS.iter().map(|s| s.to_string())),
            other => targets.push(other.to_string()),
        }
        i += 1;
    }
    if targets.is_empty() {
        usage("no experiment selected");
    }
    targets.dedup();
    // Reject unknown names before running anything: a typo'd batch job
    // must fail fast, not after an hour of the experiments it did spell
    // correctly.
    if let Some(bad) = targets
        .iter()
        .find(|t| *t != "gate" && !IDS.contains(&t.as_str()))
    {
        usage(&format!("unknown experiment {bad:?}"));
    }

    println!(
        "MPI-Vector-IO reproduction — scale 1/{}, {} mode\n",
        scale.denominator,
        if quick { "quick" } else { "full" }
    );
    let mut failed = false;
    for id in &targets {
        if id == "gate" {
            let (out, pass) = ex::gate::run();
            println!("{out}");
            failed |= !pass;
            continue;
        }
        match dispatch(id, scale, quick) {
            Some(out) => println!("{out}"),
            None => unreachable!("targets validated above"),
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!("usage: repro [--scale D] [--quick] [--list] <experiment...|all|gate>");
    eprintln!("experiments: {IDS:?}");
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}
