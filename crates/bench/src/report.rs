//! Minimal fixed-width table rendering for experiment output.

/// A printable results table.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a free-form note printed under the table (used for the
    /// paper-expectation commentary).
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }
}

/// Formats a byte count as a human-readable size.
pub fn human_bytes(b: u64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b as f64;
    let mut u = 0;
    while v >= 1024.0 && u < UNITS.len() - 1 {
        v /= 1024.0;
        u += 1;
    }
    if u == 0 {
        format!("{b} B")
    } else {
        format!("{v:.1} {}", UNITS[u])
    }
}

/// Formats a bandwidth in GB/s.
pub fn gbps(bytes: u64, seconds: f64) -> String {
    format!("{:.2}", bytes as f64 / seconds.max(1e-12) / 1e9)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["nodes", "GB/s"]);
        t.row(vec!["4".into(), "1.92".into()]);
        t.row(vec!["48".into(), "22.01".into()]);
        t.note("peak expected near 48 nodes");
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("nodes"));
        assert!(s.contains("22.01"));
        assert!(s.contains("note: peak"));
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.0 KiB");
        assert_eq!(human_bytes(92 << 30), "92.0 GiB");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
