//! # mvio-bench — the table/figure reproduction harness
//!
//! One entry point per table and figure of the paper's evaluation
//! (Section 5). Each experiment:
//!
//! * synthesizes the paper's workload at a configurable scale
//!   (`1/denominator` of the full dataset size — the default `1000`
//!   keeps every experiment laptop-sized while preserving the shape
//!   statistics the result depends on);
//! * runs the same code path the paper ran (same access level, same
//!   strategy, same sweep axes);
//! * prints the rows/series the paper plots, in virtual seconds / GB/s,
//!   alongside the paper's qualitative expectation so the reader can
//!   check the *shape* at a glance.
//!
//! Run them via the `repro` binary: `cargo run --release -p mvio-bench
//! --bin repro -- fig8` (or `all`).

pub mod experiments;
pub mod report;

pub use experiments::Scale;
