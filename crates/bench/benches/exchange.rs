//! Criterion micro-benchmarks of the staged exchange: host wall-clock
//! cost of the blocking single-round protocol versus the chunked
//! [`ExchangePlan`] at several chunk sizes, on one simulated 4-rank
//! world. (On a shared-memory host the chunked plan mostly measures the
//! per-round protocol overhead — the splitter walk, the extra size
//! exchanges, the per-round deserialize — since the "network" is a
//! memcpy; the deterministic virtual-time overlap win is reported by
//! `repro -- exchange`.)

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mvio_core::decomp::UniformDecomposition;
use mvio_core::exchange::{exchange_features, ExchangeChunk, ExchangeOptions};
use mvio_core::grid::{CellMap, GridSpec, UniformGrid};
use mvio_core::Feature;
use mvio_geom::{Geometry, Point, Rect};
use mvio_msim::{Topology, World, WorldConfig};
use std::sync::Arc;

const RANKS: usize = 4;
const CELLS: u32 = 12;

/// Per-rank pair list: every rank contributes userdata-weighted points
/// across every cell, so each destination receives a multi-record stream
/// the chunked plan can split.
fn pairs_for(rank: usize, per_cell: usize) -> Vec<(u32, Feature)> {
    let num_cells = CELLS * CELLS;
    (0..num_cells)
        .flat_map(move |c| {
            (0..per_cell).map(move |i| {
                (
                    c,
                    Feature::with_userdata(
                        Geometry::Point(Point::new(c as f64, i as f64)),
                        format!("r{rank}c{c}i{i}:{}", "x".repeat(96)),
                    ),
                )
            })
        })
        .collect()
}

fn decomp() -> UniformDecomposition {
    UniformDecomposition::new(
        UniformGrid::new(Rect::new(0.0, 0.0, CELLS as f64, CELLS as f64), {
            GridSpec::square(CELLS)
        }),
        CellMap::RoundRobin,
        RANKS,
    )
}

fn bench_exchange(c: &mut Criterion) {
    let per_cell = 6;
    let inputs: Arc<Vec<Vec<(u32, Feature)>>> =
        Arc::new((0..RANKS).map(|r| pairs_for(r, per_cell)).collect());
    let bytes: u64 = inputs
        .iter()
        .flatten()
        .map(|(_, f)| f.userdata.len() as u64 + 64)
        .sum();
    let mut g = c.benchmark_group("exchange");
    g.sample_size(10);
    g.throughput(Throughput::Bytes(bytes));
    for (label, chunk) in [
        ("blocking", ExchangeChunk::Unlimited),
        ("chunk-64KiB", ExchangeChunk::Bytes(64 << 10)),
        ("chunk-8KiB", ExchangeChunk::Bytes(8 << 10)),
    ] {
        let opts = ExchangeOptions::with_chunk(chunk);
        g.bench_function(label, |b| {
            b.iter(|| {
                let inputs = Arc::clone(&inputs);
                let out = World::run(
                    WorldConfig::new(Topology::single_node(RANKS)),
                    move |comm| {
                        let d = decomp();
                        let pairs = inputs[comm.rank()].clone();
                        let (mine, stats) = exchange_features(comm, pairs, &d, &opts).unwrap();
                        (mine.len(), stats.rounds)
                    },
                );
                black_box(out)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_exchange);
criterion_main!(benches);
