//! Criterion micro-benchmarks of the spatial decompositions: wall-clock
//! cost of building each policy and of the fused cell-map/serialize stage
//! routed through it, on a clustered (skewed) feature set. The
//! deterministic virtual-time and load-imbalance comparison lives in
//! `repro -- decomp`; this measures the host-side overhead of the
//! policies themselves (table lookups vs arithmetic round-robin).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mvio_core::decomp::{
    AdaptiveBisection, HilbertDecomposition, SpatialDecomposition, UniformDecomposition,
};
use mvio_core::grid::{CellMap, GridSpec, UniformGrid};
use mvio_core::pipeline::{partition_chunked, PipelineOptions};
use mvio_core::reader::{parse_buffer_serial, WktLineParser};
use mvio_core::Feature;
use mvio_geom::Rect;
use mvio_msim::{Topology, World, WorldConfig};
use std::sync::Arc;

const RANKS: usize = 4;

/// A clustered synthetic layer: most features piled into one corner
/// hotspot, the remainder spread out — the skew the adaptive policy
/// targets.
fn clustered_features(records: usize) -> Vec<Feature> {
    let mut text = String::new();
    for i in 0..records {
        let (x, y) = if i % 4 != 0 {
            // Hotspot: a tight pile near the origin.
            ((i % 13) as f64 * 0.08, ((i / 13) % 11) as f64 * 0.09)
        } else {
            // Background: spread over the full extent.
            ((i % 53) as f64 * 1.8, ((i / 53) % 37) as f64 * 2.5)
        };
        text.push_str(&format!(
            "POLYGON (({x} {y}, {} {y}, {} {}, {x} {}, {x} {y}))\tf-{i}\n",
            x + 0.6,
            x + 0.6,
            y + 0.5,
            y + 0.5
        ));
    }
    parse_buffer_serial(&text, &WktLineParser).unwrap()
}

fn grid(spec: GridSpec) -> UniformGrid {
    UniformGrid::new(Rect::new(0.0, 0.0, 96.0, 93.0), spec)
}

/// Per-cell reference-corner histogram for the adaptive build.
fn histogram(g: &UniformGrid, feats: &[Feature]) -> Vec<u64> {
    let mut counts = vec![0u64; g.num_cells() as usize];
    for f in feats {
        let env = f.geometry.envelope();
        let corner = Rect::new(env.min_x, env.min_y, env.min_x, env.min_y);
        if let Some(&c) = g.cells_overlapping(&corner).first() {
            counts[c as usize] += 1;
        }
    }
    counts
}

fn mk_decomp(name: &str, feats: &[Feature]) -> Box<dyn SpatialDecomposition> {
    let base = GridSpec::square(16);
    match name {
        "uniform" => Box::new(UniformDecomposition::new(
            grid(base),
            CellMap::RoundRobin,
            RANKS,
        )),
        "hilbert" => Box::new(HilbertDecomposition::new(grid(base), RANKS)),
        _ => {
            let g = grid(GridSpec::square(128));
            let counts = histogram(&g, feats);
            Box::new(AdaptiveBisection::from_counts(g, &counts, RANKS))
        }
    }
}

fn bench_build(c: &mut Criterion) {
    let feats = clustered_features(4000);
    let mut g = c.benchmark_group("decomp_build");
    for name in ["uniform", "hilbert", "adaptive"] {
        g.bench_function(name, |b| {
            b.iter(|| black_box(mk_decomp(name, &feats).num_cells()))
        });
    }
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let feats = Arc::new(clustered_features(4000));
    let mut g = c.benchmark_group("decomp_partition");
    g.throughput(Throughput::Elements(feats.len() as u64));
    for name in ["uniform", "hilbert", "adaptive"] {
        let feats = Arc::clone(&feats);
        g.bench_function(name, |b| {
            b.iter(|| {
                let feats = Arc::clone(&feats);
                World::run(
                    WorldConfig::new(Topology::single_node(RANKS)),
                    move |comm| {
                        let decomp = mk_decomp(name, &feats);
                        let opts = PipelineOptions::default()
                            .with_workers(1)
                            .with_partition_chunk_records(512);
                        let (batch, _) = partition_chunked(comm, &*decomp, &feats, &opts).unwrap();
                        black_box(batch.bufs.iter().map(|b| b.len()).sum::<usize>())
                    },
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_build, bench_partition);
criterion_main!(benches);
