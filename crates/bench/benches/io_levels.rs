//! Criterion benchmarks of the MPI-IO access levels (wall-clock cost of
//! the simulator itself, plus the virtual-time outputs as a side effect).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mvio_bench::experiments::fig08::bandwidth_contiguous;
use mvio_bench::experiments::Scale;
use mvio_msim::AccessLevel;
use mvio_pfs::StripeSpec;

fn bench_levels(c: &mut Criterion) {
    let scale = Scale {
        denominator: 200_000,
    };
    let stripe = StripeSpec::new(16, scale.block(32 << 20));
    let mut group = c.benchmark_group("io_levels");
    group.sample_size(10);
    group.bench_function("level0_roads_8ranks", |b| {
        b.iter(|| {
            let (bytes, t) = bandwidth_contiguous(
                "Roads",
                scale,
                2,
                4,
                stripe,
                stripe.size,
                AccessLevel::Level0,
                1,
            );
            black_box((bytes, t))
        })
    });
    group.bench_function("level1_roads_8ranks", |b| {
        b.iter(|| {
            let (bytes, t) = bandwidth_contiguous(
                "Roads",
                scale,
                2,
                4,
                stripe,
                stripe.size,
                AccessLevel::Level1,
                1,
            );
            black_box((bytes, t))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_levels);
criterion_main!(benches);
