//! Criterion benchmarks of the spatial reduction operators (Figure 13's
//! machinery) and the collective hub.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mvio_bench::experiments::fig13::{union_collective, Collective};
use mvio_bench::experiments::Scale;
use mvio_core::spops::UnionRect;
use mvio_geom::Rect;
use mvio_msim::{ReduceOp, Topology, World, WorldConfig};

fn bench_union_collectives(c: &mut Criterion) {
    let scale = Scale::default_repro();
    let mut group = c.benchmark_group("spatial_reductions");
    group.sample_size(10);
    group.bench_function("reduce_union_8ranks_10k_rects", |b| {
        b.iter(|| black_box(union_collective(scale, 8, 10_000, Collective::Reduce)))
    });
    group.bench_function("scan_union_8ranks_10k_rects", |b| {
        b.iter(|| black_box(union_collective(scale, 8, 10_000, Collective::Scan)))
    });
    group.finish();
}

fn bench_rect_union_op(c: &mut Criterion) {
    let rects: Vec<Rect> = (0..10_000)
        .map(|i| {
            let x = (i % 100) as f64;
            let y = (i / 100) as f64;
            Rect::new(x, y, x + 1.5, y + 1.5)
        })
        .collect();
    c.bench_function("rect_union_fold_10k", |b| {
        b.iter(|| {
            let u = UnionRect;
            let acc = rects
                .iter()
                .fold(Rect::EMPTY, |a, r| u.combine(&a, black_box(r)));
            black_box(acc)
        })
    });
}

fn bench_collective_hub(c: &mut Criterion) {
    let mut group = c.benchmark_group("collective_hub");
    group.sample_size(10);
    group.bench_function("allreduce_64ranks", |b| {
        b.iter(|| {
            let out = World::run(WorldConfig::new(Topology::new(4, 16)), |comm| {
                comm.allreduce_u64(comm.rank() as u64, |a, b| a + b)
            });
            black_box(out[0])
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_union_collectives,
    bench_rect_union_op,
    bench_collective_hub
);
criterion_main!(benches);
