//! Criterion micro-benchmarks of the streaming ingest pipeline: wall-clock
//! cost of the chunked parallel parse and the fused cell-map + serialize
//! stage at several worker counts. (On a single hardware thread the worker
//! sweep mostly measures the fan-out overhead; the deterministic
//! virtual-time speedup is reported by `repro -- pipeline`.)

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mvio_core::decomp::UniformDecomposition;
use mvio_core::grid::{CellMap, GridSpec, UniformGrid};
use mvio_core::pipeline::{parse_chunked, partition_chunked, PipelineOptions};
use mvio_core::reader::{parse_buffer_serial, WktLineParser};
use mvio_geom::Rect;
use mvio_msim::{Topology, World, WorldConfig};
use std::sync::Arc;

fn sample_text(records: usize) -> String {
    let mut text = String::new();
    for i in 0..records {
        let x = (i % 64) as f64 * 0.8;
        let y = (i / 64) as f64 * 1.2;
        text.push_str(&format!(
            "POLYGON (({x} {y}, {} {y}, {} {}, {x} {}, {x} {y}))\tpoly-{i}\n",
            x + 1.4,
            x + 1.4,
            y + 0.9,
            y + 0.9
        ));
    }
    text
}

fn bench_parse(c: &mut Criterion) {
    // Arc-shared input: iterations clone a pointer, not the payload, so
    // the reported throughput measures the pipeline rather than memcpy.
    let text = Arc::new(sample_text(4000));
    let mut g = c.benchmark_group("pipeline_parse");
    g.throughput(Throughput::Bytes(text.len() as u64));
    for workers in [1usize, 2, 4] {
        let opts = PipelineOptions::default()
            .with_workers(workers)
            .with_parse_chunk_bytes(16 << 10);
        g.bench_function(&format!("workers/{workers}"), |b| {
            b.iter(|| {
                let text = Arc::clone(&text);
                World::run(WorldConfig::new(Topology::single_node(1)), move |comm| {
                    parse_chunked(comm, &text, &WktLineParser, &opts)
                        .unwrap()
                        .0
                        .len()
                })
            })
        });
    }
    g.finish();
}

fn bench_partition(c: &mut Criterion) {
    let text = sample_text(4000);
    let feats = Arc::new(parse_buffer_serial(&text, &WktLineParser).unwrap());
    let mut g = c.benchmark_group("pipeline_partition");
    g.throughput(Throughput::Elements(feats.len() as u64));
    for workers in [1usize, 2, 4] {
        let opts = PipelineOptions::default()
            .with_workers(workers)
            .with_partition_chunk_records(512);
        let feats = Arc::clone(&feats);
        g.bench_function(&format!("workers/{workers}"), |b| {
            b.iter(|| {
                let feats = Arc::clone(&feats);
                World::run(WorldConfig::new(Topology::single_node(4)), move |comm| {
                    let decomp = UniformDecomposition::new(
                        UniformGrid::new(Rect::new(0.0, 0.0, 60.0, 80.0), GridSpec::square(16)),
                        CellMap::RoundRobin,
                        comm.size(),
                    );
                    let (batch, _) = partition_chunked(comm, &decomp, &feats, &opts).unwrap();
                    black_box(batch.bufs.iter().map(|b| b.len()).sum::<usize>())
                })
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_parse, bench_partition);
criterion_main!(benches);
