//! Criterion micro-benchmarks of the zero-copy read path: borrowed WKB
//! views versus the owned decoder, and the batched MBR/refine kernels
//! versus their scalar per-candidate equivalents. These are the real-CPU
//! hot paths behind the `refine` repro experiment's virtual-time ratio.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mvio_geom::refkernel::{envelope_batch, filter_pairs_batch, RefineArena};
use mvio_geom::wkb::{self, GeomRef};
use mvio_geom::{Geometry, LineString, Point, Polygon, Rect};

/// A closed lattice ring with exactly `verts` stored vertices: a zigzag
/// walk over a unit grid, the dense-geometry shape the tentpole's
/// acceptance bar measures (500-vertex lattice).
fn lattice_polygon(verts: usize, origin: (f64, f64)) -> Geometry {
    let half = verts / 2;
    let mut pts = Vec::with_capacity(verts + 1);
    // Out along a comb profile, back along the baseline.
    for i in 0..half {
        let x = origin.0 + i as f64;
        let y = origin.1 + if i % 2 == 0 { 0.5 } else { 1.5 };
        pts.push(Point::new(x, y));
    }
    for i in (0..(verts - half)).rev() {
        let x = origin.0 + i as f64 * (half as f64 / (verts - half) as f64);
        pts.push(Point::new(x, origin.1));
    }
    pts.push(pts[0]);
    Geometry::Polygon(Polygon::from_coords(pts, vec![]).expect("lattice ring valid"))
}

/// A lattice polyline with `verts` vertices.
fn lattice_linestring(verts: usize, origin: (f64, f64)) -> Geometry {
    let pts: Vec<Point> = (0..verts)
        .map(|i| {
            Point::new(
                origin.0 + i as f64,
                origin.1 + if i % 2 == 0 { 0.0 } else { 1.0 },
            )
        })
        .collect();
    Geometry::LineString(LineString::new(pts).expect("lattice polyline valid"))
}

fn lattice_corpus(n: usize, verts: usize) -> Vec<Geometry> {
    (0..n)
        .map(|i| {
            let origin = ((i % 16) as f64 * 600.0, (i / 16) as f64 * 600.0);
            if i % 2 == 0 {
                lattice_polygon(verts, origin)
            } else {
                lattice_linestring(verts, origin)
            }
        })
        .collect()
}

/// The acceptance-bar comparison: decoding 500-vertex lattice geometries
/// as borrowed views must beat the allocating owned decoder by ≥ 1.3×.
/// Both sides run the identical validation walk (type markers, counts,
/// per-coordinate finiteness, ring closure) and report the same vertex
/// count; the delta is the buffer allocation and 16-bytes-per-vertex
/// copy that only the owned path performs.
fn bench_decode_ref_vs_decode(c: &mut Criterion) {
    let geoms = lattice_corpus(64, 500);
    let encoded: Vec<Vec<u8>> = geoms.iter().map(wkb::encode).collect();
    let bytes: u64 = encoded.iter().map(|b| b.len() as u64).sum();

    let mut group = c.benchmark_group("zerocopy_decode_500v_lattice");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("decode_owned", |b| {
        b.iter(|| {
            let mut pts = 0usize;
            for e in &encoded {
                let (g, _) = wkb::decode(black_box(e)).unwrap();
                pts += g.num_points();
            }
            black_box(pts)
        })
    });
    group.bench_function("decode_ref", |b| {
        b.iter(|| {
            let mut pts = 0usize;
            for e in &encoded {
                let (g, _) = wkb::decode_ref(black_box(e)).unwrap();
                pts += g.num_points();
            }
            black_box(pts)
        })
    });
    group.finish();
}

/// Batched MBR computation over borrowed views versus the per-candidate
/// scalar recompute the pre-hoist join performed (envelope on every
/// candidate hit instead of once per record).
fn bench_envelope_batch(c: &mut Criterion) {
    let geoms = lattice_corpus(256, 64);
    let encoded: Vec<Vec<u8>> = geoms.iter().map(wkb::encode).collect();
    let views: Vec<GeomRef<'_>> = encoded
        .iter()
        .map(|e| wkb::decode_ref(e).unwrap().0)
        .collect();

    let mut group = c.benchmark_group("zerocopy_mbr_kernels");
    group.throughput(Throughput::Elements(views.len() as u64));
    group.bench_function("envelope_scalar_per_candidate", |b| {
        // Each record's MBR recomputed 8 times, as a candidate loop
        // without the hoist would.
        b.iter(|| {
            let mut acc = Rect::EMPTY;
            for _ in 0..8 {
                for g in &views {
                    acc = acc.union(&black_box(g).envelope());
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("envelope_batch_hoisted", |b| {
        let mut mbrs = Vec::new();
        b.iter(|| {
            envelope_batch(black_box(&views), &mut mbrs);
            let mut acc = Rect::EMPTY;
            for _ in 0..8 {
                for r in &mbrs {
                    acc = acc.union(black_box(r));
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

/// The candidate filter: batched MBR + claim pass over index pairs
/// versus the scalar decode-and-test equivalent, plus the arena's
/// recycled materialization versus fresh allocation per survivor.
fn bench_filter_and_arena(c: &mut Criterion) {
    let geoms = lattice_corpus(128, 64);
    let encoded: Vec<Vec<u8>> = geoms.iter().map(wkb::encode).collect();
    let views: Vec<GeomRef<'_>> = encoded
        .iter()
        .map(|e| wkb::decode_ref(e).unwrap().0)
        .collect();
    let mut mbrs = Vec::new();
    envelope_batch(&views, &mut mbrs);
    let candidates: Vec<(usize, usize)> = (0..views.len())
        .flat_map(|i| (0..views.len()).step_by(7).map(move |j| (i, j)))
        .collect();
    let cell = Rect::new(-1e9, -1e9, 1e9, 1e9);

    let mut group = c.benchmark_group("zerocopy_refine_kernels");
    group.throughput(Throughput::Elements(candidates.len() as u64));
    group.bench_function("filter_scalar", |b| {
        b.iter(|| {
            let mut out = Vec::new();
            for &(li, ri) in black_box(&candidates) {
                let a = views[li].envelope();
                let bb = views[ri].envelope();
                if a.intersects(&bb) {
                    let i = a.intersection(&bb);
                    if cell.contains_point(&Point::new(i.min_x, i.min_y)) {
                        out.push((li, ri));
                    }
                }
            }
            black_box(out.len())
        })
    });
    group.bench_function("filter_pairs_batch", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            filter_pairs_batch(
                black_box(&candidates),
                &mbrs,
                &mbrs,
                |a, bb| {
                    let i = a.intersection(bb);
                    cell.contains_point(&Point::new(i.min_x, i.min_y))
                },
                &mut out,
            );
            black_box(out.len())
        })
    });
    group.bench_function("materialize_fresh", |b| {
        b.iter(|| {
            let mut pts = 0usize;
            for e in &encoded {
                let (g, _) = wkb::decode(black_box(e)).unwrap();
                pts += g.num_points();
            }
            black_box(pts)
        })
    });
    group.bench_function("materialize_arena_recycled", |b| {
        let mut arena = RefineArena::new();
        b.iter(|| {
            let mut pts = 0usize;
            for g in &views {
                let owned = arena.materialize(black_box(g));
                pts += owned.num_points();
                arena.recycle(owned);
            }
            black_box(pts)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_decode_ref_vs_decode,
    bench_envelope_batch,
    bench_filter_and_arena
);
criterion_main!(benches);
