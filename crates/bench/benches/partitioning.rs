//! Criterion benchmarks of the file-partitioning strategies (Figure 10's
//! contenders) and the grid exchange.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use mvio_bench::experiments::fig10::partition_time;
use mvio_bench::experiments::fig17::join_run;
use mvio_bench::experiments::Scale;
use mvio_core::partition::BoundaryStrategy;

fn bench_strategies(c: &mut Criterion) {
    let scale = Scale {
        denominator: 100_000,
    };
    let mut group = c.benchmark_group("partitioning");
    group.sample_size(10);
    group.bench_function("message_lakes_8ranks", |b| {
        b.iter(|| black_box(partition_time(scale, 2, 4, 8, BoundaryStrategy::Message)))
    });
    group.bench_function("overlap_lakes_8ranks", |b| {
        b.iter(|| black_box(partition_time(scale, 2, 4, 8, BoundaryStrategy::Overlap)))
    });
    group.finish();
}

fn bench_join_pipeline(c: &mut Criterion) {
    let scale = Scale {
        denominator: 100_000,
    };
    let mut group = c.benchmark_group("join_pipeline");
    group.sample_size(10);
    group.bench_function("lakes_cemetery_8ranks", |b| {
        b.iter(|| black_box(join_run(scale, "Lakes", "Cemetery", 8, 8)))
    });
    group.finish();
}

criterion_group!(benches, bench_strategies, bench_join_pipeline);
criterion_main!(benches);
