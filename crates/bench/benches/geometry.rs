//! Criterion micro-benchmarks of the geometry engine: the real-CPU hot
//! paths behind Table 3's parsing and the join's refine phase.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use mvio_datagen::{ShapeGen, SpatialDistribution};
use mvio_geom::index::RTree;
use mvio_geom::{algo, wkb, wkt, Geometry, Rect};

fn sample_polygons(n: usize) -> Vec<Geometry> {
    let mut sampler = SpatialDistribution::Uniform.sampler(Rect::new(0.0, 0.0, 100.0, 100.0), 42);
    let gen = ShapeGen::lake_polygons();
    (0..n)
        .map(|_| Geometry::Polygon(gen.polygon(&mut sampler)))
        .collect()
}

fn bench_wkt(c: &mut Criterion) {
    let geoms = sample_polygons(200);
    let text: String = geoms
        .iter()
        .map(|g| {
            let mut s = wkt::write(g);
            s.push('\n');
            s
        })
        .collect();
    let bytes = text.len() as u64;

    let mut group = c.benchmark_group("wkt");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("parse_polygons", |b| {
        b.iter(|| {
            let parsed = wkt::parse_many(black_box(&text)).unwrap();
            black_box(parsed.len())
        })
    });
    group.bench_function("write_polygons", |b| {
        b.iter(|| {
            let mut out = String::with_capacity(text.len());
            for g in &geoms {
                wkt::write_to(black_box(g), &mut out);
                out.push('\n');
            }
            black_box(out.len())
        })
    });
    group.finish();
}

fn bench_wkb(c: &mut Criterion) {
    let geoms = sample_polygons(200);
    let encoded: Vec<Vec<u8>> = geoms.iter().map(wkb::encode).collect();
    let bytes: u64 = encoded.iter().map(|b| b.len() as u64).sum();

    let mut group = c.benchmark_group("wkb");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("encode", |b| {
        b.iter(|| {
            let mut total = 0;
            for g in &geoms {
                total += wkb::encode(black_box(g)).len();
            }
            black_box(total)
        })
    });
    group.bench_function("decode", |b| {
        b.iter(|| {
            let mut total = 0;
            for e in &encoded {
                total += wkb::decode(black_box(e)).unwrap().0.num_points();
            }
            black_box(total)
        })
    });
    group.finish();
}

fn bench_refine(c: &mut Criterion) {
    let geoms = sample_polygons(64);
    let mut group = c.benchmark_group("refine");
    group.bench_function("intersects_all_pairs", |b| {
        b.iter(|| {
            let mut hits = 0;
            for a in &geoms {
                for bb in &geoms {
                    if algo::intersects(black_box(a), black_box(bb)) {
                        hits += 1;
                    }
                }
            }
            black_box(hits)
        })
    });
    group.finish();
}

fn bench_rtree(c: &mut Criterion) {
    let items: Vec<(Rect, usize)> = sample_polygons(2000)
        .iter()
        .enumerate()
        .map(|(i, g)| (g.envelope(), i))
        .collect();
    let tree = RTree::bulk_load(items.clone());
    let probes: Vec<Rect> = items
        .iter()
        .map(|(r, _)| r.buffered(0.5))
        .take(256)
        .collect();

    let mut group = c.benchmark_group("rtree");
    group.bench_function("bulk_load_2000", |b| {
        b.iter(|| black_box(RTree::bulk_load(black_box(items.clone())).len()))
    });
    group.bench_function("query_256_probes", |b| {
        b.iter(|| {
            let mut n = 0;
            for p in &probes {
                n += tree.count(black_box(p));
            }
            black_box(n)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_wkt, bench_wkb, bench_refine, bench_rtree);
criterion_main!(benches);
