//! Smoke tests of the `repro` binary's CLI contract: `--list` prints the
//! experiment names, and an unknown experiment fails fast with a usage
//! message instead of running whatever else was spelled correctly.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn list_prints_every_experiment_name() {
    let out = repro().arg("--list").output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for id in [
        "pipeline", "decomp", "exchange", "io", "serve", "fig8", "table1", "gate",
    ] {
        assert!(
            text.lines().any(|l| l == id),
            "{id} missing from --list output:\n{text}"
        );
    }
}

#[test]
fn unknown_experiment_exits_nonzero_with_usage_before_running_anything() {
    let out = repro()
        .args(["fig8", "not-an-experiment"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("unknown experiment"), "stderr: {err}");
    assert!(err.contains("usage:"), "stderr: {err}");
    assert!(
        err.contains("\"io\""),
        "usage must list the valid names: {err}"
    );
    // The correctly-spelled fig8 must NOT have run: validation happens
    // before dispatch.
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        !stdout.contains("=="),
        "no experiment table expected, got:\n{stdout}"
    );
}

#[test]
fn no_arguments_is_a_usage_error() {
    let out = repro().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("no experiment selected"));
}
