//! Spatial placement distributions: uniform and Zipf-clustered.

use mvio_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Where feature centers land in the world rectangle.
#[derive(Debug, Clone)]
pub enum SpatialDistribution {
    /// Uniform over the world.
    Uniform,
    /// `clusters` Gaussian hotspots with Zipf(`skew`) weights — the
    /// real-data skew ("real data distribution is often skewed", §1).
    Clustered {
        clusters: usize,
        skew: f64,
        spread: f64,
    },
}

impl SpatialDistribution {
    /// A deterministic sampler over `world` from `seed` (cluster centers
    /// and jitter both derive from it).
    pub fn sampler(&self, world: Rect, seed: u64) -> PlacementSampler {
        self.sampler_with_centers(world, seed ^ 0x9E37_79B9_7F4A_7C15, seed)
    }

    /// A sampler whose cluster *centers* come from `center_seed` while the
    /// per-feature jitter comes from `jitter_seed`. Datasets generated
    /// with the same `center_seed` share hotspots — how the catalog makes
    /// cemeteries actually sit near lakes, as they do in OSM.
    pub fn sampler_with_centers(
        &self,
        world: Rect,
        center_seed: u64,
        jitter_seed: u64,
    ) -> PlacementSampler {
        let mut rng = StdRng::seed_from_u64(center_seed);
        let centers = match self {
            SpatialDistribution::Uniform => Vec::new(),
            SpatialDistribution::Clustered {
                clusters,
                skew,
                spread,
            } => {
                let mut cum = Vec::with_capacity(*clusters);
                let mut total = 0.0;
                for k in 0..*clusters {
                    total += 1.0 / ((k + 1) as f64).powf(*skew);
                    cum.push(total);
                }
                for c in cum.iter_mut() {
                    *c /= total;
                }
                (0..*clusters)
                    .map(|k| ClusterCenter {
                        at: Point::new(
                            rng.gen_range(world.min_x..world.max_x),
                            rng.gen_range(world.min_y..world.max_y),
                        ),
                        cum_weight: cum[k],
                        spread: *spread * world.width().min(world.height()),
                    })
                    .collect()
            }
        };
        PlacementSampler {
            world,
            centers,
            rng: StdRng::seed_from_u64(jitter_seed),
        }
    }
}

struct ClusterCenter {
    at: Point,
    cum_weight: f64,
    spread: f64,
}

/// Stateful sampler producing feature centers.
pub struct PlacementSampler {
    world: Rect,
    centers: Vec<ClusterCenter>,
    rng: StdRng,
}

impl PlacementSampler {
    /// Draws the next center.
    pub fn next_center(&mut self) -> Point {
        if self.centers.is_empty() {
            return Point::new(
                self.rng.gen_range(self.world.min_x..self.world.max_x),
                self.rng.gen_range(self.world.min_y..self.world.max_y),
            );
        }
        let u: f64 = self.rng.gen();
        let idx = self
            .centers
            .iter()
            .position(|c| u <= c.cum_weight)
            .unwrap_or(self.centers.len() - 1);
        let c = &self.centers[idx];
        // Box-Muller normal around the hotspot, clamped into the world.
        let (u1, u2): (f64, f64) = (self.rng.gen_range(1e-12..1.0), self.rng.gen());
        let mag = (-2.0 * u1.ln()).sqrt() * c.spread;
        let x = c.at.x + mag * (2.0 * std::f64::consts::PI * u2).cos();
        let y = c.at.y + mag * (2.0 * std::f64::consts::PI * u2).sin();
        Point::new(
            x.clamp(self.world.min_x, self.world.max_x),
            y.clamp(self.world.min_y, self.world.max_y),
        )
    }

    /// Access to the internal RNG for shape-level jitter.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// The world bounds.
    pub fn world(&self) -> Rect {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::new(-180.0, -90.0, 180.0, 90.0)
    }

    #[test]
    fn uniform_stays_in_world_and_is_deterministic() {
        let mk = || {
            let mut s = SpatialDistribution::Uniform.sampler(world(), 7);
            (0..100).map(|_| s.next_center()).collect::<Vec<_>>()
        };
        let a = mk();
        let b = mk();
        assert_eq!(a, b);
        assert!(a.iter().all(|p| world().contains_point(p)));
    }

    #[test]
    fn clustered_is_skewed() {
        let dist = SpatialDistribution::Clustered {
            clusters: 8,
            skew: 1.2,
            spread: 0.01,
        };
        let mut s = dist.sampler(world(), 42);
        let pts: Vec<Point> = (0..2000).map(|_| s.next_center()).collect();
        assert!(pts.iter().all(|p| world().contains_point(p)));
        // Skew check: split the world into 16 columns; the most populated
        // column should hold far more than the uniform share.
        let mut cols = [0usize; 16];
        for p in &pts {
            let c = (((p.x + 180.0) / 360.0 * 16.0) as usize).min(15);
            cols[c] += 1;
        }
        let max = *cols.iter().max().unwrap();
        assert!(
            max > 2000 / 16 * 2,
            "hotspot column {max} should exceed 2x uniform share"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SpatialDistribution::Uniform.sampler(world(), 1);
        let mut b = SpatialDistribution::Uniform.sampler(world(), 2);
        assert_ne!(a.next_center(), b.next_center());
    }
}
