//! Shape synthesis: star-shaped polygons, random-walk polylines, points —
//! with heavy-tailed vertex counts.

use crate::distributions::PlacementSampler;
use mvio_geom::{Geometry, LineString, Point, Polygon};
use rand::Rng;

/// Parameters of one shape generator.
#[derive(Debug, Clone, Copy)]
pub struct ShapeGen {
    /// Typical vertex count (the bulk of the distribution).
    pub base_vertices: usize,
    /// Maximum vertex count of the heavy tail.
    pub max_vertices: usize,
    /// Probability that a shape draws from the heavy tail (Pareto-ish).
    pub tail_probability: f64,
    /// Typical shape radius in world units.
    pub radius: f64,
}

impl ShapeGen {
    /// Small building-footprint-like polygons (Cemetery, All Objects).
    pub fn small_polygons() -> Self {
        ShapeGen {
            base_vertices: 6,
            max_vertices: 64,
            tail_probability: 0.02,
            radius: 0.01,
        }
    }

    /// Larger water-body polygons with a heavier tail (Lakes).
    pub fn lake_polygons() -> Self {
        ShapeGen {
            base_vertices: 24,
            max_vertices: 1024,
            tail_probability: 0.03,
            radius: 0.12,
        }
    }

    /// Short road edges (Road Network).
    pub fn road_edges() -> Self {
        ShapeGen {
            base_vertices: 3,
            max_vertices: 24,
            tail_probability: 0.05,
            radius: 0.02,
        }
    }

    /// Draws a vertex count: usually near `base_vertices`, occasionally a
    /// heavy-tail draw up to `max_vertices` with a power-law-ish decay —
    /// the "large polygons may have more than 100 K coordinates" property.
    pub fn draw_vertices(&self, rng: &mut impl Rng) -> usize {
        if rng.gen::<f64>() < self.tail_probability && self.max_vertices > self.base_vertices {
            // Inverse-power sample in (base, max].
            let u: f64 = rng.gen_range(1e-9..1.0);
            let ratio = (self.max_vertices as f64 / self.base_vertices as f64).powf(u);
            ((self.base_vertices as f64 * ratio) as usize)
                .clamp(self.base_vertices, self.max_vertices)
        } else {
            let lo = self
                .base_vertices
                .saturating_sub(self.base_vertices / 2)
                .max(3);
            let hi = self.base_vertices + self.base_vertices / 2;
            rng.gen_range(lo..=hi.max(lo + 1))
        }
    }

    /// Generates a simple (non-self-intersecting) star-shaped polygon
    /// around the sampler's next center.
    pub fn polygon(&self, sampler: &mut PlacementSampler) -> Polygon {
        let center = sampler.next_center();
        let rng = sampler.rng();
        let k = self.draw_vertices(rng).max(3);
        // Star-shaped construction: sorted angles + jittered radii gives a
        // simple polygon for any k.
        let mut angles: Vec<f64> = (0..k)
            .map(|i| {
                let base = i as f64 / k as f64 * std::f64::consts::TAU;
                base + rng.gen_range(0.0..(std::f64::consts::TAU / k as f64 * 0.9))
            })
            .collect();
        angles.sort_by(f64::total_cmp);
        let mut pts: Vec<Point> = angles
            .iter()
            .map(|&a| {
                let r = self.radius * rng.gen_range(0.4..1.0);
                Point::new(center.x + r * a.cos(), center.y + r * a.sin())
            })
            .collect();
        pts.push(pts[0]); // close
                          // audit: stars have >= 3 distinct ring points by construction.
        Polygon::from_coords(pts, vec![]).expect("star construction is valid")
    }

    /// Generates a random-walk polyline from the sampler's next center.
    pub fn polyline(&self, sampler: &mut PlacementSampler) -> LineString {
        let start = sampler.next_center();
        let rng = sampler.rng();
        let k = self.draw_vertices(rng).max(2);
        let step = self.radius;
        let mut heading: f64 = rng.gen_range(0.0..std::f64::consts::TAU);
        let mut pts = Vec::with_capacity(k);
        let mut cur = start;
        pts.push(cur);
        for _ in 1..k {
            heading += rng.gen_range(-0.7..0.7);
            cur = Point::new(cur.x + step * heading.cos(), cur.y + step * heading.sin());
            pts.push(cur);
        }
        // audit: the walk always emits at least two points.
        LineString::new(pts).expect("walk has >= 2 points")
    }

    /// Generates a point feature.
    pub fn point(&self, sampler: &mut PlacementSampler) -> Point {
        sampler.next_center()
    }

    /// Generates a geometry of the requested kind.
    pub fn geometry(
        &self,
        kind: crate::catalog::ShapeKind,
        sampler: &mut PlacementSampler,
    ) -> Geometry {
        match kind {
            crate::catalog::ShapeKind::Point => Geometry::Point(self.point(sampler)),
            crate::catalog::ShapeKind::Line => Geometry::LineString(self.polyline(sampler)),
            crate::catalog::ShapeKind::Polygon => Geometry::Polygon(self.polygon(sampler)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distributions::SpatialDistribution;
    use mvio_geom::Rect;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sampler(seed: u64) -> PlacementSampler {
        SpatialDistribution::Uniform.sampler(Rect::new(0.0, 0.0, 100.0, 100.0), seed)
    }

    #[test]
    fn polygons_are_valid_and_simple_ish() {
        let gen = ShapeGen::small_polygons();
        let mut s = sampler(3);
        for _ in 0..200 {
            let p = gen.polygon(&mut s);
            assert!(p.exterior().num_points() >= 4);
            assert!(p.area() > 0.0, "star polygons have positive area");
            assert!(!p.envelope().is_empty());
        }
    }

    #[test]
    fn heavy_tail_produces_giants() {
        let gen = ShapeGen::lake_polygons();
        let mut rng = StdRng::seed_from_u64(5);
        let counts: Vec<usize> = (0..5000).map(|_| gen.draw_vertices(&mut rng)).collect();
        let max = *counts.iter().max().unwrap();
        let median = {
            let mut c = counts.clone();
            c.sort_unstable();
            c[c.len() / 2]
        };
        assert!(
            max > median * 8,
            "tail max {max} should dwarf median {median}"
        );
        assert!(max <= gen.max_vertices);
    }

    #[test]
    fn polylines_walk() {
        let gen = ShapeGen::road_edges();
        let mut s = sampler(9);
        for _ in 0..100 {
            let l = gen.polyline(&mut s);
            assert!(l.num_points() >= 2);
            assert!(l.length() > 0.0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let gen = ShapeGen::small_polygons();
        let a = gen.polygon(&mut sampler(11));
        let b = gen.polygon(&mut sampler(11));
        assert_eq!(a, b);
    }
}
