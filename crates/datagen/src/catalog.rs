//! The Table 3 dataset catalog, scaled.

use crate::distributions::SpatialDistribution;
use crate::shapes::ShapeGen;

use mvio_geom::Rect;
use mvio_pfs::SimFs;
use std::sync::Arc;

/// Shape class of a dataset (mirrors the paper's Shape column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeKind {
    Point,
    Line,
    Polygon,
}

impl ShapeKind {
    /// Display name matching Table 3.
    pub fn name(self) -> &'static str {
        match self {
            ShapeKind::Point => "Point",
            ShapeKind::Line => "Line",
            ShapeKind::Polygon => "Polygon",
        }
    }
}

/// How a dataset's spatial distribution scales with the replica size.
///
/// Scaled replicas cannot preserve every statistic at once; each dataset
/// preserves the one its experiments depend on:
/// * [`DistPolicy::Broad`] — extent-preserving: features stay spread over
///   wide hotspots regardless of scale. Used for the I/O- and
///   communication-bound datasets (Roads, Road Network, All Nodes, All
///   Objects), where per-rank balance is the load-bearing property.
/// * [`DistPolicy::DensityPreserving`] — the hotspot radius shrinks with
///   `1/sqrt(denominator)`, keeping features-per-area (and therefore
///   join-candidate density) equal to the full-scale value. Used for the
///   join layers (Lakes, Cemetery), where refine work per feature is the
///   load-bearing property (Figures 17–18).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DistPolicy {
    Broad {
        clusters: usize,
        skew: f64,
        spread: f64,
    },
    DensityPreserving {
        clusters: usize,
        skew: f64,
        spread_full: f64,
    },
}

impl DistPolicy {
    /// Resolves the policy into a concrete distribution at a given scale.
    pub fn at_scale(&self, denominator: u64) -> SpatialDistribution {
        match *self {
            DistPolicy::Broad {
                clusters,
                skew,
                spread,
            } => SpatialDistribution::Clustered {
                clusters,
                skew,
                spread,
            },
            DistPolicy::DensityPreserving {
                clusters,
                skew,
                spread_full,
            } => SpatialDistribution::Clustered {
                clusters,
                skew,
                spread: spread_full / (denominator.max(1) as f64).sqrt(),
            },
        }
    }
}

/// One Table 3 row: the paper's full-size statistics plus the generator
/// recipe used to synthesize a scaled replica.
#[derive(Debug, Clone)]
pub struct DatasetSpec {
    /// Row number in Table 3 (1-based).
    pub id: usize,
    /// Dataset name.
    pub name: &'static str,
    /// Shape class.
    pub kind: ShapeKind,
    /// Full-size file bytes reported by the paper.
    pub paper_bytes: u64,
    /// Full-size shape count reported by the paper.
    pub paper_count: u64,
    /// Sequential I/O + parse seconds reported by the paper.
    pub paper_io_seconds: f64,
    /// Shape generator recipe.
    pub gen: ShapeGen,
    /// Spatial distribution scaling policy.
    pub dist: DistPolicy,
}

impl DatasetSpec {
    /// Shape count at `1/denominator` scale (at least 16 so tiny scales
    /// stay non-trivial).
    pub fn scaled_count(&self, denominator: u64) -> u64 {
        (self.paper_count / denominator).max(16)
    }

    /// The canonical file path for this dataset at a given scale.
    pub fn path(&self, denominator: u64) -> String {
        format!(
            "datasets/{}-1over{}.wkt",
            self.name.to_lowercase().replace(' ', "_"),
            denominator
        )
    }
}

/// Shared cluster-center seed: all datasets place hotspots at the same
/// locations, as real OSM layers do (populated areas are populated for
/// every feature class at once).
const WORLD_CENTER_SEED: u64 = 0xC1A5_7E25_0CEA_11A5;

/// The six datasets of Table 3.
pub fn table3() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            id: 1,
            name: "Cemetery",
            kind: ShapeKind::Polygon,
            paper_bytes: 56 << 20,
            paper_count: 193_000,
            paper_io_seconds: 2.1,
            gen: ShapeGen::small_polygons(),
            dist: DistPolicy::DensityPreserving {
                clusters: 200,
                skew: 0.2,
                spread_full: 0.0063,
            },
        },
        DatasetSpec {
            id: 2,
            name: "Lakes",
            kind: ShapeKind::Polygon,
            paper_bytes: 9 << 30,
            paper_count: 8_000_000,
            paper_io_seconds: 328.0,
            gen: ShapeGen::lake_polygons(),
            dist: DistPolicy::DensityPreserving {
                clusters: 200,
                skew: 0.2,
                spread_full: 0.0063,
            },
        },
        DatasetSpec {
            id: 3,
            name: "Roads",
            kind: ShapeKind::Polygon,
            paper_bytes: 24 << 30,
            paper_count: 72_000_000,
            paper_io_seconds: 786.0,
            gen: ShapeGen::small_polygons(),
            dist: DistPolicy::Broad {
                clusters: 64,
                skew: 0.7,
                spread: 0.08,
            },
        },
        DatasetSpec {
            id: 4,
            name: "All Objects",
            kind: ShapeKind::Polygon,
            paper_bytes: 92 << 30,
            paper_count: 263_000_000,
            paper_io_seconds: 4728.0,
            gen: ShapeGen::small_polygons(),
            dist: DistPolicy::Broad {
                clusters: 64,
                skew: 0.9,
                spread: 0.06,
            },
        },
        DatasetSpec {
            id: 5,
            name: "Road Network",
            kind: ShapeKind::Line,
            paper_bytes: 137 << 30,
            paper_count: 717_000_000,
            paper_io_seconds: 2873.0,
            gen: ShapeGen::road_edges(),
            dist: DistPolicy::Broad {
                clusters: 64,
                skew: 0.6,
                spread: 0.12,
            },
        },
        DatasetSpec {
            id: 6,
            name: "All Nodes",
            kind: ShapeKind::Point,
            paper_bytes: 96 << 30,
            paper_count: 2_700_000_000,
            paper_io_seconds: 3782.0,
            gen: ShapeGen::small_polygons(), // radius unused for points
            dist: DistPolicy::Broad {
                clusters: 64,
                skew: 0.8,
                spread: 0.08,
            },
        },
    ]
}

/// Outcome of generating one dataset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GenReport {
    /// Path written.
    pub path: String,
    /// Records written.
    pub count: u64,
    /// Bytes written.
    pub bytes: u64,
}

/// Generates a scaled replica of `spec` onto `fs`, returning the report.
/// All datasets share hotspot centers (`WORLD_CENTER_SEED`); the
/// per-dataset distribution follows the spec's [`DistPolicy`].
pub fn generate(fs: &Arc<SimFs>, spec: &DatasetSpec, denominator: u64, seed: u64) -> GenReport {
    let world = Rect::new(-180.0, -90.0, 180.0, 90.0);
    let dist = spec.dist.at_scale(denominator);
    let path = spec.path(denominator);
    let count = spec.scaled_count(denominator);
    let bytes = crate::writer::write_wkt_dataset_with_centers(
        fs,
        &path,
        spec.kind,
        spec.gen,
        &dist,
        world,
        count,
        WORLD_CENTER_SEED,
        seed ^ spec.id as u64,
    );
    GenReport { path, count, bytes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvio_pfs::FsConfig;

    #[test]
    fn table3_matches_paper_rows() {
        let t = table3();
        assert_eq!(t.len(), 6);
        assert_eq!(t[0].name, "Cemetery");
        assert_eq!(t[4].kind, ShapeKind::Line);
        assert_eq!(t[5].kind, ShapeKind::Point);
        assert_eq!(t[5].paper_count, 2_700_000_000);
        // Ordered by id.
        for (i, s) in t.iter().enumerate() {
            assert_eq!(s.id, i + 1);
        }
    }

    #[test]
    fn scaled_counts_floor_at_16() {
        let t = table3();
        assert_eq!(t[0].scaled_count(1_000_000), 16);
        assert_eq!(t[1].scaled_count(1000), 8000);
    }

    #[test]
    fn generate_writes_plausible_wkt() {
        let fs = SimFs::new(FsConfig::gpfs_roger());
        let spec = &table3()[0];
        let rep = generate(&fs, spec, 10_000, 99);
        assert_eq!(rep.count, 19);
        let file = fs.open(&rep.path).unwrap();
        assert_eq!(file.len(), rep.bytes);
        let text = String::from_utf8(file.snapshot()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 19);
        assert!(lines.iter().all(|l| l.starts_with("POLYGON")));
        // Every line parses.
        for l in &lines {
            let wkt_part = l.split('\t').next().unwrap();
            mvio_geom::wkt::parse(wkt_part).unwrap();
        }
    }

    #[test]
    fn generation_is_reproducible() {
        let mk = || {
            let fs = SimFs::new(FsConfig::gpfs_roger());
            let rep = generate(&fs, &table3()[4], 10_000_000, 7);
            fs.open(&rep.path).unwrap().snapshot()
        };
        assert_eq!(mk(), mk());
    }
}
