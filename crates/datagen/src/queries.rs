//! Zipf-skewed query workloads for the serving layer.
//!
//! A serving benchmark needs the traffic shape real query frontends see:
//! a modest pool of *distinct* queries, drawn with a heavy-tailed
//! popularity so a few hot queries dominate (which is exactly what a
//! result cache exploits), placed over the same Zipf hotspots the
//! synthetic datasets cluster around (so hot queries also land on hot
//! cells). Everything derives from a seed, bit-for-bit reproducible.
//!
//! The crate stays dependency-light (geometry + rand only), so queries
//! are described by the neutral [`QueryShape`] enum; `sjoin` maps it
//! onto its own engine query type with a one-line `match`.

use crate::distributions::SpatialDistribution;
use mvio_geom::{Point, Rect};
use rand::Rng;

/// One generated query, engine-agnostic.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QueryShape {
    /// An axis-aligned window query.
    Range(Rect),
    /// A point-containment query.
    Point(Point),
    /// A k-nearest-neighbour query.
    Knn {
        /// Query centre.
        at: Point,
        /// Neighbours requested.
        k: u32,
    },
}

/// Workload shape: pool size, popularity skew, query-kind mix.
#[derive(Debug, Clone)]
pub struct QueryWorkload {
    /// Distinct queries in the pool; draws repeat pool entries.
    pub pool: usize,
    /// Zipf exponent of the popularity distribution over the pool
    /// (0 = uniform; ≈ 1 = classic web-trace skew).
    pub popularity_skew: f64,
    /// Fraction of the pool that are [`QueryShape::Range`] windows.
    pub range_fraction: f64,
    /// Fraction of the pool that are [`QueryShape::Point`] probes
    /// (the remainder are kNN).
    pub point_fraction: f64,
    /// `k` used for generated kNN queries.
    pub knn_k: u32,
    /// Range-window half-width as a fraction of the world's shorter
    /// dimension (each window's size varies ±50% around it).
    pub extent: f64,
    /// Where query centres land (reuse the dataset's distribution so
    /// hot queries hit hot cells).
    pub placement: SpatialDistribution,
}

impl Default for QueryWorkload {
    fn default() -> Self {
        QueryWorkload {
            pool: 64,
            popularity_skew: 1.0,
            range_fraction: 0.7,
            point_fraction: 0.2,
            knn_k: 8,
            extent: 0.05,
            placement: SpatialDistribution::Clustered {
                clusters: 12,
                skew: 1.0,
                spread: 0.05,
            },
        }
    }
}

/// Generates `draws` queries over `world` from `seed`: a pool of
/// `spec.pool` distinct shapes placed by `spec.placement`, then `draws`
/// Zipf(`spec.popularity_skew`)-weighted picks from the pool — low pool
/// indices are hot and repeat often.
pub fn generate_queries(
    world: Rect,
    spec: &QueryWorkload,
    draws: usize,
    seed: u64,
) -> Vec<QueryShape> {
    let mut sampler = spec.placement.sampler(world, seed);
    let half_base = spec.extent.max(0.0) * world.width().min(world.height()).max(f64::MIN_POSITIVE);
    let pool_n = spec.pool.max(1);
    let pool: Vec<QueryShape> = (0..pool_n)
        .map(|_| {
            let at = sampler.next_center();
            let kind: f64 = sampler.rng().gen();
            if kind < spec.range_fraction {
                let scale: f64 = sampler.rng().gen_range(0.5..1.5);
                let half = half_base * scale;
                QueryShape::Range(Rect::new(
                    (at.x - half).max(world.min_x),
                    (at.y - half).max(world.min_y),
                    (at.x + half).min(world.max_x),
                    (at.y + half).min(world.max_y),
                ))
            } else if kind < spec.range_fraction + spec.point_fraction {
                QueryShape::Point(at)
            } else {
                QueryShape::Knn {
                    at,
                    k: spec.knn_k.max(1),
                }
            }
        })
        .collect();

    // Zipf cumulative weights over pool ranks: pool[0] is the hottest.
    let mut cum = Vec::with_capacity(pool_n);
    let mut total = 0.0;
    for rank in 0..pool_n {
        total += 1.0 / ((rank + 1) as f64).powf(spec.popularity_skew);
        cum.push(total);
    }
    for c in cum.iter_mut() {
        *c /= total;
    }

    (0..draws)
        .map(|_| {
            let u: f64 = sampler.rng().gen();
            let idx = cum.partition_point(|&c| c < u).min(pool_n - 1);
            pool[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn world() -> Rect {
        Rect::new(0.0, 0.0, 100.0, 50.0)
    }

    #[test]
    fn deterministic_from_seed() {
        let spec = QueryWorkload::default();
        let a = generate_queries(world(), &spec, 500, 42);
        let b = generate_queries(world(), &spec, 500, 42);
        assert_eq!(a, b);
        let c = generate_queries(world(), &spec, 500, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn queries_stay_in_world_and_mix_kinds() {
        let spec = QueryWorkload::default();
        let qs = generate_queries(world(), &spec, 1000, 7);
        let w = world();
        let (mut ranges, mut points, mut knns) = (0, 0, 0);
        for q in &qs {
            match q {
                QueryShape::Range(r) => {
                    ranges += 1;
                    assert!(r.min_x <= r.max_x && r.min_y <= r.max_y, "{r:?}");
                    assert!(w.contains(r), "{r:?}");
                }
                QueryShape::Point(p) => {
                    points += 1;
                    assert!(w.contains_point(p), "{p:?}");
                }
                QueryShape::Knn { at, k } => {
                    knns += 1;
                    assert!(*k >= 1);
                    assert!(w.contains_point(at), "{at:?}");
                }
            }
        }
        assert!(
            ranges > 0 && points > 0 && knns > 0,
            "{ranges}/{points}/{knns}"
        );
    }

    #[test]
    fn popularity_is_skewed() {
        let spec = QueryWorkload {
            pool: 50,
            popularity_skew: 1.0,
            ..Default::default()
        };
        let qs = generate_queries(world(), &spec, 5000, 3);
        let mut freq: HashMap<String, usize> = HashMap::new();
        for q in &qs {
            *freq.entry(format!("{q:?}")).or_default() += 1;
        }
        // Far fewer distinct queries than draws, and the hottest query
        // well above the uniform share.
        assert!(freq.len() <= 50);
        let hottest = freq.values().max().copied().unwrap_or(0);
        assert!(
            hottest > 2 * 5000 / 50,
            "hottest {hottest} not skewed over uniform share"
        );
    }

    #[test]
    fn uniform_skew_spreads_draws() {
        let spec = QueryWorkload {
            pool: 10,
            popularity_skew: 0.0,
            ..Default::default()
        };
        let qs = generate_queries(world(), &spec, 2000, 11);
        let mut freq: HashMap<String, usize> = HashMap::new();
        for q in &qs {
            *freq.entry(format!("{q:?}")).or_default() += 1;
        }
        assert!(
            freq.len() >= 9,
            "uniform draws cover the pool: {}",
            freq.len()
        );
    }
}
