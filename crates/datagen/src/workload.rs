//! Time-varying update workloads: a hotspot that drifts across the world.
//!
//! The static generators in [`crate::writer`] model the paper's
//! batch-ingest setting: one skewed snapshot, partitioned once. Mutable
//! deployments see something harder — insert traffic whose *spatial*
//! concentration moves over time (a city waking up, a storm front, a
//! breaking-news geofence), so a decomposition balanced for minute 0 is
//! wrong by minute 30. This module generates that stream: a square
//! hotspot whose center glides corner-to-corner across the world,
//! emitting a batch of point inserts per step and deleting each batch
//! again `window` steps later (a sliding time-to-live, like an
//! expiring-events table).
//!
//! Every step is a *pure function* of `(spec, step)`: deletes are
//! regenerated, not remembered, so they match their inserts bit-for-bit
//! and the whole stream is reproducible from the spec alone.

use mvio_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Specification of a moving-hotspot insert/delete stream.
#[derive(Debug, Clone, Copy)]
pub struct MovingHotspot {
    /// World rectangle the stream lives in.
    pub world: Rect,
    /// Number of steps in the stream.
    pub steps: usize,
    /// Point inserts emitted per step.
    pub inserts_per_step: usize,
    /// Steps an insert survives before the stream deletes it again; `0`
    /// means nothing is ever deleted (the hotspot only accretes).
    pub window: usize,
    /// Fraction of each world dimension the hotspot box covers. Spreading
    /// the load over a *box* of cells (rather than a tight Gaussian peak)
    /// is what keeps the hottest single cell below a per-rank mean, so a
    /// cell-granular decomposition can actually rebalance it.
    pub spread: f64,
    /// Seed; the whole stream derives from it.
    pub seed: u64,
}

/// One step of the stream: the inserts born at `step` and the deletes
/// retiring the batch born `window` steps earlier.
#[derive(Debug, Clone, PartialEq)]
pub struct UpdateStep {
    /// Step index in `0..spec.steps`.
    pub step: usize,
    /// Hotspot center this step.
    pub center: Point,
    /// Points inserted this step, each with a stream-unique userdata tag.
    pub inserts: Vec<(Point, String)>,
    /// Exact copies of the inserts from `step - window` (empty while the
    /// window is still filling, or when `window == 0`).
    pub deletes: Vec<(Point, String)>,
}

impl MovingHotspot {
    /// The hotspot center at `step`: linear interpolation from the
    /// bottom-left to the top-right of the world, inset by the hotspot
    /// half-width so the box never leaves the world.
    pub fn center_at(&self, step: usize) -> Point {
        let t = if self.steps > 1 {
            step as f64 / (self.steps - 1) as f64
        } else {
            0.5
        };
        let (hw, hh) = self.half_extents();
        let x0 = self.world.min_x + hw;
        let x1 = (self.world.max_x - hw).max(x0);
        let y0 = self.world.min_y + hh;
        let y1 = (self.world.max_y - hh).max(y0);
        Point::new(x0 + t * (x1 - x0), y0 + t * (y1 - y0))
    }

    /// The inserts born at `step` — a pure function of the spec and the
    /// step index, which is how [`UpdateStep::deletes`] can reproduce an
    /// earlier batch without any state.
    pub fn inserts_at(&self, step: usize) -> Vec<(Point, String)> {
        // Distinct odd multiplier per step decorrelates the per-step RNG
        // streams; the ids keep batches disjoint regardless.
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (step as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let c = self.center_at(step);
        let (hw, hh) = self.half_extents();
        (0..self.inserts_per_step)
            .map(|i| {
                let (dx, dy): (f64, f64) = (rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0));
                let p = Point::new(
                    (c.x + dx * hw).clamp(self.world.min_x, self.world.max_x),
                    (c.y + dy * hh).clamp(self.world.min_y, self.world.max_y),
                );
                (p, format!("hot={step:04}-{i:05}"))
            })
            .collect()
    }

    /// Materializes step `step` of the stream.
    pub fn step(&self, step: usize) -> UpdateStep {
        let deletes = match step.checked_sub(self.window) {
            Some(born) if self.window > 0 => self.inserts_at(born),
            _ => Vec::new(),
        };
        UpdateStep {
            step,
            center: self.center_at(step),
            inserts: self.inserts_at(step),
            deletes,
        }
    }

    /// Materializes the whole stream.
    pub fn stream(&self) -> Vec<UpdateStep> {
        (0..self.steps).map(|s| self.step(s)).collect()
    }

    /// Inserts still live after the final step (born within the last
    /// `window` steps, or all of them when `window == 0`).
    pub fn live_after_last_step(&self) -> Vec<(Point, String)> {
        let first_live = if self.window == 0 {
            0
        } else {
            self.steps.saturating_sub(self.window)
        };
        (first_live..self.steps)
            .flat_map(|s| self.inserts_at(s))
            .collect()
    }

    fn half_extents(&self) -> (f64, f64) {
        (
            (self.spread * self.world.width() / 2.0).max(0.0),
            (self.spread * self.world.height() / 2.0).max(0.0),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn spec() -> MovingHotspot {
        MovingHotspot {
            world: Rect::new(0.0, 0.0, 100.0, 50.0),
            steps: 6,
            inserts_per_step: 40,
            window: 2,
            spread: 0.25,
            seed: 11,
        }
    }

    #[test]
    fn stream_is_deterministic() {
        assert_eq!(spec().stream(), spec().stream());
    }

    #[test]
    fn deletes_replay_the_insert_batch_from_window_steps_earlier() {
        let s = spec();
        let stream = s.stream();
        for step in &stream {
            if step.step < s.window {
                assert!(step.deletes.is_empty(), "window still filling");
            } else {
                assert_eq!(step.deletes, stream[step.step - s.window].inserts);
            }
        }
    }

    #[test]
    fn inserts_stay_inside_the_hotspot_box_and_the_world() {
        let s = spec();
        for step in s.stream() {
            let (hw, hh) = s.half_extents();
            for (p, _) in &step.inserts {
                assert!(s.world.contains_point(p));
                assert!((p.x - step.center.x).abs() <= hw + 1e-9);
                assert!((p.y - step.center.y).abs() <= hh + 1e-9);
            }
        }
    }

    #[test]
    fn ids_are_unique_across_the_whole_stream() {
        let s = spec();
        let mut seen = HashSet::new();
        for step in s.stream() {
            for (_, id) in &step.inserts {
                assert!(seen.insert(id.clone()), "duplicate id {id}");
            }
        }
        assert_eq!(seen.len(), s.steps * s.inserts_per_step);
    }

    #[test]
    fn center_traverses_the_world_diagonal() {
        let s = spec();
        let first = s.center_at(0);
        let last = s.center_at(s.steps - 1);
        assert!(last.x - first.x > s.world.width() * 0.5);
        assert!(last.y - first.y > s.world.height() * 0.5);
        // Monotone drift.
        for w in (0..s.steps).collect::<Vec<_>>().windows(2) {
            assert!(s.center_at(w[1]).x > s.center_at(w[0]).x);
        }
    }

    #[test]
    fn live_set_is_the_last_window_of_batches() {
        let s = spec();
        let live = s.live_after_last_step();
        assert_eq!(live.len(), s.window * s.inserts_per_step);
        let ids: HashSet<&str> = live.iter().map(|(_, id)| id.as_str()).collect();
        assert!(ids.contains("hot=0004-00000"));
        assert!(ids.contains("hot=0005-00039"));
        assert!(!ids.contains("hot=0003-00000"), "expired batch still live");
    }

    #[test]
    fn zero_window_never_deletes() {
        let s = MovingHotspot {
            window: 0,
            ..spec()
        };
        assert!(s.stream().iter().all(|st| st.deletes.is_empty()));
        assert_eq!(s.live_after_last_step().len(), s.steps * s.inserts_per_step);
    }
}
