//! Dataset writers: WKT-per-line text and fixed-size binary records.

use crate::catalog::ShapeKind;
use crate::distributions::{PlacementSampler, SpatialDistribution};
use crate::shapes::ShapeGen;
use mvio_geom::{wkt, Point, Rect};
use mvio_pfs::SimFs;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// Derives the cluster-center seed from a dataset seed — the single
/// definition of the split shared by the file writer and the in-memory
/// generator, so their datasets can never diverge.
fn center_seed(seed: u64) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15
}

/// Appends record `i` (a `WKT \t id=<i>` line) to `out` — the single
/// definition of the text record format shared by the file writer and
/// the in-memory generator.
fn append_wkt_record(
    kind: ShapeKind,
    gen: ShapeGen,
    sampler: &mut PlacementSampler,
    i: u64,
    out: &mut String,
) {
    let g = gen.geometry(kind, sampler);
    wkt::write_to(&g, out);
    out.push('\t');
    out.push_str("id=");
    out.push_str(&i.to_string());
    out.push('\n');
}

/// Writes `count` WKT records (`WKT \t id=<n>` lines) to `path`, streaming
/// in 4 MiB batches so generation of large replicas stays memory-flat.
/// Returns the bytes written.
#[allow(clippy::too_many_arguments)]
pub fn write_wkt_dataset(
    fs: &Arc<SimFs>,
    path: &str,
    kind: ShapeKind,
    gen: ShapeGen,
    dist: &SpatialDistribution,
    world: Rect,
    count: u64,
    seed: u64,
) -> u64 {
    write_wkt_dataset_with_centers(
        fs,
        path,
        kind,
        gen,
        dist,
        world,
        count,
        center_seed(seed),
        seed,
    )
}

/// [`write_wkt_dataset`] with independently-seeded cluster centers, so
/// multiple layers can share hotspot locations (the catalog's behaviour).
#[allow(clippy::too_many_arguments)]
pub fn write_wkt_dataset_with_centers(
    fs: &Arc<SimFs>,
    path: &str,
    kind: ShapeKind,
    gen: ShapeGen,
    dist: &SpatialDistribution,
    world: Rect,
    count: u64,
    center_seed: u64,
    jitter_seed: u64,
) -> u64 {
    let file = fs
        .create(path, None)
        // audit: create fails only when the file exists, so open succeeds.
        .unwrap_or_else(|_| fs.open(path).expect("exists"));
    let mut sampler = dist.sampler_with_centers(world, center_seed, jitter_seed);
    let mut batch = String::with_capacity(4 << 20);
    let mut bytes = 0u64;
    for i in 0..count {
        append_wkt_record(kind, gen, &mut sampler, i, &mut batch);
        if batch.len() >= 4 << 20 {
            bytes += batch.len() as u64;
            file.append(batch.as_bytes());
            batch.clear();
        }
    }
    bytes += batch.len() as u64;
    file.append(batch.as_bytes());
    bytes
}

/// Generates `count` WKT records straight into memory — the bytes
/// [`write_wkt_dataset`] would append to a file, without needing a
/// filesystem. Benchmark harnesses generate a dataset once this way and
/// install the bytes onto a fresh cold [`SimFs`] per measurement, so
/// every run sees identical data over empty simulated OST queues.
pub fn wkt_dataset_bytes(
    kind: ShapeKind,
    gen: ShapeGen,
    dist: &SpatialDistribution,
    world: Rect,
    count: u64,
    seed: u64,
) -> Vec<u8> {
    let mut sampler = dist.sampler_with_centers(world, center_seed(seed), seed);
    let mut text = String::new();
    for i in 0..count {
        append_wkt_record(kind, gen, &mut sampler, i, &mut text);
    }
    text.into_bytes()
}

/// Writes `count` random MBR records (4 little-endian doubles each) for
/// the binary-file experiments (Figures 12 and 15). Returns the rects.
pub fn write_rect_records(
    fs: &Arc<SimFs>,
    path: &str,
    world: Rect,
    count: u64,
    seed: u64,
) -> Vec<Rect> {
    let file = fs
        .create(path, None)
        // audit: create fails only when the file exists, so open succeeds.
        .unwrap_or_else(|_| fs.open(path).expect("exists"));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rects = Vec::with_capacity(count as usize);
    let mut buf = Vec::with_capacity((count as usize * 32).min(8 << 20));
    for _ in 0..count {
        let cx = rng.gen_range(world.min_x..world.max_x);
        let cy = rng.gen_range(world.min_y..world.max_y);
        let w = rng.gen_range(0.0001..0.01) * world.width();
        let h = rng.gen_range(0.0001..0.01) * world.height();
        let r = Rect::new(cx - w / 2.0, cy - h / 2.0, cx + w / 2.0, cy + h / 2.0);
        for v in r.to_array() {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        rects.push(r);
        if buf.len() >= 8 << 20 {
            file.append(&buf);
            buf.clear();
        }
    }
    file.append(&buf);
    rects
}

/// Writes `count` random point records (2 doubles each).
pub fn write_point_records(
    fs: &Arc<SimFs>,
    path: &str,
    world: Rect,
    count: u64,
    seed: u64,
) -> Vec<Point> {
    let file = fs
        .create(path, None)
        // audit: create fails only when the file exists, so open succeeds.
        .unwrap_or_else(|_| fs.open(path).expect("exists"));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut points = Vec::with_capacity(count as usize);
    let mut buf = Vec::with_capacity((count as usize * 16).min(8 << 20));
    for _ in 0..count {
        let p = Point::new(
            rng.gen_range(world.min_x..world.max_x),
            rng.gen_range(world.min_y..world.max_y),
        );
        buf.extend_from_slice(&p.x.to_le_bytes());
        buf.extend_from_slice(&p.y.to_le_bytes());
        points.push(p);
        if buf.len() >= 8 << 20 {
            file.append(&buf);
            buf.clear();
        }
    }
    file.append(&buf);
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvio_pfs::FsConfig;

    fn world() -> Rect {
        Rect::new(0.0, 0.0, 10.0, 10.0)
    }

    #[test]
    fn wkt_writer_produces_parse_clean_lines() {
        let fs = SimFs::new(FsConfig::gpfs_roger());
        let bytes = write_wkt_dataset(
            &fs,
            "t.wkt",
            ShapeKind::Line,
            ShapeGen::road_edges(),
            &SpatialDistribution::Uniform,
            world(),
            50,
            1,
        );
        let file = fs.open("t.wkt").unwrap();
        assert_eq!(file.len(), bytes);
        let text = String::from_utf8(file.snapshot()).unwrap();
        assert_eq!(text.lines().count(), 50);
        for line in text.lines() {
            let (w, ud) = line.split_once('\t').unwrap();
            wkt::parse(w).unwrap();
            assert!(ud.starts_with("id="));
        }
    }

    #[test]
    fn in_memory_generation_matches_the_file_writer() {
        let fs = SimFs::new(FsConfig::gpfs_roger());
        write_wkt_dataset(
            &fs,
            "f.wkt",
            ShapeKind::Point,
            ShapeGen::small_polygons(),
            &SpatialDistribution::Uniform,
            world(),
            40,
            7,
        );
        let mem = wkt_dataset_bytes(
            ShapeKind::Point,
            ShapeGen::small_polygons(),
            &SpatialDistribution::Uniform,
            world(),
            40,
            7,
        );
        assert_eq!(fs.open("f.wkt").unwrap().snapshot(), mem);
    }

    #[test]
    fn rect_records_round_trip() {
        let fs = SimFs::new(FsConfig::gpfs_roger());
        let rects = write_rect_records(&fs, "r.bin", world(), 100, 2);
        let file = fs.open("r.bin").unwrap();
        assert_eq!(file.len(), 100 * 32);
        let data = file.snapshot();
        for (i, r) in rects.iter().enumerate() {
            let at = i * 32;
            let v = f64::from_le_bytes(data[at..at + 8].try_into().unwrap());
            assert_eq!(v, r.min_x);
        }
        assert!(rects.iter().all(|r| !r.is_empty()));
    }

    #[test]
    fn point_records_have_fixed_width() {
        let fs = SimFs::new(FsConfig::gpfs_roger());
        let pts = write_point_records(&fs, "p.bin", world(), 64, 3);
        assert_eq!(fs.open("p.bin").unwrap().len(), 64 * 16);
        assert!(pts.iter().all(|p| world().contains_point(p)));
    }
}
