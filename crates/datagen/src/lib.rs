//! # mvio-datagen — synthetic OSM-like vector datasets
//!
//! The paper evaluates on six OpenStreetMap extracts (Table 3, 56 MB to
//! 137 GB, up to 2.7 billion shapes). Those extracts are not available
//! here, so this crate generates synthetic datasets with the statistical
//! properties the paper's behaviour depends on:
//!
//! * **shape mix** — polygon, polyline and point datasets matching each
//!   Table 3 row, with the paper's mean record sizes (≈ 290 B/polygon in
//!   Cemetery, ≈ 1.1 KB/polygon in Lakes, ≈ 190 B/edge in Road Network,
//!   ≈ 35 B/point in All Nodes);
//! * **heavy-tailed vertex counts** — most polygons are small, a few are
//!   enormous (the paper's largest is 11 MB of WKT), which is exactly what
//!   makes file partitioning hard;
//! * **spatial skew** — features cluster around Zipf-weighted hotspots,
//!   reproducing the load imbalance that motivates fine-grained
//!   declustering (Figure 5);
//! * **temporal drift** — a moving-hotspot insert/delete stream
//!   ([`workload`]) whose spatial concentration glides across the world,
//!   the load pattern that motivates online rebalancing;
//! * **determinism** — everything derives from a seed, so experiments are
//!   reproducible bit-for-bit.
//!
//! Datasets are written as WKT-per-line text (optionally with tab-separated
//! userdata) or as fixed-size binary records, onto a simulated filesystem.

pub mod catalog;
pub mod distributions;
pub mod queries;
pub mod shapes;
pub mod workload;
pub mod writer;

pub use catalog::{table3, DatasetSpec, DistPolicy, GenReport, ShapeKind};
pub use distributions::SpatialDistribution;
pub use queries::{generate_queries, QueryShape, QueryWorkload};
pub use shapes::ShapeGen;
pub use workload::{MovingHotspot, UpdateStep};
pub use writer::{
    wkt_dataset_bytes, write_point_records, write_rect_records, write_wkt_dataset,
    write_wkt_dataset_with_centers,
};
