//! # mvio-geom — geometry engine for MPI-Vector-IO
//!
//! A from-scratch Rust substitute for the subset of the GEOS C++ library that
//! the MPI-Vector-IO paper (Puri et al., ICPP 2018) relies on:
//!
//! * vector geometry types defined by the OGC Simple Features model:
//!   [`Point`], [`LineString`], [`Polygon`], [`MultiPoint`],
//!   [`MultiLineString`], [`MultiPolygon`], unified under [`Geometry`];
//! * minimum bounding rectangles ([`Rect`]) with union/intersection, the
//!   primitive behind the paper's `MPI_RECT` datatype and `MPI_UNION`
//!   reduction operator;
//! * a Well-Known Text parser and writer ([`wkt`]) — the formatted input
//!   format the paper's I/O layer partitions and parses;
//! * Well-Known Binary encode/decode ([`wkb`]) — the unformatted binary
//!   representation used for fixed-record experiments;
//! * computational-geometry predicates ([`algo`]): orientation, segment
//!   intersection, point-in-polygon and exact `intersects`, which implement
//!   the *refine* half of the filter-and-refine strategy;
//! * spatial indexes ([`index`]): an STR bulk-loaded R-tree and a region
//!   quadtree, used for the *filter* half and for grid-cell lookup;
//! * zero-copy borrowed geometry views ([`wkb::GeomRef`], decoded by
//!   [`wkb::decode_ref`] straight over wire buffers) and the batched
//!   filter/refine kernels that run over them ([`refkernel`]).
//!
//! The crate is dependency-free (std only) and fully deterministic, so every
//! higher layer of the reproduction can be tested bit-for-bit.
//!
//! ## Quick example
//!
//! ```
//! use mvio_geom::{wkt, Geometry, Rect};
//!
//! let poly = wkt::parse("POLYGON ((30 10, 40 40, 20 40, 30 10))").unwrap();
//! let line = wkt::parse("LINESTRING (25 5, 35 45)").unwrap();
//! assert!(poly.envelope().intersects(&line.envelope())); // filter
//! assert!(mvio_geom::algo::intersects(&poly, &line));    // refine
//! ```

pub mod algo;
pub mod curve;
pub mod geometry;
pub mod index;
pub mod linestring;
pub mod multi;
pub mod point;
pub mod polygon;
pub mod rect;
pub mod refkernel;
pub mod wkb;
pub mod wkt;

pub use geometry::{Geometry, GeometryType};
pub use linestring::LineString;
pub use multi::{GeometryCollection, MultiLineString, MultiPoint, MultiPolygon};
pub use point::Point;
pub use polygon::Polygon;
pub use rect::Rect;

/// Errors produced while parsing or decoding geometry representations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// WKT input was malformed. Carries a human-readable description and the
    /// byte offset at which the problem was detected.
    Wkt { msg: String, offset: usize },
    /// WKB input was malformed or truncated.
    Wkb(String),
    /// A geometry violated a structural invariant (e.g. an unclosed polygon
    /// ring, or a linestring with fewer than two points).
    Invalid(String),
}

impl std::fmt::Display for GeomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeomError::Wkt { msg, offset } => write!(f, "WKT parse error at byte {offset}: {msg}"),
            GeomError::Wkb(msg) => write!(f, "WKB decode error: {msg}"),
            GeomError::Invalid(msg) => write!(f, "invalid geometry: {msg}"),
        }
    }
}

impl std::error::Error for GeomError {}

/// Convenience alias used across the crate.
pub type Result<T> = std::result::Result<T, GeomError>;
