//! Batched MBR/refine kernels over the zero-copy geometry views.
//!
//! The filter half of filter-and-refine is memory-bound: it touches every
//! received coordinate once to derive an MBR, then compares rectangles.
//! Doing that per record through an owned [`crate::Geometry`] pays a heap
//! allocation and a second pass per geometry before the first comparison
//! happens. The kernels here run straight over the borrowed views of
//! [`crate::wkb::decode_ref`] instead:
//!
//! * [`coords_envelope`] — min/max over a flat coordinate slice with four
//!   independent accumulator lanes, so the compiler can keep the loop in
//!   vector registers (the scalar remainder folds into the same lanes);
//! * [`envelope_batch`] — MBRs for a whole received round at once;
//! * [`filter_pairs_batch`] — rejects candidate pairs by MBR overlap and
//!   the caller's reference-cell claim before any point-in-polygon work;
//! * [`RefineArena`] — a scratch pool of coordinate buffers for the few
//!   candidates that survive to the exact intersection test, so the refine
//!   loop's materializations recycle allocations instead of making fresh
//!   ones per pair. The arena counts what it creates and how many buffers
//!   are resident at once, which is how the repro experiments *measure*
//!   the zero-alloc claim instead of asserting it.
//!
//! Every kernel is value-compatible with the owned path: envelopes use the
//! same `f64::min`/`f64::max` folds as [`crate::Rect::expand_point`], and
//! [`RefineArena::materialize`] rebuilds geometries through the owned
//! constructors, so results are equal to [`crate::wkb::decode`]'s.

use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::multi::{GeometryCollection, MultiLineString, MultiPoint, MultiPolygon};
use crate::point::Point;
use crate::polygon::{Polygon, Ring};
use crate::rect::Rect;
use crate::wkb::{CoordsRef, GeomRef};

/// MBR of a flat coordinate slice (16 bytes per point: x then y, in the
/// given byte order), computed with four independent accumulator lanes.
///
/// The lanes carry no sequential dependency across points, so the 4-wide
/// body auto-vectorizes; the final merge unions the lanes. The folds are
/// the same `f64::min`/`f64::max` as [`Rect::expand_point`], so the result
/// equals (under `==`) the owned `Rect::from_points` over the same
/// coordinates. An empty slice yields [`Rect::EMPTY`].
pub fn coords_envelope(data: &[u8], be: bool) -> Rect {
    let n = data.len() / 16;
    let rd = |i: usize, off: usize| -> f64 {
        // audit: `i < n` and `off ∈ {0, 8}`, so the range ends at most at
        // `16 · n ≤ data.len()`.
        let bytes: [u8; 8] = data[i * 16 + off..i * 16 + off + 8]
            .try_into()
            .expect("8-byte chunk"); // audit: the slice is exactly 8 bytes.
        if be {
            f64::from_be_bytes(bytes)
        } else {
            f64::from_le_bytes(bytes)
        }
    };
    let mut lanes = [Rect::EMPTY; 4];
    let mut i = 0;
    while i + 4 <= n {
        for (l, lane) in lanes.iter_mut().enumerate() {
            let (x, y) = (rd(i + l, 0), rd(i + l, 8));
            lane.min_x = lane.min_x.min(x);
            lane.min_y = lane.min_y.min(y);
            lane.max_x = lane.max_x.max(x);
            lane.max_y = lane.max_y.max(y);
        }
        i += 4;
    }
    while i < n {
        let (x, y) = (rd(i, 0), rd(i, 8));
        lanes[0].min_x = lanes[0].min_x.min(x);
        lanes[0].min_y = lanes[0].min_y.min(y);
        lanes[0].max_x = lanes[0].max_x.max(x);
        lanes[0].max_y = lanes[0].max_y.max(y);
        i += 1;
    }
    let mut out = Rect::EMPTY;
    for lane in &lanes {
        out.expand_rect(lane);
    }
    out
}

/// Computes the MBR of every view in `geoms` into `out` (cleared first) —
/// one pass over a whole received round, feeding the R-tree build and the
/// pair filter without any per-record geometry materialization.
pub fn envelope_batch(geoms: &[GeomRef<'_>], out: &mut Vec<Rect>) {
    out.clear();
    out.reserve(geoms.len());
    out.extend(geoms.iter().map(|g| g.envelope()));
}

/// Filters candidate `(left, right)` index pairs down to the ones whose
/// MBRs overlap **and** pass the caller's reference-cell claim, appending
/// survivors to `out` (cleared first) in input order. Everything rejected
/// here never reaches a point-in-polygon test.
///
/// `claims` receives the two MBRs of a pair that already passed the
/// overlap test — the duplicate-elimination hook
/// (`claims_reference` in the join framework).
pub fn filter_pairs_batch(
    candidates: &[(usize, usize)],
    left_mbrs: &[Rect],
    right_mbrs: &[Rect],
    mut claims: impl FnMut(&Rect, &Rect) -> bool,
    out: &mut Vec<(usize, usize)>,
) {
    out.clear();
    for &(li, ri) in candidates {
        let (a, b) = (&left_mbrs[li], &right_mbrs[ri]);
        if a.intersects(b) && claims(a, b) {
            out.push((li, ri));
        }
    }
}

/// Scratch pool for refine-phase materializations: coordinate buffers are
/// taken when a surviving candidate pair needs owned geometry for the
/// exact intersection test and given back immediately after, so a whole
/// refine window runs on a handful of resident buffers instead of one
/// fresh allocation per record.
///
/// The pool only recycles `Vec<Point>` coordinate buffers — the only
/// per-record allocation on the read path. Counters track every fresh
/// buffer creation ([`RefineArena::buffers_created`]) and the peak number
/// lent out at once ([`RefineArena::peak_resident`]); the repro
/// experiments export them as the max-resident-allocations metric.
#[derive(Debug, Default)]
pub struct RefineArena {
    pool: Vec<Vec<Point>>,
    created: u64,
    live: usize,
    peak_live: usize,
}

impl RefineArena {
    /// An empty arena.
    pub fn new() -> Self {
        RefineArena::default()
    }

    /// Forgets any outstanding lends (buffers not recycled are simply
    /// dropped by their owners) while keeping the pool — called between
    /// refine windows.
    pub fn reset(&mut self) {
        self.live = 0;
    }

    /// Fresh coordinate buffers created over the arena's lifetime.
    pub fn buffers_created(&self) -> u64 {
        self.created
    }

    /// Peak number of buffers lent out simultaneously.
    pub fn peak_resident(&self) -> usize {
        self.peak_live
    }

    fn take(&mut self) -> Vec<Point> {
        self.live += 1;
        self.peak_live = self.peak_live.max(self.live);
        match self.pool.pop() {
            Some(mut v) => {
                v.clear();
                v
            }
            None => {
                self.created += 1;
                Vec::new()
            }
        }
    }

    fn give(&mut self, v: Vec<Point>) {
        self.live = self.live.saturating_sub(1);
        self.pool.push(v);
    }

    fn linestring(&mut self, coords: &CoordsRef<'_>) -> LineString {
        let mut pts = self.take();
        pts.reserve(coords.len());
        pts.extend(coords.points());
        // audit: decode_ref already ran LineString::new's checks.
        LineString::new(pts).expect("validated linestring")
    }

    fn ring(&mut self, coords: &CoordsRef<'_>) -> Ring {
        let mut pts = self.take();
        // +1 so Ring::new's closing push (already counted in len() when
        // the wire ring is unclosed) never grows the buffer.
        pts.reserve(coords.len() + 1);
        // Wire points only: Ring::new re-closes exactly like the owned
        // decode, so the stored vector matches it point-for-point.
        pts.extend((0..coords.wire_len()).map(|i| coords.point(i)));
        // audit: decode_ref already ran Ring::new's checks.
        Ring::new(pts).expect("validated ring")
    }

    fn polygon(&mut self, p: &crate::wkb::PolygonRef<'_>) -> Polygon {
        let mut rings = p.rings();
        // audit: decode_ref guarantees at least one ring.
        let ext = self.ring(&rings.next().expect("validated polygon has >= 1 ring"));
        let holes = rings.map(|r| self.ring(&r)).collect();
        Polygon::new(ext, holes)
    }

    /// Materializes an owned [`Geometry`] equal to what
    /// [`crate::wkb::decode`] returns for the view's bytes, drawing
    /// coordinate buffers from the pool. Pair with
    /// [`RefineArena::recycle`] to return the buffers once the exact test
    /// is done.
    pub fn materialize(&mut self, g: &GeomRef<'_>) -> Geometry {
        match g {
            GeomRef::Point(p) => Geometry::Point(p.point()),
            GeomRef::LineString(l) => Geometry::LineString(self.linestring(&l.coords())),
            GeomRef::Polygon(p) => Geometry::Polygon(self.polygon(p)),
            GeomRef::MultiPoint(m) => {
                let mut pts = self.take();
                pts.reserve(m.len());
                pts.extend(m.members().map(|g| match g {
                    GeomRef::Point(p) => p.point(),
                    // audit: decode_ref enforced the member type.
                    _ => unreachable!("validated MULTIPOINT member"),
                }));
                Geometry::MultiPoint(MultiPoint(pts))
            }
            GeomRef::MultiLineString(m) => Geometry::MultiLineString(MultiLineString(
                m.members()
                    .map(|g| match g {
                        GeomRef::LineString(l) => self.linestring(&l.coords()),
                        // audit: decode_ref enforced the member type.
                        _ => unreachable!("validated MULTILINESTRING member"),
                    })
                    .collect(),
            )),
            GeomRef::MultiPolygon(m) => Geometry::MultiPolygon(MultiPolygon(
                m.members()
                    .map(|g| match g {
                        GeomRef::Polygon(p) => self.polygon(&p),
                        // audit: decode_ref enforced the member type.
                        _ => unreachable!("validated MULTIPOLYGON member"),
                    })
                    .collect(),
            )),
            GeomRef::GeometryCollection(c) => Geometry::GeometryCollection(GeometryCollection(
                c.members().map(|g| self.materialize(&g)).collect(),
            )),
        }
    }

    /// Returns a materialized geometry's coordinate buffers to the pool.
    pub fn recycle(&mut self, g: Geometry) {
        match g {
            Geometry::Point(_) => {}
            Geometry::LineString(l) => self.give(l.into_points()),
            Geometry::Polygon(p) => self.recycle_polygon(p),
            Geometry::MultiPoint(m) => self.give(m.0),
            Geometry::MultiLineString(m) => {
                for l in m.0 {
                    self.give(l.into_points());
                }
            }
            Geometry::MultiPolygon(m) => {
                for p in m.0 {
                    self.recycle_polygon(p);
                }
            }
            Geometry::GeometryCollection(c) => {
                for g in c.0 {
                    self.recycle(g);
                }
            }
        }
    }

    fn recycle_polygon(&mut self, p: Polygon) {
        let (ext, holes) = p.into_rings();
        self.give(ext.into_points());
        for h in holes {
            self.give(h.into_points());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkb;
    use crate::wkt;

    fn flat(coords: &[(f64, f64)]) -> Vec<u8> {
        let mut out = Vec::new();
        for &(x, y) in coords {
            out.extend_from_slice(&x.to_le_bytes());
            out.extend_from_slice(&y.to_le_bytes());
        }
        out
    }

    #[test]
    fn coords_envelope_matches_sequential_fold_for_every_remainder() {
        // 0..=9 points covers every 4-lane remainder class, including the
        // empty slice.
        for n in 0..10usize {
            let pts: Vec<(f64, f64)> = (0..n)
                .map(|i| {
                    let k = i as f64;
                    ((k * 37.0) % 11.0 - 5.0, (k * 17.0) % 7.0 - 3.0)
                })
                .collect();
            let data = flat(&pts);
            let expect = Rect::from_points(
                &pts.iter()
                    .map(|&(x, y)| Point::new(x, y))
                    .collect::<Vec<_>>(),
            );
            assert_eq!(coords_envelope(&data, false), expect, "n = {n}");
        }
    }

    #[test]
    fn coords_envelope_reads_big_endian() {
        let mut data = Vec::new();
        for v in [3.0f64, -1.0, -2.0, 4.0] {
            data.extend_from_slice(&v.to_be_bytes());
        }
        assert_eq!(
            coords_envelope(&data, true),
            Rect::new(-2.0, -1.0, 3.0, 4.0)
        );
    }

    #[test]
    fn filter_pairs_batch_rejects_by_mbr_then_claim() {
        let left = [Rect::new(0.0, 0.0, 1.0, 1.0), Rect::new(5.0, 5.0, 6.0, 6.0)];
        let right = [
            Rect::new(0.5, 0.5, 2.0, 2.0),
            Rect::new(9.0, 9.0, 10.0, 10.0),
        ];
        let candidates = [(0, 0), (0, 1), (1, 0), (1, 1)];
        let mut out = Vec::new();
        // Claim everything: only MBR overlap filters.
        filter_pairs_batch(&candidates, &left, &right, |_, _| true, &mut out);
        assert_eq!(out, vec![(0, 0)]);
        // Claim nothing: the claim hook can veto an overlapping pair.
        filter_pairs_batch(&candidates, &left, &right, |_, _| false, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn arena_materializes_equal_geometry_and_recycles_buffers() {
        let samples = [
            "POINT (3 4)",
            "LINESTRING (0 0, 2 2, 4 0)",
            "POLYGON ((35 10, 45 45, 15 40, 10 20, 35 10), (20 30, 35 35, 30 20, 20 30))",
            "MULTIPOINT ((1 2), (3 4))",
            "MULTILINESTRING ((0 0, 1 1), (2 2, 3 3))",
            "MULTIPOLYGON (((30 20, 45 40, 10 40, 30 20)))",
            "GEOMETRYCOLLECTION (POINT (40 10), LINESTRING (10 10, 20 20))",
        ];
        let mut arena = RefineArena::new();
        for s in samples {
            let owned = wkt::parse(s).unwrap();
            let bytes = wkb::encode(&owned);
            let (view, _) = wkb::decode_ref(&bytes).unwrap();
            // Two materialize/recycle cycles per sample: the second pass
            // must not create any new buffers.
            for _ in 0..2 {
                let m = arena.materialize(&view);
                assert_eq!(m, owned, "{s}");
                arena.recycle(m);
            }
        }
        let after_first_sweep = arena.buffers_created();
        for s in samples {
            let owned = wkt::parse(s).unwrap();
            let bytes = wkb::encode(&owned);
            let (view, _) = wkb::decode_ref(&bytes).unwrap();
            let m = arena.materialize(&view);
            arena.recycle(m);
        }
        assert_eq!(
            arena.buffers_created(),
            after_first_sweep,
            "second sweep must run entirely from the pool"
        );
        // Nothing is lent out between pairs, so the resident peak stays at
        // the widest single geometry (collection of 2 + spare), far below
        // the record count.
        assert!(arena.peak_resident() <= 4, "{}", arena.peak_resident());
    }

    #[test]
    fn arena_materializes_unclosed_ring_like_owned_decode() {
        // Hand-built WKB: polygon whose ring is NOT closed on the wire;
        // the owned decode auto-closes, and the arena's rebuild must match.
        let mut buf = vec![1u8];
        buf.extend_from_slice(&3u32.to_le_bytes()); // polygon
        buf.extend_from_slice(&1u32.to_le_bytes()); // 1 ring
        buf.extend_from_slice(&3u32.to_le_bytes()); // 3 wire points
        for v in [0.0f64, 0.0, 4.0, 0.0, 0.0, 4.0] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let (owned, _) = wkb::decode(&buf).unwrap();
        let (view, _) = wkb::decode_ref(&buf).unwrap();
        let mut arena = RefineArena::new();
        assert_eq!(arena.materialize(&view), owned);
        assert_eq!(view.num_points(), owned.num_points());
        assert_eq!(view.envelope(), owned.envelope());
    }
}
