//! Well-Known Binary (WKB) encoding and decoding.
//!
//! WKB is the unformatted binary counterpart of WKT (paper §2: "Its binary
//! equivalent, known as Well-Known Binary, is used to transfer and store the
//! geometries in spatial databases"). The library uses it for serializing
//! geometries into all-to-all communication buffers and for the binary-file
//! experiments.
//!
//! Layout per geometry: 1 byte byte-order marker (we always write 1 =
//! little-endian and accept either), 4 byte type code, then type-specific
//! payload of u32 counts and f64 coordinates.

use crate::geometry::{Geometry, GeometryType};
use crate::linestring::LineString;
use crate::multi::{GeometryCollection, MultiLineString, MultiPoint, MultiPolygon};
use crate::point::Point;
use crate::polygon::{Polygon, Ring};
use crate::rect::Rect;
use crate::{GeomError, Result};

/// Encodes a geometry to little-endian WKB, appending to `out`.
pub fn encode_to(g: &Geometry, out: &mut Vec<u8>) {
    out.push(1); // little-endian
    put_u32(out, g.geometry_type().code());
    match g {
        Geometry::Point(p) => put_point(out, p),
        Geometry::LineString(l) => put_coords(out, l.points()),
        Geometry::Polygon(p) => put_polygon_body(out, p),
        Geometry::MultiPoint(m) => {
            put_u32(out, m.0.len() as u32);
            for p in &m.0 {
                encode_to(&Geometry::Point(*p), out);
            }
        }
        Geometry::MultiLineString(m) => {
            put_u32(out, m.0.len() as u32);
            for l in &m.0 {
                out.push(1);
                put_u32(out, GeometryType::LineString.code());
                put_coords(out, l.points());
            }
        }
        Geometry::MultiPolygon(m) => {
            put_u32(out, m.0.len() as u32);
            for p in &m.0 {
                out.push(1);
                put_u32(out, GeometryType::Polygon.code());
                put_polygon_body(out, p);
            }
        }
        Geometry::GeometryCollection(c) => {
            put_u32(out, c.0.len() as u32);
            for g in &c.0 {
                encode_to(g, out);
            }
        }
    }
}

/// Encodes a geometry to a fresh WKB buffer.
pub fn encode(g: &Geometry) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(g));
    encode_to(g, &mut out);
    out
}

/// Encodes a geometry into a caller-owned scratch buffer: clears it,
/// reserves the exact [`encoded_len`] footprint, then encodes. Hot
/// serialization loops reuse one scratch across millions of geometries
/// instead of allocating (and dropping) a fresh [`encode`] `Vec` each
/// time; the single-call shape keeps the whole traversal compiled as one
/// unit here, where the capacity reasoning lives.
pub fn encode_into_scratch(g: &Geometry, scratch: &mut Vec<u8>) {
    scratch.clear();
    scratch.reserve(encoded_len(g));
    encode_to(g, scratch);
}

/// Exact byte length [`encode_to`] will append for `g`, computed without
/// allocating. Hot serialization paths (the exchange wire format) use
/// this as a size pre-pass: reserve once, encode straight into the
/// destination buffer, no per-geometry intermediate `Vec`.
pub fn encoded_len(g: &Geometry) -> usize {
    // 1 byte-order byte + 4 type-code bytes precede every geometry.
    5 + match g {
        Geometry::Point(_) => 16,
        Geometry::LineString(l) => 4 + 16 * l.points().len(),
        Geometry::Polygon(p) => polygon_body_len(p),
        Geometry::MultiPoint(m) => 4 + m.0.len() * 21,
        Geometry::MultiLineString(m) => {
            4 + m
                .0
                .iter()
                .map(|l| 5 + 4 + 16 * l.points().len())
                .sum::<usize>()
        }
        Geometry::MultiPolygon(m) => 4 + m.0.iter().map(|p| 5 + polygon_body_len(p)).sum::<usize>(),
        Geometry::GeometryCollection(c) => 4 + c.0.iter().map(encoded_len).sum::<usize>(),
    }
}

#[inline]
fn polygon_body_len(p: &crate::polygon::Polygon) -> usize {
    let ring = |r: &Ring| 4 + 16 * r.points().len();
    4 + ring(p.exterior()) + p.interiors().iter().map(ring).sum::<usize>()
}

/// Decodes one geometry from the front of `buf`, returning it and the
/// number of bytes consumed.
pub fn decode(buf: &[u8]) -> Result<(Geometry, usize)> {
    let mut cur = Cursor { buf, pos: 0 };
    let g = cur.geometry()?;
    Ok((g, cur.pos))
}

/// Decodes a back-to-back sequence of WKB geometries until `buf` is
/// exhausted.
pub fn decode_all(buf: &[u8]) -> Result<Vec<Geometry>> {
    let mut out = Vec::new();
    let mut cur = Cursor { buf, pos: 0 };
    while cur.pos < buf.len() {
        out.push(cur.geometry()?);
    }
    Ok(out)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_point(out: &mut Vec<u8>, p: &Point) {
    put_f64(out, p.x);
    put_f64(out, p.y);
}

fn put_coords(out: &mut Vec<u8>, pts: &[Point]) {
    put_u32(out, pts.len() as u32);
    for p in pts {
        put_point(out, p);
    }
}

fn put_polygon_body(out: &mut Vec<u8>, p: &Polygon) {
    put_u32(out, 1 + p.interiors().len() as u32);
    put_coords(out, p.exterior().points());
    for hole in p.interiors() {
        put_coords(out, hole.points());
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn need(&self, n: usize) -> Result<()> {
        if self.pos + n > self.buf.len() {
            Err(GeomError::Wkb(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn u32(&mut self, big_endian: bool) -> Result<u32> {
        self.need(4)?;
        // audit: `need` bounds-checked; the range is exactly 4 bytes.
        let bytes: [u8; 4] = self.buf[self.pos..self.pos + 4].try_into().unwrap();
        self.pos += 4;
        Ok(if big_endian {
            u32::from_be_bytes(bytes)
        } else {
            u32::from_le_bytes(bytes)
        })
    }

    fn f64(&mut self, big_endian: bool) -> Result<f64> {
        self.need(8)?;
        // audit: `need` bounds-checked; the range is exactly 8 bytes.
        let bytes: [u8; 8] = self.buf[self.pos..self.pos + 8].try_into().unwrap();
        self.pos += 8;
        Ok(if big_endian {
            f64::from_be_bytes(bytes)
        } else {
            f64::from_le_bytes(bytes)
        })
    }

    fn point(&mut self, be: bool) -> Result<Point> {
        Ok(Point::new(self.f64(be)?, self.f64(be)?))
    }

    fn coords(&mut self, be: bool) -> Result<Vec<Point>> {
        let n = self.u32(be)? as usize;
        // Defensive cap: a count that implies reading past the buffer is
        // corrupt, not a huge geometry.
        if n > (self.buf.len() - self.pos) / 16 + 1 {
            return Err(GeomError::Wkb(format!(
                "coordinate count {n} exceeds buffer"
            )));
        }
        let mut pts = Vec::with_capacity(n);
        for _ in 0..n {
            pts.push(self.point(be)?);
        }
        Ok(pts)
    }

    fn geometry(&mut self) -> Result<Geometry> {
        let order = self.u8()?;
        let be = match order {
            0 => true,
            1 => false,
            other => return Err(GeomError::Wkb(format!("bad byte-order marker {other}"))),
        };
        let code = self.u32(be)?;
        let ty = GeometryType::from_code(code)
            .ok_or_else(|| GeomError::Wkb(format!("unknown geometry type code {code}")))?;
        match ty {
            GeometryType::Point => Ok(Geometry::Point(self.point(be)?)),
            GeometryType::LineString => {
                Ok(Geometry::LineString(LineString::new(self.coords(be)?)?))
            }
            GeometryType::Polygon => Ok(Geometry::Polygon(self.polygon_body(be)?)),
            GeometryType::MultiPoint => {
                let n = self.u32(be)? as usize;
                let mut pts = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    match self.geometry()? {
                        Geometry::Point(p) => pts.push(p),
                        other => {
                            return Err(GeomError::Wkb(format!(
                                "MULTIPOINT member is {:?}",
                                other.geometry_type()
                            )))
                        }
                    }
                }
                Ok(Geometry::MultiPoint(MultiPoint(pts)))
            }
            GeometryType::MultiLineString => {
                let n = self.u32(be)? as usize;
                let mut lines = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    match self.geometry()? {
                        Geometry::LineString(l) => lines.push(l),
                        other => {
                            return Err(GeomError::Wkb(format!(
                                "MULTILINESTRING member is {:?}",
                                other.geometry_type()
                            )))
                        }
                    }
                }
                Ok(Geometry::MultiLineString(MultiLineString(lines)))
            }
            GeometryType::MultiPolygon => {
                let n = self.u32(be)? as usize;
                let mut polys = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    match self.geometry()? {
                        Geometry::Polygon(p) => polys.push(p),
                        other => {
                            return Err(GeomError::Wkb(format!(
                                "MULTIPOLYGON member is {:?}",
                                other.geometry_type()
                            )))
                        }
                    }
                }
                Ok(Geometry::MultiPolygon(MultiPolygon(polys)))
            }
            GeometryType::GeometryCollection => {
                let n = self.u32(be)? as usize;
                let mut members = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    members.push(self.geometry()?);
                }
                Ok(Geometry::GeometryCollection(GeometryCollection(members)))
            }
        }
    }

    fn polygon_body(&mut self, be: bool) -> Result<Polygon> {
        let nrings = self.u32(be)? as usize;
        if nrings == 0 {
            return Err(GeomError::Wkb("polygon with zero rings".into()));
        }
        let ext = Ring::new(self.coords(be)?)?;
        let mut holes = Vec::with_capacity(nrings - 1);
        for _ in 1..nrings {
            holes.push(Ring::new(self.coords(be)?)?);
        }
        Ok(Polygon::new(ext, holes))
    }

    /// Walks one coordinate sequence without materializing it, performing
    /// exactly the checks of [`Cursor::coords`] (count cap, per-value
    /// truncation) and recording what the owned constructors would later
    /// check: the first non-finite point and the first/last points (for
    /// ring-closure semantics).
    fn coords_ref(&mut self, be: bool) -> Result<RawCoords<'a>> {
        // audit: u32 → usize is lossless on every supported target.
        let n = self.u32(be)? as usize;
        // Defensive cap: a count that implies reading past the buffer is
        // corrupt, not a huge geometry.
        if n > (self.buf.len() - self.pos) / 16 + 1 {
            return Err(GeomError::Wkb(format!(
                "coordinate count {n} exceeds buffer"
            )));
        }
        let start = self.pos;
        if n * 16 > self.buf.len() - start {
            // Truncated run (the cap admits counts one point past the
            // end): re-walk point by point so the error names the exact
            // offset [`Cursor::f64`] reports on the owned path.
            for _ in 0..n {
                self.point(be)?;
            }
            return Err(GeomError::Wkb(
                "unreachable: short coordinate run survived re-walk".into(),
            ));
        }
        let data = &self.buf[start..start + n * 16];
        self.pos += n * 16;
        // Hot path: the whole run was bounds-checked once above, so the
        // finiteness sweep is a branch-light pass over the raw values —
        // no per-read cursor bookkeeping, which is where the owned
        // decoder spends its time besides allocating.
        let mut all_finite = true;
        if be {
            for c in data.chunks_exact(8) {
                // audit: chunks_exact yields exactly 8 bytes.
                let v = f64::from_be_bytes(c.try_into().expect("8-byte chunk"));
                all_finite &= v.is_finite();
            }
        } else {
            for c in data.chunks_exact(8) {
                // audit: chunks_exact yields exactly 8 bytes.
                let v = f64::from_le_bytes(c.try_into().expect("8-byte chunk"));
                all_finite &= v.is_finite();
            }
        }
        let mut first_nonfinite = None;
        if !all_finite {
            // Cold: name the first offending *point* for the diagnostic,
            // exactly as the sequential walk would.
            for i in 0..n {
                let p = Point::new(f64_at(data, i * 16, be), f64_at(data, i * 16 + 8, be));
                if !p.is_finite() {
                    first_nonfinite = Some(p);
                    break;
                }
            }
        }
        let (first, last) = if n > 0 {
            (
                Some(Point::new(f64_at(data, 0, be), f64_at(data, 8, be))),
                Some(Point::new(
                    f64_at(data, (n - 1) * 16, be),
                    f64_at(data, (n - 1) * 16 + 8, be),
                )),
            )
        } else {
            (None, None)
        };
        Ok(RawCoords {
            n,
            data,
            first_nonfinite,
            first,
            last,
        })
    }

    /// Validates one ring with exactly `Ring::new`'s checks in `Ring::new`'s
    /// order: finiteness first, then virtual closure (the view repeats the
    /// first point instead of pushing a copy), then the closed length.
    fn ring_ref(&mut self, be: bool) -> Result<()> {
        let c = self.coords_ref(be)?;
        if let Some(p) = c.first_nonfinite {
            return Err(GeomError::Invalid(format!("non-finite coordinate {p}")));
        }
        let closed_len = if c.first != c.last { c.n + 1 } else { c.n };
        if closed_len < 4 {
            return Err(GeomError::Invalid(format!(
                "polygon ring needs >= 4 points (closed), got {closed_len}"
            )));
        }
        Ok(())
    }

    fn polygon_body_ref(&mut self, be: bool) -> Result<PolygonRef<'a>> {
        let nrings = self.u32(be)? as usize;
        if nrings == 0 {
            return Err(GeomError::Wkb("polygon with zero rings".into()));
        }
        let start = self.pos;
        for _ in 0..nrings {
            self.ring_ref(be)?;
        }
        Ok(PolygonRef {
            body: &self.buf[start..self.pos],
            nrings,
            be,
        })
    }

    /// Validates the `n` nested members of a Multi*/collection body,
    /// enforcing the member type when `expect` names one, and returns the
    /// borrowed body view.
    fn multi_ref(
        &mut self,
        be: bool,
        expect: Option<(GeometryType, &str)>,
    ) -> Result<MultiRef<'a>> {
        let n = self.u32(be)? as usize;
        let start = self.pos;
        for _ in 0..n {
            let g = self.geometry_ref()?;
            if let Some((ty, kw)) = expect {
                if g.geometry_type() != ty {
                    return Err(GeomError::Wkb(format!(
                        "{kw} member is {:?}",
                        g.geometry_type()
                    )));
                }
            }
        }
        Ok(MultiRef {
            body: &self.buf[start..self.pos],
            n,
        })
    }

    /// The borrowed twin of [`Cursor::geometry`]: same markers, same
    /// bounds checks, same semantic constraints (via [`Cursor::ring_ref`]
    /// and the inline `LINESTRING` checks), same errors in the same order
    /// — but nothing is materialized.
    fn geometry_ref(&mut self) -> Result<GeomRef<'a>> {
        let order = self.u8()?;
        let be = match order {
            0 => true,
            1 => false,
            other => return Err(GeomError::Wkb(format!("bad byte-order marker {other}"))),
        };
        let code = self.u32(be)?;
        let ty = GeometryType::from_code(code)
            .ok_or_else(|| GeomError::Wkb(format!("unknown geometry type code {code}")))?;
        match ty {
            GeometryType::Point => {
                let start = self.pos;
                self.f64(be)?;
                self.f64(be)?;
                Ok(GeomRef::Point(PointRef {
                    data: &self.buf[start..self.pos],
                    be,
                }))
            }
            GeometryType::LineString => {
                let c = self.coords_ref(be)?;
                // `LineString::new`'s checks, in its order: length first,
                // then finiteness.
                if c.n < 2 {
                    return Err(GeomError::Invalid(format!(
                        "LINESTRING needs >= 2 points, got {}",
                        c.n
                    )));
                }
                if let Some(p) = c.first_nonfinite {
                    return Err(GeomError::Invalid(format!("non-finite coordinate {p}")));
                }
                Ok(GeomRef::LineString(LineStringRef {
                    coords: CoordsRef {
                        data: c.data,
                        be,
                        closing: false,
                    },
                }))
            }
            GeometryType::Polygon => Ok(GeomRef::Polygon(self.polygon_body_ref(be)?)),
            GeometryType::MultiPoint => self
                .multi_ref(be, Some((GeometryType::Point, "MULTIPOINT")))
                .map(GeomRef::MultiPoint),
            GeometryType::MultiLineString => self
                .multi_ref(be, Some((GeometryType::LineString, "MULTILINESTRING")))
                .map(GeomRef::MultiLineString),
            GeometryType::MultiPolygon => self
                .multi_ref(be, Some((GeometryType::Polygon, "MULTIPOLYGON")))
                .map(GeomRef::MultiPolygon),
            GeometryType::GeometryCollection => {
                self.multi_ref(be, None).map(GeomRef::GeometryCollection)
            }
        }
    }
}

/// What [`Cursor::coords_ref`] learned while walking one coordinate
/// sequence in place.
struct RawCoords<'a> {
    /// Stored (wire) point count.
    n: usize,
    /// The `16 · n` coordinate bytes.
    data: &'a [u8],
    /// First point failing [`Point::is_finite`], if any.
    first_nonfinite: Option<Point>,
    first: Option<Point>,
    last: Option<Point>,
}

/// Reads the `f64` at `data[at..at + 8]` in the given byte order. Private
/// helper of the borrowed views; every caller stays inside a region the
/// validating [`decode_ref`] pass already bounds-checked.
#[inline]
fn f64_at(data: &[u8], at: usize, be: bool) -> f64 {
    // audit: callers index inside regions validated by `decode_ref`.
    let bytes: [u8; 8] = data[at..at + 8].try_into().expect("8-byte slice");
    if be {
        f64::from_be_bytes(bytes)
    } else {
        f64::from_le_bytes(bytes)
    }
}

/// Reads the `u32` at `data[at..at + 4]` in the given byte order (same
/// validated-region contract as [`f64_at`]).
#[inline]
fn u32_at(data: &[u8], at: usize, be: bool) -> u32 {
    // audit: callers index inside regions validated by `decode_ref`.
    let bytes: [u8; 4] = data[at..at + 4].try_into().expect("4-byte slice");
    if be {
        u32::from_be_bytes(bytes)
    } else {
        u32::from_le_bytes(bytes)
    }
}

/// Decodes one geometry from the front of `buf` as a borrowed zero-copy
/// view, returning it and the number of bytes consumed.
///
/// Performs exactly the checks of [`decode`] — truncation, byte-order and
/// type markers, coordinate-count caps, member types, and the semantic
/// constraints the owned constructors enforce (`LINESTRING` length and
/// finiteness, ring finiteness/closure/length) — in the same order, with
/// the same errors. But nothing is allocated: coordinates stay in `buf`
/// and are read in place via unaligned `f64` loads on access, and an
/// unclosed polygon ring gets a *virtual* closing vertex instead of the
/// pushed copy [`Ring::new`] makes, so the views agree point-for-point
/// with the owned decode.
pub fn decode_ref(buf: &[u8]) -> Result<(GeomRef<'_>, usize)> {
    let mut cur = Cursor { buf, pos: 0 };
    let g = cur.geometry_ref()?;
    Ok((g, cur.pos))
}

/// Borrowed zero-copy view of one WKB geometry, produced by
/// [`decode_ref`]. `Copy` and pointer-sized-ish: cloning a view never
/// touches the heap. Construction sites outside this module go through
/// [`decode_ref`], so every view is fully validated — accessors index
/// infallibly.
#[derive(Debug, Clone, Copy)]
pub enum GeomRef<'a> {
    /// A single point (16 coordinate bytes).
    Point(PointRef<'a>),
    /// A polyline over a flat coordinate slice.
    LineString(LineStringRef<'a>),
    /// A polygon: lazily iterated rings over the raw body bytes.
    Polygon(PolygonRef<'a>),
    /// Multi-point body; members iterate as nested [`GeomRef::Point`]s.
    MultiPoint(MultiRef<'a>),
    /// Multi-linestring body.
    MultiLineString(MultiRef<'a>),
    /// Multi-polygon body.
    MultiPolygon(MultiRef<'a>),
    /// Heterogeneous collection body.
    GeometryCollection(MultiRef<'a>),
}

impl<'a> GeomRef<'a> {
    /// The view's geometry type (matches what [`decode`] would return).
    pub fn geometry_type(&self) -> GeometryType {
        match self {
            GeomRef::Point(_) => GeometryType::Point,
            GeomRef::LineString(_) => GeometryType::LineString,
            GeomRef::Polygon(_) => GeometryType::Polygon,
            GeomRef::MultiPoint(_) => GeometryType::MultiPoint,
            GeomRef::MultiLineString(_) => GeometryType::MultiLineString,
            GeomRef::MultiPolygon(_) => GeometryType::MultiPolygon,
            GeomRef::GeometryCollection(_) => GeometryType::GeometryCollection,
        }
    }

    /// Minimum bounding rectangle, equal (under `==`) to
    /// [`Geometry::envelope`] of the owned decode: same min/max folds over
    /// the same coordinates (polygon = exterior ring only; Multi*/
    /// collection = union over members in order; empty bodies yield
    /// [`Rect::EMPTY`]).
    pub fn envelope(&self) -> Rect {
        match self {
            GeomRef::Point(p) => p.envelope(),
            GeomRef::LineString(l) => l.envelope(),
            GeomRef::Polygon(p) => p.envelope(),
            GeomRef::MultiPoint(m)
            | GeomRef::MultiLineString(m)
            | GeomRef::MultiPolygon(m)
            | GeomRef::GeometryCollection(m) => m
                .members()
                .fold(Rect::EMPTY, |acc, g| acc.union(&g.envelope())),
        }
    }

    /// Total vertex count, equal to [`Geometry::num_points`] of the owned
    /// decode — ring counts include the (possibly virtual) closing vertex.
    pub fn num_points(&self) -> usize {
        match self {
            GeomRef::Point(_) => 1,
            GeomRef::LineString(l) => l.num_points(),
            GeomRef::Polygon(p) => p.num_points(),
            GeomRef::MultiPoint(m) => m.len(),
            GeomRef::MultiLineString(m)
            | GeomRef::MultiPolygon(m)
            | GeomRef::GeometryCollection(m) => m.members().map(|g| g.num_points()).sum(),
        }
    }

    /// Materializes the owned [`Geometry`] this view describes — equal to
    /// what [`decode`] returns for the same bytes. Allocates fresh
    /// buffers; hot refine loops use
    /// [`crate::refkernel::RefineArena::materialize`] to recycle them.
    pub fn to_geometry(&self) -> Geometry {
        crate::refkernel::RefineArena::new().materialize(self)
    }
}

/// Borrowed view of a point's 16 coordinate bytes.
#[derive(Debug, Clone, Copy)]
pub struct PointRef<'a> {
    data: &'a [u8],
    be: bool,
}

impl PointRef<'_> {
    /// The x coordinate, read in place.
    #[inline]
    pub fn x(&self) -> f64 {
        f64_at(self.data, 0, self.be)
    }

    /// The y coordinate, read in place.
    #[inline]
    pub fn y(&self) -> f64 {
        f64_at(self.data, 8, self.be)
    }

    /// The decoded point.
    #[inline]
    pub fn point(&self) -> Point {
        Point::new(self.x(), self.y())
    }

    /// Degenerate MBR, as [`Point::envelope`].
    pub fn envelope(&self) -> Rect {
        self.point().envelope()
    }
}

/// Borrowed flat coordinate sequence: stored wire points of 16 bytes
/// each, plus — for unclosed polygon rings — one *virtual* closing vertex
/// repeating the first point, mirroring the copy [`Ring::new`] pushes.
#[derive(Debug, Clone, Copy)]
pub struct CoordsRef<'a> {
    data: &'a [u8],
    be: bool,
    closing: bool,
}

impl<'a> CoordsRef<'a> {
    /// Number of points stored on the wire.
    #[inline]
    pub fn wire_len(&self) -> usize {
        self.data.len() / 16
    }

    /// Logical point count, including the virtual closing vertex — equal
    /// to the owned constructor's stored length.
    #[inline]
    pub fn len(&self) -> usize {
        self.wire_len() + usize::from(self.closing)
    }

    /// `true` when the sequence holds no points at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th logical point, read in place (`i == wire_len` resolves
    /// to the virtual closing vertex when present).
    #[inline]
    pub fn point(&self, i: usize) -> Point {
        let at = if self.closing && i == self.wire_len() {
            0
        } else {
            i * 16
        };
        Point::new(
            f64_at(self.data, at, self.be),
            f64_at(self.data, at + 8, self.be),
        )
    }

    /// Iterates the logical points (virtual closing vertex included).
    pub fn points(&self) -> impl Iterator<Item = Point> + 'a {
        let this = *self;
        (0..this.len()).map(move |i| this.point(i))
    }

    /// The raw stored coordinate bytes and their byte order — the flat
    /// slice the batched envelope kernel consumes.
    #[inline]
    pub fn raw(&self) -> (&'a [u8], bool) {
        (self.data, self.be)
    }

    /// MBR over the points (the virtual closing vertex repeats a stored
    /// one and cannot move it).
    pub fn envelope(&self) -> Rect {
        crate::refkernel::coords_envelope(self.data, self.be)
    }
}

/// Borrowed view of a linestring's coordinate sequence.
#[derive(Debug, Clone, Copy)]
pub struct LineStringRef<'a> {
    coords: CoordsRef<'a>,
}

impl<'a> LineStringRef<'a> {
    /// The underlying coordinate view.
    #[inline]
    pub fn coords(&self) -> CoordsRef<'a> {
        self.coords
    }

    /// Vertex count, as [`LineString::num_points`].
    #[inline]
    pub fn num_points(&self) -> usize {
        self.coords.len()
    }

    /// MBR, as [`LineString::envelope`].
    pub fn envelope(&self) -> Rect {
        self.coords.envelope()
    }
}

/// Borrowed view of a polygon body: ring count plus the raw ring bytes,
/// iterated lazily — no per-ring `Vec` exists anywhere.
#[derive(Debug, Clone, Copy)]
pub struct PolygonRef<'a> {
    body: &'a [u8],
    nrings: usize,
    be: bool,
}

impl<'a> PolygonRef<'a> {
    /// Number of rings (exterior + holes), always ≥ 1.
    #[inline]
    pub fn num_rings(&self) -> usize {
        self.nrings
    }

    /// Iterates the rings in wire order (exterior first).
    pub fn rings(&self) -> RingIter<'a> {
        RingIter {
            body: self.body,
            pos: 0,
            left: self.nrings,
            be: self.be,
        }
    }

    /// The exterior shell's coordinates.
    pub fn exterior(&self) -> CoordsRef<'a> {
        self.rings()
            .next()
            .expect("validated polygon has >= 1 ring") // audit: decode_ref guarantees at least one ring.
    }

    /// MBR, as [`Polygon::envelope`] (exterior ring only — holes cannot
    /// extend it).
    pub fn envelope(&self) -> Rect {
        self.exterior().envelope()
    }

    /// Total vertex count across rings, closing vertices included, as
    /// [`Polygon::num_points`].
    pub fn num_points(&self) -> usize {
        self.rings().map(|r| r.len()).sum()
    }
}

/// Lazy ring iterator over a validated polygon body.
#[derive(Debug, Clone)]
pub struct RingIter<'a> {
    body: &'a [u8],
    pos: usize,
    left: usize,
    be: bool,
}

impl<'a> Iterator for RingIter<'a> {
    type Item = CoordsRef<'a>;

    fn next(&mut self) -> Option<CoordsRef<'a>> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        // audit: u32 → usize is lossless on every supported target.
        let n = u32_at(self.body, self.pos, self.be) as usize;
        let start = self.pos + 4;
        let data = &self.body[start..start + n * 16];
        self.pos = start + n * 16;
        Some(ring_coords(data, self.be))
    }
}

/// Wraps a validated ring's stored coordinates, computing whether the
/// view needs the virtual closing vertex ([`Ring::new`] pushes a copy of
/// the first point when the wire sequence is unclosed under `Point`
/// equality; the view repeats it virtually instead).
fn ring_coords(data: &[u8], be: bool) -> CoordsRef<'_> {
    let n = data.len() / 16;
    let closing = n > 0 && {
        let first = Point::new(f64_at(data, 0, be), f64_at(data, 8, be));
        let last = Point::new(
            f64_at(data, (n - 1) * 16, be),
            f64_at(data, (n - 1) * 16 + 8, be),
        );
        first != last
    };
    CoordsRef { data, be, closing }
}

/// Borrowed view of a Multi*/collection body: `n` members, each a full
/// nested WKB geometry, re-walked lazily over the validated bytes.
#[derive(Debug, Clone, Copy)]
pub struct MultiRef<'a> {
    body: &'a [u8],
    n: usize,
}

impl<'a> MultiRef<'a> {
    /// Member count.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` when the body holds no members.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Iterates the member views in wire order.
    pub fn members(&self) -> MemberIter<'a> {
        MemberIter {
            rest: self.body,
            left: self.n,
        }
    }
}

/// Lazy member iterator over a validated Multi*/collection body.
#[derive(Debug, Clone)]
pub struct MemberIter<'a> {
    rest: &'a [u8],
    left: usize,
}

impl<'a> Iterator for MemberIter<'a> {
    type Item = GeomRef<'a>;

    fn next(&mut self) -> Option<GeomRef<'a>> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        // audit: the member bytes were validated by the enclosing decode_ref.
        let (g, used) = decode_ref(self.rest).expect("validated multi member");
        self.rest = &self.rest[used..];
        Some(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt;

    fn round_trip(s: &str) {
        let g = wkt::parse(s).unwrap();
        let bytes = encode(&g);
        let (g2, used) = decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(g, g2, "WKB round trip failed for {s}");
    }

    #[test]
    fn round_trips_all_types() {
        round_trip("POINT (30 10)");
        round_trip("LINESTRING (30 10, 10 30, 40 40)");
        round_trip("POLYGON ((30 10, 40 40, 20 40, 30 10))");
        round_trip("POLYGON ((35 10, 45 45, 15 40, 10 20, 35 10), (20 30, 35 35, 30 20, 20 30))");
        round_trip("MULTIPOINT ((10 40), (40 30))");
        round_trip("MULTILINESTRING ((10 10, 20 20), (40 40, 30 30))");
        round_trip("MULTIPOLYGON (((30 20, 45 40, 10 40, 30 20)))");
        round_trip("GEOMETRYCOLLECTION (POINT (40 10), LINESTRING (10 10, 20 20))");
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        for s in [
            "POINT (30 10)",
            "LINESTRING (30 10, 10 30, 40 40)",
            "POLYGON ((30 10, 40 40, 20 40, 30 10))",
            "POLYGON ((35 10, 45 45, 15 40, 10 20, 35 10), (20 30, 35 35, 30 20, 20 30))",
            "MULTIPOINT ((10 40), (40 30))",
            "MULTILINESTRING ((10 10, 20 20), (40 40, 30 30))",
            "MULTIPOLYGON (((30 20, 45 40, 10 40, 30 20)))",
            "GEOMETRYCOLLECTION (POINT (40 10), LINESTRING (10 10, 20 20))",
        ] {
            let g = wkt::parse(s).unwrap();
            assert_eq!(encoded_len(&g), encode(&g).len(), "{s}");
        }
    }

    #[test]
    fn point_wkb_is_21_bytes() {
        // 1 (order) + 4 (type) + 16 (coords): the classic WKB point size.
        let g = wkt::parse("POINT (1 2)").unwrap();
        assert_eq!(encode(&g).len(), 21);
    }

    #[test]
    fn decode_all_handles_concatenated_stream() {
        let g1 = wkt::parse("POINT (1 2)").unwrap();
        let g2 = wkt::parse("LINESTRING (0 0, 5 5)").unwrap();
        let mut buf = encode(&g1);
        buf.extend_from_slice(&encode(&g2));
        let all = decode_all(&buf).unwrap();
        assert_eq!(all, vec![g1, g2]);
    }

    #[test]
    fn rejects_truncated_input() {
        let g = wkt::parse("POLYGON ((30 10, 40 40, 20 40, 30 10))").unwrap();
        let bytes = encode(&g);
        for cut in [0, 1, 4, 8, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn rejects_bad_markers() {
        assert!(decode(&[7, 1, 0, 0, 0]).is_err()); // bad byte order
        assert!(decode(&[1, 99, 0, 0, 0]).is_err()); // bad type code
    }

    #[test]
    fn rejects_absurd_counts() {
        // LINESTRING claiming u32::MAX points in a tiny buffer.
        let mut buf = vec![1u8];
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn accepts_big_endian_input() {
        // Hand-build a big-endian POINT (1 2).
        let mut buf = vec![0u8];
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&1.0f64.to_be_bytes());
        buf.extend_from_slice(&2.0f64.to_be_bytes());
        let (g, _) = decode(&buf).unwrap();
        assert_eq!(g, Geometry::Point(Point::new(1.0, 2.0)));
    }

    /// Both decoders over the same bytes: same success/error verdict,
    /// same error string, and on success the view materializes the same
    /// geometry with the same consumed length, envelope and vertex count.
    fn assert_ref_parity(bytes: &[u8]) {
        match (decode(bytes), decode_ref(bytes)) {
            (Ok((owned, used)), Ok((view, used_ref))) => {
                assert_eq!(used, used_ref);
                assert_eq!(view.to_geometry(), owned);
                assert_eq!(view.geometry_type(), owned.geometry_type());
                assert_eq!(view.envelope(), owned.envelope());
                assert_eq!(view.num_points(), owned.num_points());
            }
            (Err(e_owned), Err(e_ref)) => {
                assert_eq!(e_owned, e_ref, "error divergence");
            }
            (owned, other) => panic!("verdict divergence: owned {owned:?} vs ref {other:?}"),
        }
    }

    #[test]
    fn decode_ref_matches_decode_on_all_types_and_every_truncation() {
        for s in [
            "POINT (30 10)",
            "LINESTRING (30 10, 10 30, 40 40)",
            "POLYGON ((30 10, 40 40, 20 40, 30 10))",
            "POLYGON ((35 10, 45 45, 15 40, 10 20, 35 10), (20 30, 35 35, 30 20, 20 30))",
            "MULTIPOINT ((10 40), (40 30))",
            "MULTILINESTRING ((10 10, 20 20), (40 40, 30 30))",
            "MULTIPOLYGON (((30 20, 45 40, 10 40, 30 20)))",
            "GEOMETRYCOLLECTION (POINT (40 10), LINESTRING (10 10, 20 20))",
        ] {
            let bytes = encode(&wkt::parse(s).unwrap());
            for cut in 0..=bytes.len() {
                assert_ref_parity(&bytes[..cut]);
            }
        }
    }

    #[test]
    fn decode_ref_matches_decode_on_malformed_buffers() {
        // Bad byte order, bad type code, absurd count.
        assert_ref_parity(&[7, 1, 0, 0, 0]);
        assert_ref_parity(&[1, 99, 0, 0, 0]);
        let mut absurd = vec![1u8];
        absurd.extend_from_slice(&2u32.to_le_bytes());
        absurd.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_ref_parity(&absurd);

        // Polygon with zero rings.
        let mut zero_rings = vec![1u8];
        zero_rings.extend_from_slice(&3u32.to_le_bytes());
        zero_rings.extend_from_slice(&0u32.to_le_bytes());
        assert_ref_parity(&zero_rings);

        // Rings of 0..5 wire points (empty, degenerate, unclosed triangle
        // that auto-closes, closed square): both decoders must agree on
        // the `Ring::new` semantics, including the auto-close.
        for n in 0..5u32 {
            let mut buf = vec![1u8];
            buf.extend_from_slice(&3u32.to_le_bytes());
            buf.extend_from_slice(&1u32.to_le_bytes());
            buf.extend_from_slice(&n.to_le_bytes());
            for i in 0..n {
                let (x, y) = match i {
                    0 => (0.0f64, 0.0f64),
                    1 => (4.0, 0.0),
                    2 => (0.0, 4.0),
                    _ => (0.0, 0.0), // closes the ring at n = 4
                };
                buf.extend_from_slice(&x.to_le_bytes());
                buf.extend_from_slice(&y.to_le_bytes());
            }
            assert_ref_parity(&buf);
        }

        // Non-finite coordinates: a linestring and a ring carrying a NaN
        // (finiteness ordering differs between the two constructors).
        for ty in [2u32, 3] {
            let mut buf = vec![1u8];
            buf.extend_from_slice(&ty.to_le_bytes());
            if ty == 3 {
                buf.extend_from_slice(&1u32.to_le_bytes());
            }
            buf.extend_from_slice(&4u32.to_le_bytes());
            for v in [0.0f64, 0.0, f64::NAN, 1.0, 2.0, 2.0, 0.0, 0.0] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
            assert_ref_parity(&buf);
        }

        // MULTIPOINT whose member is a linestring.
        let mut bad_member = vec![1u8];
        bad_member.extend_from_slice(&4u32.to_le_bytes());
        bad_member.extend_from_slice(&1u32.to_le_bytes());
        bad_member.extend_from_slice(&encode(&wkt::parse("LINESTRING (0 0, 1 1)").unwrap()));
        assert_ref_parity(&bad_member);
    }

    #[test]
    fn decode_ref_accepts_big_endian_and_concatenated_streams() {
        let mut be_buf = vec![0u8];
        be_buf.extend_from_slice(&1u32.to_be_bytes());
        be_buf.extend_from_slice(&1.0f64.to_be_bytes());
        be_buf.extend_from_slice(&2.0f64.to_be_bytes());
        assert_ref_parity(&be_buf);

        // Back-to-back stream: decode_ref consumes exactly one geometry
        // per call at the same offsets as decode.
        let g1 = wkt::parse("POINT (1 2)").unwrap();
        let g2 = wkt::parse("LINESTRING (0 0, 5 5)").unwrap();
        let mut buf = encode(&g1);
        let first_len = buf.len();
        buf.extend_from_slice(&encode(&g2));
        let (v1, used1) = decode_ref(&buf).unwrap();
        assert_eq!(used1, first_len);
        assert_eq!(v1.to_geometry(), g1);
        let (v2, used2) = decode_ref(&buf[used1..]).unwrap();
        assert_eq!(used1 + used2, buf.len());
        assert_eq!(v2.to_geometry(), g2);
    }

    #[test]
    fn ring_views_repeat_the_virtual_closing_vertex() {
        // Unclosed wire ring: 3 stored points, logical length 4.
        let mut buf = vec![1u8];
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        for v in [0.0f64, 0.0, 4.0, 0.0, 0.0, 4.0] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
        let (view, _) = decode_ref(&buf).unwrap();
        let GeomRef::Polygon(p) = view else {
            panic!("expected a polygon view")
        };
        let ext = p.exterior();
        assert_eq!(ext.wire_len(), 3);
        assert_eq!(ext.len(), 4);
        assert_eq!(ext.point(3), ext.point(0));
        let pts: Vec<Point> = ext.points().collect();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[3], Point::new(0.0, 0.0));
        assert_eq!(p.num_points(), 4);
    }
}
