//! Well-Known Binary (WKB) encoding and decoding.
//!
//! WKB is the unformatted binary counterpart of WKT (paper §2: "Its binary
//! equivalent, known as Well-Known Binary, is used to transfer and store the
//! geometries in spatial databases"). The library uses it for serializing
//! geometries into all-to-all communication buffers and for the binary-file
//! experiments.
//!
//! Layout per geometry: 1 byte byte-order marker (we always write 1 =
//! little-endian and accept either), 4 byte type code, then type-specific
//! payload of u32 counts and f64 coordinates.

use crate::geometry::{Geometry, GeometryType};
use crate::linestring::LineString;
use crate::multi::{GeometryCollection, MultiLineString, MultiPoint, MultiPolygon};
use crate::point::Point;
use crate::polygon::{Polygon, Ring};
use crate::{GeomError, Result};

/// Encodes a geometry to little-endian WKB, appending to `out`.
pub fn encode_to(g: &Geometry, out: &mut Vec<u8>) {
    out.push(1); // little-endian
    put_u32(out, g.geometry_type().code());
    match g {
        Geometry::Point(p) => put_point(out, p),
        Geometry::LineString(l) => put_coords(out, l.points()),
        Geometry::Polygon(p) => put_polygon_body(out, p),
        Geometry::MultiPoint(m) => {
            put_u32(out, m.0.len() as u32);
            for p in &m.0 {
                encode_to(&Geometry::Point(*p), out);
            }
        }
        Geometry::MultiLineString(m) => {
            put_u32(out, m.0.len() as u32);
            for l in &m.0 {
                out.push(1);
                put_u32(out, GeometryType::LineString.code());
                put_coords(out, l.points());
            }
        }
        Geometry::MultiPolygon(m) => {
            put_u32(out, m.0.len() as u32);
            for p in &m.0 {
                out.push(1);
                put_u32(out, GeometryType::Polygon.code());
                put_polygon_body(out, p);
            }
        }
        Geometry::GeometryCollection(c) => {
            put_u32(out, c.0.len() as u32);
            for g in &c.0 {
                encode_to(g, out);
            }
        }
    }
}

/// Encodes a geometry to a fresh WKB buffer.
pub fn encode(g: &Geometry) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(g));
    encode_to(g, &mut out);
    out
}

/// Encodes a geometry into a caller-owned scratch buffer: clears it,
/// reserves the exact [`encoded_len`] footprint, then encodes. Hot
/// serialization loops reuse one scratch across millions of geometries
/// instead of allocating (and dropping) a fresh [`encode`] `Vec` each
/// time; the single-call shape keeps the whole traversal compiled as one
/// unit here, where the capacity reasoning lives.
pub fn encode_into_scratch(g: &Geometry, scratch: &mut Vec<u8>) {
    scratch.clear();
    scratch.reserve(encoded_len(g));
    encode_to(g, scratch);
}

/// Exact byte length [`encode_to`] will append for `g`, computed without
/// allocating. Hot serialization paths (the exchange wire format) use
/// this as a size pre-pass: reserve once, encode straight into the
/// destination buffer, no per-geometry intermediate `Vec`.
pub fn encoded_len(g: &Geometry) -> usize {
    // 1 byte-order byte + 4 type-code bytes precede every geometry.
    5 + match g {
        Geometry::Point(_) => 16,
        Geometry::LineString(l) => 4 + 16 * l.points().len(),
        Geometry::Polygon(p) => polygon_body_len(p),
        Geometry::MultiPoint(m) => 4 + m.0.len() * 21,
        Geometry::MultiLineString(m) => {
            4 + m
                .0
                .iter()
                .map(|l| 5 + 4 + 16 * l.points().len())
                .sum::<usize>()
        }
        Geometry::MultiPolygon(m) => 4 + m.0.iter().map(|p| 5 + polygon_body_len(p)).sum::<usize>(),
        Geometry::GeometryCollection(c) => 4 + c.0.iter().map(encoded_len).sum::<usize>(),
    }
}

#[inline]
fn polygon_body_len(p: &crate::polygon::Polygon) -> usize {
    let ring = |r: &Ring| 4 + 16 * r.points().len();
    4 + ring(p.exterior()) + p.interiors().iter().map(ring).sum::<usize>()
}

/// Decodes one geometry from the front of `buf`, returning it and the
/// number of bytes consumed.
pub fn decode(buf: &[u8]) -> Result<(Geometry, usize)> {
    let mut cur = Cursor { buf, pos: 0 };
    let g = cur.geometry()?;
    Ok((g, cur.pos))
}

/// Decodes a back-to-back sequence of WKB geometries until `buf` is
/// exhausted.
pub fn decode_all(buf: &[u8]) -> Result<Vec<Geometry>> {
    let mut out = Vec::new();
    let mut cur = Cursor { buf, pos: 0 };
    while cur.pos < buf.len() {
        out.push(cur.geometry()?);
    }
    Ok(out)
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_point(out: &mut Vec<u8>, p: &Point) {
    put_f64(out, p.x);
    put_f64(out, p.y);
}

fn put_coords(out: &mut Vec<u8>, pts: &[Point]) {
    put_u32(out, pts.len() as u32);
    for p in pts {
        put_point(out, p);
    }
}

fn put_polygon_body(out: &mut Vec<u8>, p: &Polygon) {
    put_u32(out, 1 + p.interiors().len() as u32);
    put_coords(out, p.exterior().points());
    for hole in p.interiors() {
        put_coords(out, hole.points());
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn need(&self, n: usize) -> Result<()> {
        if self.pos + n > self.buf.len() {
            Err(GeomError::Wkb(format!(
                "truncated: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            )))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8> {
        self.need(1)?;
        let v = self.buf[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn u32(&mut self, big_endian: bool) -> Result<u32> {
        self.need(4)?;
        // audit: `need` bounds-checked; the range is exactly 4 bytes.
        let bytes: [u8; 4] = self.buf[self.pos..self.pos + 4].try_into().unwrap();
        self.pos += 4;
        Ok(if big_endian {
            u32::from_be_bytes(bytes)
        } else {
            u32::from_le_bytes(bytes)
        })
    }

    fn f64(&mut self, big_endian: bool) -> Result<f64> {
        self.need(8)?;
        // audit: `need` bounds-checked; the range is exactly 8 bytes.
        let bytes: [u8; 8] = self.buf[self.pos..self.pos + 8].try_into().unwrap();
        self.pos += 8;
        Ok(if big_endian {
            f64::from_be_bytes(bytes)
        } else {
            f64::from_le_bytes(bytes)
        })
    }

    fn point(&mut self, be: bool) -> Result<Point> {
        Ok(Point::new(self.f64(be)?, self.f64(be)?))
    }

    fn coords(&mut self, be: bool) -> Result<Vec<Point>> {
        let n = self.u32(be)? as usize;
        // Defensive cap: a count that implies reading past the buffer is
        // corrupt, not a huge geometry.
        if n > (self.buf.len() - self.pos) / 16 + 1 {
            return Err(GeomError::Wkb(format!(
                "coordinate count {n} exceeds buffer"
            )));
        }
        let mut pts = Vec::with_capacity(n);
        for _ in 0..n {
            pts.push(self.point(be)?);
        }
        Ok(pts)
    }

    fn geometry(&mut self) -> Result<Geometry> {
        let order = self.u8()?;
        let be = match order {
            0 => true,
            1 => false,
            other => return Err(GeomError::Wkb(format!("bad byte-order marker {other}"))),
        };
        let code = self.u32(be)?;
        let ty = GeometryType::from_code(code)
            .ok_or_else(|| GeomError::Wkb(format!("unknown geometry type code {code}")))?;
        match ty {
            GeometryType::Point => Ok(Geometry::Point(self.point(be)?)),
            GeometryType::LineString => {
                Ok(Geometry::LineString(LineString::new(self.coords(be)?)?))
            }
            GeometryType::Polygon => Ok(Geometry::Polygon(self.polygon_body(be)?)),
            GeometryType::MultiPoint => {
                let n = self.u32(be)? as usize;
                let mut pts = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    match self.geometry()? {
                        Geometry::Point(p) => pts.push(p),
                        other => {
                            return Err(GeomError::Wkb(format!(
                                "MULTIPOINT member is {:?}",
                                other.geometry_type()
                            )))
                        }
                    }
                }
                Ok(Geometry::MultiPoint(MultiPoint(pts)))
            }
            GeometryType::MultiLineString => {
                let n = self.u32(be)? as usize;
                let mut lines = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    match self.geometry()? {
                        Geometry::LineString(l) => lines.push(l),
                        other => {
                            return Err(GeomError::Wkb(format!(
                                "MULTILINESTRING member is {:?}",
                                other.geometry_type()
                            )))
                        }
                    }
                }
                Ok(Geometry::MultiLineString(MultiLineString(lines)))
            }
            GeometryType::MultiPolygon => {
                let n = self.u32(be)? as usize;
                let mut polys = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    match self.geometry()? {
                        Geometry::Polygon(p) => polys.push(p),
                        other => {
                            return Err(GeomError::Wkb(format!(
                                "MULTIPOLYGON member is {:?}",
                                other.geometry_type()
                            )))
                        }
                    }
                }
                Ok(Geometry::MultiPolygon(MultiPolygon(polys)))
            }
            GeometryType::GeometryCollection => {
                let n = self.u32(be)? as usize;
                let mut members = Vec::with_capacity(n.min(1 << 20));
                for _ in 0..n {
                    members.push(self.geometry()?);
                }
                Ok(Geometry::GeometryCollection(GeometryCollection(members)))
            }
        }
    }

    fn polygon_body(&mut self, be: bool) -> Result<Polygon> {
        let nrings = self.u32(be)? as usize;
        if nrings == 0 {
            return Err(GeomError::Wkb("polygon with zero rings".into()));
        }
        let ext = Ring::new(self.coords(be)?)?;
        let mut holes = Vec::with_capacity(nrings - 1);
        for _ in 1..nrings {
            holes.push(Ring::new(self.coords(be)?)?);
        }
        Ok(Polygon::new(ext, holes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wkt;

    fn round_trip(s: &str) {
        let g = wkt::parse(s).unwrap();
        let bytes = encode(&g);
        let (g2, used) = decode(&bytes).unwrap();
        assert_eq!(used, bytes.len());
        assert_eq!(g, g2, "WKB round trip failed for {s}");
    }

    #[test]
    fn round_trips_all_types() {
        round_trip("POINT (30 10)");
        round_trip("LINESTRING (30 10, 10 30, 40 40)");
        round_trip("POLYGON ((30 10, 40 40, 20 40, 30 10))");
        round_trip("POLYGON ((35 10, 45 45, 15 40, 10 20, 35 10), (20 30, 35 35, 30 20, 20 30))");
        round_trip("MULTIPOINT ((10 40), (40 30))");
        round_trip("MULTILINESTRING ((10 10, 20 20), (40 40, 30 30))");
        round_trip("MULTIPOLYGON (((30 20, 45 40, 10 40, 30 20)))");
        round_trip("GEOMETRYCOLLECTION (POINT (40 10), LINESTRING (10 10, 20 20))");
    }

    #[test]
    fn encoded_len_matches_actual_encoding() {
        for s in [
            "POINT (30 10)",
            "LINESTRING (30 10, 10 30, 40 40)",
            "POLYGON ((30 10, 40 40, 20 40, 30 10))",
            "POLYGON ((35 10, 45 45, 15 40, 10 20, 35 10), (20 30, 35 35, 30 20, 20 30))",
            "MULTIPOINT ((10 40), (40 30))",
            "MULTILINESTRING ((10 10, 20 20), (40 40, 30 30))",
            "MULTIPOLYGON (((30 20, 45 40, 10 40, 30 20)))",
            "GEOMETRYCOLLECTION (POINT (40 10), LINESTRING (10 10, 20 20))",
        ] {
            let g = wkt::parse(s).unwrap();
            assert_eq!(encoded_len(&g), encode(&g).len(), "{s}");
        }
    }

    #[test]
    fn point_wkb_is_21_bytes() {
        // 1 (order) + 4 (type) + 16 (coords): the classic WKB point size.
        let g = wkt::parse("POINT (1 2)").unwrap();
        assert_eq!(encode(&g).len(), 21);
    }

    #[test]
    fn decode_all_handles_concatenated_stream() {
        let g1 = wkt::parse("POINT (1 2)").unwrap();
        let g2 = wkt::parse("LINESTRING (0 0, 5 5)").unwrap();
        let mut buf = encode(&g1);
        buf.extend_from_slice(&encode(&g2));
        let all = decode_all(&buf).unwrap();
        assert_eq!(all, vec![g1, g2]);
    }

    #[test]
    fn rejects_truncated_input() {
        let g = wkt::parse("POLYGON ((30 10, 40 40, 20 40, 30 10))").unwrap();
        let bytes = encode(&g);
        for cut in [0, 1, 4, 8, bytes.len() - 1] {
            assert!(decode(&bytes[..cut]).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn rejects_bad_markers() {
        assert!(decode(&[7, 1, 0, 0, 0]).is_err()); // bad byte order
        assert!(decode(&[1, 99, 0, 0, 0]).is_err()); // bad type code
    }

    #[test]
    fn rejects_absurd_counts() {
        // LINESTRING claiming u32::MAX points in a tiny buffer.
        let mut buf = vec![1u8];
        buf.extend_from_slice(&2u32.to_le_bytes());
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode(&buf).is_err());
    }

    #[test]
    fn accepts_big_endian_input() {
        // Hand-build a big-endian POINT (1 2).
        let mut buf = vec![0u8];
        buf.extend_from_slice(&1u32.to_be_bytes());
        buf.extend_from_slice(&1.0f64.to_be_bytes());
        buf.extend_from_slice(&2.0f64.to_be_bytes());
        let (g, _) = decode(&buf).unwrap();
        assert_eq!(g, Geometry::Point(Point::new(1.0, 2.0)));
    }
}
