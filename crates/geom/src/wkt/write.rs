//! WKT writer producing canonical OGC output.

use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;

/// Serializes a geometry to a WKT `String`.
///
/// Coordinates are written with Rust's shortest round-trip `f64` formatting,
/// so `parse(write(g)) == g` exactly.
pub fn write(g: &Geometry) -> String {
    let mut out = String::with_capacity(32 + g.num_points() * 12);
    write_to(g, &mut out);
    out
}

/// Serializes a geometry, appending to an existing buffer (the writer used
/// by the dataset generators, which stream millions of geometries).
pub fn write_to(g: &Geometry, out: &mut String) {
    match g {
        Geometry::Point(p) => {
            out.push_str("POINT (");
            push_coord(out, p);
            out.push(')');
        }
        Geometry::LineString(l) => {
            out.push_str("LINESTRING ");
            push_coord_list(out, l.points());
        }
        Geometry::Polygon(p) => {
            out.push_str("POLYGON ");
            push_polygon_body(out, p);
        }
        Geometry::MultiPoint(m) => {
            if m.0.is_empty() {
                out.push_str("MULTIPOINT EMPTY");
                return;
            }
            out.push_str("MULTIPOINT (");
            for (i, p) in m.0.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push('(');
                push_coord(out, p);
                out.push(')');
            }
            out.push(')');
        }
        Geometry::MultiLineString(m) => {
            if m.0.is_empty() {
                out.push_str("MULTILINESTRING EMPTY");
                return;
            }
            out.push_str("MULTILINESTRING (");
            for (i, l) in m.0.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_coord_list(out, l.points());
            }
            out.push(')');
        }
        Geometry::MultiPolygon(m) => {
            if m.0.is_empty() {
                out.push_str("MULTIPOLYGON EMPTY");
                return;
            }
            out.push_str("MULTIPOLYGON (");
            for (i, p) in m.0.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                push_polygon_body(out, p);
            }
            out.push(')');
        }
        Geometry::GeometryCollection(c) => {
            if c.0.is_empty() {
                out.push_str("GEOMETRYCOLLECTION EMPTY");
                return;
            }
            out.push_str("GEOMETRYCOLLECTION (");
            for (i, g) in c.0.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                write_to(g, out);
            }
            out.push(')');
        }
    }
}

fn push_coord(out: &mut String, p: &Point) {
    push_f64(out, p.x);
    out.push(' ');
    push_f64(out, p.y);
}

fn push_f64(out: &mut String, v: f64) {
    use std::fmt::Write;
    // audit: `write!` to a String is infallible.
    write!(out, "{v}").expect("writing to String cannot fail");
}

fn push_coord_list(out: &mut String, pts: &[Point]) {
    out.push('(');
    for (i, p) in pts.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        push_coord(out, p);
    }
    out.push(')');
}

fn push_polygon_body(out: &mut String, p: &Polygon) {
    out.push('(');
    push_coord_list(out, p.exterior().points());
    for hole in p.interiors() {
        out.push_str(", ");
        push_coord_list(out, hole.points());
    }
    out.push(')');
}

/// Convenience: writes a [`LineString`] without wrapping it in [`Geometry`].
pub(crate) fn _write_linestring(l: &LineString) -> String {
    write(&Geometry::LineString(l.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::{GeometryCollection, MultiLineString, MultiPoint, MultiPolygon};
    use crate::wkt::parse;

    fn round_trip(s: &str) {
        let g = parse(s).unwrap();
        let w = write(&g);
        let g2 = parse(&w).unwrap();
        assert_eq!(g, g2, "round trip failed for {s} -> {w}");
    }

    #[test]
    fn round_trips_all_types() {
        round_trip("POINT (30 10)");
        round_trip("LINESTRING (30 10, 10 30, 40 40)");
        round_trip("POLYGON ((30 10, 40 40, 20 40, 30 10))");
        round_trip("POLYGON ((35 10, 45 45, 15 40, 10 20, 35 10), (20 30, 35 35, 30 20, 20 30))");
        round_trip("MULTIPOINT ((10 40), (40 30))");
        round_trip("MULTILINESTRING ((10 10, 20 20), (40 40, 30 30))");
        round_trip("MULTIPOLYGON (((30 20, 45 40, 10 40, 30 20)))");
        round_trip("GEOMETRYCOLLECTION (POINT (40 10), LINESTRING (10 10, 20 20))");
    }

    #[test]
    fn canonical_point_output() {
        let g = parse("point( 30   10 )").unwrap();
        assert_eq!(write(&g), "POINT (30 10)");
    }

    #[test]
    fn fractional_coordinates_round_trip_exactly() {
        let g = Geometry::Point(crate::Point::new(0.1 + 0.2, -1.0 / 3.0));
        let w = write(&g);
        assert_eq!(parse(&w).unwrap(), g);
    }

    #[test]
    fn empty_multis_write_empty_keyword() {
        assert_eq!(
            write(&Geometry::MultiPoint(MultiPoint(vec![]))),
            "MULTIPOINT EMPTY"
        );
        assert_eq!(
            write(&Geometry::MultiLineString(MultiLineString(vec![]))),
            "MULTILINESTRING EMPTY"
        );
        assert_eq!(
            write(&Geometry::MultiPolygon(MultiPolygon(vec![]))),
            "MULTIPOLYGON EMPTY"
        );
        assert_eq!(
            write(&Geometry::GeometryCollection(GeometryCollection(vec![]))),
            "GEOMETRYCOLLECTION EMPTY"
        );
    }
}
