//! Well-Known Text (WKT) reading and writing.
//!
//! WKT is the formatted text representation the paper's I/O layer
//! partitions, reads and parses (e.g. `POLYGON ((30 10, 40 40, 20 40,
//! 30 10))`). The parser is a hand-written recursive-descent parser over a
//! byte cursor — no regex, no allocation beyond the output geometry — since
//! parsing throughput is part of the evaluation (Table 3, Figure 14).

mod parse;
mod write;

pub use parse::{parse, parse_many, Parser};
pub use write::{write, write_to};
