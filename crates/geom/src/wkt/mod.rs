//! Well-Known Text (WKT) reading and writing.
//!
//! WKT is the formatted text representation the paper's I/O layer
//! partitions, reads and parses (e.g. `POLYGON ((30 10, 40 40, 20 40,
//! 30 10))`). The parser is a hand-written recursive-descent parser over a
//! byte cursor — no regex, no allocation beyond the output geometry — since
//! parsing throughput is part of the evaluation (Table 3, Figure 14).

mod parse;
mod write;

pub use parse::{parse, parse_many, Parser};
pub use write::{write, write_to};

#[cfg(test)]
mod tests {
    //! Round-trip tests across the parse/write pair as a whole: writing
    //! is a fixed point (`write ∘ parse ∘ write = write`) and parsing
    //! recovers the exact geometry for every OGC type this crate models.

    use super::{parse, parse_many, write};

    /// parse → write → parse must reproduce the geometry exactly, and a
    /// second write must reproduce the first text exactly (fixed point).
    fn assert_round_trip(input: &str) {
        let g = parse(input).unwrap_or_else(|e| panic!("parse {input:?}: {e:?}"));
        let text = write(&g);
        let g2 = parse(&text).unwrap_or_else(|e| panic!("reparse {text:?}: {e:?}"));
        assert_eq!(g, g2, "geometry changed across round trip of {input:?}");
        assert_eq!(write(&g2), text, "writer not a fixed point for {input:?}");
    }

    #[test]
    fn every_geometry_kind_round_trips() {
        for s in [
            "POINT (30 10)",
            "LINESTRING (30 10, 10 30, 40 40)",
            "POLYGON ((30 10, 40 40, 20 40, 10 20, 30 10))",
            "POLYGON ((35 10, 45 45, 15 40, 10 20, 35 10), (20 30, 35 35, 30 20, 20 30))",
            "MULTIPOINT (10 40, 40 30, 20 20, 30 10)",
            "MULTILINESTRING ((10 10, 20 20, 10 40), (40 40, 30 30, 40 20, 30 10))",
            "MULTIPOLYGON (((30 20, 45 40, 10 40, 30 20)), ((15 5, 40 10, 10 20, 5 10, 15 5)))",
            "GEOMETRYCOLLECTION (POINT (40 10), LINESTRING (10 10, 20 20, 10 40))",
        ] {
            assert_round_trip(s);
        }
    }

    #[test]
    fn empty_geometries_round_trip() {
        for s in [
            "POINT EMPTY",
            "LINESTRING EMPTY",
            "POLYGON EMPTY",
            "MULTIPOINT EMPTY",
            "MULTILINESTRING EMPTY",
            "MULTIPOLYGON EMPTY",
            "GEOMETRYCOLLECTION EMPTY",
        ] {
            assert_round_trip(s);
        }
    }

    #[test]
    fn awkward_coordinates_round_trip() {
        // Negative, fractional, high-precision and very large magnitudes:
        // the writer must emit a shortest representation that reparses to
        // bit-identical doubles.
        for s in [
            "POINT (-0.25 1e-9)",
            "POINT (179.99999999 -89.99999999)",
            "LINESTRING (-1.5 -2.5, 0 0, 1234567890.125 -0.000001)",
            "POLYGON ((0.1 0.1, 0.30000000000000004 0.1, 0.2 0.9, 0.1 0.1))",
        ] {
            assert_round_trip(s);
        }
    }

    #[test]
    fn parse_many_round_trips_line_by_line() {
        let text = "POINT (1 2)\nLINESTRING (0 0, 3 4)\nPOLYGON ((0 0, 1 0, 1 1, 0 0))\n";
        let geoms = parse_many(text).unwrap();
        assert_eq!(geoms.len(), 3);
        let rebuilt: String = geoms.iter().map(|g| write(g) + "\n").collect();
        assert_eq!(parse_many(&rebuilt).unwrap(), geoms);
    }
}
