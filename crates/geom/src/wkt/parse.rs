//! Recursive-descent WKT parser.

use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::multi::{GeometryCollection, MultiLineString, MultiPoint, MultiPolygon};
use crate::point::Point;
use crate::polygon::{Polygon, Ring};
use crate::{GeomError, Result};

/// Parses a single WKT geometry from `input`, requiring that nothing but
/// whitespace follows it.
///
/// ```
/// use mvio_geom::wkt;
/// let g = wkt::parse("POINT (30 10)").unwrap();
/// assert_eq!(g.num_points(), 1);
/// ```
pub fn parse(input: &str) -> Result<Geometry> {
    let mut p = Parser::new(input);
    let g = p.parse_geometry()?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing characters after geometry"));
    }
    Ok(g)
}

/// Parses a newline-delimited sequence of WKT geometries (the layout of the
/// paper's datasets: one geometry per line). Blank lines are skipped.
/// Returns the geometries in input order.
pub fn parse_many(input: &str) -> Result<Vec<Geometry>> {
    let mut out = Vec::new();
    for line in input.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        out.push(parse(trimmed)?);
    }
    Ok(out)
}

/// A resumable WKT parser over a string slice.
///
/// Exposed publicly so the I/O layer can parse geometries one-by-one out of
/// a file partition buffer without materializing per-line `String`s.
pub struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    /// Creates a parser positioned at the start of `input`.
    pub fn new(input: &'a str) -> Self {
        Parser {
            src: input.as_bytes(),
            pos: 0,
        }
    }

    /// Current byte offset into the input.
    pub fn offset(&self) -> usize {
        self.pos
    }

    /// `true` once the cursor has consumed all input.
    pub fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    /// Skips ASCII whitespace.
    pub fn skip_ws(&mut self) {
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn error(&self, msg: impl Into<String>) -> GeomError {
        GeomError::Wkt {
            msg: msg.into(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        self.skip_ws();
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!(
                "expected '{}', found {:?}",
                byte as char,
                self.peek().map(|b| b as char)
            )))
        }
    }

    /// Consumes `byte` if it is next (after whitespace); returns whether it
    /// was consumed.
    fn eat(&mut self, byte: u8) -> bool {
        self.skip_ws();
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// Reads an ASCII keyword (letters only), uppercased.
    fn keyword(&mut self) -> Result<String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len() && self.src[self.pos].is_ascii_alphabetic() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.error("expected a geometry keyword"));
        }
        Ok(std::str::from_utf8(&self.src[start..self.pos])
            // audit: the scanned bytes are ASCII letters, always valid UTF-8.
            .expect("ASCII letters are valid UTF-8")
            .to_ascii_uppercase())
    }

    /// Peeks whether the next token is the keyword `EMPTY`, consuming it if so.
    fn eat_empty(&mut self) -> bool {
        self.skip_ws();
        let rest = &self.src[self.pos..];
        if rest.len() >= 5 && rest[..5].eq_ignore_ascii_case(b"EMPTY") {
            self.pos += 5;
            true
        } else {
            false
        }
    }

    fn number(&mut self) -> Result<f64> {
        self.skip_ws();
        let start = self.pos;
        // Sign, digits, dot, exponent — scan the maximal plausible slice and
        // let f64::parse validate it.
        while self.pos < self.src.len() {
            let b = self.src[self.pos];
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.error("expected a number"));
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| self.error("non-UTF8 number"))?;
        text.parse::<f64>().map_err(|e| GeomError::Wkt {
            msg: format!("bad number {text:?}: {e}"),
            offset: start,
        })
    }

    /// Parses `x y` as a coordinate pair.
    fn coord(&mut self) -> Result<Point> {
        let x = self.number()?;
        let y = self.number()?;
        Ok(Point::new(x, y))
    }

    /// Parses `( x y, x y, ... )`.
    fn coord_list(&mut self) -> Result<Vec<Point>> {
        self.expect(b'(')?;
        let mut pts = vec![self.coord()?];
        while self.eat(b',') {
            pts.push(self.coord()?);
        }
        self.expect(b')')?;
        Ok(pts)
    }

    /// Parses `( ring, ring, ... )` where each ring is a coord list.
    fn ring_list(&mut self) -> Result<(Ring, Vec<Ring>)> {
        self.expect(b'(')?;
        let exterior = Ring::new(self.coord_list()?)?;
        let mut holes = Vec::new();
        while self.eat(b',') {
            holes.push(Ring::new(self.coord_list()?)?);
        }
        self.expect(b')')?;
        Ok((exterior, holes))
    }

    /// Parses one complete geometry starting at the cursor.
    pub fn parse_geometry(&mut self) -> Result<Geometry> {
        let kw = self.keyword()?;
        match kw.as_str() {
            "POINT" => {
                if self.eat_empty() {
                    // Represent POINT EMPTY as an empty multipoint, the
                    // conventional lossless choice.
                    return Ok(Geometry::MultiPoint(MultiPoint(vec![])));
                }
                self.expect(b'(')?;
                let p = self.coord()?;
                self.expect(b')')?;
                Ok(Geometry::Point(p))
            }
            "LINESTRING" => {
                if self.eat_empty() {
                    return Ok(Geometry::MultiLineString(MultiLineString(vec![])));
                }
                Ok(Geometry::LineString(LineString::new(self.coord_list()?)?))
            }
            "POLYGON" => {
                if self.eat_empty() {
                    return Ok(Geometry::MultiPolygon(MultiPolygon(vec![])));
                }
                let (ext, holes) = self.ring_list()?;
                Ok(Geometry::Polygon(Polygon::new(ext, holes)))
            }
            "MULTIPOINT" => {
                if self.eat_empty() {
                    return Ok(Geometry::MultiPoint(MultiPoint(vec![])));
                }
                self.expect(b'(')?;
                let mut pts = vec![self.multipoint_member()?];
                while self.eat(b',') {
                    pts.push(self.multipoint_member()?);
                }
                self.expect(b')')?;
                Ok(Geometry::MultiPoint(MultiPoint(pts)))
            }
            "MULTILINESTRING" => {
                if self.eat_empty() {
                    return Ok(Geometry::MultiLineString(MultiLineString(vec![])));
                }
                self.expect(b'(')?;
                let mut lines = vec![LineString::new(self.coord_list()?)?];
                while self.eat(b',') {
                    lines.push(LineString::new(self.coord_list()?)?);
                }
                self.expect(b')')?;
                Ok(Geometry::MultiLineString(MultiLineString(lines)))
            }
            "MULTIPOLYGON" => {
                if self.eat_empty() {
                    return Ok(Geometry::MultiPolygon(MultiPolygon(vec![])));
                }
                self.expect(b'(')?;
                let mut polys = Vec::new();
                loop {
                    let (ext, holes) = self.ring_list()?;
                    polys.push(Polygon::new(ext, holes));
                    if !self.eat(b',') {
                        break;
                    }
                }
                self.expect(b')')?;
                Ok(Geometry::MultiPolygon(MultiPolygon(polys)))
            }
            "GEOMETRYCOLLECTION" => {
                if self.eat_empty() {
                    return Ok(Geometry::GeometryCollection(GeometryCollection(vec![])));
                }
                self.expect(b'(')?;
                let mut members = vec![self.parse_geometry()?];
                while self.eat(b',') {
                    members.push(self.parse_geometry()?);
                }
                self.expect(b')')?;
                Ok(Geometry::GeometryCollection(GeometryCollection(members)))
            }
            other => Err(self.error(format!("unknown geometry keyword {other:?}"))),
        }
    }

    /// A MULTIPOINT member: either `(x y)` (OGC canonical) or bare `x y`
    /// (widely produced in the wild, including OSM extracts).
    fn multipoint_member(&mut self) -> Result<Point> {
        if self.eat(b'(') {
            let p = self.coord()?;
            self.expect(b')')?;
            Ok(p)
        } else {
            self.coord()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rect::Rect;

    #[test]
    fn parses_the_papers_example() {
        // The exact example from paper §2.
        let g = parse("POLYGON ((30 10, 40 40, 20 40, 30 10))").unwrap();
        match &g {
            Geometry::Polygon(p) => {
                assert_eq!(p.exterior().num_points(), 4);
                assert_eq!(p.area(), 300.0);
            }
            _ => panic!("expected polygon"),
        }
        assert_eq!(g.envelope(), Rect::new(20.0, 10.0, 40.0, 40.0));
    }

    #[test]
    fn parses_point() {
        let g = parse("POINT (30 10)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(30.0, 10.0)));
        // Case-insensitive, flexible whitespace.
        let g2 = parse("point(30    10)").unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn parses_negative_and_scientific_numbers() {
        let g = parse("POINT (-1.5e2 +0.25)").unwrap();
        assert_eq!(g, Geometry::Point(Point::new(-150.0, 0.25)));
    }

    #[test]
    fn parses_linestring() {
        let g = parse("LINESTRING (30 10, 10 30, 40 40)").unwrap();
        assert_eq!(g.num_points(), 3);
        assert_eq!(g.geometry_type().wkt_keyword(), "LINESTRING");
    }

    #[test]
    fn parses_polygon_with_hole() {
        let g =
            parse("POLYGON ((35 10, 45 45, 15 40, 10 20, 35 10), (20 30, 35 35, 30 20, 20 30))")
                .unwrap();
        match g {
            Geometry::Polygon(p) => {
                assert_eq!(p.interiors().len(), 1);
                assert_eq!(p.num_points(), 5 + 4);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_multipoint_both_syntaxes() {
        let canonical = parse("MULTIPOINT ((10 40), (40 30), (20 20), (30 10))").unwrap();
        let bare = parse("MULTIPOINT (10 40, 40 30, 20 20, 30 10)").unwrap();
        assert_eq!(canonical, bare);
        assert_eq!(canonical.num_points(), 4);
    }

    #[test]
    fn parses_multilinestring() {
        let g =
            parse("MULTILINESTRING ((10 10, 20 20, 10 40), (40 40, 30 30, 40 20, 30 10))").unwrap();
        assert_eq!(g.num_points(), 7);
    }

    #[test]
    fn parses_multipolygon() {
        let g = parse(
            "MULTIPOLYGON (((30 20, 45 40, 10 40, 30 20)), \
             ((15 5, 40 10, 10 20, 5 10, 15 5)))",
        )
        .unwrap();
        match &g {
            Geometry::MultiPolygon(mp) => assert_eq!(mp.0.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_multipolygon_with_holes() {
        let g = parse(
            "MULTIPOLYGON (((40 40, 20 45, 45 30, 40 40)), \
             ((20 35, 10 30, 10 10, 30 5, 45 20, 20 35), (30 20, 20 15, 20 25, 30 20)))",
        )
        .unwrap();
        match &g {
            Geometry::MultiPolygon(mp) => {
                assert_eq!(mp.0.len(), 2);
                assert_eq!(mp.0[1].interiors().len(), 1);
            }
            _ => panic!(),
        }
    }

    #[test]
    fn parses_geometrycollection() {
        let g =
            parse("GEOMETRYCOLLECTION (POINT (40 10), LINESTRING (10 10, 20 20, 10 40))").unwrap();
        match &g {
            Geometry::GeometryCollection(c) => assert_eq!(c.0.len(), 2),
            _ => panic!(),
        }
    }

    #[test]
    fn parses_empty_geometries() {
        assert_eq!(parse("POINT EMPTY").unwrap().num_points(), 0);
        assert_eq!(parse("LINESTRING EMPTY").unwrap().num_points(), 0);
        assert_eq!(parse("POLYGON EMPTY").unwrap().num_points(), 0);
        assert_eq!(parse("MULTIPOLYGON EMPTY").unwrap().num_points(), 0);
        assert_eq!(parse("GEOMETRYCOLLECTION EMPTY").unwrap().num_points(), 0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("POLYGON").is_err());
        assert!(parse("POLYGON (30 10)").is_err()); // missing ring parens
        assert!(parse("POINT (30)").is_err());
        assert!(parse("POINT (30 10").is_err());
        assert!(parse("CIRCLE (0 0, 5)").is_err());
        assert!(parse("POINT (30 10) garbage").is_err());
        assert!(parse("POINT (a b)").is_err());
    }

    #[test]
    fn error_carries_offset() {
        match parse("POINT (30 x)") {
            Err(GeomError::Wkt { offset, .. }) => assert!(offset >= 9),
            other => panic!("expected Wkt error, got {other:?}"),
        }
    }

    #[test]
    fn parse_many_splits_lines() {
        let input = "POINT (1 2)\n\nLINESTRING (0 0, 1 1)\nPOINT (3 4)\n";
        let geoms = parse_many(input).unwrap();
        assert_eq!(geoms.len(), 3);
        assert_eq!(geoms[0], Geometry::Point(Point::new(1.0, 2.0)));
        assert_eq!(geoms[2], Geometry::Point(Point::new(3.0, 4.0)));
    }

    #[test]
    fn resumable_parser_tracks_offsets() {
        let src = "POINT (1 2)  POINT (3 4)";
        let mut p = Parser::new(src);
        let g1 = p.parse_geometry().unwrap();
        assert_eq!(g1, Geometry::Point(Point::new(1.0, 2.0)));
        let g2 = p.parse_geometry().unwrap();
        assert_eq!(g2, Geometry::Point(Point::new(3.0, 4.0)));
        p.skip_ws();
        assert!(p.at_end());
    }
}
