//! 2-D point type.

use crate::rect::Rect;

/// A point in the plane with `f64` coordinates.
///
/// `Point` is `Copy`, 16 bytes, and `#[repr(C)]` so it can be transmitted
/// verbatim as the payload of the runtime's `MPI_POINT` derived datatype
/// (two contiguous doubles, exactly as the paper defines it).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Squared Euclidean distance (avoids the square root on hot paths).
    #[inline]
    pub fn distance_sq(&self, other: &Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The degenerate bounding rectangle covering just this point.
    #[inline]
    pub fn envelope(&self) -> Rect {
        Rect::new(self.x, self.y, self.x, self.y)
    }

    /// Returns `true` if both coordinates are finite (not NaN/∞).
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_layout_is_two_doubles() {
        // The MPI_POINT datatype depends on this exact layout.
        assert_eq!(std::mem::size_of::<Point>(), 16);
        assert_eq!(std::mem::align_of::<Point>(), 8);
    }

    #[test]
    fn distance_matches_hand_computation() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(a.distance_sq(&b), 25.0);
    }

    #[test]
    fn envelope_is_degenerate_rect() {
        let p = Point::new(2.5, -1.0);
        let env = p.envelope();
        assert_eq!(env.min_x, 2.5);
        assert_eq!(env.max_x, 2.5);
        assert_eq!(env.min_y, -1.0);
        assert_eq!(env.max_y, -1.0);
        assert!(env.contains_point(&p));
    }

    #[test]
    fn from_tuple_round_trips() {
        let p: Point = (1.0, 2.0).into();
        assert_eq!(p, Point::new(1.0, 2.0));
    }

    #[test]
    fn is_finite_rejects_nan_and_inf() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
