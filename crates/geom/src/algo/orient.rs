//! Orientation predicate (the cross-product sign test).

use crate::point::Point;

/// Result of the orientation test for an ordered point triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// `c` lies to the left of the directed line `a -> b`.
    CounterClockwise,
    /// `c` lies to the right of the directed line `a -> b`.
    Clockwise,
    /// The three points are collinear (within the predicate's tolerance).
    Collinear,
}

/// Returns the orientation of the triple `(a, b, c)`.
///
/// The implementation evaluates the 2×2 determinant with a relative-epsilon
/// guard: determinants whose magnitude is below `1e-12` times the magnitude
/// of the contributing terms are classified [`Orientation::Collinear`].
/// This is not an exact arithmetic predicate (GEOS uses DD arithmetic), but
/// it is deterministic and stable for the coordinate magnitudes produced by
/// geographic data (|coord| ≤ 360) and the synthetic workloads in this
/// repository.
#[inline]
pub fn orientation(a: Point, b: Point, c: Point) -> Orientation {
    let det = (b.x - a.x) * (c.y - a.y) - (b.y - a.y) * (c.x - a.x);
    // Scale-aware tolerance: the determinant of near-collinear points loses
    // precision proportional to the magnitude of the products involved.
    let scale = (b.x - a.x).abs() * (c.y - a.y).abs() + (b.y - a.y).abs() * (c.x - a.x).abs();
    let eps = 1e-12 * scale.max(1.0e-300);
    if det > eps {
        Orientation::CounterClockwise
    } else if det < -eps {
        Orientation::Clockwise
    } else {
        Orientation::Collinear
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_orientations() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 0.0);
        assert_eq!(
            orientation(a, b, Point::new(0.5, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orientation(a, b, Point::new(0.5, -1.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orientation(a, b, Point::new(2.0, 0.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn orientation_is_antisymmetric() {
        let a = Point::new(0.3, 0.7);
        let b = Point::new(1.9, -0.4);
        let c = Point::new(-2.0, 3.5);
        let o1 = orientation(a, b, c);
        let o2 = orientation(b, a, c);
        match o1 {
            Orientation::CounterClockwise => assert_eq!(o2, Orientation::Clockwise),
            Orientation::Clockwise => assert_eq!(o2, Orientation::CounterClockwise),
            Orientation::Collinear => assert_eq!(o2, Orientation::Collinear),
        }
    }

    #[test]
    fn near_collinear_large_coordinates() {
        // Geographic-scale coordinates with a tiny perpendicular offset must
        // still be detected as non-collinear when the offset is meaningful.
        let a = Point::new(-180.0, -90.0);
        let b = Point::new(180.0, 90.0);
        let on = Point::new(0.0, 0.0);
        assert_eq!(orientation(a, b, on), Orientation::Collinear);
        let off = Point::new(0.0, 1e-6);
        assert_eq!(orientation(a, b, off), Orientation::CounterClockwise);
    }

    #[test]
    fn degenerate_identical_points_are_collinear() {
        let p = Point::new(1.0, 1.0);
        assert_eq!(orientation(p, p, p), Orientation::Collinear);
        assert_eq!(
            orientation(p, p, Point::new(2.0, 5.0)),
            Orientation::Collinear
        );
    }
}
