//! Point-to-geometry euclidean distance — the refine-phase metric behind
//! the serving layer's k-nearest-neighbor queries.
//!
//! Distance to an area (polygon) is zero when the point lies inside or on
//! the boundary; otherwise it is the distance to the nearest boundary
//! segment (holes included: a point inside a hole is *outside* the
//! polygon, and its distance is to the hole's ring).

use crate::algo::pip::{point_in_polygon, PointLocation};
use crate::{Geometry, LineString, Point, Polygon};

/// Distance from `p` to the segment `a..b` (degenerate segments collapse
/// to point distance).
pub fn point_segment_distance(p: &Point, a: &Point, b: &Point) -> f64 {
    let (dx, dy) = (b.x - a.x, b.y - a.y);
    let len_sq = dx * dx + dy * dy;
    if len_sq == 0.0 {
        return p.distance(a);
    }
    let t = (((p.x - a.x) * dx + (p.y - a.y) * dy) / len_sq).clamp(0.0, 1.0);
    p.distance(&Point::new(a.x + t * dx, a.y + t * dy))
}

fn linestring_distance(p: &Point, ls: &LineString) -> f64 {
    let pts = ls.points();
    if pts.len() == 1 {
        return p.distance(&pts[0]);
    }
    ls.segments()
        .map(|(a, b)| point_segment_distance(p, &a, &b))
        .fold(f64::INFINITY, f64::min)
}

fn polygon_distance(p: &Point, poly: &Polygon) -> f64 {
    if point_in_polygon(*p, poly) != PointLocation::Outside {
        return 0.0;
    }
    poly.all_segments()
        .map(|(a, b)| point_segment_distance(p, &a, &b))
        .fold(f64::INFINITY, f64::min)
}

/// Minimum euclidean distance from `p` to `g`.
///
/// Exact for every geometry class: points and vertices measure directly,
/// linear geometries measure to the nearest segment, areal geometries are
/// zero when `p` is inside or on the boundary. Empty multi-geometries
/// have no nearest point and return `f64::INFINITY`, which naturally
/// sorts them behind every real candidate in a kNN merge.
pub fn point_geometry_distance(p: &Point, g: &Geometry) -> f64 {
    match g {
        Geometry::Point(q) => p.distance(q),
        Geometry::LineString(ls) => linestring_distance(p, ls),
        Geometry::Polygon(poly) => polygon_distance(p, poly),
        Geometry::MultiPoint(mp) => {
            mp.0.iter()
                .map(|q| p.distance(q))
                .fold(f64::INFINITY, f64::min)
        }
        Geometry::MultiLineString(mls) => mls
            .0
            .iter()
            .map(|ls| linestring_distance(p, ls))
            .fold(f64::INFINITY, f64::min),
        Geometry::MultiPolygon(mp) => {
            mp.0.iter()
                .map(|poly| polygon_distance(p, poly))
                .fold(f64::INFINITY, f64::min)
        }
        Geometry::GeometryCollection(gc) => {
            gc.0.iter()
                .map(|m| point_geometry_distance(p, m))
                .fold(f64::INFINITY, f64::min)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::polygon::Ring;
    use crate::{GeometryCollection, MultiPoint};

    fn unit_square() -> Polygon {
        Polygon::from_coords(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(1.0, 1.0),
                Point::new(0.0, 1.0),
                Point::new(0.0, 0.0),
            ],
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn point_to_point_is_euclidean() {
        let g = Geometry::Point(Point::new(3.0, 4.0));
        assert_eq!(point_geometry_distance(&Point::new(0.0, 0.0), &g), 5.0);
    }

    #[test]
    fn segment_distance_projects_and_clamps() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 0.0);
        // Perpendicular foot inside the segment.
        assert_eq!(point_segment_distance(&Point::new(5.0, 2.0), &a, &b), 2.0);
        // Foot beyond the endpoint: clamp to the endpoint.
        assert_eq!(point_segment_distance(&Point::new(13.0, 4.0), &a, &b), 5.0);
        // Degenerate segment.
        assert_eq!(point_segment_distance(&Point::new(3.0, 4.0), &a, &a), 5.0);
    }

    #[test]
    fn linestring_takes_nearest_segment() {
        let ls = LineString::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
        ])
        .unwrap();
        let g = Geometry::LineString(ls);
        assert_eq!(point_geometry_distance(&Point::new(12.0, 5.0), &g), 2.0);
    }

    #[test]
    fn polygon_interior_and_boundary_are_zero() {
        let g = Geometry::Polygon(unit_square());
        assert_eq!(point_geometry_distance(&Point::new(0.5, 0.5), &g), 0.0);
        assert_eq!(point_geometry_distance(&Point::new(1.0, 0.5), &g), 0.0);
        assert_eq!(point_geometry_distance(&Point::new(1.0, 3.5), &g), 2.5);
    }

    #[test]
    fn polygon_hole_measures_to_hole_ring() {
        let outer = Ring::new(vec![
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            Point::new(10.0, 10.0),
            Point::new(0.0, 10.0),
            Point::new(0.0, 0.0),
        ])
        .unwrap();
        let hole = Ring::new(vec![
            Point::new(4.0, 4.0),
            Point::new(6.0, 4.0),
            Point::new(6.0, 6.0),
            Point::new(4.0, 6.0),
            Point::new(4.0, 4.0),
        ])
        .unwrap();
        let g = Geometry::Polygon(Polygon::new(outer, vec![hole]));
        // Centre of the hole: outside the polygon, 1.0 from the hole ring.
        assert_eq!(point_geometry_distance(&Point::new(5.0, 5.0), &g), 1.0);
    }

    #[test]
    fn empty_collections_are_infinitely_far() {
        let g = Geometry::MultiPoint(MultiPoint(vec![]));
        assert_eq!(
            point_geometry_distance(&Point::new(0.0, 0.0), &g),
            f64::INFINITY
        );
        let g = Geometry::GeometryCollection(GeometryCollection(vec![]));
        assert_eq!(
            point_geometry_distance(&Point::new(0.0, 0.0), &g),
            f64::INFINITY
        );
    }
}
