//! Point-in-polygon tests (ray casting with boundary detection).

use super::orient::{orientation, Orientation};
use crate::point::Point;
use crate::polygon::{Polygon, Ring};

/// Where a point lies relative to a ring or polygon.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointLocation {
    Inside,
    OnBoundary,
    Outside,
}

/// Locates `q` relative to a closed ring using the crossing-number
/// algorithm, with an explicit boundary check so that points exactly on an
/// edge or vertex report [`PointLocation::OnBoundary`].
pub fn point_in_ring(q: Point, ring: &Ring) -> PointLocation {
    let pts = ring.points();
    let mut inside = false;
    for w in pts.windows(2) {
        let (a, b) = (w[0], w[1]);

        // Boundary: q collinear with the edge and within its box.
        if orientation(a, b, q) == Orientation::Collinear
            && q.x >= a.x.min(b.x)
            && q.x <= a.x.max(b.x)
            && q.y >= a.y.min(b.y)
            && q.y <= a.y.max(b.y)
        {
            return PointLocation::OnBoundary;
        }

        // Crossing test: does the horizontal ray from q to +inf cross edge
        // (a, b)? The half-open test (one endpoint strictly above, the other
        // at-or-below) counts vertex crossings exactly once.
        let crosses = (a.y > q.y) != (b.y > q.y);
        if crosses {
            let x_at = a.x + (q.y - a.y) / (b.y - a.y) * (b.x - a.x);
            if q.x < x_at {
                inside = !inside;
            }
        }
    }
    if inside {
        PointLocation::Inside
    } else {
        PointLocation::Outside
    }
}

/// Locates `q` relative to a polygon with holes. A point inside a hole is
/// [`PointLocation::Outside`]; a point on a hole boundary is
/// [`PointLocation::OnBoundary`].
pub fn point_in_polygon(q: Point, poly: &Polygon) -> PointLocation {
    // Envelope rejection: the common case for filter survivors.
    if !poly.envelope().contains_point(&q) {
        return PointLocation::Outside;
    }
    match point_in_ring(q, poly.exterior()) {
        PointLocation::Outside => PointLocation::Outside,
        PointLocation::OnBoundary => PointLocation::OnBoundary,
        PointLocation::Inside => {
            for hole in poly.interiors() {
                match point_in_ring(q, hole) {
                    PointLocation::Inside => return PointLocation::Outside,
                    PointLocation::OnBoundary => return PointLocation::OnBoundary,
                    PointLocation::Outside => {}
                }
            }
            PointLocation::Inside
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    fn unit_square() -> Polygon {
        Polygon::from_coords(
            pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.0, 0.0)]),
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn center_is_inside() {
        assert_eq!(
            point_in_polygon(Point::new(0.5, 0.5), &unit_square()),
            PointLocation::Inside
        );
    }

    #[test]
    fn far_point_is_outside() {
        assert_eq!(
            point_in_polygon(Point::new(5.0, 5.0), &unit_square()),
            PointLocation::Outside
        );
    }

    #[test]
    fn edge_and_vertex_are_boundary() {
        let sq = unit_square();
        assert_eq!(
            point_in_polygon(Point::new(0.5, 0.0), &sq),
            PointLocation::OnBoundary
        );
        assert_eq!(
            point_in_polygon(Point::new(0.0, 0.0), &sq),
            PointLocation::OnBoundary
        );
        assert_eq!(
            point_in_polygon(Point::new(1.0, 0.7), &sq),
            PointLocation::OnBoundary
        );
    }

    #[test]
    fn point_in_hole_is_outside() {
        let hole = pts(&[
            (0.25, 0.25),
            (0.75, 0.25),
            (0.75, 0.75),
            (0.25, 0.75),
            (0.25, 0.25),
        ]);
        let p = Polygon::from_coords(
            pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.0, 0.0)]),
            vec![hole],
        )
        .unwrap();
        assert_eq!(
            point_in_polygon(Point::new(0.5, 0.5), &p),
            PointLocation::Outside
        );
        assert_eq!(
            point_in_polygon(Point::new(0.1, 0.1), &p),
            PointLocation::Inside
        );
        assert_eq!(
            point_in_polygon(Point::new(0.25, 0.5), &p),
            PointLocation::OnBoundary
        );
    }

    #[test]
    fn concave_polygon() {
        // A "C" shape: the notch (x in [1,3], y in [1,3]) is outside.
        let c = Polygon::from_coords(
            pts(&[
                (0.0, 0.0),
                (4.0, 0.0),
                (4.0, 1.0),
                (1.0, 1.0),
                (1.0, 3.0),
                (4.0, 3.0),
                (4.0, 4.0),
                (0.0, 4.0),
                (0.0, 0.0),
            ]),
            vec![],
        )
        .unwrap();
        assert_eq!(
            point_in_polygon(Point::new(2.0, 2.0), &c),
            PointLocation::Outside
        );
        assert_eq!(
            point_in_polygon(Point::new(0.5, 2.0), &c),
            PointLocation::Inside
        );
        assert_eq!(
            point_in_polygon(Point::new(2.0, 0.5), &c),
            PointLocation::Inside
        );
    }

    #[test]
    fn ray_through_vertex_counts_once() {
        // Diamond whose leftmost vertex is at the test point's y level:
        // a horizontal ray from inside passes exactly through vertices.
        let d = Polygon::from_coords(
            pts(&[(0.0, 1.0), (1.0, 0.0), (2.0, 1.0), (1.0, 2.0), (0.0, 1.0)]),
            vec![],
        )
        .unwrap();
        assert_eq!(
            point_in_polygon(Point::new(1.0, 1.0), &d),
            PointLocation::Inside
        );
        assert_eq!(
            point_in_polygon(Point::new(-1.0, 1.0), &d),
            PointLocation::Outside
        );
        assert_eq!(
            point_in_polygon(Point::new(3.0, 1.0), &d),
            PointLocation::Outside
        );
    }
}
