//! Computational-geometry algorithms: the *refine* phase primitives.
//!
//! The filter-and-refine strategy (paper §2) first weeds out candidate
//! pairs with rectangle tests ([`crate::Rect::intersects`]) and then
//! applies the exact predicates in this module to the surviving pairs.

mod distance;
mod intersects;
mod orient;
mod pip;
mod segint;

pub use distance::{point_geometry_distance, point_segment_distance};
pub use intersects::{
    intersects, line_intersects_line, line_intersects_polygon, point_in_geometry,
    polygon_intersects_polygon, rect_intersects_geometry,
};
pub use orient::{orientation, Orientation};
pub use pip::{point_in_polygon, point_in_ring, PointLocation};
pub use segint::{segment_intersection_point, segments_intersect};
