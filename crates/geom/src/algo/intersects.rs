//! The OGC `intersects` predicate — the refine-phase test of the paper's
//! spatial join ("returns true iff the geometries share any portion of
//! space").

use super::pip::{point_in_polygon, PointLocation};
use super::segint::segments_intersect;
use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::rect::Rect;

/// `true` if the point lies on/in the geometry.
pub fn point_in_geometry(p: Point, g: &Geometry) -> bool {
    match g {
        Geometry::Point(q) => p == *q,
        Geometry::LineString(l) => point_on_linestring(p, l),
        Geometry::Polygon(poly) => point_in_polygon(p, poly) != PointLocation::Outside,
        Geometry::MultiPoint(m) => m.0.contains(&p),
        Geometry::MultiLineString(m) => m.0.iter().any(|l| point_on_linestring(p, l)),
        Geometry::MultiPolygon(m) => {
            m.0.iter()
                .any(|poly| point_in_polygon(p, poly) != PointLocation::Outside)
        }
        Geometry::GeometryCollection(c) => c.0.iter().any(|g| point_in_geometry(p, g)),
    }
}

fn point_on_linestring(p: Point, l: &LineString) -> bool {
    l.segments().any(|(a, b)| segments_intersect(a, b, p, p))
}

/// `true` if any segment of `a` intersects any segment of `b`.
pub fn line_intersects_line(a: &LineString, b: &LineString) -> bool {
    if !a.envelope().intersects(&b.envelope()) {
        return false;
    }
    for (p1, p2) in a.segments() {
        let seg_env = Rect::from_corners(p1, p2);
        if !seg_env.intersects(&b.envelope()) {
            continue;
        }
        for (q1, q2) in b.segments() {
            if segments_intersect(p1, p2, q1, q2) {
                return true;
            }
        }
    }
    false
}

/// `true` if the line touches/crosses the polygon boundary or lies inside.
pub fn line_intersects_polygon(l: &LineString, poly: &Polygon) -> bool {
    if !l.envelope().intersects(&poly.envelope()) {
        return false;
    }
    // Any boundary crossing?
    for (p1, p2) in l.segments() {
        for (q1, q2) in poly.all_segments() {
            if segments_intersect(p1, p2, q1, q2) {
                return true;
            }
        }
    }
    // No crossing: the line is wholly inside or wholly outside; one vertex
    // decides.
    point_in_polygon(l.points()[0], poly) != PointLocation::Outside
}

/// `true` if two polygons share any portion of space: boundary crossing or
/// full containment of one in the other.
pub fn polygon_intersects_polygon(a: &Polygon, b: &Polygon) -> bool {
    if !a.envelope().intersects(&b.envelope()) {
        return false;
    }
    for (p1, p2) in a.all_segments() {
        let seg_env = Rect::from_corners(p1, p2);
        if !seg_env.intersects(&b.envelope()) {
            continue;
        }
        for (q1, q2) in b.all_segments() {
            if segments_intersect(p1, p2, q1, q2) {
                return true;
            }
        }
    }
    // No boundary crossing: either disjoint or one contains the other.
    point_in_polygon(a.exterior().points()[0], b) != PointLocation::Outside
        || point_in_polygon(b.exterior().points()[0], a) != PointLocation::Outside
}

/// `true` if the rectangle intersects the geometry exactly (not just its
/// envelope) — used by grid-cell population when precise cell membership is
/// requested.
pub fn rect_intersects_geometry(r: &Rect, g: &Geometry) -> bool {
    if !r.intersects(&g.envelope()) {
        return false;
    }
    let rect_poly = rect_to_polygon(r);
    match g {
        Geometry::Point(p) => r.contains_point(p),
        Geometry::LineString(l) => line_intersects_polygon(l, &rect_poly),
        Geometry::Polygon(p) => polygon_intersects_polygon(p, &rect_poly),
        Geometry::MultiPoint(m) => m.0.iter().any(|p| r.contains_point(p)),
        Geometry::MultiLineString(m) => m.0.iter().any(|l| line_intersects_polygon(l, &rect_poly)),
        Geometry::MultiPolygon(m) => {
            m.0.iter()
                .any(|p| polygon_intersects_polygon(p, &rect_poly))
        }
        Geometry::GeometryCollection(c) => c.0.iter().any(|g| rect_intersects_geometry(r, g)),
    }
}

fn rect_to_polygon(r: &Rect) -> Polygon {
    Polygon::from_coords(
        vec![
            Point::new(r.min_x, r.min_y),
            Point::new(r.max_x, r.min_y),
            Point::new(r.max_x, r.max_y),
            Point::new(r.min_x, r.max_y),
            Point::new(r.min_x, r.min_y),
        ],
        vec![],
    )
    // audit: four rectangle corners always form a valid closed ring.
    .expect("rect corners always form a valid ring")
}

/// The symmetric `intersects` predicate over any pair of geometries.
///
/// Dispatches on both shape classes; multi-geometries distribute over their
/// members. This is the exact test invoked by the refine phase of the
/// spatial join exemplar.
pub fn intersects(a: &Geometry, b: &Geometry) -> bool {
    // MBR filter first — mirrors the library's own filter-refine discipline
    // and keeps the worst case cheap.
    if !a.envelope().intersects(&b.envelope()) {
        return false;
    }
    use Geometry as G;
    match (a, b) {
        (G::Point(p), _) => point_in_geometry(*p, b),
        (_, G::Point(p)) => point_in_geometry(*p, a),
        (G::MultiPoint(m), _) => m.0.iter().any(|p| point_in_geometry(*p, b)),
        (_, G::MultiPoint(m)) => m.0.iter().any(|p| point_in_geometry(*p, a)),
        (G::GeometryCollection(c), _) => c.0.iter().any(|g| intersects(g, b)),
        (_, G::GeometryCollection(c)) => c.0.iter().any(|g| intersects(g, a)),
        (G::MultiLineString(m), _) => m.0.iter().any(|l| intersects(&G::LineString(l.clone()), b)),
        (_, G::MultiLineString(m)) => m.0.iter().any(|l| intersects(&G::LineString(l.clone()), a)),
        (G::MultiPolygon(m), _) => m.0.iter().any(|p| intersects(&G::Polygon(p.clone()), b)),
        (_, G::MultiPolygon(m)) => m.0.iter().any(|p| intersects(&G::Polygon(p.clone()), a)),
        (G::LineString(l1), G::LineString(l2)) => line_intersects_line(l1, l2),
        (G::LineString(l), G::Polygon(p)) => line_intersects_polygon(l, p),
        (G::Polygon(p), G::LineString(l)) => line_intersects_polygon(l, p),
        (G::Polygon(p1), G::Polygon(p2)) => polygon_intersects_polygon(p1, p2),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi::{MultiPoint, MultiPolygon};

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    fn square(x0: f64, y0: f64, side: f64) -> Polygon {
        Polygon::from_coords(
            pts(&[
                (x0, y0),
                (x0 + side, y0),
                (x0 + side, y0 + side),
                (x0, y0 + side),
                (x0, y0),
            ]),
            vec![],
        )
        .unwrap()
    }

    fn line(coords: &[(f64, f64)]) -> LineString {
        LineString::new(pts(coords)).unwrap()
    }

    #[test]
    fn overlapping_squares_intersect() {
        let a: Geometry = square(0.0, 0.0, 2.0).into();
        let b: Geometry = square(1.0, 1.0, 2.0).into();
        assert!(intersects(&a, &b));
        assert!(intersects(&b, &a));
    }

    #[test]
    fn disjoint_squares_do_not_intersect() {
        let a: Geometry = square(0.0, 0.0, 1.0).into();
        let b: Geometry = square(5.0, 5.0, 1.0).into();
        assert!(!intersects(&a, &b));
    }

    #[test]
    fn nested_squares_intersect_despite_no_boundary_crossing() {
        let outer: Geometry = square(0.0, 0.0, 10.0).into();
        let inner: Geometry = square(4.0, 4.0, 1.0).into();
        assert!(intersects(&outer, &inner));
        assert!(intersects(&inner, &outer));
    }

    #[test]
    fn envelope_overlap_is_not_sufficient() {
        // Two L-shaped-adjacent squares whose MBRs overlap but whose actual
        // shapes do not: a thin diagonal strip vs a far corner square.
        let diag: Geometry = Geometry::LineString(line(&[(0.0, 0.0), (10.0, 10.0)]));
        let corner: Geometry = square(8.0, 0.0, 1.0).into();
        // Envelopes overlap:
        assert!(diag.envelope().intersects(&corner.envelope()));
        // But the refine test rejects:
        assert!(!intersects(&diag, &corner));
    }

    #[test]
    fn line_crossing_polygon() {
        let sq: Geometry = square(0.0, 0.0, 2.0).into();
        let crossing: Geometry = Geometry::LineString(line(&[(-1.0, 1.0), (3.0, 1.0)]));
        assert!(intersects(&sq, &crossing));
        let inside: Geometry = Geometry::LineString(line(&[(0.5, 0.5), (1.5, 1.5)]));
        assert!(intersects(&sq, &inside));
        let outside: Geometry = Geometry::LineString(line(&[(5.0, 5.0), (6.0, 6.0)]));
        assert!(!intersects(&sq, &outside));
    }

    #[test]
    fn point_predicates() {
        let sq: Geometry = square(0.0, 0.0, 2.0).into();
        assert!(intersects(&Geometry::Point(Point::new(1.0, 1.0)), &sq));
        assert!(intersects(&Geometry::Point(Point::new(0.0, 0.0)), &sq)); // boundary
        assert!(!intersects(&Geometry::Point(Point::new(9.0, 9.0)), &sq));
        let l = Geometry::LineString(line(&[(0.0, 0.0), (2.0, 2.0)]));
        assert!(intersects(&Geometry::Point(Point::new(1.0, 1.0)), &l));
        assert!(!intersects(&Geometry::Point(Point::new(1.0, 1.1)), &l));
    }

    #[test]
    fn multi_geometries_distribute() {
        let mp = Geometry::MultiPoint(MultiPoint(vec![
            Point::new(50.0, 50.0),
            Point::new(0.5, 0.5),
        ]));
        let sq: Geometry = square(0.0, 0.0, 1.0).into();
        assert!(intersects(&mp, &sq));

        let mpoly = Geometry::MultiPolygon(MultiPolygon(vec![
            square(100.0, 100.0, 1.0),
            square(0.0, 0.0, 1.0),
        ]));
        let target: Geometry = square(0.5, 0.5, 3.0).into();
        assert!(intersects(&mpoly, &target));
    }

    #[test]
    fn rect_intersects_geometry_is_exact() {
        // A diagonal line whose envelope covers the cell but which misses it.
        let l = Geometry::LineString(line(&[(0.0, 0.0), (10.0, 10.0)]));
        let cell_hit = Rect::new(4.0, 4.0, 6.0, 6.0);
        let cell_miss = Rect::new(8.0, 0.0, 9.0, 1.0);
        assert!(rect_intersects_geometry(&cell_hit, &l));
        assert!(!rect_intersects_geometry(&cell_miss, &l));
    }

    #[test]
    fn polygon_touching_at_edge_intersects() {
        let a: Geometry = square(0.0, 0.0, 1.0).into();
        let b: Geometry = square(1.0, 0.0, 1.0).into();
        assert!(intersects(&a, &b));
    }
}
