//! Segment–segment intersection tests.

use super::orient::{orientation, Orientation};
use crate::point::Point;
use crate::rect::Rect;

/// `true` if point `q` lies on the closed segment `(a, b)`, assuming the
/// three points are collinear.
#[inline]
fn on_segment(a: Point, b: Point, q: Point) -> bool {
    q.x >= a.x.min(b.x) && q.x <= a.x.max(b.x) && q.y >= a.y.min(b.y) && q.y <= a.y.max(b.y)
}

/// Exact closed-segment intersection test (shared endpoints intersect).
///
/// This is the classic four-orientation test with collinear special cases —
/// the inner loop of the refine phase for line/polygon boundaries.
pub fn segments_intersect(p1: Point, p2: Point, q1: Point, q2: Point) -> bool {
    // Cheap bounding-box rejection first: most candidate pairs surviving
    // the grid filter still have disjoint segment boxes.
    let bb_p = Rect::from_corners(p1, p2);
    let bb_q = Rect::from_corners(q1, q2);
    if !bb_p.intersects(&bb_q) {
        return false;
    }

    let o1 = orientation(p1, p2, q1);
    let o2 = orientation(p1, p2, q2);
    let o3 = orientation(q1, q2, p1);
    let o4 = orientation(q1, q2, p2);

    if o1 != o2
        && o3 != o4
        && o1 != Orientation::Collinear
        && o2 != Orientation::Collinear
        && o3 != Orientation::Collinear
        && o4 != Orientation::Collinear
    {
        return true;
    }

    (o1 == Orientation::Collinear && on_segment(p1, p2, q1))
        || (o2 == Orientation::Collinear && on_segment(p1, p2, q2))
        || (o3 == Orientation::Collinear && on_segment(q1, q2, p1))
        || (o4 == Orientation::Collinear && on_segment(q1, q2, p2))
}

/// Returns the intersection point of two *properly* crossing segments, or
/// `None` for disjoint, touching-at-endpoint-only-collinear, or parallel
/// pairs where a unique crossing point does not exist.
pub fn segment_intersection_point(p1: Point, p2: Point, q1: Point, q2: Point) -> Option<Point> {
    let r = Point::new(p2.x - p1.x, p2.y - p1.y);
    let s = Point::new(q2.x - q1.x, q2.y - q1.y);
    let denom = r.x * s.y - r.y * s.x;
    if denom == 0.0 {
        return None; // parallel or collinear
    }
    let qp = Point::new(q1.x - p1.x, q1.y - p1.y);
    let t = (qp.x * s.y - qp.y * s.x) / denom;
    let u = (qp.x * r.y - qp.y * r.x) / denom;
    if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
        Some(Point::new(p1.x + t * r.x, p1.y + t * r.y))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn proper_crossing() {
        assert!(segments_intersect(
            p(0.0, 0.0),
            p(2.0, 2.0),
            p(0.0, 2.0),
            p(2.0, 0.0)
        ));
        let ip = segment_intersection_point(p(0.0, 0.0), p(2.0, 2.0), p(0.0, 2.0), p(2.0, 0.0));
        assert_eq!(ip, Some(p(1.0, 1.0)));
    }

    #[test]
    fn disjoint_segments() {
        assert!(!segments_intersect(
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(0.0, 1.0),
            p(1.0, 1.0)
        ));
        assert_eq!(
            segment_intersection_point(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0), p(1.0, 1.0)),
            None
        );
    }

    #[test]
    fn shared_endpoint_counts_as_intersection() {
        assert!(segments_intersect(
            p(0.0, 0.0),
            p(1.0, 1.0),
            p(1.0, 1.0),
            p(2.0, 0.0)
        ));
    }

    #[test]
    fn t_junction_touch() {
        // q1 lies in the interior of segment p.
        assert!(segments_intersect(
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(1.0, 0.0),
            p(1.0, 5.0)
        ));
    }

    #[test]
    fn collinear_overlapping() {
        assert!(segments_intersect(
            p(0.0, 0.0),
            p(3.0, 0.0),
            p(1.0, 0.0),
            p(4.0, 0.0)
        ));
        // But no unique crossing point exists.
        assert_eq!(
            segment_intersection_point(p(0.0, 0.0), p(3.0, 0.0), p(1.0, 0.0), p(4.0, 0.0)),
            None
        );
    }

    #[test]
    fn collinear_disjoint() {
        assert!(!segments_intersect(
            p(0.0, 0.0),
            p(1.0, 0.0),
            p(2.0, 0.0),
            p(3.0, 0.0)
        ));
    }

    #[test]
    fn parallel_non_collinear() {
        assert!(!segments_intersect(
            p(0.0, 0.0),
            p(2.0, 0.0),
            p(0.0, 1.0),
            p(2.0, 1.0)
        ));
    }

    #[test]
    fn crossing_at_segment_end_is_detected() {
        // Segment q ends exactly on segment p's interior.
        assert!(segments_intersect(
            p(0.0, 0.0),
            p(4.0, 4.0),
            p(2.0, 2.0),
            p(2.0, -5.0)
        ));
    }
}
