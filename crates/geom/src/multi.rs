//! Multi-part geometry types (`MULTIPOINT`, `MULTILINESTRING`,
//! `MULTIPOLYGON`, `GEOMETRYCOLLECTION`).
//!
//! The paper defines its compound spatial MPI types ("multi-point,
//! multi-line, and fixed-size polygon") by nesting basic spatial types;
//! these are the geometry-side counterparts.

use crate::geometry::Geometry;
use crate::linestring::LineString;
use crate::point::Point;
use crate::polygon::Polygon;
use crate::rect::Rect;

/// A set of points treated as one geometry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiPoint(pub Vec<Point>);

/// A set of polylines treated as one geometry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiLineString(pub Vec<LineString>);

/// A set of polygons treated as one geometry.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MultiPolygon(pub Vec<Polygon>);

/// A heterogeneous collection of geometries.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct GeometryCollection(pub Vec<Geometry>);

impl MultiPoint {
    /// Envelope covering all member points.
    pub fn envelope(&self) -> Rect {
        Rect::from_points(&self.0)
    }

    /// Total vertex count.
    pub fn num_points(&self) -> usize {
        self.0.len()
    }
}

impl MultiLineString {
    /// Envelope covering all member lines.
    pub fn envelope(&self) -> Rect {
        self.0
            .iter()
            .fold(Rect::EMPTY, |acc, l| acc.union(&l.envelope()))
    }

    /// Total vertex count.
    pub fn num_points(&self) -> usize {
        self.0.iter().map(LineString::num_points).sum()
    }

    /// Total length of all member lines.
    pub fn length(&self) -> f64 {
        self.0.iter().map(LineString::length).sum()
    }
}

impl MultiPolygon {
    /// Envelope covering all member polygons.
    pub fn envelope(&self) -> Rect {
        self.0
            .iter()
            .fold(Rect::EMPTY, |acc, p| acc.union(&p.envelope()))
    }

    /// Total vertex count.
    pub fn num_points(&self) -> usize {
        self.0.iter().map(Polygon::num_points).sum()
    }

    /// Total area of all member polygons.
    pub fn area(&self) -> f64 {
        self.0.iter().map(Polygon::area).sum()
    }
}

impl GeometryCollection {
    /// Envelope covering every member geometry.
    pub fn envelope(&self) -> Rect {
        self.0
            .iter()
            .fold(Rect::EMPTY, |acc, g| acc.union(&g.envelope()))
    }

    /// Total vertex count.
    pub fn num_points(&self) -> usize {
        self.0.iter().map(Geometry::num_points).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(coords: &[(f64, f64)]) -> LineString {
        LineString::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn multipoint_envelope() {
        let mp = MultiPoint(vec![Point::new(0.0, 0.0), Point::new(2.0, 3.0)]);
        assert_eq!(mp.envelope(), Rect::new(0.0, 0.0, 2.0, 3.0));
        assert_eq!(mp.num_points(), 2);
    }

    #[test]
    fn empty_multis_have_empty_envelope() {
        assert!(MultiPoint::default().envelope().is_empty());
        assert!(MultiLineString::default().envelope().is_empty());
        assert!(MultiPolygon::default().envelope().is_empty());
        assert!(GeometryCollection::default().envelope().is_empty());
    }

    #[test]
    fn multilinestring_aggregates() {
        let ml = MultiLineString(vec![
            line(&[(0.0, 0.0), (3.0, 4.0)]),
            line(&[(10.0, 0.0), (10.0, 2.0)]),
        ]);
        assert_eq!(ml.length(), 7.0);
        assert_eq!(ml.num_points(), 4);
        assert_eq!(ml.envelope(), Rect::new(0.0, 0.0, 10.0, 4.0));
    }

    #[test]
    fn multipolygon_aggregates() {
        let sq = |x0: f64, y0: f64| {
            Polygon::from_coords(
                vec![
                    Point::new(x0, y0),
                    Point::new(x0 + 1.0, y0),
                    Point::new(x0 + 1.0, y0 + 1.0),
                    Point::new(x0, y0 + 1.0),
                    Point::new(x0, y0),
                ],
                vec![],
            )
            .unwrap()
        };
        let mp = MultiPolygon(vec![sq(0.0, 0.0), sq(5.0, 5.0)]);
        assert_eq!(mp.area(), 2.0);
        assert_eq!(mp.envelope(), Rect::new(0.0, 0.0, 6.0, 6.0));
        assert_eq!(mp.num_points(), 10);
    }
}
