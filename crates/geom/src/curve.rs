//! Space-filling curves: Z-order (Morton) and Hilbert keys.
//!
//! "To ensure spatial data locality, points and line segments are often
//! sorted in 2D using Z-order and Hilbert curve" (paper §4.1). The
//! library uses these for locality-aware declustering: sorting features
//! (or assigning grid cells to ranks) along a space-filling curve keeps
//! spatial neighbours on the same rank.

use crate::point::Point;
use crate::rect::Rect;

/// Resolution of curve keys: coordinates quantize to `2^ORDER` cells per
/// axis, giving 2·ORDER-bit keys that fit comfortably in a `u64`.
pub const ORDER: u32 = 16;

/// Quantizes a point into integer cell coordinates within `bounds`.
fn quantize(p: Point, bounds: &Rect) -> (u32, u32) {
    let side = (1u64 << ORDER) as f64;
    let fx = ((p.x - bounds.min_x) / bounds.width().max(f64::MIN_POSITIVE)).clamp(0.0, 1.0);
    let fy = ((p.y - bounds.min_y) / bounds.height().max(f64::MIN_POSITIVE)).clamp(0.0, 1.0);
    let x = ((fx * side) as u32).min((1 << ORDER) - 1);
    let y = ((fy * side) as u32).min((1 << ORDER) - 1);
    (x, y)
}

/// Interleaves the low 16 bits of `v` with zeros (Morton spreading).
fn spread(v: u32) -> u64 {
    let mut x = v as u64 & 0xFFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Z-order (Morton) key of `p` within `bounds`.
pub fn zorder_key(p: Point, bounds: &Rect) -> u64 {
    let (x, y) = quantize(p, bounds);
    spread(x) | (spread(y) << 1)
}

/// Z-order key of integer cell coordinates (for grid-cell maps).
pub fn zorder_key_cells(x: u32, y: u32) -> u64 {
    spread(x & 0xFFFF) | (spread(y & 0xFFFF) << 1)
}

/// Hilbert-curve key of `p` within `bounds` (order-[`ORDER`] curve).
///
/// Classic x/y-swap formulation; better locality than Z-order (no long
/// jumps between quadrant boundaries).
pub fn hilbert_key(p: Point, bounds: &Rect) -> u64 {
    let (x, y) = quantize(p, bounds);
    hilbert_key_cells(x, y)
}

/// Hilbert key of integer cell coordinates (standard `xy2d` algorithm)
/// on the library's fixed order-[`ORDER`] curve.
pub fn hilbert_key_cells(x: u32, y: u32) -> u64 {
    hilbert_key_cells_order(ORDER, x, y)
}

/// Hilbert key of integer cell coordinates on an order-`order` curve
/// (a `2^order × 2^order` lattice): the bijection `(x, y) → 0..4^order`.
/// Coordinates must be below `2^order`. `hilbert_key_cells` is this at
/// the library's fixed [`ORDER`]; the explicit-order form exists so
/// `2^k × 2^k` grids can be tested (and keyed) exactly.
pub fn hilbert_key_cells_order(order: u32, x: u32, y: u32) -> u64 {
    debug_assert!((1..=31).contains(&order), "order {order} out of range");
    debug_assert!(x < (1 << order) && y < (1 << order));
    let n: u64 = 1 << order;
    let (mut x, mut y) = (x as u64, y as u64);
    let mut d: u64 = 0;
    let mut s: u64 = n / 2;
    while s > 0 {
        let rx = u64::from((x & s) > 0);
        let ry = u64::from((y & s) > 0);
        d += s * s * ((3 * rx) ^ ry);
        // Rotate/reflect the quadrant (reflection is about the full side).
        if ry == 0 {
            if rx == 1 {
                x = n - 1 - x;
                y = n - 1 - y;
            }
            std::mem::swap(&mut x, &mut y);
        }
        s /= 2;
    }
    d
}

/// Sorts points in place along the Z-order curve.
pub fn sort_by_zorder(points: &mut [Point], bounds: &Rect) {
    points.sort_by_key(|p| zorder_key(*p, bounds));
}

/// Sorts points in place along the Hilbert curve.
pub fn sort_by_hilbert(points: &mut [Point], bounds: &Rect) {
    points.sort_by_key(|p| hilbert_key(*p, bounds));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn zorder_interleaves_bits() {
        // Cells (1,0) and (0,1) differ in the lowest interleaved bits.
        assert_eq!(zorder_key_cells(0, 0), 0);
        assert_eq!(zorder_key_cells(1, 0), 1);
        assert_eq!(zorder_key_cells(0, 1), 2);
        assert_eq!(zorder_key_cells(1, 1), 3);
        assert_eq!(zorder_key_cells(2, 0), 4);
    }

    #[test]
    fn corner_keys_order_correctly() {
        let b = unit();
        let k00 = zorder_key(Point::new(0.0, 0.0), &b);
        let k11 = zorder_key(Point::new(1.0, 1.0), &b);
        assert_eq!(k00, 0);
        assert!(k11 > k00);
        // Out-of-bounds points clamp rather than wrap.
        let kneg = zorder_key(Point::new(-5.0, -5.0), &b);
        assert_eq!(kneg, 0);
    }

    #[test]
    fn hilbert_visits_each_cell_once_small_order() {
        // Exhaustively check a 4x4 corner of the curve: keys must be
        // distinct.
        let mut keys: Vec<u64> = (0..4)
            .flat_map(|y| (0..4).map(move |x| hilbert_key_cells(x, y)))
            .collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 16, "distinct keys for distinct cells");
    }

    #[test]
    fn hilbert_neighbours_are_adjacent_cells() {
        // Walking the curve by key order through a 8x8 block must step to
        // a 4-neighbour each time (the curve's defining property).
        let n = 8u32;
        let mut cells: Vec<(u64, (u32, u32))> = (0..n)
            .flat_map(|y| (0..n).map(move |x| (hilbert_key_cells(x, y), (x, y))))
            .collect();
        cells.sort_by_key(|&(k, _)| k);
        for w in cells.windows(2) {
            let (x0, y0) = w[0].1;
            let (x1, y1) = w[1].1;
            let dist = x0.abs_diff(x1) + y0.abs_diff(y1);
            assert_eq!(
                dist, 1,
                "curve step {:?} -> {:?} not adjacent",
                w[0].1, w[1].1
            );
        }
    }

    #[test]
    fn sorted_sequences_have_locality() {
        // Average hop distance after curve sorting must beat random order.
        let mut pts: Vec<Point> = (0..1000)
            .map(|i| {
                // A deterministic scrambled sequence.
                let v = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(17);
                Point::new(
                    ((v >> 16) & 0xFFFF) as f64 / 65535.0,
                    ((v >> 32) & 0xFFFF) as f64 / 65535.0,
                )
            })
            .collect();
        let hop = |pts: &[Point]| -> f64 {
            pts.windows(2).map(|w| w[0].distance(&w[1])).sum::<f64>() / (pts.len() - 1) as f64
        };
        let random_hop = hop(&pts);
        let b = unit();
        sort_by_zorder(&mut pts, &b);
        let z_hop = hop(&pts);
        sort_by_hilbert(&mut pts, &b);
        let h_hop = hop(&pts);
        assert!(
            z_hop < random_hop * 0.25,
            "z-order locality: {z_hop} vs {random_hop}"
        );
        assert!(
            h_hop < random_hop * 0.25,
            "hilbert locality: {h_hop} vs {random_hop}"
        );
        // Hilbert is at least as local as Z-order on this workload.
        assert!(h_hop <= z_hop * 1.2, "hilbert {h_hop} vs zorder {z_hop}");
    }
}
