//! Spatial index structures: the *filter* phase accelerators.
//!
//! GEOS provides a Quadtree and an R-tree (paper §2); MPI-Vector-IO builds
//! an R-tree over grid-cell boundaries to map geometry MBRs to overlapping
//! cells, and per-cell R-trees for the local join filter.

pub mod quadtree;
pub mod rtree;

pub use quadtree::QuadTree;
pub use rtree::RTree;
