//! A region quadtree over rectangle-keyed entries.
//!
//! GEOS exposes both a Quadtree and an R-tree; the quadtree suits dynamic
//! workloads (insert-heavy) while the STR R-tree suits bulk-built,
//! query-heavy phases. Entries are kept in the smallest quadrant that fully
//! contains them, so items straddling quadrant boundaries live in interior
//! nodes — the classic MX-CIF layout.

use crate::rect::Rect;

/// Split a node once it holds more than this many entries (and depth
/// permits).
const NODE_CAPACITY: usize = 8;
/// Hard depth limit to bound degenerate distributions.
const MAX_DEPTH: usize = 16;

#[derive(Debug, Clone)]
struct QNode<T> {
    bounds: Rect,
    depth: usize,
    entries: Vec<(Rect, T)>,
    children: Option<Box<[QNode<T>; 4]>>,
}

impl<T> QNode<T> {
    fn new(bounds: Rect, depth: usize) -> Self {
        QNode {
            bounds,
            depth,
            entries: Vec::new(),
            children: None,
        }
    }

    fn quadrants(&self) -> [Rect; 4] {
        let c = self.bounds.center();
        [
            Rect::new(self.bounds.min_x, self.bounds.min_y, c.x, c.y), // SW
            Rect::new(c.x, self.bounds.min_y, self.bounds.max_x, c.y), // SE
            Rect::new(self.bounds.min_x, c.y, c.x, self.bounds.max_y), // NW
            Rect::new(c.x, c.y, self.bounds.max_x, self.bounds.max_y), // NE
        ]
    }

    fn insert(&mut self, rect: Rect, value: T) {
        if self.children.is_none() && self.entries.len() >= NODE_CAPACITY && self.depth < MAX_DEPTH
        {
            self.split();
        }
        if let Some(children) = &mut self.children {
            // Push down into the unique child that fully contains the rect.
            for child in children.iter_mut() {
                if child.bounds.contains(&rect) {
                    child.insert(rect, value);
                    return;
                }
            }
        }
        self.entries.push((rect, value));
    }

    fn split(&mut self) {
        let quads = self.quadrants();
        let depth = self.depth + 1;
        self.children = Some(Box::new([
            QNode::new(quads[0], depth),
            QNode::new(quads[1], depth),
            QNode::new(quads[2], depth),
            QNode::new(quads[3], depth),
        ]));
        // Re-home entries that now fit entirely in a child.
        let old = std::mem::take(&mut self.entries);
        for (rect, value) in old {
            self.insert(rect, value);
        }
    }

    fn query<'a>(&'a self, probe: &Rect, visit: &mut impl FnMut(&'a T)) {
        if !self.bounds.intersects(probe) {
            return;
        }
        for (r, v) in &self.entries {
            if r.intersects(probe) {
                visit(v);
            }
        }
        if let Some(children) = &self.children {
            for child in children.iter() {
                child.query(probe, visit);
            }
        }
    }
}

/// A bounded-region quadtree.
///
/// Construction requires the overall bounds (grid dimensions are known in
/// MPI-Vector-IO after the `MPI_UNION` reduction); inserts outside the
/// bounds are clamped into the root node's entry list, preserving
/// correctness at the cost of filtering power.
#[derive(Debug, Clone)]
pub struct QuadTree<T> {
    root: QNode<T>,
    len: usize,
}

impl<T> QuadTree<T> {
    /// Creates an empty quadtree covering `bounds`.
    pub fn new(bounds: Rect) -> Self {
        assert!(!bounds.is_empty(), "quadtree bounds must be non-empty");
        QuadTree {
            root: QNode::new(bounds, 0),
            len: 0,
        }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Inserts an entry keyed by its MBR.
    pub fn insert(&mut self, rect: Rect, value: T) {
        self.root.insert(rect, value);
        self.len += 1;
    }

    /// Returns all entries whose MBR intersects `probe`.
    pub fn query(&self, probe: &Rect) -> Vec<&T> {
        let mut out = Vec::new();
        self.root.query(probe, &mut |v| out.push(v));
        out
    }

    /// Visitor-style query without allocation.
    pub fn query_with<'a>(&'a self, probe: &Rect, visit: &mut impl FnMut(&'a T)) {
        self.root.query(probe, visit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_query_roundtrip() {
        let mut qt = QuadTree::new(Rect::new(0.0, 0.0, 100.0, 100.0));
        for i in 0..10u32 {
            let x = i as f64 * 10.0;
            qt.insert(Rect::new(x, x, x + 1.0, x + 1.0), i);
        }
        assert_eq!(qt.len(), 10);
        let hits = qt.query(&Rect::new(35.0, 35.0, 55.0, 55.0));
        let mut got: Vec<u32> = hits.into_iter().copied().collect();
        got.sort_unstable();
        assert_eq!(got, vec![4, 5]);
    }

    #[test]
    fn matches_brute_force_on_dense_grid() {
        let mut qt = QuadTree::new(Rect::new(0.0, 0.0, 16.0, 16.0));
        let mut all = Vec::new();
        for row in 0..16 {
            for col in 0..16 {
                let r = Rect::new(col as f64, row as f64, col as f64 + 1.0, row as f64 + 1.0);
                qt.insert(r, row * 16 + col);
                all.push((r, row * 16 + col));
            }
        }
        for probe in [
            Rect::new(3.5, 3.5, 7.5, 5.5),
            Rect::new(0.0, 0.0, 16.0, 16.0),
            Rect::new(15.9, 15.9, 16.0, 16.0),
        ] {
            let mut expect: Vec<i32> = all
                .iter()
                .filter(|(r, _)| r.intersects(&probe))
                .map(|&(_, id)| id)
                .collect();
            let mut got: Vec<i32> = qt.query(&probe).into_iter().copied().collect();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "probe {probe:?}");
        }
    }

    #[test]
    fn straddling_entries_live_in_interior_nodes_but_are_found() {
        let mut qt = QuadTree::new(Rect::new(0.0, 0.0, 100.0, 100.0));
        // Crosses the root center: can never descend.
        qt.insert(Rect::new(49.0, 49.0, 51.0, 51.0), "center");
        for i in 0..20 {
            let x = i as f64;
            qt.insert(Rect::new(x, 0.0, x + 0.5, 0.5), "south");
        }
        let hits = qt.query(&Rect::new(50.0, 50.0, 50.0, 50.0));
        assert_eq!(hits, vec![&"center"]);
    }

    #[test]
    fn out_of_bounds_inserts_are_still_queryable() {
        let mut qt = QuadTree::new(Rect::new(0.0, 0.0, 10.0, 10.0));
        qt.insert(Rect::new(50.0, 50.0, 51.0, 51.0), 1u8);
        // Probe overlapping the out-of-bounds item... note the root node
        // does not intersect, so entries clamp to root and the root bounds
        // test would reject. Extend probe to overlap the tree bounds too.
        let hits = qt.query(&Rect::new(0.0, 0.0, 60.0, 60.0));
        assert_eq!(hits, vec![&1u8]);
    }

    #[test]
    fn deep_insertion_respects_max_depth() {
        // Thousands of identical tiny rects at one spot must not recurse
        // unboundedly.
        let mut qt = QuadTree::new(Rect::new(0.0, 0.0, 1.0, 1.0));
        for i in 0..5000u32 {
            qt.insert(Rect::new(0.1, 0.1, 0.100001, 0.100001), i);
        }
        assert_eq!(qt.len(), 5000);
        assert_eq!(qt.query(&Rect::new(0.05, 0.05, 0.15, 0.15)).len(), 5000);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_bounds_panics() {
        let _ = QuadTree::<u8>::new(Rect::EMPTY);
    }
}
