//! An R-tree with STR (Sort-Tile-Recursive) bulk loading and quadratic-split
//! insertion.
//!
//! This mirrors how the paper uses GEOS's `STRtree`: bulk-build an index
//! over one geometry collection (or the grid-cell boundaries), then query it
//! with candidate MBRs during the filter phase.

use crate::rect::Rect;

/// Maximum entries per node before a split.
const MAX_ENTRIES: usize = 16;
/// Minimum entries assigned to each side of a split.
const MIN_ENTRIES: usize = 4;

#[derive(Debug, Clone)]
enum Node<T> {
    Leaf { mbr: Rect, entries: Vec<(Rect, T)> },
    Inner { mbr: Rect, children: Vec<Node<T>> },
}

impl<T> Node<T> {
    fn mbr(&self) -> Rect {
        match self {
            Node::Leaf { mbr, .. } | Node::Inner { mbr, .. } => *mbr,
        }
    }

    fn recompute_mbr(&mut self) {
        match self {
            Node::Leaf { mbr, entries } => {
                *mbr = entries.iter().fold(Rect::EMPTY, |a, (r, _)| a.union(r));
            }
            Node::Inner { mbr, children } => {
                *mbr = children.iter().fold(Rect::EMPTY, |a, c| a.union(&c.mbr()));
            }
        }
    }
}

/// An R-tree over `(Rect, T)` entries.
///
/// * [`RTree::bulk_load`] builds a packed tree with the STR algorithm —
///   O(n log n), near-minimal overlap, the right choice for the read-mostly
///   workloads in this repository.
/// * [`RTree::insert`] supports incremental updates with quadratic split.
/// * [`RTree::query`] returns every entry whose MBR intersects the probe.
#[derive(Debug, Clone)]
pub struct RTree<T> {
    root: Option<Node<T>>,
    len: usize,
}

impl<T> Default for RTree<T> {
    fn default() -> Self {
        RTree::new()
    }
}

impl<T> RTree<T> {
    /// Creates an empty tree.
    pub fn new() -> Self {
        RTree { root: None, len: 0 }
    }

    /// Number of stored entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// MBR of the whole tree ([`Rect::EMPTY`] when empty).
    pub fn mbr(&self) -> Rect {
        self.root.as_ref().map_or(Rect::EMPTY, Node::mbr)
    }

    /// Builds a tree from `(Rect, T)` pairs using Sort-Tile-Recursive
    /// packing.
    pub fn bulk_load(mut items: Vec<(Rect, T)>) -> Self {
        let len = items.len();
        if items.is_empty() {
            return RTree::new();
        }
        // STR: sort by center-x, tile into vertical slices of ~sqrt(n/M)
        // columns, sort each slice by center-y, pack runs of MAX_ENTRIES.
        let leaf_count = len.div_ceil(MAX_ENTRIES);
        let slice_count = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slice = len.div_ceil(slice_count.max(1));

        items.sort_by(|a, b| {
            a.0.center()
                .x
                .partial_cmp(&b.0.center().x)
                .unwrap_or(std::cmp::Ordering::Equal)
        });

        let mut leaves: Vec<Node<T>> = Vec::with_capacity(leaf_count);
        let mut items = items.into_iter().peekable();
        while items.peek().is_some() {
            let mut slice: Vec<(Rect, T)> = Vec::with_capacity(per_slice);
            for _ in 0..per_slice {
                match items.next() {
                    Some(it) => slice.push(it),
                    None => break,
                }
            }
            slice.sort_by(|a, b| {
                a.0.center()
                    .y
                    .partial_cmp(&b.0.center().y)
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut slice = slice.into_iter().peekable();
            while slice.peek().is_some() {
                let mut entries = Vec::with_capacity(MAX_ENTRIES);
                for _ in 0..MAX_ENTRIES {
                    match slice.next() {
                        Some(it) => entries.push(it),
                        None => break,
                    }
                }
                let mut leaf = Node::Leaf {
                    mbr: Rect::EMPTY,
                    entries,
                };
                leaf.recompute_mbr();
                leaves.push(leaf);
            }
        }

        // Pack upper levels until a single root remains.
        let mut level = leaves;
        while level.len() > 1 {
            let mut next: Vec<Node<T>> = Vec::with_capacity(level.len().div_ceil(MAX_ENTRIES));
            let mut level_iter = level.into_iter().peekable();
            while level_iter.peek().is_some() {
                let mut children = Vec::with_capacity(MAX_ENTRIES);
                for _ in 0..MAX_ENTRIES {
                    match level_iter.next() {
                        Some(n) => children.push(n),
                        None => break,
                    }
                }
                let mut inner = Node::Inner {
                    mbr: Rect::EMPTY,
                    children,
                };
                inner.recompute_mbr();
                next.push(inner);
            }
            level = next;
        }

        RTree {
            root: level.pop(),
            len,
        }
    }

    /// Inserts one entry, splitting overflowing nodes quadratically.
    pub fn insert(&mut self, rect: Rect, value: T) {
        self.len += 1;
        match self.root.take() {
            None => {
                self.root = Some(Node::Leaf {
                    mbr: rect,
                    entries: vec![(rect, value)],
                });
            }
            Some(mut root) => {
                if let Some(sibling) = insert_rec(&mut root, rect, value) {
                    let mbr = root.mbr().union(&sibling.mbr());
                    self.root = Some(Node::Inner {
                        mbr,
                        children: vec![root, sibling],
                    });
                } else {
                    self.root = Some(root);
                }
            }
        }
    }

    /// Returns references to every entry whose MBR intersects `probe`, in
    /// deterministic tree order.
    pub fn query(&self, probe: &Rect) -> Vec<&T> {
        let mut out = Vec::new();
        self.query_with(probe, &mut |v| out.push(v));
        out
    }

    /// Visitor-style query: calls `visit` for each hit without allocating.
    pub fn query_with<'a>(&'a self, probe: &Rect, visit: &mut impl FnMut(&'a T)) {
        if let Some(root) = &self.root {
            query_rec(root, probe, visit);
        }
    }

    /// Counts entries intersecting `probe` without materializing them.
    pub fn count(&self, probe: &Rect) -> usize {
        let mut n = 0;
        self.query_with(probe, &mut |_| n += 1);
        n
    }

    /// Depth of the tree (0 when empty); exposed for tests and diagnostics.
    pub fn depth(&self) -> usize {
        fn d<T>(n: &Node<T>) -> usize {
            match n {
                Node::Leaf { .. } => 1,
                Node::Inner { children, .. } => 1 + children.iter().map(d).max().unwrap_or(0),
            }
        }
        self.root.as_ref().map_or(0, d)
    }
}

fn query_rec<'a, T>(node: &'a Node<T>, probe: &Rect, visit: &mut impl FnMut(&'a T)) {
    match node {
        Node::Leaf { mbr, entries } => {
            if !mbr.intersects(probe) {
                return;
            }
            for (r, v) in entries {
                if r.intersects(probe) {
                    visit(v);
                }
            }
        }
        Node::Inner { mbr, children } => {
            if !mbr.intersects(probe) {
                return;
            }
            for c in children {
                query_rec(c, probe, visit);
            }
        }
    }
}

/// Recursive insert; returns a new sibling node if this node split.
fn insert_rec<T>(node: &mut Node<T>, rect: Rect, value: T) -> Option<Node<T>> {
    match node {
        Node::Leaf { mbr, entries } => {
            entries.push((rect, value));
            *mbr = mbr.union(&rect);
            if entries.len() > MAX_ENTRIES {
                let (a, b) = quadratic_split_entries(std::mem::take(entries));
                let mut left = Node::Leaf {
                    mbr: Rect::EMPTY,
                    entries: a,
                };
                let mut right = Node::Leaf {
                    mbr: Rect::EMPTY,
                    entries: b,
                };
                left.recompute_mbr();
                right.recompute_mbr();
                *node = left;
                Some(right)
            } else {
                None
            }
        }
        Node::Inner { mbr, children } => {
            *mbr = mbr.union(&rect);
            // Choose the child needing least enlargement (ties: smaller area).
            let idx = children
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    let ea = a.mbr().union(&rect).area() - a.mbr().area();
                    let eb = b.mbr().union(&rect).area() - b.mbr().area();
                    ea.partial_cmp(&eb)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then_with(|| {
                            a.mbr()
                                .area()
                                .partial_cmp(&b.mbr().area())
                                .unwrap_or(std::cmp::Ordering::Equal)
                        })
                })
                .map(|(i, _)| i)
                // audit: construction never produces an empty inner node.
                .expect("inner node always has children");
            if let Some(sibling) = insert_rec(&mut children[idx], rect, value) {
                children.push(sibling);
                if children.len() > MAX_ENTRIES {
                    let (a, b) = quadratic_split_nodes(std::mem::take(children));
                    let mut left = Node::Inner {
                        mbr: Rect::EMPTY,
                        children: a,
                    };
                    let mut right = Node::Inner {
                        mbr: Rect::EMPTY,
                        children: b,
                    };
                    left.recompute_mbr();
                    right.recompute_mbr();
                    *node = left;
                    return Some(right);
                }
            }
            None
        }
    }
}

/// Guttman's quadratic split over leaf entries.
fn quadratic_split_entries<T>(items: Vec<(Rect, T)>) -> (Vec<(Rect, T)>, Vec<(Rect, T)>) {
    quadratic_split(items, |it| it.0)
}

/// Guttman's quadratic split over child nodes.
fn quadratic_split_nodes<T>(items: Vec<Node<T>>) -> (Vec<Node<T>>, Vec<Node<T>>) {
    quadratic_split(items, Node::mbr)
}

fn quadratic_split<I>(mut items: Vec<I>, rect_of: impl Fn(&I) -> Rect) -> (Vec<I>, Vec<I>) {
    debug_assert!(items.len() >= 2);
    // Pick the pair wasting the most area as seeds.
    let (mut seed_a, mut seed_b, mut worst) = (0, 1, f64::NEG_INFINITY);
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let ra = rect_of(&items[i]);
            let rb = rect_of(&items[j]);
            let waste = ra.union(&rb).area() - ra.area() - rb.area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    // Remove the higher index first so the lower stays valid.
    let item_b = items.remove(seed_b);
    let item_a = items.remove(seed_a);
    let mut group_a = vec![item_a];
    let mut group_b = vec![item_b];
    let mut mbr_a = rect_of(&group_a[0]);
    let mut mbr_b = rect_of(&group_b[0]);

    while let Some(item) = items.pop() {
        let remaining = items.len() + 1;
        // Force assignment if a group must take all remaining to reach MIN.
        if group_a.len() + remaining <= MIN_ENTRIES {
            mbr_a = mbr_a.union(&rect_of(&item));
            group_a.push(item);
            continue;
        }
        if group_b.len() + remaining <= MIN_ENTRIES {
            mbr_b = mbr_b.union(&rect_of(&item));
            group_b.push(item);
            continue;
        }
        let r = rect_of(&item);
        let grow_a = mbr_a.union(&r).area() - mbr_a.area();
        let grow_b = mbr_b.union(&r).area() - mbr_b.area();
        if grow_a <= grow_b {
            mbr_a = mbr_a.union(&r);
            group_a.push(item);
        } else {
            mbr_b = mbr_b.union(&r);
            group_b.push(item);
        }
    }
    (group_a, group_b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_cells(n: usize) -> Vec<(Rect, usize)> {
        // n×n grid of unit cells, id = row * n + col.
        let mut cells = Vec::with_capacity(n * n);
        for row in 0..n {
            for col in 0..n {
                cells.push((
                    Rect::new(col as f64, row as f64, col as f64 + 1.0, row as f64 + 1.0),
                    row * n + col,
                ));
            }
        }
        cells
    }

    #[test]
    fn empty_tree_behaves() {
        let t: RTree<u32> = RTree::new();
        assert!(t.is_empty());
        assert_eq!(t.query(&Rect::new(0.0, 0.0, 1.0, 1.0)), Vec::<&u32>::new());
        assert!(t.mbr().is_empty());
        assert_eq!(t.depth(), 0);
    }

    #[test]
    fn bulk_load_finds_exact_matches() {
        let t = RTree::bulk_load(unit_cells(10));
        assert_eq!(t.len(), 100);
        // Probe strictly inside cell (3, 4): ids are row*10+col.
        let hits = t.query(&Rect::new(4.25, 3.25, 4.75, 3.75));
        assert_eq!(hits, vec![&34]);
    }

    #[test]
    fn bulk_load_matches_brute_force() {
        let cells = unit_cells(13);
        let t = RTree::bulk_load(cells.clone());
        for probe in [
            Rect::new(0.0, 0.0, 13.0, 13.0),
            Rect::new(2.5, 2.5, 6.5, 4.5),
            Rect::new(-5.0, -5.0, -1.0, -1.0),
            Rect::new(12.5, 12.5, 20.0, 20.0),
            Rect::new(6.0, 6.0, 6.0, 6.0), // degenerate point probe
        ] {
            let mut expect: Vec<usize> = cells
                .iter()
                .filter(|(r, _)| r.intersects(&probe))
                .map(|&(_, id)| id)
                .collect();
            let mut got: Vec<usize> = t.query(&probe).into_iter().copied().collect();
            expect.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, expect, "probe {probe:?}");
        }
    }

    #[test]
    fn insert_matches_brute_force() {
        let cells = unit_cells(9);
        let mut t = RTree::new();
        for (r, id) in cells.clone() {
            t.insert(r, id);
        }
        assert_eq!(t.len(), 81);
        let probe = Rect::new(3.5, 3.5, 5.5, 5.5);
        let mut expect: Vec<usize> = cells
            .iter()
            .filter(|(r, _)| r.intersects(&probe))
            .map(|&(_, id)| id)
            .collect();
        let mut got: Vec<usize> = t.query(&probe).into_iter().copied().collect();
        expect.sort_unstable();
        got.sort_unstable();
        assert_eq!(got, expect);
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        let t = RTree::bulk_load(unit_cells(32)); // 1024 entries
                                                  // With M = 16: 1024 entries -> 64 leaves -> 4 inners -> 1 root = 3.
        assert!(t.depth() <= 4, "depth {} too large", t.depth());
    }

    #[test]
    fn count_matches_query_len() {
        let t = RTree::bulk_load(unit_cells(8));
        let probe = Rect::new(1.5, 1.5, 4.5, 2.5);
        assert_eq!(t.count(&probe), t.query(&probe).len());
    }

    #[test]
    fn mbr_covers_everything() {
        let t = RTree::bulk_load(unit_cells(5));
        assert_eq!(t.mbr(), Rect::new(0.0, 0.0, 5.0, 5.0));
    }

    #[test]
    fn single_item_tree() {
        let t = RTree::bulk_load(vec![(Rect::new(1.0, 1.0, 2.0, 2.0), "a")]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.query(&Rect::new(0.0, 0.0, 3.0, 3.0)), vec![&"a"]);
        assert!(t.query(&Rect::new(5.0, 5.0, 6.0, 6.0)).is_empty());
    }

    #[test]
    fn overlapping_entries_all_reported() {
        // 50 rectangles all covering the origin.
        let items: Vec<(Rect, usize)> = (0..50)
            .map(|i| (Rect::new(-1.0 - i as f64, -1.0, 1.0, 1.0), i))
            .collect();
        let t = RTree::bulk_load(items);
        assert_eq!(t.count(&Rect::new(0.0, 0.0, 0.0, 0.0)), 50);
    }
}
