//! Polyline (`LINESTRING`) type.

use crate::point::Point;
use crate::rect::Rect;
use crate::{GeomError, Result};

/// An ordered sequence of at least two points forming a polyline.
///
/// Road-network edges in the paper's 137 GB "Road Network" dataset are
/// linestrings; they are the variable-length line counterpart of
/// variable-length polygons.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LineString {
    points: Vec<Point>,
}

impl LineString {
    /// Creates a linestring, validating that it has at least two points and
    /// only finite coordinates.
    pub fn new(points: Vec<Point>) -> Result<Self> {
        if points.len() < 2 {
            return Err(GeomError::Invalid(format!(
                "LINESTRING needs >= 2 points, got {}",
                points.len()
            )));
        }
        if let Some(p) = points.iter().find(|p| !p.is_finite()) {
            return Err(GeomError::Invalid(format!("non-finite coordinate {p}")));
        }
        Ok(LineString { points })
    }

    /// The vertices of the polyline.
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of vertices.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Iterator over the consecutive segments `(points[i], points[i+1])`.
    pub fn segments(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        self.points.windows(2).map(|w| (w[0], w[1]))
    }

    /// Total Euclidean length.
    pub fn length(&self) -> f64 {
        self.segments().map(|(a, b)| a.distance(&b)).sum()
    }

    /// `true` when the first and last vertices coincide exactly.
    #[inline]
    pub fn is_closed(&self) -> bool {
        self.points.first() == self.points.last()
    }

    /// Minimum bounding rectangle.
    pub fn envelope(&self) -> Rect {
        Rect::from_points(&self.points)
    }

    /// Consumes the linestring, returning its vertex vector.
    pub fn into_points(self) -> Vec<Point> {
        self.points
    }
}

impl std::fmt::Display for LineString {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "LINESTRING ({} points)", self.points.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ls(coords: &[(f64, f64)]) -> LineString {
        LineString::new(coords.iter().map(|&(x, y)| Point::new(x, y)).collect()).unwrap()
    }

    #[test]
    fn rejects_fewer_than_two_points() {
        assert!(LineString::new(vec![]).is_err());
        assert!(LineString::new(vec![Point::new(0.0, 0.0)]).is_err());
        assert!(LineString::new(vec![Point::new(0.0, 0.0), Point::new(1.0, 1.0)]).is_ok());
    }

    #[test]
    fn rejects_non_finite_coordinates() {
        let e = LineString::new(vec![Point::new(0.0, 0.0), Point::new(f64::NAN, 1.0)]);
        assert!(matches!(e, Err(GeomError::Invalid(_))));
    }

    #[test]
    fn length_sums_segments() {
        let l = ls(&[(0.0, 0.0), (3.0, 4.0), (3.0, 8.0)]);
        assert_eq!(l.length(), 5.0 + 4.0);
    }

    #[test]
    fn segments_iterates_windows() {
        let l = ls(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0)]);
        let segs: Vec<_> = l.segments().collect();
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0], (Point::new(0.0, 0.0), Point::new(1.0, 0.0)));
        assert_eq!(segs[1], (Point::new(1.0, 0.0), Point::new(1.0, 1.0)));
    }

    #[test]
    fn closed_detection() {
        assert!(!ls(&[(0.0, 0.0), (1.0, 1.0)]).is_closed());
        assert!(ls(&[(0.0, 0.0), (1.0, 1.0), (0.0, 0.0)]).is_closed());
    }

    #[test]
    fn envelope_covers_all_vertices() {
        let l = ls(&[(0.0, 5.0), (-2.0, 1.0), (7.0, 3.0)]);
        assert_eq!(l.envelope(), Rect::new(-2.0, 1.0, 7.0, 5.0));
    }
}
