//! Polygon type with exterior shell and interior holes.

use crate::point::Point;
use crate::rect::Rect;
use crate::{GeomError, Result};

/// A closed ring of a polygon: a sequence of at least four points where the
/// first and last coincide (the WKT closing convention).
#[derive(Debug, Clone, PartialEq)]
pub struct Ring {
    points: Vec<Point>,
}

impl Ring {
    /// Creates a ring, validating closure and minimum size.
    pub fn new(mut points: Vec<Point>) -> Result<Self> {
        if let Some(p) = points.iter().find(|p| !p.is_finite()) {
            return Err(GeomError::Invalid(format!("non-finite coordinate {p}")));
        }
        // Tolerate unclosed input by closing it, as GEOS's WKT reader does
        // for common real-world data, but still require 3 distinct vertices.
        if points.first() != points.last() {
            if let Some(&first) = points.first() {
                points.push(first);
            }
        }
        if points.len() < 4 {
            return Err(GeomError::Invalid(format!(
                "polygon ring needs >= 4 points (closed), got {}",
                points.len()
            )));
        }
        Ok(Ring { points })
    }

    /// The closed vertex list (first == last).
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// Number of stored vertices, including the repeated closing vertex.
    #[inline]
    pub fn num_points(&self) -> usize {
        self.points.len()
    }

    /// Iterator over ring edges.
    pub fn segments(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        self.points.windows(2).map(|w| (w[0], w[1]))
    }

    /// Signed area by the shoelace formula: positive for counter-clockwise
    /// rings, negative for clockwise.
    pub fn signed_area(&self) -> f64 {
        let mut acc = 0.0;
        for (a, b) in self.segments() {
            acc += a.x * b.y - b.x * a.y;
        }
        acc * 0.5
    }

    /// `true` if the vertices wind counter-clockwise.
    pub fn is_ccw(&self) -> bool {
        self.signed_area() > 0.0
    }

    /// Minimum bounding rectangle of the ring.
    pub fn envelope(&self) -> Rect {
        Rect::from_points(&self.points)
    }

    /// Consumes the ring, returning its (closed) vertex vector. Lets
    /// scratch-buffer pools ([`crate::refkernel::RefineArena`]) reclaim
    /// the allocation instead of dropping it.
    #[inline]
    pub fn into_points(self) -> Vec<Point> {
        self.points
    }
}

/// A polygon: one exterior ring plus zero or more interior rings (holes).
///
/// Polygons are the dominant shape class in the paper's datasets ("All
/// Objects", "Lakes", "Cemetery") and the reason file partitioning is hard:
/// a single OSM polygon can exceed 100 K vertices / 11 MB of WKT.
#[derive(Debug, Clone, PartialEq)]
pub struct Polygon {
    exterior: Ring,
    interiors: Vec<Ring>,
}

impl Polygon {
    /// Creates a polygon from a validated exterior ring and holes.
    pub fn new(exterior: Ring, interiors: Vec<Ring>) -> Self {
        Polygon {
            exterior,
            interiors,
        }
    }

    /// Convenience constructor from raw coordinate vectors.
    pub fn from_coords(exterior: Vec<Point>, interiors: Vec<Vec<Point>>) -> Result<Self> {
        let ext = Ring::new(exterior)?;
        let ints = interiors
            .into_iter()
            .map(Ring::new)
            .collect::<Result<Vec<_>>>()?;
        Ok(Polygon::new(ext, ints))
    }

    /// The exterior shell.
    #[inline]
    pub fn exterior(&self) -> &Ring {
        &self.exterior
    }

    /// The interior holes.
    #[inline]
    pub fn interiors(&self) -> &[Ring] {
        &self.interiors
    }

    /// Total vertex count across all rings (the paper's per-geometry work
    /// measure for parsing and refine costs).
    pub fn num_points(&self) -> usize {
        self.exterior.num_points() + self.interiors.iter().map(Ring::num_points).sum::<usize>()
    }

    /// Area of the shell minus the holes (absolute value).
    pub fn area(&self) -> f64 {
        let shell = self.exterior.signed_area().abs();
        let holes: f64 = self.interiors.iter().map(|r| r.signed_area().abs()).sum();
        (shell - holes).max(0.0)
    }

    /// Minimum bounding rectangle (holes cannot extend it).
    pub fn envelope(&self) -> Rect {
        self.exterior.envelope()
    }

    /// Iterator over every edge of every ring.
    pub fn all_segments(&self) -> impl Iterator<Item = (Point, Point)> + '_ {
        self.exterior
            .segments()
            .chain(self.interiors.iter().flat_map(|r| r.segments()))
    }

    /// Consumes the polygon, returning the exterior shell and the holes —
    /// the disassembly counterpart of [`Polygon::new`], used by buffer
    /// pools to reclaim the ring allocations.
    #[inline]
    pub fn into_rings(self) -> (Ring, Vec<Ring>) {
        (self.exterior, self.interiors)
    }
}

impl std::fmt::Display for Polygon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "POLYGON ({} rings, {} points)",
            1 + self.interiors.len(),
            self.num_points()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    /// Unit square, counter-clockwise, closed.
    fn unit_square() -> Polygon {
        Polygon::from_coords(
            pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.0, 0.0)]),
            vec![],
        )
        .unwrap()
    }

    #[test]
    fn ring_rejects_too_few_points() {
        assert!(Ring::new(pts(&[(0.0, 0.0), (1.0, 0.0)])).is_err());
        assert!(Ring::new(pts(&[])).is_err());
    }

    #[test]
    fn ring_auto_closes_open_input() {
        let r = Ring::new(pts(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)])).unwrap();
        assert_eq!(r.num_points(), 4);
        assert_eq!(r.points().first(), r.points().last());
    }

    #[test]
    fn signed_area_sign_tracks_winding() {
        let ccw = Ring::new(pts(&[
            (0.0, 0.0),
            (1.0, 0.0),
            (1.0, 1.0),
            (0.0, 1.0),
            (0.0, 0.0),
        ]))
        .unwrap();
        assert!(ccw.is_ccw());
        assert_eq!(ccw.signed_area(), 1.0);
        let cw = Ring::new(pts(&[
            (0.0, 0.0),
            (0.0, 1.0),
            (1.0, 1.0),
            (1.0, 0.0),
            (0.0, 0.0),
        ]))
        .unwrap();
        assert!(!cw.is_ccw());
        assert_eq!(cw.signed_area(), -1.0);
    }

    #[test]
    fn polygon_area_subtracts_holes() {
        let hole = pts(&[
            (0.25, 0.25),
            (0.75, 0.25),
            (0.75, 0.75),
            (0.25, 0.75),
            (0.25, 0.25),
        ]);
        let p = Polygon::from_coords(
            pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.0, 0.0)]),
            vec![hole],
        )
        .unwrap();
        assert!((p.area() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn envelope_is_shell_envelope() {
        let p = unit_square();
        assert_eq!(p.envelope(), Rect::new(0.0, 0.0, 1.0, 1.0));
    }

    #[test]
    fn num_points_counts_all_rings() {
        let hole = pts(&[(0.25, 0.25), (0.75, 0.25), (0.5, 0.75), (0.25, 0.25)]);
        let p = Polygon::from_coords(
            pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.0, 0.0)]),
            vec![hole],
        )
        .unwrap();
        assert_eq!(p.num_points(), 5 + 4);
        assert_eq!(p.all_segments().count(), 4 + 3);
    }

    #[test]
    fn triangle_area() {
        let p = Polygon::from_coords(
            pts(&[(30.0, 10.0), (40.0, 40.0), (20.0, 40.0), (30.0, 10.0)]),
            vec![],
        )
        .unwrap();
        // Base 20 (from x=20 to x=40 at y=40), height 30.
        assert_eq!(p.area(), 300.0);
    }
}
