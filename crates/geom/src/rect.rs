//! Axis-aligned minimum bounding rectangles (MBRs).

use crate::point::Point;

/// An axis-aligned rectangle, the paper's `MPI_RECT`: four contiguous
/// doubles `(min_x, min_y, max_x, max_y)`.
///
/// A rectangle with `min > max` on either axis is *empty*; [`Rect::EMPTY`]
/// is the canonical empty rectangle and the identity of [`Rect::union`],
/// which makes `MPI_UNION` reductions well-defined for ranks that hold no
/// geometry.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C)]
pub struct Rect {
    pub min_x: f64,
    pub min_y: f64,
    pub max_x: f64,
    pub max_y: f64,
}

impl Rect {
    /// The empty rectangle: identity element for [`Rect::union`].
    pub const EMPTY: Rect = Rect {
        min_x: f64::INFINITY,
        min_y: f64::INFINITY,
        max_x: f64::NEG_INFINITY,
        max_y: f64::NEG_INFINITY,
    };

    /// Creates a rectangle from corner coordinates. Does not normalize;
    /// use [`Rect::from_corners`] if the corners may be swapped.
    #[inline]
    pub const fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// Creates a normalized rectangle from two arbitrary opposite corners.
    #[inline]
    pub fn from_corners(a: Point, b: Point) -> Self {
        Rect {
            min_x: a.x.min(b.x),
            min_y: a.y.min(b.y),
            max_x: a.x.max(b.x),
            max_y: a.y.max(b.y),
        }
    }

    /// Smallest rectangle covering every point in `pts`; [`Rect::EMPTY`] if
    /// `pts` is empty.
    pub fn from_points(pts: &[Point]) -> Self {
        let mut r = Rect::EMPTY;
        for p in pts {
            r.expand_point(p);
        }
        r
    }

    /// `true` when the rectangle covers no area and no point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min_x > self.max_x || self.min_y > self.max_y
    }

    /// Width (0 for empty rectangles).
    #[inline]
    pub fn width(&self) -> f64 {
        (self.max_x - self.min_x).max(0.0)
    }

    /// Height (0 for empty rectangles).
    #[inline]
    pub fn height(&self) -> f64 {
        (self.max_y - self.min_y).max(0.0)
    }

    /// Area (0 for empty rectangles).
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half-perimeter, the size measure the paper's `MPI_MIN`/`MPI_MAX`
    /// reductions compare rectangles by.
    #[inline]
    pub fn half_perimeter(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// Center point of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min_x + self.max_x) * 0.5,
            (self.min_y + self.max_y) * 0.5,
        )
    }

    /// Bottom-left corner.
    #[inline]
    pub fn lo(&self) -> Point {
        Point::new(self.min_x, self.min_y)
    }

    /// Top-right corner.
    #[inline]
    pub fn hi(&self) -> Point {
        Point::new(self.max_x, self.max_y)
    }

    /// Closed-boundary intersection test: rectangles that merely touch
    /// edges intersect, matching the OGC `intersects` predicate the filter
    /// phase approximates.
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        !(self.is_empty()
            || other.is_empty()
            || self.min_x > other.max_x
            || other.min_x > self.max_x
            || self.min_y > other.max_y
            || other.min_y > self.max_y)
    }

    /// `true` when `other` lies entirely inside `self` (boundary included).
    #[inline]
    pub fn contains(&self, other: &Rect) -> bool {
        !self.is_empty()
            && !other.is_empty()
            && self.min_x <= other.min_x
            && self.max_x >= other.max_x
            && self.min_y <= other.min_y
            && self.max_y >= other.max_y
    }

    /// `true` when the point is inside or on the boundary.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        !self.is_empty()
            && p.x >= self.min_x
            && p.x <= self.max_x
            && p.y >= self.min_y
            && p.y <= self.max_y
    }

    /// Geometric union: the smallest rectangle covering both inputs.
    ///
    /// This is the semantics of the paper's new `MPI_UNION` reduction
    /// operator, used to derive global grid dimensions from per-rank local
    /// MBRs. It is associative and commutative with [`Rect::EMPTY`] as the
    /// identity.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        if self.is_empty() {
            return *other;
        }
        if other.is_empty() {
            return *self;
        }
        Rect {
            min_x: self.min_x.min(other.min_x),
            min_y: self.min_y.min(other.min_y),
            max_x: self.max_x.max(other.max_x),
            max_y: self.max_y.max(other.max_y),
        }
    }

    /// Intersection rectangle; empty if the inputs do not intersect.
    #[inline]
    pub fn intersection(&self, other: &Rect) -> Rect {
        if !self.intersects(other) {
            return Rect::EMPTY;
        }
        Rect {
            min_x: self.min_x.max(other.min_x),
            min_y: self.min_y.max(other.min_y),
            max_x: self.max_x.min(other.max_x),
            max_y: self.max_y.min(other.max_y),
        }
    }

    /// Grows the rectangle in place to cover `p`.
    #[inline]
    pub fn expand_point(&mut self, p: &Point) {
        self.min_x = self.min_x.min(p.x);
        self.min_y = self.min_y.min(p.y);
        self.max_x = self.max_x.max(p.x);
        self.max_y = self.max_y.max(p.y);
    }

    /// Grows the rectangle in place to cover `other`.
    #[inline]
    pub fn expand_rect(&mut self, other: &Rect) {
        *self = self.union(other);
    }

    /// Returns the rectangle enlarged by `margin` on every side.
    #[inline]
    pub fn buffered(&self, margin: f64) -> Rect {
        if self.is_empty() {
            return *self;
        }
        Rect {
            min_x: self.min_x - margin,
            min_y: self.min_y - margin,
            max_x: self.max_x + margin,
            max_y: self.max_y + margin,
        }
    }

    /// Serializes to the 4-double array used by the `MPI_RECT` datatype.
    #[inline]
    pub fn to_array(&self) -> [f64; 4] {
        [self.min_x, self.min_y, self.max_x, self.max_y]
    }

    /// Deserializes from the 4-double `MPI_RECT` wire layout.
    #[inline]
    pub fn from_array(a: [f64; 4]) -> Rect {
        Rect::new(a[0], a[1], a[2], a[3])
    }
}

impl Default for Rect {
    fn default() -> Self {
        Rect::EMPTY
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            write!(f, "RECT EMPTY")
        } else {
            write!(
                f,
                "RECT ({} {}, {} {})",
                self.min_x, self.min_y, self.max_x, self.max_y
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_layout_is_four_doubles() {
        // MPI_RECT is "a contiguous type of 4 doubles" (paper §4.2.1).
        assert_eq!(std::mem::size_of::<Rect>(), 32);
    }

    #[test]
    fn empty_is_identity_for_union() {
        let r = Rect::new(1.0, 2.0, 3.0, 4.0);
        assert_eq!(Rect::EMPTY.union(&r), r);
        assert_eq!(r.union(&Rect::EMPTY), r);
        assert!(Rect::EMPTY.union(&Rect::EMPTY).is_empty());
    }

    #[test]
    fn union_covers_both_inputs() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert!(u.contains(&a));
        assert!(u.contains(&b));
        assert_eq!(u, Rect::new(0.0, -1.0, 3.0, 1.0));
    }

    #[test]
    fn touching_rects_intersect() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(1.0, 0.0, 2.0, 1.0); // shares the x = 1 edge
        assert!(a.intersects(&b));
        let c = Rect::new(1.0 + f64::EPSILON * 4.0, 0.0, 2.0, 1.0);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn disjoint_rects_do_not_intersect() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        let b = Rect::new(5.0, 5.0, 6.0, 6.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_empty());
    }

    #[test]
    fn intersection_is_commutative_and_contained() {
        let a = Rect::new(0.0, 0.0, 2.0, 2.0);
        let b = Rect::new(1.0, 1.0, 3.0, 3.0);
        let i = a.intersection(&b);
        assert_eq!(i, b.intersection(&a));
        assert_eq!(i, Rect::new(1.0, 1.0, 2.0, 2.0));
        assert!(a.contains(&i) && b.contains(&i));
    }

    #[test]
    fn empty_rect_never_intersects_or_contains() {
        let a = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert!(!Rect::EMPTY.intersects(&a));
        assert!(!a.intersects(&Rect::EMPTY));
        assert!(!Rect::EMPTY.contains(&a));
        assert!(!Rect::EMPTY.contains_point(&Point::new(0.0, 0.0)));
        assert_eq!(Rect::EMPTY.area(), 0.0);
    }

    #[test]
    fn from_points_covers_all_inputs() {
        let pts = [
            Point::new(3.0, -1.0),
            Point::new(-2.0, 5.0),
            Point::new(0.0, 0.0),
        ];
        let r = Rect::from_points(&pts);
        assert_eq!(r, Rect::new(-2.0, -1.0, 3.0, 5.0));
        for p in &pts {
            assert!(r.contains_point(p));
        }
    }

    #[test]
    fn from_corners_normalizes() {
        let r = Rect::from_corners(Point::new(3.0, 1.0), Point::new(0.0, 4.0));
        assert_eq!(r, Rect::new(0.0, 1.0, 3.0, 4.0));
    }

    #[test]
    fn measures() {
        let r = Rect::new(0.0, 0.0, 3.0, 4.0);
        assert_eq!(r.width(), 3.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 12.0);
        assert_eq!(r.half_perimeter(), 7.0);
        assert_eq!(r.center(), Point::new(1.5, 2.0));
    }

    #[test]
    fn array_round_trip() {
        let r = Rect::new(-1.0, -2.0, 3.5, 4.25);
        assert_eq!(Rect::from_array(r.to_array()), r);
    }

    #[test]
    fn buffered_grows_every_side() {
        let r = Rect::new(0.0, 0.0, 1.0, 1.0).buffered(0.5);
        assert_eq!(r, Rect::new(-0.5, -0.5, 1.5, 1.5));
        assert!(Rect::EMPTY.buffered(1.0).is_empty());
    }
}
