//! The unified [`Geometry`] enum dispatching over all OGC shape classes.

use crate::linestring::LineString;
use crate::multi::{GeometryCollection, MultiLineString, MultiPoint, MultiPolygon};
use crate::point::Point;
use crate::polygon::Polygon;
use crate::rect::Rect;

/// Discriminant of a [`Geometry`], matching the OGC Simple Features type
/// codes used by WKB (1 = Point, 2 = LineString, ...).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GeometryType {
    Point = 1,
    LineString = 2,
    Polygon = 3,
    MultiPoint = 4,
    MultiLineString = 5,
    MultiPolygon = 6,
    GeometryCollection = 7,
}

impl GeometryType {
    /// WKB type code.
    pub fn code(self) -> u32 {
        self as u32
    }

    /// Inverse of [`GeometryType::code`].
    pub fn from_code(code: u32) -> Option<GeometryType> {
        Some(match code {
            1 => GeometryType::Point,
            2 => GeometryType::LineString,
            3 => GeometryType::Polygon,
            4 => GeometryType::MultiPoint,
            5 => GeometryType::MultiLineString,
            6 => GeometryType::MultiPolygon,
            7 => GeometryType::GeometryCollection,
            _ => return None,
        })
    }

    /// WKT keyword for this type.
    pub fn wkt_keyword(self) -> &'static str {
        match self {
            GeometryType::Point => "POINT",
            GeometryType::LineString => "LINESTRING",
            GeometryType::Polygon => "POLYGON",
            GeometryType::MultiPoint => "MULTIPOINT",
            GeometryType::MultiLineString => "MULTILINESTRING",
            GeometryType::MultiPolygon => "MULTIPOLYGON",
            GeometryType::GeometryCollection => "GEOMETRYCOLLECTION",
        }
    }
}

/// Any OGC simple-feature geometry.
///
/// This is the Rust analogue of GEOS's `Geometry` base class; MPI-Vector-IO
/// moves values of this type through file partitions, grid cells, and
/// all-to-all exchanges.
#[derive(Debug, Clone, PartialEq)]
pub enum Geometry {
    Point(Point),
    LineString(LineString),
    Polygon(Polygon),
    MultiPoint(MultiPoint),
    MultiLineString(MultiLineString),
    MultiPolygon(MultiPolygon),
    GeometryCollection(GeometryCollection),
}

impl Geometry {
    /// The shape class of this geometry.
    pub fn geometry_type(&self) -> GeometryType {
        match self {
            Geometry::Point(_) => GeometryType::Point,
            Geometry::LineString(_) => GeometryType::LineString,
            Geometry::Polygon(_) => GeometryType::Polygon,
            Geometry::MultiPoint(_) => GeometryType::MultiPoint,
            Geometry::MultiLineString(_) => GeometryType::MultiLineString,
            Geometry::MultiPolygon(_) => GeometryType::MultiPolygon,
            Geometry::GeometryCollection(_) => GeometryType::GeometryCollection,
        }
    }

    /// Minimum bounding rectangle — the approximation used by the filter
    /// phase of filter-and-refine.
    pub fn envelope(&self) -> Rect {
        match self {
            Geometry::Point(p) => p.envelope(),
            Geometry::LineString(l) => l.envelope(),
            Geometry::Polygon(p) => p.envelope(),
            Geometry::MultiPoint(m) => m.envelope(),
            Geometry::MultiLineString(m) => m.envelope(),
            Geometry::MultiPolygon(m) => m.envelope(),
            Geometry::GeometryCollection(c) => c.envelope(),
        }
    }

    /// Total vertex count; the paper's unit of parsing and refine work.
    pub fn num_points(&self) -> usize {
        match self {
            Geometry::Point(_) => 1,
            Geometry::LineString(l) => l.num_points(),
            Geometry::Polygon(p) => p.num_points(),
            Geometry::MultiPoint(m) => m.num_points(),
            Geometry::MultiLineString(m) => m.num_points(),
            Geometry::MultiPolygon(m) => m.num_points(),
            Geometry::GeometryCollection(c) => c.num_points(),
        }
    }

    /// `true` for the zero-area shape classes (points and lines).
    pub fn is_puntal_or_lineal(&self) -> bool {
        matches!(
            self,
            Geometry::Point(_)
                | Geometry::LineString(_)
                | Geometry::MultiPoint(_)
                | Geometry::MultiLineString(_)
        )
    }
}

impl From<Point> for Geometry {
    fn from(p: Point) -> Self {
        Geometry::Point(p)
    }
}
impl From<LineString> for Geometry {
    fn from(l: LineString) -> Self {
        Geometry::LineString(l)
    }
}
impl From<Polygon> for Geometry {
    fn from(p: Polygon) -> Self {
        Geometry::Polygon(p)
    }
}
impl From<MultiPoint> for Geometry {
    fn from(m: MultiPoint) -> Self {
        Geometry::MultiPoint(m)
    }
}
impl From<MultiLineString> for Geometry {
    fn from(m: MultiLineString) -> Self {
        Geometry::MultiLineString(m)
    }
}
impl From<MultiPolygon> for Geometry {
    fn from(m: MultiPolygon) -> Self {
        Geometry::MultiPolygon(m)
    }
}

impl std::fmt::Display for Geometry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} points)",
            self.geometry_type().wkt_keyword(),
            self.num_points()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_codes_round_trip() {
        for t in [
            GeometryType::Point,
            GeometryType::LineString,
            GeometryType::Polygon,
            GeometryType::MultiPoint,
            GeometryType::MultiLineString,
            GeometryType::MultiPolygon,
            GeometryType::GeometryCollection,
        ] {
            assert_eq!(GeometryType::from_code(t.code()), Some(t));
        }
        assert_eq!(GeometryType::from_code(0), None);
        assert_eq!(GeometryType::from_code(8), None);
    }

    #[test]
    fn dispatch_envelope_and_counts() {
        let g: Geometry = Point::new(1.0, 2.0).into();
        assert_eq!(g.geometry_type(), GeometryType::Point);
        assert_eq!(g.num_points(), 1);
        assert_eq!(g.envelope(), Rect::new(1.0, 2.0, 1.0, 2.0));
        assert!(g.is_puntal_or_lineal());
    }

    #[test]
    fn polygon_is_not_lineal() {
        let p = Polygon::from_coords(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(0.0, 1.0),
                Point::new(0.0, 0.0),
            ],
            vec![],
        )
        .unwrap();
        let g: Geometry = p.into();
        assert!(!g.is_puntal_or_lineal());
        assert_eq!(g.geometry_type().wkt_keyword(), "POLYGON");
    }
}
