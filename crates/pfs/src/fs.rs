//! The filesystem namespace: create/open/stat over [`SimFile`]s.

use crate::config::{FsConfig, FsKind, StripeSpec};
use crate::engine::TimingEngine;
use crate::file::SimFile;
use crate::stats::FsStats;
use crate::{PfsError, Result};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// A simulated parallel filesystem instance.
///
/// One `SimFs` corresponds to one mounted filesystem (e.g. COMET's Lustre
/// scratch). All ranks of a job share the same `Arc<SimFs>`; the embedded
/// [`TimingEngine`] provides the virtual-time contention model and
/// [`FsStats`] aggregate observability counters.
pub struct SimFs {
    cfg: FsConfig,
    engine: Arc<TimingEngine>,
    stats: Arc<FsStats>,
    files: Mutex<HashMap<String, Arc<SimFile>>>,
    next_ost_base: Mutex<u32>,
}

impl SimFs {
    /// Mounts a fresh filesystem with the given configuration.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`FsConfig::validate`]; use
    /// [`SimFs::try_new`] for a typed error instead (configs built from
    /// user input should go through that path).
    pub fn new(cfg: FsConfig) -> Arc<Self> {
        // audit: documented panicking constructor; `try_new` is the typed-error path.
        Self::try_new(cfg).expect("invalid filesystem configuration")
    }

    /// Fallible [`SimFs::new`]: validates the configuration first and
    /// returns the typed [`PfsError`] on rejection instead of panicking.
    pub fn try_new(cfg: FsConfig) -> Result<Arc<Self>> {
        cfg.validate()?;
        Ok(Arc::new(SimFs {
            cfg,
            engine: Arc::new(TimingEngine::new(cfg.perf, cfg.total_osts)),
            stats: Arc::new(FsStats::new(cfg.total_osts)),
            files: Mutex::new(HashMap::new()),
            next_ost_base: Mutex::new(0),
        }))
    }

    /// The mounted configuration.
    pub fn config(&self) -> &FsConfig {
        &self.cfg
    }

    /// The shared timing engine (exposed so the MPI-IO layer can time its
    /// two-phase exchanges consistently).
    pub fn engine(&self) -> &Arc<TimingEngine> {
        &self.engine
    }

    /// Aggregate I/O counters.
    pub fn stats(&self) -> &Arc<FsStats> {
        &self.stats
    }

    /// Creates a file. `stripe` is honoured on Lustre; on GPFS the
    /// filesystem-chosen default is always used (paper §5.1: users cannot
    /// change GPFS striping). Fails if the path exists.
    pub fn create(&self, path: &str, stripe: Option<StripeSpec>) -> Result<Arc<SimFile>> {
        let stripe = match (self.cfg.kind, stripe) {
            (FsKind::Lustre, Some(s)) => {
                s.validate(self.cfg.total_osts)?;
                s
            }
            (FsKind::Gpfs, _) | (FsKind::Lustre, None) => self.cfg.default_stripe,
        };
        let mut files = self.files.lock();
        if files.contains_key(path) {
            return Err(PfsError::AlreadyExists(path.to_string()));
        }
        let base = {
            let mut b = self.next_ost_base.lock();
            let base = *b;
            *b = (*b + stripe.count) % self.cfg.total_osts;
            base
        };
        let file = Arc::new(SimFile::new(
            path.to_string(),
            stripe,
            base,
            Arc::clone(&self.engine),
            Arc::clone(&self.stats),
        ));
        files.insert(path.to_string(), Arc::clone(&file));
        Ok(file)
    }

    /// Opens an existing file.
    pub fn open(&self, path: &str) -> Result<Arc<SimFile>> {
        self.files
            .lock()
            .get(path)
            .cloned()
            .ok_or_else(|| PfsError::NotFound(path.to_string()))
    }

    /// Removes a file from the namespace. Outstanding `Arc`s stay usable.
    pub fn remove(&self, path: &str) -> Result<()> {
        self.files
            .lock()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| PfsError::NotFound(path.to_string()))
    }

    /// Lists all paths, sorted.
    pub fn list(&self) -> Vec<String> {
        let mut v: Vec<String> = self.files.lock().keys().cloned().collect();
        v.sort();
        v
    }

    /// Declares the job's rank count for the contention model; forwarded
    /// to the timing engine.
    pub fn set_active_ranks(&self, ranks: usize) {
        self.engine.set_active_ranks(ranks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_new_rejects_invalid_configs_with_typed_errors() {
        let mut cfg = FsConfig::test_tiny();
        cfg.total_osts = 0;
        assert!(matches!(SimFs::try_new(cfg), Err(PfsError::BadConfig(_))));
        let mut cfg = FsConfig::test_tiny();
        cfg.default_stripe = StripeSpec { count: 2, size: 0 };
        assert!(matches!(SimFs::try_new(cfg), Err(PfsError::BadStripe(_))));
        assert!(SimFs::try_new(FsConfig::test_tiny()).is_ok());
    }

    #[test]
    fn create_open_remove_lifecycle() {
        let fs = SimFs::new(FsConfig::test_tiny());
        assert!(fs.open("x").is_err());
        let f = fs.create("x", None).unwrap();
        assert_eq!(f.stripe(), fs.config().default_stripe);
        assert!(fs.create("x", None).is_err());
        assert!(fs.open("x").is_ok());
        assert_eq!(fs.list(), vec!["x".to_string()]);
        fs.remove("x").unwrap();
        assert!(fs.open("x").is_err());
        assert!(fs.remove("x").is_err());
    }

    #[test]
    fn lustre_honours_stripe_spec() {
        let fs = SimFs::new(FsConfig::lustre_comet());
        let f = fs
            .create("striped", Some(StripeSpec::new(64, 32 << 20)))
            .unwrap();
        assert_eq!(f.stripe().count, 64);
        assert_eq!(f.stripe().size, 32 << 20);
    }

    #[test]
    fn lustre_rejects_oversize_stripe_count() {
        let fs = SimFs::new(FsConfig::lustre_comet());
        assert!(matches!(
            fs.create("bad", Some(StripeSpec::new(97, 1 << 20))),
            Err(PfsError::BadStripe(_))
        ));
    }

    #[test]
    fn gpfs_ignores_user_striping() {
        let fs = SimFs::new(FsConfig::gpfs_roger());
        let f = fs.create("g", Some(StripeSpec::new(2, 4096))).unwrap();
        assert_eq!(f.stripe(), fs.config().default_stripe);
    }

    #[test]
    fn ost_base_advances_per_file() {
        let fs = SimFs::new(FsConfig::test_tiny());
        let a = fs.create("a", Some(StripeSpec::new(2, 1024))).unwrap();
        let b = fs.create("b", Some(StripeSpec::new(2, 1024))).unwrap();
        assert_ne!(a.ost_base(), b.ost_base());
    }
}
