//! The virtual-time I/O engine: OST FIFO servers plus per-node client
//! throughput queues.

use crate::config::{PerfModel, StripeSpec};
use crate::layout;
use parking_lot::Mutex;

/// Per-operation client context: who is reading, from which node, at what
/// virtual time, and how many ranks are active in the job (the contention
/// population).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoCtx {
    /// Client node index (ranks on the same node share its link queue).
    pub node: usize,
    /// The caller's virtual clock at the moment the operation starts.
    pub now: f64,
    /// Total client nodes participating in the job (used by personality
    /// checks; 1 for serial use).
    pub world_nodes: usize,
}

impl IoCtx {
    /// Context for single-process use (tests, dataset generation).
    pub fn serial(now: f64) -> Self {
        IoCtx {
            node: 0,
            now,
            world_nodes: 1,
        }
    }
}

/// A fully-described I/O request, used by the deterministic batch path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoRequest {
    /// Issuing rank (tie-break for deterministic ordering).
    pub rank: usize,
    /// Client node of the issuing rank.
    pub node: usize,
    /// Virtual time at which the rank issues the request.
    pub now: f64,
    /// File offset in bytes.
    pub offset: u64,
    /// Request length in bytes.
    pub len: u64,
}

/// Outcome of a timed I/O: when it completes in virtual time and how many
/// bytes moved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IoCompletion {
    /// Virtual time at which the last byte is delivered to the client.
    pub completion: f64,
    /// Bytes transferred.
    pub bytes: u64,
}

impl IoCompletion {
    /// Duration relative to a start time.
    pub fn duration_from(&self, start: f64) -> f64 {
        (self.completion - start).max(0.0)
    }
}

/// A single-resource server in virtual time, scheduled with **backfill**:
/// a request may occupy any idle gap at or after its arrival, not just the
/// tail of the queue. This keeps the schedule work-conserving and (nearly)
/// independent of the *wall-clock* order in which racing rank threads
/// reach the engine — without it, a virtually-early request arriving late
/// in real time would be pushed behind virtually-later ones, inflating
/// simulated times nondeterministically.
#[derive(Debug, Default, Clone)]
struct Server {
    /// Sorted, non-overlapping busy intervals `(start, end)`.
    intervals: Vec<(f64, f64)>,
}

impl Server {
    /// Schedules `service` seconds at or after `now`; returns completion.
    fn schedule(&mut self, now: f64, service: f64) -> f64 {
        if service <= 0.0 {
            return now;
        }
        let mut t = now;
        let mut idx = self.intervals.len();
        for (i, &(s, e)) in self.intervals.iter().enumerate() {
            if e <= t {
                continue; // fully in the past relative to t
            }
            if s >= t + service {
                idx = i; // gap before interval i fits
                break;
            }
            // Overlap: push t past this busy interval.
            t = e;
        }
        self.intervals.insert(idx, (t, t + service));
        t + service
    }
}

struct EngineState {
    /// One server per OST.
    osts: Vec<Server>,
    /// One server per client node's link (grown on demand).
    nodes: Vec<Server>,
    /// Number of distinct ranks observed — the contention population used
    /// for the sharing penalty.
    active_ranks: usize,
}

/// Shared timing engine of one simulated filesystem.
///
/// All methods advance *virtual* time only; no wall-clock sleeping happens
/// anywhere in the simulator.
pub struct TimingEngine {
    perf: PerfModel,
    total_osts: u32,
    state: Mutex<EngineState>,
}

impl TimingEngine {
    /// Creates an engine with all servers free at virtual time 0.
    pub fn new(perf: PerfModel, total_osts: u32) -> Self {
        TimingEngine {
            perf,
            total_osts,
            state: Mutex::new(EngineState {
                osts: vec![Server::default(); total_osts as usize],
                nodes: Vec::new(),
                active_ranks: 1,
            }),
        }
    }

    /// Declares the contention population (called by the runtime when a job
    /// starts). Affects only the sharing penalty, never correctness.
    pub fn set_active_ranks(&self, ranks: usize) {
        self.state.lock().active_ranks = ranks.max(1);
    }

    /// Service-time inflation once clients outnumber the file's OSTs.
    fn sharing_factor(&self, stripe_count: u32, active_ranks: usize) -> f64 {
        let per_ost = active_ranks as f64 / stripe_count.max(1) as f64;
        1.0 + self.perf.sharing_overhead * (per_ost - 1.0).max(0.0)
    }

    /// Times one request. Chunks queue FIFO on their OSTs; the whole
    /// transfer also flows through the issuing node's client queue; the
    /// request completes when both sides have finished.
    pub fn io(
        &self,
        stripe: StripeSpec,
        ost_base: u32,
        node: usize,
        now: f64,
        offset: u64,
        len: u64,
    ) -> IoCompletion {
        let mut st = self.state.lock();
        let active = st.active_ranks;
        self.io_locked(&mut st, stripe, ost_base, node, now, offset, len, active)
    }

    /// Deterministic batch path: requests are processed in `(now, rank)`
    /// order under a single lock, so collective operations produce
    /// identical virtual timings on every run regardless of thread
    /// interleaving.
    ///
    /// Requests from the *same rank* chain: a rank (e.g. a two-phase
    /// aggregator working through its `cb_buffer_size` cycles) issues its
    /// next request only after the previous one completes — which is why
    /// the number of aggregators matters for collective I/O performance.
    pub fn io_batch(
        &self,
        stripe: StripeSpec,
        ost_base: u32,
        reqs: &[IoRequest],
    ) -> Vec<IoCompletion> {
        let mut order: Vec<usize> = (0..reqs.len()).collect();
        order.sort_by(|&a, &b| {
            reqs[a]
                .now
                .partial_cmp(&reqs[b].now)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(reqs[a].rank.cmp(&reqs[b].rank))
        });
        let mut out = vec![
            IoCompletion {
                completion: 0.0,
                bytes: 0
            };
            reqs.len()
        ];
        let mut last_by_rank: std::collections::HashMap<usize, f64> =
            std::collections::HashMap::new();
        let mut st = self.state.lock();
        let active = st.active_ranks;
        for idx in order {
            let r = &reqs[idx];
            let chained_now = last_by_rank
                .get(&r.rank)
                .copied()
                .unwrap_or(r.now)
                .max(r.now);
            let done = self.io_locked(
                &mut st,
                stripe,
                ost_base,
                r.node,
                chained_now,
                r.offset,
                r.len,
                active,
            );
            last_by_rank.insert(r.rank, done.completion);
            out[idx] = done;
        }
        out
    }

    #[allow(clippy::too_many_arguments)]
    fn io_locked(
        &self,
        st: &mut EngineState,
        stripe: StripeSpec,
        ost_base: u32,
        node: usize,
        now: f64,
        offset: u64,
        len: u64,
        active_ranks: usize,
    ) -> IoCompletion {
        if len == 0 {
            return IoCompletion {
                completion: now,
                bytes: 0,
            };
        }
        let factor = self.sharing_factor(stripe.count, active_ranks);

        // Server side: each chunk occupies backfill-scheduled time on its
        // OST; chunks sharing an OST serialize, distinct OSTs overlap.
        let mut server_done = now;
        for chunk in layout::chunks_of(stripe, offset, len) {
            let g = ((ost_base + chunk.ost) % self.total_osts) as usize;
            let service =
                (self.perf.request_latency + chunk.len as f64 / self.perf.ost_bandwidth) * factor;
            let done = st.osts[g].schedule(now, service);
            server_done = server_done.max(done);
        }

        // Client side: the node's effective throughput bounds how fast the
        // bytes can be absorbed, shared among the node's ranks.
        if st.nodes.len() <= node {
            st.nodes.resize(node + 1, Server::default());
        }
        let link_service = len as f64 / self.perf.node_bandwidth();
        let link_done = st.nodes[node].schedule(now, link_service);

        IoCompletion {
            completion: server_done.max(link_done),
            bytes: len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FsConfig;

    fn engine() -> TimingEngine {
        let cfg = FsConfig::test_tiny();
        TimingEngine::new(cfg.perf, cfg.total_osts)
    }

    #[test]
    fn zero_length_takes_no_time() {
        let e = engine();
        let done = e.io(StripeSpec::new(2, 1024), 0, 0, 5.0, 0, 0);
        assert_eq!(done.completion, 5.0);
        assert_eq!(done.bytes, 0);
    }

    #[test]
    fn single_chunk_cost_is_latency_plus_transfer() {
        let e = engine();
        // 1024 bytes at 1 MB/s = 1.024 ms, plus 1 ms latency.
        let done = e.io(StripeSpec::new(2, 1024), 0, 0, 0.0, 0, 1024);
        let expect = 0.001 + 1024.0 / 1_000_000.0;
        assert!(
            (done.completion - expect).abs() < 1e-12,
            "{}",
            done.completion
        );
    }

    #[test]
    fn chunks_on_distinct_osts_run_in_parallel() {
        let e = engine();
        // 2048 bytes over stripes 0 and 1 -> two OSTs, concurrent service.
        let done = e.io(StripeSpec::new(2, 1024), 0, 0, 0.0, 0, 2048);
        let per_chunk = 0.001 + 1024.0 / 1_000_000.0;
        assert!(
            (done.completion - per_chunk).abs() < 1e-9,
            "{}",
            done.completion
        );
    }

    #[test]
    fn chunks_on_same_ost_serialize() {
        let e = engine();
        // stripe count 1: both 1024-byte chunks hit OST 0 back-to-back.
        let done = e.io(StripeSpec::new(1, 1024), 0, 0, 0.0, 0, 2048);
        let per_chunk = 0.001 + 1024.0 / 1_000_000.0;
        assert!(
            (done.completion - 2.0 * per_chunk).abs() < 1e-9,
            "{}",
            done.completion
        );
    }

    #[test]
    fn successive_requests_queue_on_the_ost() {
        let e = engine();
        let s = StripeSpec::new(1, 1024);
        let d1 = e.io(s, 0, 0, 0.0, 0, 1024);
        // Second client at a different node arrives at t=0 but the OST is
        // busy until d1.
        let d2 = e.io(s, 0, 1, 0.0, 0, 1024);
        assert!(d2.completion > d1.completion);
    }

    #[test]
    fn node_queue_shares_among_ranks_of_a_node() {
        let cfg = FsConfig::test_tiny();
        // Make the client side the bottleneck: node bandwidth 0.5 MB/s.
        let perf = PerfModel {
            client_bandwidth: 500_000.0,
            ..cfg.perf
        };
        let e = TimingEngine::new(perf, cfg.total_osts);
        let s = StripeSpec::new(4, 1024);
        // Two ranks on node 0 read distinct stripes (different OSTs), so
        // the server side is parallel but the node link serializes.
        let d1 = e.io(s, 0, 0, 0.0, 0, 1024);
        let d2 = e.io(s, 0, 0, 0.0, 1024, 1024);
        let link = 1024.0 / 500_000.0;
        assert!((d1.completion - link).abs() < 1e-9);
        assert!((d2.completion - 2.0 * link).abs() < 1e-9);
    }

    #[test]
    fn batch_is_deterministic_under_permutation() {
        let mk = || {
            let e = engine();
            e.set_active_ranks(4);
            e
        };
        let reqs: Vec<IoRequest> = (0..4)
            .map(|r| IoRequest {
                rank: r,
                node: r / 2,
                now: 0.0,
                offset: r as u64 * 1024,
                len: 1024,
            })
            .collect();
        let s = StripeSpec::new(2, 1024);
        let a = mk().io_batch(s, 0, &reqs);
        let mut rev = reqs.clone();
        rev.reverse();
        let mut b = mk().io_batch(s, 0, &rev);
        b.reverse();
        assert_eq!(a, b);
    }

    #[test]
    fn sharing_penalty_kicks_in_past_one_client_per_ost() {
        let cfg = FsConfig::lustre_comet();
        let e = TimingEngine::new(cfg.perf, cfg.total_osts);
        let s = StripeSpec::new(4, 1 << 20);
        let base = e.io(s, 0, 0, 0.0, 0, 1 << 20).completion;

        let e2 = TimingEngine::new(cfg.perf, cfg.total_osts);
        e2.set_active_ranks(64); // 16 ranks per OST
        let shared = e2.io(s, 0, 0, 0.0, 0, 1 << 20).completion;
        assert!(shared > base, "sharing {shared} vs base {base}");
    }

    #[test]
    fn ost_base_rotates_placement() {
        let e = engine();
        let s = StripeSpec::new(1, 1024);
        // Same offsets, different ost_base -> land on different OSTs, so no
        // queueing between the two requests.
        let d1 = e.io(s, 0, 0, 0.0, 0, 1024);
        let d2 = e.io(s, 1, 1, 0.0, 0, 1024);
        assert_eq!(d1.completion, d2.completion);
    }
}
