//! Simulated files: real bytes plus timed access.

use crate::config::StripeSpec;
use crate::engine::{IoCompletion, IoCtx, IoRequest, TimingEngine};
use crate::stats::FsStats;
use crate::{PfsError, Result};
use parking_lot::RwLock;
use std::sync::Arc;

/// A file in the simulated filesystem.
///
/// Contents are held in memory; reads copy real bytes out, so the library
/// above operates on genuine data while the [`TimingEngine`] accounts
/// virtual time. Files are created via [`crate::SimFs::create`] and shared
/// by `Arc` across ranks.
pub struct SimFile {
    path: String,
    stripe: StripeSpec,
    /// First OST of this file's stripe set (Lustre allocates a starting
    /// OST per file; we derive it from a counter so files spread out).
    ost_base: u32,
    data: RwLock<Vec<u8>>,
    engine: Arc<TimingEngine>,
    stats: Arc<FsStats>,
}

impl SimFile {
    pub(crate) fn new(
        path: String,
        stripe: StripeSpec,
        ost_base: u32,
        engine: Arc<TimingEngine>,
        stats: Arc<FsStats>,
    ) -> Self {
        SimFile {
            path,
            stripe,
            ost_base,
            data: RwLock::new(Vec::new()),
            engine,
            stats,
        }
    }

    /// Path within the namespace.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// The file's stripe settings.
    pub fn stripe(&self) -> StripeSpec {
        self.stripe
    }

    /// First OST of the stripe set.
    pub fn ost_base(&self) -> u32 {
        self.ost_base
    }

    /// Current length in bytes.
    pub fn len(&self) -> u64 {
        self.data.read().len() as u64
    }

    /// `true` when the file holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.data.read().is_empty()
    }

    /// Appends bytes without timing — the "the data was already on the
    /// filesystem" path used by dataset generation and test setup.
    pub fn append(&self, bytes: impl AsRef<[u8]>) {
        self.data.write().extend_from_slice(bytes.as_ref());
    }

    /// Replaces the whole contents without timing.
    pub fn set_contents(&self, bytes: Vec<u8>) {
        *self.data.write() = bytes;
    }

    /// Timed read of `buf.len()` bytes at `offset`. Short reads at EOF are
    /// allowed (mirrors POSIX/MPI-IO semantics): the returned completion
    /// carries the byte count actually read.
    pub fn read_at(&self, offset: u64, buf: &mut [u8], ctx: &IoCtx) -> Result<IoCompletion> {
        let data = self.data.read();
        let file_len = data.len() as u64;
        if offset > file_len {
            return Err(PfsError::InvalidRange {
                offset,
                len: buf.len() as u64,
                file_len,
            });
        }
        let n = ((file_len - offset) as usize).min(buf.len());
        buf[..n].copy_from_slice(&data[offset as usize..offset as usize + n]);
        drop(data);

        let done = self.engine.io(
            self.stripe,
            self.ost_base,
            ctx.node,
            ctx.now,
            offset,
            n as u64,
        );
        self.stats.record_read(
            n as u64,
            crate::layout::is_stripe_aligned(self.stripe, offset),
            &crate::layout::chunks_of(self.stripe, offset, n as u64),
        );
        Ok(done)
    }

    /// Timed write of `buf` at `offset`, extending the file if needed.
    pub fn write_at(&self, offset: u64, buf: &[u8], ctx: &IoCtx) -> Result<IoCompletion> {
        {
            let mut data = self.data.write();
            let end = offset as usize + buf.len();
            if data.len() < end {
                data.resize(end, 0);
            }
            data[offset as usize..end].copy_from_slice(buf);
        }
        let done = self.engine.io(
            self.stripe,
            self.ost_base,
            ctx.node,
            ctx.now,
            offset,
            buf.len() as u64,
        );
        self.stats.record_write(
            buf.len() as u64,
            crate::layout::is_stripe_aligned(self.stripe, offset),
            &crate::layout::chunks_of(self.stripe, offset, buf.len() as u64),
        );
        Ok(done)
    }

    /// Deterministic timed batch read used by collective I/O: all requests
    /// are timed in `(now, rank)` order under one lock, and the data for
    /// each is copied out. Returns one completion per request, index
    /// aligned. Requests beyond EOF are clamped like [`SimFile::read_at`].
    pub fn read_batch(
        &self,
        reqs: &[IoRequest],
        bufs: &mut [&mut [u8]],
    ) -> Result<Vec<IoCompletion>> {
        assert_eq!(reqs.len(), bufs.len(), "one buffer per request");
        let data = self.data.read();
        let file_len = data.len() as u64;
        let mut clamped = Vec::with_capacity(reqs.len());
        for (r, buf) in reqs.iter().zip(bufs.iter_mut()) {
            if r.offset > file_len {
                return Err(PfsError::InvalidRange {
                    offset: r.offset,
                    len: r.len,
                    file_len,
                });
            }
            let n = ((file_len - r.offset) as usize)
                .min(buf.len())
                .min(r.len as usize);
            buf[..n].copy_from_slice(&data[r.offset as usize..r.offset as usize + n]);
            clamped.push(IoRequest {
                len: n as u64,
                ..*r
            });
            self.stats.record_read(
                n as u64,
                crate::layout::is_stripe_aligned(self.stripe, r.offset),
                &crate::layout::chunks_of(self.stripe, r.offset, n as u64),
            );
        }
        drop(data);
        Ok(self.engine.io_batch(self.stripe, self.ost_base, &clamped))
    }

    /// Deterministic timed batch write used by collective I/O: the
    /// aggregators' contiguous stripe flushes. The bytes are placed
    /// first (extending the file as needed), then every request is timed
    /// in `(now, rank)` order under one engine lock, exactly like
    /// [`SimFile::read_batch`] — requests from the same rank chain, which
    /// is what makes the aggregator count matter. `bufs[i]` supplies the
    /// data of `reqs[i]` and must be `reqs[i].len` bytes long.
    pub fn write_batch(&self, reqs: &[IoRequest], bufs: &[&[u8]]) -> Result<Vec<IoCompletion>> {
        assert_eq!(reqs.len(), bufs.len(), "one buffer per request");
        {
            let mut data = self.data.write();
            for (r, buf) in reqs.iter().zip(bufs.iter()) {
                assert_eq!(r.len, buf.len() as u64, "request length must match buffer");
                let end = r.offset as usize + buf.len();
                if data.len() < end {
                    data.resize(end, 0);
                }
                data[r.offset as usize..end].copy_from_slice(buf);
            }
        }
        for r in reqs {
            self.stats.record_write(
                r.len,
                crate::layout::is_stripe_aligned(self.stripe, r.offset),
                &crate::layout::chunks_of(self.stripe, r.offset, r.len),
            );
        }
        Ok(self.engine.io_batch(self.stripe, self.ost_base, reqs))
    }

    /// Untimed whole-file snapshot (diagnostics and tests).
    pub fn snapshot(&self) -> Vec<u8> {
        self.data.read().clone()
    }

    /// Untimed, unaccounted write counterpart of [`SimFile::peek`], used
    /// by collective writes whose physical flush is timed through the
    /// aggregators' batch. Extends the file if needed.
    pub fn poke(&self, offset: u64, buf: &[u8]) {
        let mut data = self.data.write();
        let end = offset as usize + buf.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(buf);
    }

    /// Untimed, unaccounted read used by collective-I/O layers that model
    /// the physical access pattern separately (the aggregators' batched
    /// reads carry the timing; `peek` only moves the bytes each rank ends
    /// up with). Returns the byte count actually copied (short at EOF).
    pub fn peek(&self, offset: u64, buf: &mut [u8]) -> usize {
        let data = self.data.read();
        let file_len = data.len() as u64;
        if offset >= file_len {
            return 0;
        }
        let n = ((file_len - offset) as usize).min(buf.len());
        buf[..n].copy_from_slice(&data[offset as usize..offset as usize + n]);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FsConfig;
    use crate::fs::SimFs;

    fn fs() -> Arc<SimFs> {
        SimFs::new(FsConfig::test_tiny())
    }

    #[test]
    fn append_then_read_round_trips() {
        let fs = fs();
        let f = fs.create("a.bin", None).unwrap();
        f.append(b"hello world");
        let mut buf = vec![0u8; 5];
        let done = f.read_at(6, &mut buf, &IoCtx::serial(0.0)).unwrap();
        assert_eq!(&buf, b"world");
        assert_eq!(done.bytes, 5);
        assert!(done.completion > 0.0);
    }

    #[test]
    fn short_read_at_eof() {
        let fs = fs();
        let f = fs.create("a.bin", None).unwrap();
        f.append(b"abc");
        let mut buf = vec![0u8; 10];
        let done = f.read_at(1, &mut buf, &IoCtx::serial(0.0)).unwrap();
        assert_eq!(done.bytes, 2);
        assert_eq!(&buf[..2], b"bc");
    }

    #[test]
    fn read_past_eof_is_an_error() {
        let fs = fs();
        let f = fs.create("a.bin", None).unwrap();
        f.append(b"abc");
        let mut buf = vec![0u8; 1];
        assert!(matches!(
            f.read_at(10, &mut buf, &IoCtx::serial(0.0)),
            Err(PfsError::InvalidRange { .. })
        ));
    }

    #[test]
    fn write_extends_file() {
        let fs = fs();
        let f = fs.create("w.bin", None).unwrap();
        f.write_at(4, b"data", &IoCtx::serial(0.0)).unwrap();
        assert_eq!(f.len(), 8);
        assert_eq!(&f.snapshot(), &[0, 0, 0, 0, b'd', b'a', b't', b'a']);
    }

    #[test]
    fn batch_read_returns_aligned_completions() {
        let fs = fs();
        let f = fs.create("b.bin", None).unwrap();
        f.append(vec![7u8; 4096]);
        let reqs = vec![
            IoRequest {
                rank: 0,
                node: 0,
                now: 0.0,
                offset: 0,
                len: 1024,
            },
            IoRequest {
                rank: 1,
                node: 0,
                now: 0.0,
                offset: 1024,
                len: 1024,
            },
        ];
        let mut b0 = vec![0u8; 1024];
        let mut b1 = vec![0u8; 1024];
        let done = {
            let mut bufs: Vec<&mut [u8]> = vec![&mut b0, &mut b1];
            f.read_batch(&reqs, &mut bufs).unwrap()
        };
        assert_eq!(done.len(), 2);
        assert!(b0.iter().all(|&b| b == 7));
        assert!(b1.iter().all(|&b| b == 7));
        assert!(done[0].completion > 0.0 && done[1].completion > 0.0);
    }

    #[test]
    fn write_batch_places_bytes_and_times_deterministically() {
        let fs = fs();
        let f = fs.create("wb.bin", Some(StripeSpec::new(2, 1024))).unwrap();
        // Two aggregator-style contiguous stripe-aligned writes.
        let a = vec![1u8; 1024];
        let b = vec![2u8; 1024];
        let reqs = vec![
            IoRequest {
                rank: 0,
                node: 0,
                now: 0.0,
                offset: 0,
                len: 1024,
            },
            IoRequest {
                rank: 1,
                node: 1,
                now: 0.0,
                offset: 1024,
                len: 1024,
            },
        ];
        let done = f.write_batch(&reqs, &[&a, &b]).unwrap();
        assert_eq!(done.len(), 2);
        assert!(done.iter().all(|d| d.completion > 0.0));
        let data = f.snapshot();
        assert!(data[..1024].iter().all(|&x| x == 1));
        assert!(data[1024..].iter().all(|&x| x == 2));
        // Distinct OSTs and nodes: the two writes run in parallel.
        assert!((done[0].completion - done[1].completion).abs() < 1e-12);
        assert_eq!(fs.stats().write_ops(), 2);
        assert_eq!(fs.stats().stripe_aligned_ops(), 2);
    }

    #[test]
    fn write_batch_spanning_a_stripe_boundary_hits_both_osts() {
        let fs = fs();
        let f = fs.create("sb.bin", Some(StripeSpec::new(2, 1024))).unwrap();
        // One write straddling the 1024-byte stripe boundary: two chunks
        // on two OSTs, recorded as an unaligned op.
        let buf = vec![7u8; 1024];
        let reqs = vec![IoRequest {
            rank: 0,
            node: 0,
            now: 0.0,
            offset: 512,
            len: 1024,
        }];
        f.write_batch(&reqs, &[&buf]).unwrap();
        assert_eq!(f.len(), 512 + 1024);
        assert_eq!(fs.stats().chunk_requests(), 2);
        assert_eq!(fs.stats().unaligned_ops(), 1);
        let per = fs.stats().per_ost_bytes();
        assert_eq!(per[0], 512);
        assert_eq!(per[1], 512);
    }

    #[test]
    fn batch_read_shortens_at_eof_and_errors_past_it() {
        let fs = fs();
        let f = fs.create("sr.bin", None).unwrap();
        f.append(vec![9u8; 1500]);
        // A request ending past EOF is clamped (short read)…
        let reqs = vec![IoRequest {
            rank: 0,
            node: 0,
            now: 0.0,
            offset: 1024,
            len: 1024,
        }];
        let mut buf = vec![0u8; 1024];
        let done = {
            let mut bufs: Vec<&mut [u8]> = vec![&mut buf];
            f.read_batch(&reqs, &mut bufs).unwrap()
        };
        assert_eq!(done[0].bytes, 1500 - 1024);
        assert!(buf[..476].iter().all(|&b| b == 9));
        // …while a request *starting* past EOF is a typed error.
        let reqs = vec![IoRequest {
            rank: 0,
            node: 0,
            now: 0.0,
            offset: 2000,
            len: 8,
        }];
        let mut buf = vec![0u8; 8];
        let mut bufs: Vec<&mut [u8]> = vec![&mut buf];
        assert!(matches!(
            f.read_batch(&reqs, &mut bufs),
            Err(PfsError::InvalidRange { .. })
        ));
    }

    #[test]
    fn reads_are_timed_but_data_is_exact() {
        let fs = fs();
        let f = fs.create("pattern.bin", None).unwrap();
        let pattern: Vec<u8> = (0..255u8).cycle().take(10_000).collect();
        f.append(&pattern);
        let mut buf = vec![0u8; 10_000];
        f.read_at(0, &mut buf, &IoCtx::serial(0.0)).unwrap();
        assert_eq!(buf, pattern);
    }
}
