//! Stripe layout: mapping byte ranges of a file onto OST chunks.

use crate::config::StripeSpec;

/// One contiguous piece of a file request that lands on a single OST.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// Index of the OST (within the file's stripe set, 0-based; add the
    /// file's `ost_base` for a filesystem-global index).
    pub ost: u32,
    /// File offset of the chunk's first byte.
    pub offset: u64,
    /// Chunk length in bytes.
    pub len: u64,
}

/// Splits the byte range `[offset, offset + len)` into the per-OST chunks
/// dictated by `stripe` (round-robin placement, Lustre-style: stripe index
/// `i` lives on OST `i % count`).
pub fn chunks_of(stripe: StripeSpec, offset: u64, len: u64) -> Vec<Chunk> {
    let mut out = Vec::new();
    if len == 0 {
        return out;
    }
    let ssize = stripe.size;
    let mut pos = offset;
    let end = offset + len;
    while pos < end {
        let stripe_idx = pos / ssize;
        let stripe_end = (stripe_idx + 1) * ssize;
        let chunk_end = stripe_end.min(end);
        out.push(Chunk {
            ost: (stripe_idx % stripe.count as u64) as u32,
            offset: pos,
            len: chunk_end - pos,
        });
        pos = chunk_end;
    }
    out
}

/// Number of distinct OSTs touched by the byte range.
pub fn osts_touched(stripe: StripeSpec, offset: u64, len: u64) -> u32 {
    if len == 0 {
        return 0;
    }
    let first = offset / stripe.size;
    let last = (offset + len - 1) / stripe.size;
    let stripes = last - first + 1;
    stripes.min(stripe.count as u64) as u32
}

/// `true` if the range starts exactly on a stripe boundary — the alignment
/// the paper recommends ("parallel file read access will be stripe
/// aligned").
pub fn is_stripe_aligned(stripe: StripeSpec, offset: u64) -> bool {
    offset.is_multiple_of(stripe.size)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(count: u32, size: u64) -> StripeSpec {
        StripeSpec::new(count, size)
    }

    #[test]
    fn single_stripe_read() {
        let c = chunks_of(spec(4, 1024), 0, 512);
        assert_eq!(
            c,
            vec![Chunk {
                ost: 0,
                offset: 0,
                len: 512
            }]
        );
    }

    #[test]
    fn read_spanning_three_stripes() {
        let c = chunks_of(spec(4, 1024), 512, 2048);
        assert_eq!(
            c,
            vec![
                Chunk {
                    ost: 0,
                    offset: 512,
                    len: 512
                },
                Chunk {
                    ost: 1,
                    offset: 1024,
                    len: 1024
                },
                Chunk {
                    ost: 2,
                    offset: 2048,
                    len: 512
                },
            ]
        );
    }

    #[test]
    fn round_robin_wraps_past_stripe_count() {
        // stripe count 2: stripes 0,1,2,3 -> OSTs 0,1,0,1.
        let c = chunks_of(spec(2, 100), 0, 400);
        let osts: Vec<u32> = c.iter().map(|c| c.ost).collect();
        assert_eq!(osts, vec![0, 1, 0, 1]);
    }

    #[test]
    fn chunks_partition_the_range_exactly() {
        let (off, len) = (777u64, 5_000u64);
        let c = chunks_of(spec(3, 512), off, len);
        assert_eq!(c.first().unwrap().offset, off);
        let total: u64 = c.iter().map(|c| c.len).sum();
        assert_eq!(total, len);
        // Contiguity.
        for w in c.windows(2) {
            assert_eq!(w[0].offset + w[0].len, w[1].offset);
        }
    }

    #[test]
    fn zero_length_is_empty() {
        assert!(chunks_of(spec(4, 1024), 100, 0).is_empty());
        assert_eq!(osts_touched(spec(4, 1024), 100, 0), 0);
    }

    #[test]
    fn osts_touched_counts_distinct() {
        let s = spec(4, 1024);
        assert_eq!(osts_touched(s, 0, 1024), 1);
        assert_eq!(osts_touched(s, 0, 1025), 2);
        assert_eq!(osts_touched(s, 0, 4096), 4);
        // 8 stripes over 4 OSTs still touches only 4 distinct OSTs.
        assert_eq!(osts_touched(s, 0, 8192), 4);
        // Unaligned start.
        assert_eq!(osts_touched(s, 1000, 48), 2);
    }

    #[test]
    fn alignment_check() {
        let s = spec(4, 1024);
        assert!(is_stripe_aligned(s, 0));
        assert!(is_stripe_aligned(s, 2048));
        assert!(!is_stripe_aligned(s, 1000));
    }
}
