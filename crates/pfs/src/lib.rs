//! # mvio-pfs — striped parallel-filesystem simulator
//!
//! The MPI-Vector-IO paper evaluates on two parallel filesystems: **Lustre**
//! (SDSC COMET: 96 OSTs, user-settable stripe count and stripe size, FDR
//! InfiniBand clients) and **GPFS** (NCSA ROGER: fixed configuration,
//! 10 Gb/s node uplinks). Neither is available in this environment, so this
//! crate substitutes a simulator with two coupled halves:
//!
//! 1. **A functional half** — files hold real bytes in memory. `read_at`
//!    returns the actual file contents, so every downstream parser,
//!    partitioner and join operates on real data and can be tested exactly.
//! 2. **A timing half** — every read/write computes a *virtual duration*
//!    from a first-principles model of the machinery the paper's analysis
//!    leans on:
//!    * files are striped round-robin over `stripe_count` object storage
//!      targets (OSTs) in `stripe_size` chunks ([`layout`]);
//!    * each OST is a FIFO server in virtual time: a chunk's service costs
//!      one request latency plus `bytes / ost_bandwidth`, and chunks queued
//!      on the same OST serialize ([`engine`]);
//!    * each client *node* has a finite RPC/link throughput, so adding
//!      nodes adds client-side bandwidth until the OST aggregate saturates
//!      — the mechanism behind Figure 8's rise-then-plateau;
//!    * oversubscribed OSTs pay a small per-client sharing penalty — the
//!      gentle post-peak decline the paper attributes to link saturation.
//!
//! The model's constants are calibrated in [`config::PerfModel`]
//! (`lustre_comet()` reproduces the paper's 22 GB/s peak at 64 OSTs;
//! `gpfs_roger()` the smaller ROGER numbers). See `EXPERIMENTS.md` for the
//! calibration notes.
//!
//! ## Example
//!
//! ```
//! use mvio_pfs::{FsConfig, SimFs, StripeSpec, IoCtx};
//!
//! let fs = SimFs::new(FsConfig::lustre_comet());
//! let file = fs.create("data/lakes.wkt", Some(StripeSpec::new(8, 1 << 20))).unwrap();
//! file.append(vec![42u8; 4 << 20]);
//!
//! let mut buf = vec![0u8; 1 << 20];
//! let done = file.read_at(0, &mut buf, &IoCtx { node: 0, now: 0.0, world_nodes: 1 }).unwrap();
//! assert_eq!(buf[0], 42);
//! assert!(done.completion > 0.0); // virtual seconds elapsed
//! ```

pub mod config;
pub mod engine;
pub mod file;
pub mod fs;
pub mod layout;
pub mod stats;

pub use config::{FsConfig, FsKind, PerfModel, StripeSpec};
pub use engine::{IoCompletion, IoCtx, IoRequest, TimingEngine};
pub use file::SimFile;
pub use fs::SimFs;
pub use stats::FsStats;

/// Errors surfaced by the simulated filesystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PfsError {
    /// Path not present in the namespace.
    NotFound(String),
    /// Path already exists (create with `exclusive`).
    AlreadyExists(String),
    /// Read/write beyond end-of-file or other invalid range.
    InvalidRange {
        offset: u64,
        len: u64,
        file_len: u64,
    },
    /// A stripe specification was rejected (zero count/size or count above
    /// the filesystem's OST total).
    BadStripe(String),
    /// A filesystem configuration failed validation (zero OST count, a
    /// non-positive bandwidth, or an invalid default stripe).
    BadConfig(String),
}

impl std::fmt::Display for PfsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PfsError::NotFound(p) => write!(f, "no such file: {p}"),
            PfsError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            PfsError::InvalidRange {
                offset,
                len,
                file_len,
            } => write!(
                f,
                "invalid range: offset {offset} + len {len} exceeds file length {file_len}"
            ),
            PfsError::BadStripe(msg) => write!(f, "bad stripe spec: {msg}"),
            PfsError::BadConfig(msg) => write!(f, "bad filesystem config: {msg}"),
        }
    }
}

impl std::error::Error for PfsError {}

/// Result alias for filesystem operations.
pub type Result<T> = std::result::Result<T, PfsError>;
