//! Aggregate I/O observability counters.

use crate::layout::Chunk;
use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free counters describing everything a filesystem instance served.
///
/// Used by the benchmark harness to report request counts, byte volumes,
/// and per-OST load balance (stripe-placement skew shows up directly here).
pub struct FsStats {
    read_ops: AtomicU64,
    write_ops: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
    chunk_requests: AtomicU64,
    stripe_aligned_ops: AtomicU64,
    unaligned_ops: AtomicU64,
    per_ost_bytes: Vec<AtomicU64>,
}

impl FsStats {
    pub(crate) fn new(total_osts: u32) -> Self {
        FsStats {
            read_ops: AtomicU64::new(0),
            write_ops: AtomicU64::new(0),
            bytes_read: AtomicU64::new(0),
            bytes_written: AtomicU64::new(0),
            chunk_requests: AtomicU64::new(0),
            stripe_aligned_ops: AtomicU64::new(0),
            unaligned_ops: AtomicU64::new(0),
            per_ost_bytes: (0..total_osts).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub(crate) fn record_read(&self, bytes: u64, aligned: bool, chunks: &[Chunk]) {
        self.read_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_read.fetch_add(bytes, Ordering::Relaxed);
        self.record_alignment(aligned);
        self.record_chunks(chunks);
    }

    pub(crate) fn record_write(&self, bytes: u64, aligned: bool, chunks: &[Chunk]) {
        self.write_ops.fetch_add(1, Ordering::Relaxed);
        self.bytes_written.fetch_add(bytes, Ordering::Relaxed);
        self.record_alignment(aligned);
        self.record_chunks(chunks);
    }

    fn record_alignment(&self, aligned: bool) {
        if aligned {
            self.stripe_aligned_ops.fetch_add(1, Ordering::Relaxed);
        } else {
            self.unaligned_ops.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn record_chunks(&self, chunks: &[Chunk]) {
        self.chunk_requests
            .fetch_add(chunks.len() as u64, Ordering::Relaxed);
        for c in chunks {
            // chunk.ost is file-relative; modulo keeps it in range even if
            // the caller passed global indices.
            let idx = c.ost as usize % self.per_ost_bytes.len().max(1);
            if let Some(slot) = self.per_ost_bytes.get(idx) {
                slot.fetch_add(c.len, Ordering::Relaxed);
            }
        }
    }

    /// Number of read operations served.
    pub fn read_ops(&self) -> u64 {
        self.read_ops.load(Ordering::Relaxed)
    }

    /// Number of write operations served.
    pub fn write_ops(&self) -> u64 {
        self.write_ops.load(Ordering::Relaxed)
    }

    /// Total bytes read.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read.load(Ordering::Relaxed)
    }

    /// Total bytes written.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written.load(Ordering::Relaxed)
    }

    /// Total striped chunk requests (≥ read_ops + write_ops).
    pub fn chunk_requests(&self) -> u64 {
        self.chunk_requests.load(Ordering::Relaxed)
    }

    /// Operations whose start offset fell exactly on a stripe boundary —
    /// the access pattern the paper recommends and the two-phase
    /// aggregators are built to produce.
    pub fn stripe_aligned_ops(&self) -> u64 {
        self.stripe_aligned_ops.load(Ordering::Relaxed)
    }

    /// Operations whose start offset was *not* stripe aligned.
    pub fn unaligned_ops(&self) -> u64 {
        self.unaligned_ops.load(Ordering::Relaxed)
    }

    /// Bytes served per OST slot (file-relative placement).
    pub fn per_ost_bytes(&self) -> Vec<u64> {
        self.per_ost_bytes
            .iter()
            .map(|a| a.load(Ordering::Relaxed))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{FsConfig, StripeSpec};
    use crate::engine::IoCtx;
    use crate::fs::SimFs;

    #[test]
    fn counters_track_operations() {
        let fs = SimFs::new(FsConfig::test_tiny());
        let f = fs.create("s.bin", Some(StripeSpec::new(2, 1024))).unwrap();
        f.append(vec![1u8; 4096]);

        let mut buf = vec![0u8; 2048];
        f.read_at(0, &mut buf, &IoCtx::serial(0.0)).unwrap();
        f.write_at(0, &[9u8; 100], &IoCtx::serial(1.0)).unwrap();

        let st = fs.stats();
        assert_eq!(st.read_ops(), 1);
        assert_eq!(st.write_ops(), 1);
        assert_eq!(st.bytes_read(), 2048);
        assert_eq!(st.bytes_written(), 100);
        // 2048 bytes over 1024-byte stripes = 2 chunks, plus 1 write chunk.
        assert_eq!(st.chunk_requests(), 3);
        // Both ops started at offset 0 — stripe aligned.
        assert_eq!(st.stripe_aligned_ops(), 2);
        assert_eq!(st.unaligned_ops(), 0);
    }

    #[test]
    fn alignment_counters_split_on_stripe_boundaries() {
        let fs = SimFs::new(FsConfig::test_tiny());
        let f = fs.create("a.bin", Some(StripeSpec::new(2, 1024))).unwrap();
        f.append(vec![0u8; 4096]);
        let mut buf = vec![0u8; 16];
        f.read_at(1024, &mut buf, &IoCtx::serial(0.0)).unwrap(); // aligned
        f.read_at(1000, &mut buf, &IoCtx::serial(0.0)).unwrap(); // not
        f.write_at(2048, &buf, &IoCtx::serial(0.0)).unwrap(); // aligned
        f.write_at(7, &buf, &IoCtx::serial(0.0)).unwrap(); // not
        let st = fs.stats();
        assert_eq!(st.stripe_aligned_ops(), 2);
        assert_eq!(st.unaligned_ops(), 2);
    }

    #[test]
    fn per_ost_balance_reflects_striping() {
        let fs = SimFs::new(FsConfig::test_tiny());
        let f = fs.create("s.bin", Some(StripeSpec::new(2, 1024))).unwrap();
        f.append(vec![1u8; 8192]);
        let mut buf = vec![0u8; 8192];
        f.read_at(0, &mut buf, &IoCtx::serial(0.0)).unwrap();
        let per = fs.stats().per_ost_bytes();
        // Round-robin: OSTs 0 and 1 each get half of the 8 KiB.
        assert_eq!(per[0], 4096);
        assert_eq!(per[1], 4096);
    }
}
