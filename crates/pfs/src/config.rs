//! Filesystem configuration and the calibrated performance model.

use crate::PfsError;

/// Which filesystem personality the simulator wears. The engine is shared;
/// the personality controls defaults (GPFS users cannot set striping —
/// paper §5.1: "On GPFS, we did not have the permission to change those
/// parameters").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsKind {
    /// Lustre-like: user-settable stripe count and stripe size per file.
    Lustre,
    /// GPFS-like: fixed wide striping chosen by the filesystem.
    Gpfs,
}

/// Striping of one file: how many OSTs it spans and the chunk size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeSpec {
    /// Number of OSTs the file's blocks round-robin over (Lustre
    /// `stripe_count`).
    pub count: u32,
    /// Bytes per stripe chunk (Lustre `stripe_size`).
    pub size: u64,
}

impl StripeSpec {
    /// Creates a stripe spec; panics on zero values (use
    /// [`StripeSpec::validate`] for fallible checking).
    pub fn new(count: u32, size: u64) -> Self {
        assert!(
            count > 0 && size > 0,
            "stripe count and size must be positive"
        );
        StripeSpec { count, size }
    }

    /// Validates against a filesystem's OST total.
    pub fn validate(&self, total_osts: u32) -> Result<(), PfsError> {
        if self.count == 0 || self.size == 0 {
            return Err(PfsError::BadStripe(
                "stripe count and size must be positive".into(),
            ));
        }
        if self.count > total_osts {
            return Err(PfsError::BadStripe(format!(
                "stripe count {} exceeds filesystem OST total {}",
                self.count, total_osts
            )));
        }
        Ok(())
    }
}

/// The calibrated constants of the timing model. All bandwidths are in
/// bytes per virtual second; latencies in virtual seconds.
///
/// Calibration targets (paper §5):
/// * COMET Lustre peaks at ~22 GB/s for Level-0 reads over 64 OSTs
///   ⇒ `ost_bandwidth = 0.35 GB/s` (64 × 0.35 = 22.4 GB/s aggregate).
/// * The rise up to ~32–48 nodes comes from per-node client throughput
///   (`client_bandwidth`), modelling the finite RPCs-in-flight a Lustre
///   client sustains — well below the 7 GB/s FDR link itself.
/// * The post-peak sag comes from `sharing_overhead`, a per-request service
///   inflation once clients outnumber OSTs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PerfModel {
    /// Sustained streaming bandwidth of one OST.
    pub ost_bandwidth: f64,
    /// Fixed cost per I/O request reaching an OST (seek + RPC round trip).
    pub request_latency: f64,
    /// Hard cap: physical link bandwidth of one client node.
    pub link_bandwidth: f64,
    /// Effective per-node client throughput (RPC concurrency limit);
    /// `min(link_bandwidth, client_bandwidth)` governs the client side.
    pub client_bandwidth: f64,
    /// Service-time inflation per extra client sharing an OST
    /// (`service × (1 + sharing_overhead × (clients_per_ost − 1))`).
    pub sharing_overhead: f64,
}

impl PerfModel {
    /// Effective client-side per-node bandwidth.
    pub fn node_bandwidth(&self) -> f64 {
        self.link_bandwidth.min(self.client_bandwidth)
    }
}

/// Complete configuration of a simulated filesystem instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FsConfig {
    pub kind: FsKind,
    /// Number of object storage targets available for striping (COMET: 96).
    pub total_osts: u32,
    /// Striping applied when a file is created without an explicit spec.
    pub default_stripe: StripeSpec,
    pub perf: PerfModel,
}

impl FsConfig {
    /// Lustre calibrated to SDSC COMET (paper §5: 96 OSTs, 100 GB/s durable
    /// storage, FDR InfiniBand 56 Gb/s links, 22 GB/s observed peak).
    pub fn lustre_comet() -> Self {
        FsConfig {
            kind: FsKind::Lustre,
            total_osts: 96,
            default_stripe: StripeSpec::new(1, 1 << 20), // Lustre default: 1 OST, 1 MiB
            perf: PerfModel {
                ost_bandwidth: 0.35e9,
                request_latency: 1.5e-3,
                link_bandwidth: 7.0e9, // 56 Gb/s FDR
                client_bandwidth: 0.55e9,
                sharing_overhead: 0.004,
            },
        }
    }

    /// GPFS calibrated to NCSA ROGER (paper §5: 10 Gb/s node uplinks,
    /// 20 ranks/node, fixed filesystem-chosen striping).
    pub fn gpfs_roger() -> Self {
        FsConfig {
            kind: FsKind::Gpfs,
            total_osts: 16,                                 // NSD servers
            default_stripe: StripeSpec::new(16, 256 << 10), // wide, 256 KiB blocks
            perf: PerfModel {
                ost_bandwidth: 0.30e9,
                request_latency: 2.0e-3,
                link_bandwidth: 1.25e9, // 10 Gb/s uplink
                client_bandwidth: 0.9e9,
                sharing_overhead: 0.02,
            },
        }
    }

    /// Validates the configuration: the OST count, the default stripe
    /// (including zero stripe count / zero stripe size) and the
    /// performance constants must all be usable. Returns a typed
    /// [`PfsError::BadConfig`] / [`PfsError::BadStripe`] instead of
    /// panicking deep inside the engine, so callers assembling configs
    /// from user input (CLI flags, env knobs) can reject them up front.
    pub fn validate(&self) -> Result<(), PfsError> {
        if self.total_osts == 0 {
            return Err(PfsError::BadConfig("total_osts must be at least 1".into()));
        }
        self.default_stripe.validate(self.total_osts)?;
        let p = &self.perf;
        for (name, v) in [
            ("ost_bandwidth", p.ost_bandwidth),
            ("link_bandwidth", p.link_bandwidth),
            ("client_bandwidth", p.client_bandwidth),
        ] {
            if !(v.is_finite() && v > 0.0) {
                return Err(PfsError::BadConfig(format!(
                    "{name} must be finite and positive, got {v}"
                )));
            }
        }
        for (name, v) in [
            ("request_latency", p.request_latency),
            ("sharing_overhead", p.sharing_overhead),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                return Err(PfsError::BadConfig(format!(
                    "{name} must be finite and non-negative, got {v}"
                )));
            }
        }
        Ok(())
    }

    /// A tiny deterministic configuration for unit tests: small numbers so
    /// hand-computed expectations stay readable.
    pub fn test_tiny() -> Self {
        FsConfig {
            kind: FsKind::Lustre,
            total_osts: 4,
            default_stripe: StripeSpec::new(2, 1024),
            perf: PerfModel {
                ost_bandwidth: 1_000_000.0, // 1 MB/s
                request_latency: 0.001,
                link_bandwidth: 10_000_000.0,
                client_bandwidth: 10_000_000.0,
                sharing_overhead: 0.0,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_validation() {
        assert!(StripeSpec::new(4, 1024).validate(96).is_ok());
        assert!(StripeSpec::new(97, 1024).validate(96).is_err());
        let zero = StripeSpec {
            count: 0,
            size: 1024,
        };
        assert!(zero.validate(96).is_err());
        let zsize = StripeSpec { count: 1, size: 0 };
        assert!(zsize.validate(96).is_err());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn stripe_new_panics_on_zero() {
        let _ = StripeSpec::new(0, 1024);
    }

    #[test]
    fn config_validation_rejects_zero_knobs_with_typed_errors() {
        assert!(FsConfig::lustre_comet().validate().is_ok());
        assert!(FsConfig::gpfs_roger().validate().is_ok());
        assert!(FsConfig::test_tiny().validate().is_ok());

        let mut cfg = FsConfig::test_tiny();
        cfg.total_osts = 0;
        assert!(matches!(cfg.validate(), Err(PfsError::BadConfig(_))));

        let mut cfg = FsConfig::test_tiny();
        cfg.default_stripe = StripeSpec {
            count: 0,
            size: 1024,
        };
        assert!(matches!(cfg.validate(), Err(PfsError::BadStripe(_))));

        let mut cfg = FsConfig::test_tiny();
        cfg.default_stripe = StripeSpec { count: 1, size: 0 };
        assert!(matches!(cfg.validate(), Err(PfsError::BadStripe(_))));

        let mut cfg = FsConfig::test_tiny();
        cfg.perf.ost_bandwidth = 0.0;
        assert!(matches!(cfg.validate(), Err(PfsError::BadConfig(_))));

        let mut cfg = FsConfig::test_tiny();
        cfg.perf.request_latency = f64::NAN;
        assert!(matches!(cfg.validate(), Err(PfsError::BadConfig(_))));
    }

    #[test]
    fn comet_aggregate_matches_paper_peak() {
        // 64 OSTs at the calibrated per-OST bandwidth ≈ the paper's 22 GB/s.
        let cfg = FsConfig::lustre_comet();
        let agg = 64.0 * cfg.perf.ost_bandwidth;
        assert!((agg - 22.4e9).abs() < 1e6, "aggregate {agg}");
    }

    #[test]
    fn node_bandwidth_is_min_of_caps() {
        let cfg = FsConfig::lustre_comet();
        assert_eq!(cfg.perf.node_bandwidth(), cfg.perf.client_bandwidth);
        assert!(cfg.perf.client_bandwidth < cfg.perf.link_bandwidth);
    }

    #[test]
    fn gpfs_has_no_user_striping_personality() {
        let cfg = FsConfig::gpfs_roger();
        assert_eq!(cfg.kind, FsKind::Gpfs);
        assert_eq!(cfg.default_stripe.count, cfg.total_osts);
    }
}
