//! Mutation tests for the collective-protocol verifier (`msim::check`).
//!
//! Each test deliberately injects one of the protocol violations the
//! verifier exists to catch — a rank skipping a barrier, divergent
//! chunked-exchange round counts, a leaked in-flight [`Request`] — and
//! asserts that `MVIO_CHECK=strict` aborts the job with a report that
//! names the offending rank and the call-site label. A final set of
//! tests runs clean collective pipelines under `MVIO_CHECK=on` and
//! asserts zero reports, so the verifier's baseline false-positive rate
//! stays pinned at exactly nothing.

use mvio_msim::{CheckMode, Topology, Violation, World, WorldConfig};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn strict_cfg(ranks: usize) -> WorldConfig {
    WorldConfig::new(Topology::single_node(ranks)).with_check(CheckMode::Strict)
}

fn on_cfg(ranks: usize) -> WorldConfig {
    WorldConfig::new(Topology::single_node(ranks)).with_check(CheckMode::On)
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: Box<dyn Any + Send>) -> String {
    payload
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default()
}

/// Runs `f` under `MVIO_CHECK=strict` and returns the abort message,
/// failing the test if the job completes without a violation.
fn strict_abort_message<R>(
    ranks: usize,
    f: impl Fn(&mut mvio_msim::Comm) -> R + Send + Sync,
) -> String
where
    R: Send,
{
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        World::run(strict_cfg(ranks), f);
    }));
    let payload = outcome.expect_err("strict mode must abort the job on a protocol violation");
    let msg = panic_message(payload);
    assert!(
        msg.contains("MVIO_CHECK=strict"),
        "abort must come from the verifier, got: {msg}"
    );
    msg
}

// ----- mutation: one rank skips a barrier ------------------------------

#[test]
fn skipped_barrier_is_reported_with_call_site_label() {
    let msg = strict_abort_message(2, |comm| {
        // Rank 0 "forgets" the barrier and returns; rank 1 enters it.
        if comm.rank() != 0 {
            comm.labeled("mutation.barrier", |c| c.barrier());
        }
    });
    // Whichever thread observes the divergence first (the exiting rank
    // or the stranded one), the report must attribute the exit to rank 0
    // and carry the barrier's call-site label.
    assert!(msg.contains("rank 0 exited"), "got: {msg}");
    assert!(msg.contains("barrier @ mutation.barrier"), "got: {msg}");
}

// ----- mutation: divergent chunked-exchange round counts ---------------

#[test]
fn divergent_alltoallv_round_count_is_reported_per_round() {
    // Rank 0 splits its payload into two chunks (two alltoallv rounds);
    // rank 1 sends everything in one round and exits — the classic
    // chunked-exchange divergence the round-indexed labels exist for.
    let msg = strict_abort_message(2, |comm| {
        let p = comm.size();
        let rounds = if comm.rank() == 0 { 2 } else { 1 };
        for round in 0..rounds {
            let bufs: Vec<Vec<u8>> = (0..p).map(|d| vec![round as u8; d + 1]).collect();
            comm.labeled(&format!("mutation.payload[round={round}]"), |c| {
                c.alltoallv(bufs.clone())
            });
        }
    });
    // The violation fires at the extra round, and its signature names
    // both the operation and the diverging round index.
    assert!(msg.contains("alltoallv"), "got: {msg}");
    assert!(msg.contains("mutation.payload[round=1]"), "got: {msg}");
    assert!(
        msg.contains("rank 1 exited") || msg.contains("rank 0"),
        "got: {msg}"
    );
}

// ----- mutation: leaked in-flight request ------------------------------

#[test]
fn leaked_request_is_reported_with_op_and_label() {
    let msg = strict_abort_message(2, |comm| {
        if comm.rank() == 1 {
            // Post a receive and drop the handle without wait/test.
            let req = comm.labeled("mutation.leak", |c| c.irecv(0, 7));
            drop(req);
        }
    });
    assert!(
        msg.contains("rank 1 dropped an in-flight irecv @ mutation.leak request"),
        "got: {msg}"
    );
}

#[test]
fn leaked_request_is_collected_under_on() {
    // `on` collects instead of aborting: the job completes and the
    // violation is queryable from the report list.
    let (_, violations) = World::run_reporting(on_cfg(2), |comm| {
        comm.labeled("mutation.leak", |c| {
            let req = c.isend((c.rank() + 1) % 2, 3, b"x");
            drop(req);
            // Drain the matching sends so both ranks exit cleanly.
            let got = c.recv((c.rank() + 1) % 2, 3);
            assert_eq!(got, b"x");
        });
    });
    assert_eq!(violations.len(), 2, "one leak per rank: {violations:?}");
    for v in &violations {
        match v {
            Violation::RequestLeak { op, .. } => {
                assert_eq!(op, "isend @ mutation.leak");
            }
            other => panic!("expected RequestLeak, got {other:?}"),
        }
    }
}

// ----- mutation: same collective, diverging call sites -----------------

#[test]
fn label_divergence_is_a_sequence_mismatch() {
    // Both ranks enter the *same* hub operation, so the job completes
    // under `on` — but the call-site labels disagree, which is exactly
    // the "two different code paths happened to line up" hazard the
    // signatures exist to expose.
    let (_, violations) = World::run_reporting(on_cfg(2), |comm| {
        let site = if comm.rank() == 0 {
            "mutation.left"
        } else {
            "mutation.right"
        };
        comm.labeled(site, |c| c.barrier());
    });
    assert_eq!(violations.len(), 1, "got: {violations:?}");
    match &violations[0] {
        Violation::SequenceMismatch { index, signatures } => {
            assert_eq!(*index, 0);
            let rendered: Vec<&str> = signatures.iter().map(|(_, s)| s.as_str()).collect();
            assert!(rendered.iter().any(|s| s.contains("mutation.left")));
            assert!(rendered.iter().any(|s| s.contains("mutation.right")));
        }
        other => panic!("expected SequenceMismatch, got {other:?}"),
    }
}

// ----- clean pipelines must be report-free -----------------------------

#[test]
fn clean_collective_pipeline_has_zero_reports_under_on() {
    let (results, violations) = World::run_reporting(on_cfg(4), |comm| {
        let p = comm.size();
        let rank = comm.rank();

        comm.labeled("clean.setup", |c| c.barrier());
        let seed = comm.labeled("clean.bcast", |c| c.bcast(0, vec![42u8]));
        assert_eq!(seed, vec![42u8]);

        // Variable-size alltoallv, like a real exchange payload round.
        let total: usize = comm.labeled("clean.exchange", |c| {
            let bufs: Vec<Vec<u8>> = (0..p).map(|d| vec![rank as u8; d + rank + 1]).collect();
            c.alltoallv(bufs).iter().map(Vec::len).sum()
        });

        // Point-to-point with properly waited nonblocking handles.
        let right = (rank + 1) % p;
        let left = (rank + p - 1) % p;
        let sreq = comm.isend(right, 11, &[rank as u8]);
        let rreq = comm.irecv(left, 11);
        let got = comm.wait(rreq);
        comm.wait(sreq);
        assert_eq!(got, vec![left as u8]);

        comm.labeled("clean.reduce", |c| {
            c.allreduce_u64(total as u64, |a: &u64, b: &u64| a + b)
        })
    });
    assert!(violations.is_empty(), "clean run reported: {violations:?}");
    assert!(results.iter().all(|&r| r == results[0]));
}

#[test]
fn clean_pipeline_survives_strict() {
    // The same shape under `strict` must complete without aborting.
    let results = World::run(strict_cfg(3), |comm| {
        comm.labeled("clean.setup", |c| c.barrier());
        let p = comm.size();
        let bufs: Vec<Vec<u8>> = (0..p).map(|d| vec![0u8; d + 1]).collect();
        let recvd = comm.labeled("clean.exchange", |c| c.alltoallv(bufs));
        recvd.iter().map(Vec::len).sum::<usize>()
    });
    assert_eq!(results.len(), 3);
}
