//! Virtual time: the cost model every phase charges against.
//!
//! All timing in the reproduction is *virtual*: communication and I/O
//! charge analytic models, and compute charges per-operation constants
//! multiplied by the **actual** work performed (bytes parsed, MBR tests
//! run, vertices compared). Nothing sleeps; nothing reads the wall clock.
//!
//! ## Calibration
//!
//! Compute constants are fit to Table 3 of the paper (sequential I/O +
//! parse times on ROGER): All Objects (92 GB of polygons) parses at
//! ≈ 49 ns/byte, Road Network (137 GB of polylines) at ≈ 20 ns/byte, and
//! All Nodes (96 GB of points) at ≈ 38 ns/byte. Communication constants
//! are generic FDR-InfiniBand numbers (≈ 3 µs latency, ≈ 6 GB/s
//! point-to-point bandwidth).

/// Shape class used to pick the per-byte parse cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShapeClass {
    Point,
    Line,
    Polygon,
}

/// A unit of accountable work. Variants mirror the phases of the paper's
/// pipeline; each is converted to virtual seconds by [`CostModel::cost`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Work {
    /// Parsing `bytes` of WKT text of the given shape class.
    ParseWkt { bytes: u64, class: ShapeClass },
    /// Bulk byte movement (serialization, buffer packing, memcpy).
    CopyBytes { n: u64 },
    /// Serializing or deserializing `n` geometry *objects* totalling
    /// `bytes`: per-object overhead (WKB writer/reader, allocation,
    /// buffer bookkeeping) plus the byte copy. This is the paper's
    /// "communication buffer management" cost.
    SerializeGeoms { n: u64, bytes: u64 },
    /// `n` rectangle-overlap tests (the filter phase unit).
    MbrTests { n: u64 },
    /// One refine-phase candidate pair with the given vertex counts
    /// (cost ∝ the segment-pair comparisons actually executed).
    RefinePair { verts_a: u64, verts_b: u64 },
    /// `n` R-tree insertions.
    RtreeInserts { n: u64 },
    /// `n` R-tree queries returning `results` total hits.
    RtreeQueries { n: u64, results: u64 },
    /// An explicit duration in virtual seconds (escape hatch for
    /// experiment-specific costs that are documented at the call site).
    Seconds(f64),
}

/// Calibrated cost constants. One instance is shared by a whole job.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Point-to-point message latency (α), seconds.
    pub comm_latency: f64,
    /// Point-to-point bandwidth (1/β), bytes per second.
    pub comm_bandwidth: f64,
    /// Per-byte cost of a local memory copy (pack/unpack/serialize).
    pub byte_copy: f64,
    /// WKT parse cost per byte — polygons (heaviest: ring structure,
    /// coordinate pairs, hole bookkeeping).
    pub parse_polygon_per_byte: f64,
    /// WKT parse cost per byte — polylines.
    pub parse_line_per_byte: f64,
    /// WKT/CSV parse cost per byte — points.
    pub parse_point_per_byte: f64,
    /// One rectangle-rectangle overlap test.
    pub mbr_test: f64,
    /// Per-geometry-object serialization/deserialization overhead
    /// (calibrated to GEOS WKB writer + buffer management ≈ 12 µs).
    pub serialize_per_geometry: f64,
    /// Fixed per-call overhead of one exact `intersects` refine test
    /// (GEOS object traversal, allocation and setup ≈ 150 µs, dominating small pairs).
    pub refine_fixed: f64,
    /// One segment-pair orientation/intersection evaluation in refine.
    pub segment_pair_test: f64,
    /// One R-tree insert.
    pub rtree_insert: f64,
    /// Fixed cost of one R-tree query descent.
    pub rtree_query: f64,
    /// Per-result cost of an R-tree query.
    pub rtree_result: f64,
}

impl CostModel {
    /// Constants calibrated against the paper's clusters (see module docs).
    pub fn calibrated() -> Self {
        CostModel {
            comm_latency: 3.0e-6,
            comm_bandwidth: 6.0e9,
            byte_copy: 0.1e-9,
            parse_polygon_per_byte: 45.0e-9,
            parse_line_per_byte: 20.0e-9,
            parse_point_per_byte: 38.0e-9,
            mbr_test: 20.0e-9,
            serialize_per_geometry: 12.0e-6,
            refine_fixed: 150.0e-6,
            segment_pair_test: 6.0e-9,
            rtree_insert: 400.0e-9,
            rtree_query: 300.0e-9,
            rtree_result: 25.0e-9,
        }
    }

    /// Converts a [`Work`] quantum to virtual seconds.
    pub fn cost(&self, work: Work) -> f64 {
        match work {
            Work::ParseWkt { bytes, class } => {
                let per = match class {
                    ShapeClass::Point => self.parse_point_per_byte,
                    ShapeClass::Line => self.parse_line_per_byte,
                    ShapeClass::Polygon => self.parse_polygon_per_byte,
                };
                bytes as f64 * per
            }
            Work::CopyBytes { n } => n as f64 * self.byte_copy,
            Work::SerializeGeoms { n, bytes } => {
                n as f64 * self.serialize_per_geometry + bytes as f64 * self.byte_copy
            }
            Work::MbrTests { n } => n as f64 * self.mbr_test,
            Work::RefinePair { verts_a, verts_b } => {
                // Fixed call overhead plus all-pairs segment comparison
                // bounded by the product; the callers pass the *actual*
                // vertex counts of the pair.
                self.refine_fixed
                    + (verts_a.max(1) as f64) * (verts_b.max(1) as f64) * self.segment_pair_test
            }
            Work::RtreeInserts { n } => n as f64 * self.rtree_insert,
            Work::RtreeQueries { n, results } => {
                n as f64 * self.rtree_query + results as f64 * self.rtree_result
            }
            Work::Seconds(s) => s,
        }
    }

    /// One point-to-point message of `bytes`: α + bytes·β.
    pub fn p2p(&self, bytes: u64) -> f64 {
        self.comm_latency + bytes as f64 / self.comm_bandwidth
    }

    /// Synchronization cost of a `p`-rank barrier (dissemination tree).
    pub fn barrier(&self, p: usize) -> f64 {
        self.comm_latency * ceil_log2(p)
    }

    /// Binomial-tree broadcast of `bytes` to `p` ranks.
    pub fn bcast(&self, p: usize, bytes: u64) -> f64 {
        self.p2p(bytes) * ceil_log2(p)
    }

    /// Tree reduction of `bytes` with a per-byte combine cost folded in.
    pub fn reduce(&self, p: usize, bytes: u64) -> f64 {
        (self.p2p(bytes) + bytes as f64 * self.byte_copy) * ceil_log2(p)
    }

    /// Personalized all-to-all where this rank sends `send` bytes total and
    /// receives `recv` bytes total.
    pub fn alltoall(&self, p: usize, send: u64, recv: u64) -> f64 {
        self.comm_latency * p as f64 + (send + recv) as f64 / self.comm_bandwidth
    }
}

/// Off-thread [`Work`] accumulator for intra-rank worker threads.
///
/// A [`crate::Comm`] is single-threaded by design (it owns the rank's
/// virtual clock), so pipeline workers running on real OS threads cannot
/// charge it directly. Each worker instead charges a `WorkTally` — the
/// same [`CostModel`] conversion a `Comm` would apply — and the rank
/// merges the per-worker totals deterministically afterwards with
/// [`crate::Comm::advance_parallel`].
#[derive(Debug, Clone, Copy)]
pub struct WorkTally {
    cost: CostModel,
    seconds: f64,
}

impl WorkTally {
    /// A zeroed tally converting work through `cost`.
    pub fn new(cost: CostModel) -> Self {
        WorkTally { cost, seconds: 0.0 }
    }

    /// Charges a quantum of work to this tally.
    pub fn charge(&mut self, work: Work) {
        self.seconds += self.cost.cost(work);
    }

    /// Total virtual seconds accumulated so far.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }
}

#[inline]
fn ceil_log2(p: usize) -> f64 {
    if p <= 1 {
        0.0
    } else {
        (p as f64).log2().ceil()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_costs_rank_polygon_heaviest_per_byte() {
        let m = CostModel::calibrated();
        let poly = m.cost(Work::ParseWkt {
            bytes: 1_000,
            class: ShapeClass::Polygon,
        });
        let line = m.cost(Work::ParseWkt {
            bytes: 1_000,
            class: ShapeClass::Line,
        });
        let point = m.cost(Work::ParseWkt {
            bytes: 1_000,
            class: ShapeClass::Point,
        });
        assert!(poly > point && point > line);
    }

    #[test]
    fn calibration_matches_table3_magnitudes() {
        // All Objects: 92 GB of polygons parsed sequentially in ~4728 s.
        let m = CostModel::calibrated();
        let t = m.cost(Work::ParseWkt {
            bytes: 92 * (1 << 30),
            class: ShapeClass::Polygon,
        });
        assert!((3000.0..6000.0).contains(&t), "All Objects parse ≈ {t} s");
        // Road Network: 137 GB of lines in ~2873 s.
        let t = m.cost(Work::ParseWkt {
            bytes: 137 * (1 << 30),
            class: ShapeClass::Line,
        });
        assert!((2000.0..4000.0).contains(&t), "Road Network parse ≈ {t} s");
        // All Nodes: 96 GB of points in ~3782 s.
        let t = m.cost(Work::ParseWkt {
            bytes: 96 * (1 << 30),
            class: ShapeClass::Point,
        });
        assert!((3000.0..5000.0).contains(&t), "All Nodes parse ≈ {t} s");
    }

    #[test]
    fn p2p_is_alpha_beta() {
        let m = CostModel::calibrated();
        assert!((m.p2p(0) - 3.0e-6).abs() < 1e-12);
        assert!(m.p2p(6_000_000_000) > 1.0);
    }

    #[test]
    fn collective_costs_grow_logarithmically() {
        let m = CostModel::calibrated();
        assert_eq!(m.barrier(1), 0.0);
        assert!(m.barrier(2) > 0.0);
        assert!(m.barrier(1024) > m.barrier(32));
        // log2(1024) = 10 vs log2(32) = 5: exactly double.
        assert!((m.barrier(1024) / m.barrier(32) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn refine_cost_scales_with_vertex_product_past_fixed_overhead() {
        let m = CostModel::calibrated();
        let small = m.cost(Work::RefinePair {
            verts_a: 10,
            verts_b: 10,
        });
        let big = m.cost(Work::RefinePair {
            verts_a: 10_000,
            verts_b: 10_000,
        });
        // Small pairs are dominated by the fixed GEOS-call overhead…
        assert!((small - m.refine_fixed).abs() / m.refine_fixed < 0.1);
        // …huge pairs by the vertex product.
        assert!(big > 100.0 * small);
    }

    #[test]
    fn serialize_cost_has_per_object_term() {
        let m = CostModel::calibrated();
        // Same bytes, more objects -> strictly more time.
        let few = m.cost(Work::SerializeGeoms {
            n: 10,
            bytes: 1 << 20,
        });
        let many = m.cost(Work::SerializeGeoms {
            n: 10_000,
            bytes: 1 << 20,
        });
        assert!(many > few * 10.0);
    }

    #[test]
    fn alltoall_scales_with_p_and_bytes() {
        let m = CostModel::calibrated();
        let a = m.alltoall(16, 1 << 20, 1 << 20);
        let b = m.alltoall(64, 1 << 20, 1 << 20);
        assert!(b > a);
        let c = m.alltoall(16, 8 << 20, 8 << 20);
        assert!(c > a);
    }

    #[test]
    fn work_tally_matches_direct_costing() {
        let m = CostModel::calibrated();
        let mut tally = WorkTally::new(m);
        let w1 = Work::ParseWkt {
            bytes: 512,
            class: ShapeClass::Polygon,
        };
        let w2 = Work::SerializeGeoms { n: 7, bytes: 900 };
        tally.charge(w1);
        tally.charge(w2);
        assert_eq!(tally.seconds(), m.cost(w1) + m.cost(w2));
    }
}
