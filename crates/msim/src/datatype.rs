//! MPI derived datatypes: contiguous, vector, indexed, struct.
//!
//! The paper leans on these in three places:
//! * `MPI_Type_contiguous` / `MPI_Type_struct` for fixed-size spatial
//!   records (Figure 12 compares their read performance);
//! * `MPI_Type_vector` for strided, round-robin file views (Figure 4);
//! * `MPI_type_indexed` for variable-length polygon views built from
//!   vertex-count and displacement arrays (§4.1, Figure 16).
//!
//! A datatype describes a *byte layout*: [`Datatype::fragments`] flattens
//! it into `(offset, len)` runs, which is what both the pack/unpack
//! routines and the non-contiguous file views consume.

use crate::MsimError;

/// A (possibly non-contiguous) byte-layout description.
#[derive(Debug, Clone, PartialEq)]
pub enum Datatype {
    /// One byte (`MPI_BYTE` / `MPI_CHAR`).
    Byte,
    /// Four-byte little-endian integer (`MPI_INT`).
    Int32,
    /// Eight-byte little-endian integer (`MPI_LONG_LONG`).
    Int64,
    /// Eight-byte IEEE double (`MPI_DOUBLE`).
    Double,
    /// `count` copies of `inner`, back to back (`MPI_Type_contiguous`).
    Contiguous { count: usize, inner: Box<Datatype> },
    /// `count` blocks of `blocklen` inner elements, starting `stride`
    /// inner-element extents apart (`MPI_Type_vector`). `stride >=
    /// blocklen` leaves gaps — the non-contiguous pattern of Figure 4.
    Vector {
        count: usize,
        blocklen: usize,
        stride: usize,
        inner: Box<Datatype>,
    },
    /// Blocks of varying length at varying displacements
    /// (`MPI_Type_indexed`); lengths and displacements are in inner-element
    /// units. This is the type the paper builds from vertex-count and
    /// offset arrays for variable-length polygons.
    Indexed {
        blocklens: Vec<usize>,
        displs: Vec<usize>,
        inner: Box<Datatype>,
    },
    /// Explicit fields at explicit byte offsets with an explicit total
    /// extent (`MPI_Type_create_struct`).
    Struct {
        fields: Vec<StructField>,
        extent: usize,
    },
    /// An inner type with an overridden extent
    /// (`MPI_Type_create_resized`) — the standard way to tile a pattern
    /// with trailing padding, e.g. "8 bytes every 16".
    Resized { inner: Box<Datatype>, extent: usize },
}

/// One field of a [`Datatype::Struct`].
#[derive(Debug, Clone, PartialEq)]
pub struct StructField {
    /// Byte offset of the field within the struct extent.
    pub offset: usize,
    /// Number of consecutive `ty` elements.
    pub count: usize,
    /// Element type.
    pub ty: Datatype,
}

impl Datatype {
    /// `MPI_Type_contiguous(count, inner)`.
    pub fn contiguous(count: usize, inner: Datatype) -> Datatype {
        Datatype::Contiguous {
            count,
            inner: Box::new(inner),
        }
    }

    /// `MPI_Type_vector(count, blocklen, stride, inner)`.
    pub fn vector(count: usize, blocklen: usize, stride: usize, inner: Datatype) -> Datatype {
        Datatype::Vector {
            count,
            blocklen,
            stride,
            inner: Box::new(inner),
        }
    }

    /// `MPI_Type_indexed(blocklens, displs, inner)`.
    pub fn indexed(blocklens: Vec<usize>, displs: Vec<usize>, inner: Datatype) -> Datatype {
        Datatype::Indexed {
            blocklens,
            displs,
            inner: Box::new(inner),
        }
    }

    /// `MPI_Type_create_resized(inner, extent)`.
    pub fn resized(inner: Datatype, extent: usize) -> Datatype {
        Datatype::Resized {
            inner: Box::new(inner),
            extent,
        }
    }

    /// The paper's `MPI_RECT`: a contiguous run of 4 doubles (§4.2.1).
    pub fn mpi_rect() -> Datatype {
        Datatype::contiguous(4, Datatype::Double)
    }

    /// The paper's `MPI_POINT`: 2 contiguous doubles.
    pub fn mpi_point() -> Datatype {
        Datatype::contiguous(2, Datatype::Double)
    }

    /// The paper's `MPI_LINE` (a segment): 2 contiguous points.
    pub fn mpi_line() -> Datatype {
        Datatype::contiguous(2, Datatype::mpi_point())
    }

    /// An `MPI_RECT` expressed as a struct of four named doubles —
    /// the `MPI_Type_struct` variant Figure 12 benchmarks against the
    /// contiguous variant.
    pub fn mpi_rect_struct() -> Datatype {
        Datatype::Struct {
            fields: (0..4)
                .map(|i| StructField {
                    offset: i * 8,
                    count: 1,
                    ty: Datatype::Double,
                })
                .collect(),
            extent: 32,
        }
    }

    /// Payload bytes of one instance (sum of leaf sizes, gaps excluded).
    pub fn size(&self) -> usize {
        match self {
            Datatype::Byte => 1,
            Datatype::Int32 => 4,
            Datatype::Int64 | Datatype::Double => 8,
            Datatype::Contiguous { count, inner } => count * inner.size(),
            Datatype::Vector {
                count,
                blocklen,
                inner,
                ..
            } => count * blocklen * inner.size(),
            Datatype::Indexed {
                blocklens, inner, ..
            } => blocklens.iter().sum::<usize>() * inner.size(),
            Datatype::Struct { fields, .. } => fields.iter().map(|f| f.count * f.ty.size()).sum(),
            Datatype::Resized { inner, .. } => inner.size(),
        }
    }

    /// Extent of one instance: the span from the first to one past the
    /// last byte, gaps included. Tiling a file view advances by the extent.
    pub fn extent(&self) -> usize {
        match self {
            Datatype::Byte => 1,
            Datatype::Int32 => 4,
            Datatype::Int64 | Datatype::Double => 8,
            Datatype::Contiguous { count, inner } => count * inner.extent(),
            Datatype::Vector {
                count,
                blocklen,
                stride,
                inner,
            } => {
                if *count == 0 {
                    0
                } else {
                    // Last block starts at (count-1)*stride and spans blocklen.
                    ((count - 1) * stride + blocklen) * inner.extent()
                }
            }
            Datatype::Indexed {
                blocklens,
                displs,
                inner,
            } => blocklens
                .iter()
                .zip(displs)
                .map(|(l, d)| (d + l) * inner.extent())
                .max()
                .unwrap_or(0),
            Datatype::Struct { extent, .. } => *extent,
            Datatype::Resized { extent, .. } => *extent,
        }
    }

    /// Flattens one instance into coalesced `(byte_offset, byte_len)`
    /// fragments relative to the instance start, in ascending offset order.
    pub fn fragments(&self) -> Vec<(usize, usize)> {
        let mut frags = Vec::new();
        self.collect_fragments(0, &mut frags);
        frags.sort_unstable();
        // Coalesce adjacent runs.
        let mut out: Vec<(usize, usize)> = Vec::with_capacity(frags.len());
        for (off, len) in frags {
            if let Some(last) = out.last_mut() {
                if last.0 + last.1 == off {
                    last.1 += len;
                    continue;
                }
            }
            out.push((off, len));
        }
        out
    }

    fn collect_fragments(&self, base: usize, out: &mut Vec<(usize, usize)>) {
        match self {
            Datatype::Byte | Datatype::Int32 | Datatype::Int64 | Datatype::Double => {
                out.push((base, self.size()));
            }
            Datatype::Contiguous { count, inner } => {
                let ext = inner.extent();
                // A contiguous run of leaf types is a single fragment.
                if inner.is_dense() {
                    out.push((base, count * ext));
                } else {
                    for i in 0..*count {
                        inner.collect_fragments(base + i * ext, out);
                    }
                }
            }
            Datatype::Vector {
                count,
                blocklen,
                stride,
                inner,
            } => {
                let ext = inner.extent();
                for i in 0..*count {
                    let start = base + i * stride * ext;
                    if inner.is_dense() {
                        out.push((start, blocklen * ext));
                    } else {
                        for j in 0..*blocklen {
                            inner.collect_fragments(start + j * ext, out);
                        }
                    }
                }
            }
            Datatype::Indexed {
                blocklens,
                displs,
                inner,
            } => {
                let ext = inner.extent();
                for (l, d) in blocklens.iter().zip(displs) {
                    let start = base + d * ext;
                    if inner.is_dense() {
                        out.push((start, l * ext));
                    } else {
                        for j in 0..*l {
                            inner.collect_fragments(start + j * ext, out);
                        }
                    }
                }
            }
            Datatype::Struct { fields, .. } => {
                for f in fields {
                    let ext = f.ty.extent();
                    if f.ty.is_dense() {
                        out.push((base + f.offset, f.count * ext));
                    } else {
                        for j in 0..f.count {
                            f.ty.collect_fragments(base + f.offset + j * ext, out);
                        }
                    }
                }
            }
            Datatype::Resized { inner, .. } => inner.collect_fragments(base, out),
        }
    }

    /// `true` when size == extent, i.e. the layout has no gaps.
    pub fn is_dense(&self) -> bool {
        self.size() == self.extent()
    }

    /// Validates internal consistency (indexed arrays same length,
    /// non-overlapping struct fields are *not* checked — MPI permits them).
    pub fn validate(&self) -> Result<(), MsimError> {
        match self {
            Datatype::Indexed {
                blocklens,
                displs,
                inner,
            } => {
                if blocklens.len() != displs.len() {
                    return Err(MsimError::BadDatatype(format!(
                        "indexed: {} blocklens vs {} displs",
                        blocklens.len(),
                        displs.len()
                    )));
                }
                inner.validate()
            }
            Datatype::Vector {
                blocklen,
                stride,
                inner,
                ..
            } => {
                if stride < blocklen {
                    return Err(MsimError::BadDatatype(format!(
                        "vector: stride {stride} < blocklen {blocklen}"
                    )));
                }
                inner.validate()
            }
            Datatype::Contiguous { inner, .. } => inner.validate(),
            Datatype::Resized { inner, extent } => {
                if *extent < inner.extent() {
                    return Err(MsimError::BadDatatype(format!(
                        "resized extent {extent} below inner extent {}",
                        inner.extent()
                    )));
                }
                inner.validate()
            }
            Datatype::Struct { fields, extent } => {
                for f in fields {
                    f.ty.validate()?;
                    if f.offset + f.count * f.ty.extent() > *extent {
                        return Err(MsimError::BadDatatype(format!(
                            "struct field at offset {} overruns extent {extent}",
                            f.offset
                        )));
                    }
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Gathers one instance's payload from `src` (which must cover the
    /// extent) into a packed buffer.
    pub fn pack(&self, src: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.size());
        for (off, len) in self.fragments() {
            out.extend_from_slice(&src[off..off + len]);
        }
        out
    }

    /// Scatters a packed buffer back into `dst` according to the layout.
    pub fn unpack(&self, packed: &[u8], dst: &mut [u8]) {
        let mut pos = 0;
        for (off, len) in self.fragments() {
            dst[off..off + len].copy_from_slice(&packed[pos..pos + len]);
            pos += len;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(Datatype::Byte.size(), 1);
        assert_eq!(Datatype::Int32.size(), 4);
        assert_eq!(Datatype::Double.size(), 8);
        assert!(Datatype::Double.is_dense());
    }

    #[test]
    fn mpi_rect_is_four_doubles() {
        let r = Datatype::mpi_rect();
        assert_eq!(r.size(), 32);
        assert_eq!(r.extent(), 32);
        assert_eq!(r.fragments(), vec![(0, 32)]);
        // The struct formulation has the identical layout.
        let s = Datatype::mpi_rect_struct();
        assert_eq!(s.size(), 32);
        assert_eq!(s.extent(), 32);
        assert_eq!(s.fragments(), vec![(0, 32)]);
    }

    #[test]
    fn vector_with_gaps() {
        // 3 blocks of 2 doubles every 4 doubles: the column-of-a-matrix
        // pattern from the paper's background section.
        let v = Datatype::vector(3, 2, 4, Datatype::Double);
        assert_eq!(v.size(), 3 * 2 * 8);
        assert_eq!(v.extent(), (2 * 4 + 2) * 8);
        assert!(!v.is_dense());
        assert_eq!(v.fragments(), vec![(0, 16), (32, 16), (64, 16)]);
    }

    #[test]
    fn contiguous_of_vector_tiles_by_extent() {
        let v = Datatype::vector(2, 1, 2, Datatype::Byte); // bytes at 0 and 2
        assert_eq!(v.extent(), 3);
        let c = Datatype::contiguous(2, v);
        // Instance 1 tiles at base 3 (bytes 3 and 5); bytes 2 and 3 coalesce.
        assert_eq!(c.fragments(), vec![(0, 1), (2, 2), (5, 1)]);
    }

    #[test]
    fn indexed_fragments_follow_displacements() {
        let idx = Datatype::indexed(vec![2, 1, 3], vec![0, 4, 8], Datatype::Double);
        assert_eq!(idx.size(), 6 * 8);
        assert_eq!(idx.extent(), 11 * 8);
        assert_eq!(idx.fragments(), vec![(0, 16), (32, 8), (64, 24)]);
    }

    #[test]
    fn struct_fragments_respect_offsets() {
        // {int32 at 0, double at 8} with extent 16 (padding after the int).
        let s = Datatype::Struct {
            fields: vec![
                StructField {
                    offset: 0,
                    count: 1,
                    ty: Datatype::Int32,
                },
                StructField {
                    offset: 8,
                    count: 1,
                    ty: Datatype::Double,
                },
            ],
            extent: 16,
        };
        assert_eq!(s.size(), 12);
        assert_eq!(s.extent(), 16);
        assert_eq!(s.fragments(), vec![(0, 4), (8, 8)]);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn pack_unpack_round_trip_with_gaps() {
        let v = Datatype::vector(2, 1, 2, Datatype::Int32); // int at 0, int at 8
        let src: Vec<u8> = (0u8..12).collect();
        let packed = v.pack(&src);
        assert_eq!(packed, vec![0, 1, 2, 3, 8, 9, 10, 11]);
        let mut dst = vec![0xFFu8; 12];
        v.unpack(&packed, &mut dst);
        assert_eq!(&dst[0..4], &src[0..4]);
        assert_eq!(&dst[8..12], &src[8..12]);
        assert_eq!(&dst[4..8], &[0xFF; 4]); // gap untouched
    }

    #[test]
    fn validation_catches_inconsistencies() {
        let bad = Datatype::indexed(vec![1, 2], vec![0], Datatype::Byte);
        assert!(bad.validate().is_err());
        let bad2 = Datatype::vector(2, 4, 2, Datatype::Byte);
        assert!(bad2.validate().is_err());
        let bad3 = Datatype::Struct {
            fields: vec![StructField {
                offset: 12,
                count: 1,
                ty: Datatype::Double,
            }],
            extent: 16,
        };
        assert!(bad3.validate().is_err());
    }

    #[test]
    fn fragments_coalesce_adjacent_runs() {
        // Indexed blocks that touch: [0..2) and [2..4) doubles.
        let idx = Datatype::indexed(vec![2, 2], vec![0, 2], Datatype::Double);
        assert_eq!(idx.fragments(), vec![(0, 32)]);
        assert!(idx.is_dense());
    }
}
