//! MPI-IO over the simulated parallel filesystem: the paper's three access
//! levels.
//!
//! | Level | Pattern        | Mode        | Entry point                 |
//! |-------|----------------|-------------|-----------------------------|
//! | 0     | contiguous     | independent | [`MpiFile::read_at`]        |
//! | 1     | contiguous     | collective  | [`MpiFile::read_at_all`]    |
//! | 3     | non-contiguous | collective  | [`MpiFile::read_all`] (view)|
//!
//! Collective reads implement ROMIO-style **two-phase I/O**: a subset of
//! ranks (*aggregators*, at most one per node) read contiguous file
//! domains in `cb_buffer_size` cycles, then redistribute to the real
//! targets with an `Alltoallv`. On Lustre the aggregator count follows the
//! divisor rule the paper reports (§5.1.1): when the stripe count is at
//! least the node count, the number of readers is the largest divisor of
//! the stripe count that is ≤ the node count — which is why 24 nodes
//! reading a 64-OST file get only 16 readers and Figure 11 shows cliffs at
//! 24, 48 and 72 nodes.

use crate::comm::Comm;
use crate::datatype::Datatype;
use crate::hints::{Hints, ROMIO_MAX_IO_BYTES};
use crate::{MsimError, Result};
use mvio_pfs::{FsKind, IoRequest, SimFile, SimFs};
use std::sync::Arc;

/// The three MPI-IO access levels the paper benchmarks (its Table 1; the
/// unused "Level 2" — non-contiguous independent — is omitted there too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessLevel {
    /// Contiguous + independent (`MPI_File_read_at`).
    Level0,
    /// Contiguous + collective (`MPI_File_read_at_all`).
    Level1,
    /// Non-contiguous + collective (file view + `MPI_File_read_all`).
    Level3,
}

impl AccessLevel {
    /// Human-readable description matching the paper's Table 1.
    pub fn describe(self) -> &'static str {
        match self {
            AccessLevel::Level0 => "contiguous and independent",
            AccessLevel::Level1 => "contiguous and collective",
            AccessLevel::Level3 => "non-contiguous and collective",
        }
    }
}

/// A file view: displacement + an elementary type + a (possibly gapped)
/// filetype tiled across the file, exactly `MPI_File_set_view`.
#[derive(Debug, Clone)]
pub struct FileView {
    /// Byte displacement where the view begins.
    pub disp: u64,
    /// The filetype tiled from `disp` onward.
    pub filetype: Datatype,
}

impl FileView {
    /// Creates a view after validating the datatype.
    pub fn new(disp: u64, filetype: Datatype) -> Result<Self> {
        filetype.validate()?;
        Ok(FileView { disp, filetype })
    }

    /// Absolute `(offset, len)` fragments covering `payload` bytes of
    /// visible data, starting `skip_instances` filetype instances into the
    /// view (each rank typically skips `rank` instances for round-robin
    /// layouts).
    pub fn fragments(
        &self,
        skip_instances: u64,
        stride_instances: u64,
        payload: usize,
    ) -> Vec<(u64, u64)> {
        let ext = self.filetype.extent() as u64;
        let size = self.filetype.size();
        let inner = self.filetype.fragments();
        let mut out = Vec::new();
        let mut remaining = payload;
        let mut instance = skip_instances;
        while remaining > 0 {
            let base = self.disp + instance * ext;
            for &(off, len) in &inner {
                if remaining == 0 {
                    break;
                }
                let take = len.min(remaining);
                out.push((base + off as u64, take as u64));
                remaining -= take;
            }
            instance += stride_instances;
            if size == 0 {
                break; // degenerate filetype; avoid infinite loop
            }
        }
        out
    }
}

/// An open MPI file handle bound to one simulated filesystem.
pub struct MpiFile {
    fs: Arc<SimFs>,
    file: Arc<SimFile>,
    hints: Hints,
    view: Option<FileView>,
}

impl MpiFile {
    /// Opens an existing file (the `MPI_File_open` analogue; call it from
    /// every rank — it is cheap and local in the simulator).
    pub fn open(fs: &Arc<SimFs>, path: &str, hints: Hints) -> Result<Self> {
        let file = fs.open(path)?;
        Ok(MpiFile {
            fs: Arc::clone(fs),
            file,
            hints,
            view: None,
        })
    }

    /// The underlying simulated file.
    pub fn file(&self) -> &Arc<SimFile> {
        &self.file
    }

    /// File length in bytes.
    pub fn len(&self) -> u64 {
        self.file.len()
    }

    /// `true` when the file is empty.
    pub fn is_empty(&self) -> bool {
        self.file.is_empty()
    }

    /// The hints this handle was opened with.
    pub fn hints(&self) -> Hints {
        self.hints
    }

    /// Sets the file view for Level-3 access (`MPI_File_set_view`).
    pub fn set_view(&mut self, view: FileView) {
        self.view = Some(view);
    }

    fn check_count(len: u64) -> Result<()> {
        if len > ROMIO_MAX_IO_BYTES {
            Err(MsimError::CountOverflow { requested: len })
        } else {
            Ok(())
        }
    }

    // ----- Level 0: contiguous + independent ------------------------------

    /// `MPI_File_read_at`: independent contiguous read. Returns bytes read
    /// (short at EOF). Advances the rank's clock by the modelled I/O time.
    pub fn read_at(&self, comm: &mut Comm, offset: u64, buf: &mut [u8]) -> Result<usize> {
        Self::check_count(buf.len() as u64)?;
        let done = self.file.read_at(offset, buf, &comm.io_ctx())?;
        comm.advance_to(done.completion);
        Ok(done.bytes as usize)
    }

    /// `MPI_File_write_at`: independent contiguous write.
    pub fn write_at(&self, comm: &mut Comm, offset: u64, buf: &[u8]) -> Result<usize> {
        Self::check_count(buf.len() as u64)?;
        let done = self.file.write_at(offset, buf, &comm.io_ctx())?;
        comm.advance_to(done.completion);
        Ok(done.bytes as usize)
    }

    // ----- Level 1: contiguous + collective -------------------------------

    /// `MPI_File_read_at_all`: collective contiguous read via two-phase
    /// I/O. All ranks must call it; per-rank `(offset, buf)` may differ
    /// (zero-length participation is allowed, as in Algorithm 1's last
    /// iteration). Returns bytes read into `buf`.
    pub fn read_at_all(&self, comm: &mut Comm, offset: u64, buf: &mut [u8]) -> Result<usize> {
        Self::check_count(buf.len() as u64)?;
        // Functional half: copy this rank's bytes now (untimed peek); the
        // timing half is computed collectively below.
        let got = self.file.peek(offset, buf);

        let topo = comm.topology();
        let nodes = topo.nodes();
        let cost = *comm.cost_model();
        let stripe = self.file.stripe();
        let ost_base = self.file.ost_base();
        let fs_kind = self.fs.config().kind;
        let hints = self.hints;
        let engine = Arc::clone(self.fs.engine());
        let p = comm.size();

        let (_, _) = comm.collective((offset, got as u64), move |reqs: Vec<(u64, u64)>, times| {
            let start = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            // Aggregate file domain spanned by the collective.
            let lo = reqs.iter().filter(|r| r.1 > 0).map(|r| r.0).min();
            let hi = reqs.iter().filter(|r| r.1 > 0).map(|r| r.0 + r.1).max();
            let (lo, hi) = match (lo, hi) {
                (Some(l), Some(h)) => (l, h),
                _ => return ((), vec![start; reqs.len()]), // nothing to read
            };
            let readers = select_readers(fs_kind, stripe.count, nodes, hints.cb_nodes);
            let leaders = topo.node_leaders();

            // Contiguous equal file domains, one per aggregator, read
            // in cb_buffer_size cycles.
            let span = hi - lo;
            let domain = span.div_ceil(readers as u64).max(1);
            let mut batch = Vec::new();
            for (i, leader) in leaders.iter().take(readers).enumerate() {
                let d_lo = lo + i as u64 * domain;
                let d_hi = (d_lo + domain).min(hi);
                let mut pos = d_lo;
                while pos < d_hi {
                    let len = (d_hi - pos).min(hints.cb_buffer_size);
                    batch.push(IoRequest {
                        rank: *leader,
                        node: topo.node_of(*leader),
                        now: start,
                        offset: pos,
                        len,
                    });
                    pos += len;
                }
            }
            let completions = engine.io_batch(stripe, ost_base, &batch);
            let read_done = completions
                .iter()
                .map(|c| c.completion)
                .fold(start, f64::max);

            // Redistribution: aggregators scatter each rank's bytes.
            let exits: Vec<f64> = reqs
                .iter()
                .map(|&(_, len)| read_done + cost.alltoall(p.min(readers.max(2)), len, len))
                .collect();
            ((), exits)
        });
        Ok(got)
    }

    /// `MPI_File_write_at_all`: collective contiguous write via two-phase
    /// I/O (aggregators gather and flush contiguous domains). The paper
    /// needs this for "the output … written to a single file in which the
    /// storage order corresponds to that of the global grid data layout".
    pub fn write_at_all(&self, comm: &mut Comm, offset: u64, buf: &[u8]) -> Result<usize> {
        Self::check_count(buf.len() as u64)?;
        // Functional half: place this rank's bytes (untimed; aggregated
        // timing is modelled collectively below).
        self.file.poke(offset, buf);

        let topo = comm.topology();
        let nodes = topo.nodes();
        let cost = *comm.cost_model();
        let stripe = self.file.stripe();
        let ost_base = self.file.ost_base();
        let fs_kind = self.fs.config().kind;
        let hints = self.hints;
        let engine = Arc::clone(self.fs.engine());
        let p = comm.size();
        let len = buf.len() as u64;

        let (_, _) = comm.collective((offset, len), move |reqs: Vec<(u64, u64)>, times| {
            let start = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let lo = reqs.iter().filter(|r| r.1 > 0).map(|r| r.0).min();
            let hi = reqs.iter().filter(|r| r.1 > 0).map(|r| r.0 + r.1).max();
            let (lo, hi) = match (lo, hi) {
                (Some(l), Some(h)) => (l, h),
                _ => return ((), vec![start; reqs.len()]),
            };
            let writers = select_readers(fs_kind, stripe.count, nodes, hints.cb_nodes);
            let leaders = topo.node_leaders();

            // Phase 1: ranks ship their data to the aggregators.
            let gather_done = reqs
                .iter()
                .map(|&(_, l)| start + cost.alltoall(p.min(writers.max(2)), l, l))
                .fold(start, f64::max);

            // Phase 2: aggregators flush contiguous domains in cycles.
            let span = hi - lo;
            let domain = span.div_ceil(writers as u64).max(1);
            let mut batch = Vec::new();
            for (i, leader) in leaders.iter().take(writers).enumerate() {
                let d_lo = lo + i as u64 * domain;
                let d_hi = (d_lo + domain).min(hi);
                let mut pos = d_lo;
                while pos < d_hi {
                    let l = (d_hi - pos).min(hints.cb_buffer_size);
                    batch.push(IoRequest {
                        rank: *leader,
                        node: topo.node_of(*leader),
                        now: gather_done,
                        offset: pos,
                        len: l,
                    });
                    pos += l;
                }
            }
            let completions = engine.io_batch(stripe, ost_base, &batch);
            let done = completions
                .iter()
                .map(|c| c.completion)
                .fold(gather_done, f64::max);
            ((), vec![done; reqs.len()])
        });
        Ok(buf.len())
    }

    /// `MPI_File_write_all` through the current file view: non-contiguous
    /// collective write (rank instances as in [`MpiFile::read_all`]).
    pub fn write_all(
        &self,
        comm: &mut Comm,
        skip_instances: u64,
        stride_instances: u64,
        buf: &[u8],
    ) -> Result<usize> {
        Self::check_count(buf.len() as u64)?;
        let view = self
            .view
            .as_ref()
            .ok_or_else(|| MsimError::Collective("write_all requires a file view".into()))?;
        let frags = view.fragments(skip_instances, stride_instances, buf.len());

        // Functional half: scatter the user buffer into the fragments.
        let mut pos = 0usize;
        for &(off, len) in &frags {
            self.file.poke(off, &buf[pos..pos + len as usize]);
            pos += len as usize;
        }

        // Timing: reuse the collective two-phase model (same mechanics in
        // both directions), plus per-fragment datatype processing.
        let topo = comm.topology();
        let nodes = topo.nodes();
        let cost = *comm.cost_model();
        let stripe = self.file.stripe();
        let ost_base = self.file.ost_base();
        let fs_kind = self.fs.config().kind;
        let hints = self.hints;
        let engine = Arc::clone(self.fs.engine());
        let p = comm.size();
        let my_bytes: u64 = frags.iter().map(|f| f.1).sum();
        let my_span = frags
            .first()
            .map(|f| (f.0, frags.last().unwrap().0 + frags.last().unwrap().1));

        let (_, _) = comm.collective(
            (my_span, my_bytes, frags.len() as u64),
            move |inputs: Vec<(Option<(u64, u64)>, u64, u64)>, times| {
                let start = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let lo = inputs.iter().filter_map(|i| i.0).map(|s| s.0).min();
                let hi = inputs.iter().filter_map(|i| i.0).map(|s| s.1).max();
                let (lo, hi) = match (lo, hi) {
                    (Some(l), Some(h)) => (l, h),
                    _ => return ((), vec![start; inputs.len()]),
                };
                let writers = select_readers(fs_kind, stripe.count, nodes, hints.cb_nodes);
                let leaders = topo.node_leaders();
                let gather_done = inputs
                    .iter()
                    .map(|&(_, bytes, nfrags)| {
                        start
                            + cost.alltoall(p.min(writers.max(2)), bytes, bytes)
                            + nfrags as f64 * (cost.comm_latency + 2.0e-6)
                            + bytes as f64 * cost.byte_copy
                    })
                    .fold(start, f64::max);
                let span = hi - lo;
                let domain = span.div_ceil(writers as u64).max(1);
                let mut batch = Vec::new();
                for (i, leader) in leaders.iter().take(writers).enumerate() {
                    let d_lo = lo + i as u64 * domain;
                    let d_hi = (d_lo + domain).min(hi);
                    let mut pos = d_lo;
                    while pos < d_hi {
                        let l = (d_hi - pos).min(hints.cb_buffer_size);
                        batch.push(IoRequest {
                            rank: *leader,
                            node: topo.node_of(*leader),
                            now: gather_done,
                            offset: pos,
                            len: l,
                        });
                        pos += l;
                    }
                }
                let completions = engine.io_batch(stripe, ost_base, &batch);
                let done = completions
                    .iter()
                    .map(|c| c.completion)
                    .fold(gather_done, f64::max);
                ((), vec![done; inputs.len()])
            },
        );
        Ok(buf.len())
    }

    // ----- Level 3: non-contiguous + collective ---------------------------

    /// `MPI_File_read_all` through the current file view: non-contiguous
    /// collective read. Each rank reads `buf.len()` payload bytes from its
    /// view fragments, where the rank's instances are
    /// `skip + k·stride` for `k = 0, 1, …` (round-robin block
    /// distribution: `skip = rank`, `stride = size`).
    pub fn read_all(
        &self,
        comm: &mut Comm,
        skip_instances: u64,
        stride_instances: u64,
        buf: &mut [u8],
    ) -> Result<usize> {
        Self::check_count(buf.len() as u64)?;
        let view = self
            .view
            .as_ref()
            .ok_or_else(|| MsimError::Collective("read_all requires a file view".into()))?;
        let frags = view.fragments(skip_instances, stride_instances, buf.len());

        // Functional half: gather fragments into the user buffer.
        let mut pos = 0usize;
        let mut got = 0usize;
        for &(off, len) in &frags {
            let n = self.file.peek(off, &mut buf[pos..pos + len as usize]);
            got += n;
            pos += len as usize;
            if (n as u64) < len {
                break; // EOF inside a fragment
            }
        }

        let topo = comm.topology();
        let nodes = topo.nodes();
        let cost = *comm.cost_model();
        let stripe = self.file.stripe();
        let ost_base = self.file.ost_base();
        let fs_kind = self.fs.config().kind;
        let hints = self.hints;
        let engine = Arc::clone(self.fs.engine());
        let p = comm.size();

        let my_bytes: u64 = frags.iter().map(|f| f.1).sum();
        let my_span = frags
            .first()
            .map(|f| (f.0, frags.last().unwrap().0 + frags.last().unwrap().1));

        let (_, _) = comm.collective(
            (my_span, my_bytes, frags.len() as u64),
            move |inputs: Vec<(Option<(u64, u64)>, u64, u64)>, times| {
                let start = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let lo = inputs.iter().filter_map(|i| i.0).map(|s| s.0).min();
                let hi = inputs.iter().filter_map(|i| i.0).map(|s| s.1).max();
                let (lo, hi) = match (lo, hi) {
                    (Some(l), Some(h)) => (l, h),
                    _ => return ((), vec![start; inputs.len()]),
                };
                let readers = select_readers(fs_kind, stripe.count, nodes, hints.cb_nodes);
                let leaders = topo.node_leaders();

                // Data sieving: aggregators read the covering span (gaps
                // included) in cycles.
                let span = hi - lo;
                let domain = span.div_ceil(readers as u64).max(1);
                let mut batch = Vec::new();
                for (i, leader) in leaders.iter().take(readers).enumerate() {
                    let d_lo = lo + i as u64 * domain;
                    let d_hi = (d_lo + domain).min(hi);
                    let mut pos = d_lo;
                    while pos < d_hi {
                        let len = (d_hi - pos).min(hints.cb_buffer_size);
                        batch.push(IoRequest {
                            rank: *leader,
                            node: topo.node_of(*leader),
                            now: start,
                            offset: pos,
                            len,
                        });
                        pos += len;
                    }
                }
                let completions = engine.io_batch(stripe, ost_base, &batch);
                let read_done = completions
                    .iter()
                    .map(|c| c.completion)
                    .fold(start, f64::max);

                // Redistribution + per-fragment datatype processing: the
                // non-contiguous overhead the paper's Figures 15–16 show.
                let exits: Vec<f64> = inputs
                    .iter()
                    .map(|&(_, bytes, nfrags)| {
                        read_done
                            + cost.alltoall(p.min(readers.max(2)), bytes, bytes)
                            + nfrags as f64 * (cost.comm_latency + 2.0e-6)
                            + bytes as f64 * cost.byte_copy
                    })
                    .collect();
                ((), exits)
            },
        );
        Ok(got)
    }
}

/// The aggregator ("reader") selection rule.
///
/// Lustre/ROMIO (paper §5.1.1 and McLay et al. \[21\]): one aggregator per
/// node when the node count divides the stripe count; otherwise, when the
/// stripe count ≥ node count, the largest divisor of the stripe count that
/// is ≤ the node count; when the stripe count < node count, one aggregator
/// per OST. The `cb_nodes` hint only lowers the candidate node count.
///
/// GPFS: one aggregator per node (capped by `cb_nodes`).
pub fn select_readers(
    fs_kind: FsKind,
    stripe_count: u32,
    nodes: usize,
    cb_nodes: Option<usize>,
) -> usize {
    let target = cb_nodes.unwrap_or(nodes).min(nodes).max(1);
    match fs_kind {
        FsKind::Lustre => {
            let sc = stripe_count as usize;
            if sc >= target {
                (1..=target)
                    .rev()
                    .find(|d| sc.is_multiple_of(*d))
                    .unwrap_or(1)
            } else {
                sc
            }
        }
        FsKind::Gpfs => target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use crate::world::{World, WorldConfig};
    use mvio_pfs::{FsConfig, StripeSpec};

    #[test]
    fn reader_rule_matches_papers_cases() {
        use FsKind::Lustre;
        // 64-OST file (Figure 11's stripe count):
        assert_eq!(select_readers(Lustre, 64, 16, None), 16); // divisor -> all nodes
        assert_eq!(select_readers(Lustre, 64, 24, None), 16); // paper: "only 16 readers"
        assert_eq!(select_readers(Lustre, 64, 32, None), 32);
        assert_eq!(select_readers(Lustre, 64, 48, None), 32); // paper: "32 readers"
        assert_eq!(select_readers(Lustre, 64, 64, None), 64);
        // stripe count below node count: one reader per OST.
        assert_eq!(select_readers(Lustre, 64, 72, None), 64);
        // 96 OSTs, 72 nodes: largest divisor of 96 <= 72 is 48.
        assert_eq!(select_readers(Lustre, 96, 72, None), 48);
        // cb_nodes only lowers the candidate count.
        assert_eq!(select_readers(Lustre, 64, 32, Some(8)), 8);
        // GPFS: per-node aggregators.
        assert_eq!(select_readers(FsKind::Gpfs, 16, 24, None), 24);
        assert_eq!(select_readers(FsKind::Gpfs, 16, 24, Some(4)), 4);
    }

    fn make_fs_with_file(bytes: usize, stripe: StripeSpec) -> Arc<SimFs> {
        let fs = SimFs::new(FsConfig::lustre_comet());
        let f = fs.create("data.bin", Some(stripe)).unwrap();
        let pattern: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
        f.append(pattern);
        fs
    }

    #[test]
    fn level0_reads_correct_bytes() {
        let fs = make_fs_with_file(1 << 20, StripeSpec::new(4, 64 << 10));
        let out = World::run(WorldConfig::new(Topology::new(2, 2)), |comm| {
            let f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
            let chunk = (1 << 20) / 4;
            let off = comm.rank() * chunk;
            let mut buf = vec![0u8; chunk];
            let n = f.read_at(comm, off as u64, &mut buf).unwrap();
            assert_eq!(n, chunk);
            // Verify contents against the generating pattern.
            for (i, &b) in buf.iter().enumerate() {
                assert_eq!(b, ((off + i) % 251) as u8);
            }
            comm.now()
        });
        assert!(out.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn level0_rejects_over_2gib() {
        let fs = make_fs_with_file(1024, StripeSpec::new(1, 1024));
        World::run(WorldConfig::new(Topology::single_node(1)), |comm| {
            let f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
            // A >2 GiB buffer would be absurd to allocate; check the guard
            // through write_at's length check with a fake huge slice is not
            // possible, so validate the checker directly.
            assert!(MpiFile::check_count(ROMIO_MAX_IO_BYTES).is_ok());
            assert!(matches!(
                MpiFile::check_count(ROMIO_MAX_IO_BYTES + 1),
                Err(MsimError::CountOverflow { .. })
            ));
            let mut small = [0u8; 8];
            f.read_at(comm, 0, &mut small).unwrap();
        });
    }

    #[test]
    fn level1_collective_read_delivers_data_and_time() {
        let total = 1 << 20;
        let fs = make_fs_with_file(total, StripeSpec::new(4, 64 << 10));
        let out = World::run(WorldConfig::new(Topology::new(4, 4)), |comm| {
            let f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
            let chunk = total / 16;
            let off = comm.rank() * chunk;
            let mut buf = vec![0u8; chunk];
            let n = f.read_at_all(comm, off as u64, &mut buf).unwrap();
            assert_eq!(n, chunk);
            for (i, &b) in buf.iter().enumerate() {
                assert_eq!(b, ((off + i) % 251) as u8);
            }
            comm.now()
        });
        // Collectives synchronize: completions are close but include
        // per-rank redistribution terms; all positive.
        assert!(out.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn level1_allows_zero_length_participants() {
        let fs = make_fs_with_file(4096, StripeSpec::new(2, 1024));
        World::run(WorldConfig::new(Topology::new(1, 4)), |comm| {
            let f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
            // Only rank 0 reads; others pass empty buffers (Algorithm 1's
            // last-iteration behaviour).
            let mut buf = vec![0u8; if comm.rank() == 0 { 4096 } else { 0 }];
            let n = f.read_at_all(comm, 0, &mut buf).unwrap();
            if comm.rank() == 0 {
                assert_eq!(n, 4096);
            } else {
                assert_eq!(n, 0);
            }
        });
    }

    #[test]
    fn level3_round_robin_view_reads_interleaved_blocks() {
        // File of 16 records of 32 bytes; 4 ranks read records round-robin
        // (rank r gets records r, r+4, r+8, r+12).
        let record = 32usize;
        let nrec = 16usize;
        let fs = make_fs_with_file(record * nrec, StripeSpec::new(2, 64));
        World::run(WorldConfig::new(Topology::new(2, 2)), |comm| {
            let mut f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
            let filetype = Datatype::contiguous(record, Datatype::Byte);
            f.set_view(FileView::new(0, filetype).unwrap());
            let mut buf = vec![0u8; record * nrec / 4];
            let n = f
                .read_all(comm, comm.rank() as u64, comm.size() as u64, &mut buf)
                .unwrap();
            assert_eq!(n, buf.len());
            // Record k starts at byte 32k; verify first byte of each of my
            // records.
            for (j, chunk) in buf.chunks(record).enumerate() {
                let k = comm.rank() + 4 * j;
                assert_eq!(chunk[0], ((k * record) % 251) as u8);
            }
        });
    }

    #[test]
    fn level3_requires_a_view() {
        let fs = make_fs_with_file(1024, StripeSpec::new(1, 1024));
        World::run(WorldConfig::new(Topology::single_node(1)), |comm| {
            let f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
            let mut buf = vec![0u8; 16];
            assert!(matches!(
                f.read_all(comm, 0, 1, &mut buf),
                Err(MsimError::Collective(_))
            ));
        });
    }

    #[test]
    fn collective_write_assembles_single_file() {
        // The paper's use case: per-rank grid output written so "the
        // output file is same as if produced sequentially".
        let fs = SimFs::new(FsConfig::lustre_comet());
        fs.create("out.bin", Some(StripeSpec::new(4, 1024)))
            .unwrap();
        World::run(WorldConfig::new(Topology::new(2, 2)), |comm| {
            let f = MpiFile::open(&fs, "out.bin", Hints::default()).unwrap();
            let chunk = vec![comm.rank() as u8 + 1; 512];
            let n = f
                .write_at_all(comm, comm.rank() as u64 * 512, &chunk)
                .unwrap();
            assert_eq!(n, 512);
            assert!(comm.now() > 0.0);
        });
        let data = fs.open("out.bin").unwrap().snapshot();
        assert_eq!(data.len(), 4 * 512);
        for rank in 0..4 {
            assert!(data[rank * 512..(rank + 1) * 512]
                .iter()
                .all(|&b| b == rank as u8 + 1));
        }
    }

    #[test]
    fn level3_write_scatters_round_robin_blocks() {
        // 4 ranks write 32-byte records round-robin: the row-major grid
        // output layout of Figure 4, in reverse direction.
        let record = 32usize;
        let nrec = 16usize;
        let fs = SimFs::new(FsConfig::lustre_comet());
        fs.create("grid.bin", Some(StripeSpec::new(2, 64))).unwrap();
        World::run(WorldConfig::new(Topology::new(2, 2)), |comm| {
            let mut f = MpiFile::open(&fs, "grid.bin", Hints::default()).unwrap();
            let filetype = Datatype::contiguous(record, Datatype::Byte);
            f.set_view(FileView::new(0, filetype).unwrap());
            // Rank r writes records r, r+4, r+8, r+12, each filled with
            // the record index.
            let my_records: Vec<usize> = (comm.rank()..nrec).step_by(comm.size()).collect();
            let mut buf = Vec::with_capacity(my_records.len() * record);
            for &k in &my_records {
                buf.extend(std::iter::repeat_n(k as u8, record));
            }
            let n = f
                .write_all(comm, comm.rank() as u64, comm.size() as u64, &buf)
                .unwrap();
            assert_eq!(n, buf.len());
        });
        // The assembled file must equal the sequential row-major layout.
        let data = fs.open("grid.bin").unwrap().snapshot();
        assert_eq!(data.len(), record * nrec);
        for k in 0..nrec {
            assert!(
                data[k * record..(k + 1) * record]
                    .iter()
                    .all(|&b| b == k as u8),
                "record {k} corrupted"
            );
        }
    }

    #[test]
    fn collective_read_is_deterministic() {
        let total = 1 << 18;
        let run = || {
            let fs = make_fs_with_file(total, StripeSpec::new(4, 16 << 10));
            World::run(WorldConfig::new(Topology::new(2, 2)), |comm| {
                let f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
                let chunk = total / 4;
                let mut buf = vec![0u8; chunk];
                f.read_at_all(comm, (comm.rank() * chunk) as u64, &mut buf)
                    .unwrap();
                comm.now()
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn independent_beats_collective_for_contiguous_lustre_reads() {
        // The paper's headline contrast (contribution 2): Level 0 wins for
        // block-contiguous reads on Lustre because two-phase adds
        // redistribution work without reducing physical I/O.
        let total = 8 << 20;
        let topo = Topology::new(2, 4);
        let elapsed = |collective: bool| {
            let fs = make_fs_with_file(total, StripeSpec::new(8, 256 << 10));
            fs.set_active_ranks(topo.ranks());
            let out = World::run(WorldConfig::new(topo), move |comm| {
                let f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
                let chunk = total / 8;
                let off = (comm.rank() * chunk) as u64;
                let mut buf = vec![0u8; chunk];
                if collective {
                    f.read_at_all(comm, off, &mut buf).unwrap();
                } else {
                    f.read_at(comm, off, &mut buf).unwrap();
                }
                comm.now()
            });
            out.into_iter().fold(0.0, f64::max)
        };
        let indep = elapsed(false);
        let coll = elapsed(true);
        assert!(
            indep < coll,
            "independent {indep} should beat collective {coll} for contiguous reads"
        );
    }
}
