//! MPI-IO over the simulated parallel filesystem: the paper's three access
//! levels.
//!
//! | Level | Pattern        | Mode        | Entry point                 |
//! |-------|----------------|-------------|-----------------------------|
//! | 0     | contiguous     | independent | [`MpiFile::read_at`]        |
//! | 1     | contiguous     | collective  | [`MpiFile::read_at_all`]    |
//! | 3     | non-contiguous | collective  | [`MpiFile::read_all`] (view)|
//!
//! Collective reads implement ROMIO-style **two-phase I/O**: a subset of
//! ranks (*aggregators*, at most one per node) read contiguous file
//! domains in `cb_buffer_size` cycles, then redistribute to the real
//! targets with an `Alltoallv`. On Lustre the aggregator count follows the
//! divisor rule the paper reports (§5.1.1): when the stripe count is at
//! least the node count, the number of readers is the largest divisor of
//! the stripe count that is ≤ the node count — which is why 24 nodes
//! reading a 64-OST file get only 16 readers and Figure 11 shows cliffs at
//! 24, 48 and 72 nodes.

use crate::comm::Comm;
use crate::datatype::Datatype;
use crate::hints::{Hints, ROMIO_MAX_IO_BYTES};
use crate::{MsimError, Result};
use mvio_pfs::{FsKind, IoRequest, SimFile, SimFs};
use std::sync::Arc;

/// The three MPI-IO access levels the paper benchmarks (its Table 1; the
/// unused "Level 2" — non-contiguous independent — is omitted there too).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessLevel {
    /// Contiguous + independent (`MPI_File_read_at`).
    Level0,
    /// Contiguous + collective (`MPI_File_read_at_all`).
    Level1,
    /// Non-contiguous + collective (file view + `MPI_File_read_all`).
    Level3,
}

impl AccessLevel {
    /// Human-readable description matching the paper's Table 1.
    pub fn describe(self) -> &'static str {
        match self {
            AccessLevel::Level0 => "contiguous and independent",
            AccessLevel::Level1 => "contiguous and collective",
            AccessLevel::Level3 => "non-contiguous and collective",
        }
    }
}

/// A file view: displacement + an elementary type + a (possibly gapped)
/// filetype tiled across the file, exactly `MPI_File_set_view`.
#[derive(Debug, Clone)]
pub struct FileView {
    /// Byte displacement where the view begins.
    pub disp: u64,
    /// The filetype tiled from `disp` onward.
    pub filetype: Datatype,
}

impl FileView {
    /// Creates a view after validating the datatype.
    pub fn new(disp: u64, filetype: Datatype) -> Result<Self> {
        filetype.validate()?;
        Ok(FileView { disp, filetype })
    }

    /// Absolute `(offset, len)` fragments covering `payload` bytes of
    /// visible data, starting `skip_instances` filetype instances into the
    /// view (each rank typically skips `rank` instances for round-robin
    /// layouts).
    pub fn fragments(
        &self,
        skip_instances: u64,
        stride_instances: u64,
        payload: usize,
    ) -> Vec<(u64, u64)> {
        let ext = self.filetype.extent() as u64;
        let size = self.filetype.size();
        let inner = self.filetype.fragments();
        let mut out = Vec::new();
        let mut remaining = payload;
        let mut instance = skip_instances;
        while remaining > 0 {
            let base = self.disp + instance * ext;
            for &(off, len) in &inner {
                if remaining == 0 {
                    break;
                }
                let take = len.min(remaining);
                out.push((base + off as u64, take as u64));
                remaining -= take;
            }
            instance += stride_instances;
            if size == 0 {
                break; // degenerate filetype; avoid infinite loop
            }
        }
        out
    }
}

/// An open MPI file handle bound to one simulated filesystem.
pub struct MpiFile {
    fs: Arc<SimFs>,
    file: Arc<SimFile>,
    hints: Hints,
    view: Option<FileView>,
}

impl MpiFile {
    /// Opens an existing file (the `MPI_File_open` analogue; call it from
    /// every rank — it is cheap and local in the simulator).
    pub fn open(fs: &Arc<SimFs>, path: &str, hints: Hints) -> Result<Self> {
        let file = fs.open(path)?;
        Ok(MpiFile {
            fs: Arc::clone(fs),
            file,
            hints,
            view: None,
        })
    }

    /// The underlying simulated file.
    pub fn file(&self) -> &Arc<SimFile> {
        &self.file
    }

    /// File length in bytes.
    pub fn len(&self) -> u64 {
        self.file.len()
    }

    /// `true` when the file is empty.
    pub fn is_empty(&self) -> bool {
        self.file.is_empty()
    }

    /// The hints this handle was opened with.
    pub fn hints(&self) -> Hints {
        self.hints
    }

    /// Sets the file view for Level-3 access (`MPI_File_set_view`).
    pub fn set_view(&mut self, view: FileView) {
        self.view = Some(view);
    }

    fn check_count(len: u64) -> Result<()> {
        if len > ROMIO_MAX_IO_BYTES {
            Err(MsimError::CountOverflow { requested: len })
        } else {
            Ok(())
        }
    }

    // ----- Level 0: contiguous + independent ------------------------------

    /// `MPI_File_read_at`: independent contiguous read. Returns bytes read
    /// (short at EOF). Advances the rank's clock by the modelled I/O time.
    /// Independent (not collective): any rank may call it alone.
    pub fn read_at(&self, comm: &mut Comm, offset: u64, buf: &mut [u8]) -> Result<usize> {
        Self::check_count(buf.len() as u64)?;
        let done = self.file.read_at(offset, buf, &comm.io_ctx())?;
        comm.advance_to(done.completion);
        Ok(done.bytes as usize)
    }

    /// `MPI_File_write_at`: independent contiguous write.
    /// Independent (not collective): any rank may call it alone.
    pub fn write_at(&self, comm: &mut Comm, offset: u64, buf: &[u8]) -> Result<usize> {
        Self::check_count(buf.len() as u64)?;
        let done = self.file.write_at(offset, buf, &comm.io_ctx())?;
        comm.advance_to(done.completion);
        Ok(done.bytes as usize)
    }

    // ----- Level 1: contiguous + collective -------------------------------

    /// `MPI_File_read_at_all`: collective contiguous read via two-phase
    /// I/O. All ranks must call it; per-rank `(offset, buf)` may differ
    /// (zero-length participation is allowed, as in Algorithm 1's last
    /// iteration). Returns bytes read into `buf`.
    pub fn read_at_all(&self, comm: &mut Comm, offset: u64, buf: &mut [u8]) -> Result<usize> {
        Self::check_count(buf.len() as u64)?;
        // Functional half: copy this rank's bytes now (untimed peek); the
        // timing half is computed collectively below.
        let got = self.file.peek(offset, buf);

        let topo = comm.topology();
        let nodes = topo.nodes();
        let cost = *comm.cost_model();
        let stripe = self.file.stripe();
        let ost_base = self.file.ost_base();
        let fs_kind = self.fs.config().kind;
        let hints = self.hints;
        let engine = Arc::clone(self.fs.engine());
        let p = comm.size();

        let (_, _) = comm.collective(
            "io.read_at_all",
            (offset, got as u64),
            move |reqs: Vec<(u64, u64)>, times| {
                let start = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                // Aggregate file domain spanned by the collective.
                let lo = reqs.iter().filter(|r| r.1 > 0).map(|r| r.0).min();
                let hi = reqs.iter().filter(|r| r.1 > 0).map(|r| r.0 + r.1).max();
                let (lo, hi) = match (lo, hi) {
                    (Some(l), Some(h)) => (l, h),
                    _ => return ((), vec![start; reqs.len()]), // nothing to read
                };
                let readers = select_readers(fs_kind, stripe.count, nodes, hints.cb_nodes);
                let leaders = topo.node_leaders();

                // Contiguous equal file domains, one per aggregator, read
                // in cb_buffer_size cycles.
                let span = hi - lo;
                let domain = span.div_ceil(readers as u64).max(1);
                let mut batch = Vec::new();
                for (i, leader) in leaders.iter().take(readers).enumerate() {
                    let d_lo = lo + i as u64 * domain;
                    let d_hi = (d_lo + domain).min(hi);
                    let mut pos = d_lo;
                    while pos < d_hi {
                        let len = (d_hi - pos).min(hints.cb_buffer_size);
                        batch.push(IoRequest {
                            rank: *leader,
                            node: topo.node_of(*leader),
                            now: start,
                            offset: pos,
                            len,
                        });
                        pos += len;
                    }
                }
                let completions = engine.io_batch(stripe, ost_base, &batch);
                let read_done = completions
                    .iter()
                    .map(|c| c.completion)
                    .fold(start, f64::max);

                // Redistribution: aggregators scatter each rank's bytes.
                let exits: Vec<f64> = reqs
                    .iter()
                    .map(|&(_, len)| read_done + cost.alltoall(p.min(readers.max(2)), len, len))
                    .collect();
                ((), exits)
            },
        );
        Ok(got)
    }

    /// `MPI_File_write_at_all`: collective contiguous write via two-phase
    /// I/O (aggregators gather and flush contiguous domains). The paper
    /// needs this for "the output … written to a single file in which the
    /// storage order corresponds to that of the global grid data layout".
    pub fn write_at_all(&self, comm: &mut Comm, offset: u64, buf: &[u8]) -> Result<usize> {
        Self::check_count(buf.len() as u64)?;
        // Functional half: place this rank's bytes (untimed; aggregated
        // timing is modelled collectively below).
        self.file.poke(offset, buf);

        let topo = comm.topology();
        let nodes = topo.nodes();
        let cost = *comm.cost_model();
        let stripe = self.file.stripe();
        let ost_base = self.file.ost_base();
        let fs_kind = self.fs.config().kind;
        let hints = self.hints;
        let engine = Arc::clone(self.fs.engine());
        let p = comm.size();
        let len = buf.len() as u64;

        let (_, _) = comm.collective(
            "io.write_at_all",
            (offset, len),
            move |reqs: Vec<(u64, u64)>, times| {
                let start = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let lo = reqs.iter().filter(|r| r.1 > 0).map(|r| r.0).min();
                let hi = reqs.iter().filter(|r| r.1 > 0).map(|r| r.0 + r.1).max();
                let (lo, hi) = match (lo, hi) {
                    (Some(l), Some(h)) => (l, h),
                    _ => return ((), vec![start; reqs.len()]),
                };
                let writers = select_readers(fs_kind, stripe.count, nodes, hints.cb_nodes);
                let leaders = topo.node_leaders();

                // Phase 1: ranks ship their data to the aggregators.
                let gather_done = reqs
                    .iter()
                    .map(|&(_, l)| start + cost.alltoall(p.min(writers.max(2)), l, l))
                    .fold(start, f64::max);

                // Phase 2: aggregators flush contiguous domains in cycles.
                let span = hi - lo;
                let domain = span.div_ceil(writers as u64).max(1);
                let mut batch = Vec::new();
                for (i, leader) in leaders.iter().take(writers).enumerate() {
                    let d_lo = lo + i as u64 * domain;
                    let d_hi = (d_lo + domain).min(hi);
                    let mut pos = d_lo;
                    while pos < d_hi {
                        let l = (d_hi - pos).min(hints.cb_buffer_size);
                        batch.push(IoRequest {
                            rank: *leader,
                            node: topo.node_of(*leader),
                            now: gather_done,
                            offset: pos,
                            len: l,
                        });
                        pos += l;
                    }
                }
                let completions = engine.io_batch(stripe, ost_base, &batch);
                let done = completions
                    .iter()
                    .map(|c| c.completion)
                    .fold(gather_done, f64::max);
                ((), vec![done; reqs.len()])
            },
        );
        Ok(buf.len())
    }

    /// `MPI_File_write_all` through the current file view: non-contiguous
    /// collective write (rank instances as in [`MpiFile::read_all`]).
    pub fn write_all(
        &self,
        comm: &mut Comm,
        skip_instances: u64,
        stride_instances: u64,
        buf: &[u8],
    ) -> Result<usize> {
        Self::check_count(buf.len() as u64)?;
        let view = self
            .view
            .as_ref()
            .ok_or_else(|| MsimError::Collective("write_all requires a file view".into()))?;
        let frags = view.fragments(skip_instances, stride_instances, buf.len());

        // Functional half: scatter the user buffer into the fragments.
        let mut pos = 0usize;
        for &(off, len) in &frags {
            self.file.poke(off, &buf[pos..pos + len as usize]);
            pos += len as usize;
        }

        // Timing: reuse the collective two-phase model (same mechanics in
        // both directions), plus per-fragment datatype processing.
        let topo = comm.topology();
        let nodes = topo.nodes();
        let cost = *comm.cost_model();
        let stripe = self.file.stripe();
        let ost_base = self.file.ost_base();
        let fs_kind = self.fs.config().kind;
        let hints = self.hints;
        let engine = Arc::clone(self.fs.engine());
        let p = comm.size();
        let my_bytes: u64 = frags.iter().map(|f| f.1).sum();
        let my_span = frags
            .first()
            // audit: inside `first().map`, so the fragment list is non-empty.
            .map(|f| (f.0, frags.last().unwrap().0 + frags.last().unwrap().1));

        let (_, _) = comm.collective(
            "io.write_all",
            (my_span, my_bytes, frags.len() as u64),
            move |inputs: Vec<(Option<(u64, u64)>, u64, u64)>, times| {
                let start = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let lo = inputs.iter().filter_map(|i| i.0).map(|s| s.0).min();
                let hi = inputs.iter().filter_map(|i| i.0).map(|s| s.1).max();
                let (lo, hi) = match (lo, hi) {
                    (Some(l), Some(h)) => (l, h),
                    _ => return ((), vec![start; inputs.len()]),
                };
                let writers = select_readers(fs_kind, stripe.count, nodes, hints.cb_nodes);
                let leaders = topo.node_leaders();
                let gather_done = inputs
                    .iter()
                    .map(|&(_, bytes, nfrags)| {
                        start
                            + cost.alltoall(p.min(writers.max(2)), bytes, bytes)
                            + nfrags as f64 * (cost.comm_latency + 2.0e-6)
                            + bytes as f64 * cost.byte_copy
                    })
                    .fold(start, f64::max);
                let span = hi - lo;
                let domain = span.div_ceil(writers as u64).max(1);
                let mut batch = Vec::new();
                for (i, leader) in leaders.iter().take(writers).enumerate() {
                    let d_lo = lo + i as u64 * domain;
                    let d_hi = (d_lo + domain).min(hi);
                    let mut pos = d_lo;
                    while pos < d_hi {
                        let l = (d_hi - pos).min(hints.cb_buffer_size);
                        batch.push(IoRequest {
                            rank: *leader,
                            node: topo.node_of(*leader),
                            now: gather_done,
                            offset: pos,
                            len: l,
                        });
                        pos += l;
                    }
                }
                let completions = engine.io_batch(stripe, ost_base, &batch);
                let done = completions
                    .iter()
                    .map(|c| c.completion)
                    .fold(gather_done, f64::max);
                ((), vec![done; inputs.len()])
            },
        );
        Ok(buf.len())
    }

    // ----- Level 3: non-contiguous + collective ---------------------------

    /// `MPI_File_read_all` through the current file view: non-contiguous
    /// collective read. Each rank reads `buf.len()` payload bytes from its
    /// view fragments, where the rank's instances are
    /// `skip + k·stride` for `k = 0, 1, …` (round-robin block
    /// distribution: `skip = rank`, `stride = size`).
    pub fn read_all(
        &self,
        comm: &mut Comm,
        skip_instances: u64,
        stride_instances: u64,
        buf: &mut [u8],
    ) -> Result<usize> {
        Self::check_count(buf.len() as u64)?;
        let view = self
            .view
            .as_ref()
            .ok_or_else(|| MsimError::Collective("read_all requires a file view".into()))?;
        let frags = view.fragments(skip_instances, stride_instances, buf.len());

        // Functional half: gather fragments into the user buffer.
        let mut pos = 0usize;
        let mut got = 0usize;
        for &(off, len) in &frags {
            let n = self.file.peek(off, &mut buf[pos..pos + len as usize]);
            got += n;
            pos += len as usize;
            if (n as u64) < len {
                break; // EOF inside a fragment
            }
        }

        let topo = comm.topology();
        let nodes = topo.nodes();
        let cost = *comm.cost_model();
        let stripe = self.file.stripe();
        let ost_base = self.file.ost_base();
        let fs_kind = self.fs.config().kind;
        let hints = self.hints;
        let engine = Arc::clone(self.fs.engine());
        let p = comm.size();

        let my_bytes: u64 = frags.iter().map(|f| f.1).sum();
        let my_span = frags
            .first()
            // audit: inside `first().map`, so the fragment list is non-empty.
            .map(|f| (f.0, frags.last().unwrap().0 + frags.last().unwrap().1));

        let (_, _) = comm.collective(
            "io.read_all",
            (my_span, my_bytes, frags.len() as u64),
            move |inputs: Vec<(Option<(u64, u64)>, u64, u64)>, times| {
                let start = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let lo = inputs.iter().filter_map(|i| i.0).map(|s| s.0).min();
                let hi = inputs.iter().filter_map(|i| i.0).map(|s| s.1).max();
                let (lo, hi) = match (lo, hi) {
                    (Some(l), Some(h)) => (l, h),
                    _ => return ((), vec![start; inputs.len()]),
                };
                let readers = select_readers(fs_kind, stripe.count, nodes, hints.cb_nodes);
                let leaders = topo.node_leaders();

                // Data sieving: aggregators read the covering span (gaps
                // included) in cycles.
                let span = hi - lo;
                let domain = span.div_ceil(readers as u64).max(1);
                let mut batch = Vec::new();
                for (i, leader) in leaders.iter().take(readers).enumerate() {
                    let d_lo = lo + i as u64 * domain;
                    let d_hi = (d_lo + domain).min(hi);
                    let mut pos = d_lo;
                    while pos < d_hi {
                        let len = (d_hi - pos).min(hints.cb_buffer_size);
                        batch.push(IoRequest {
                            rank: *leader,
                            node: topo.node_of(*leader),
                            now: start,
                            offset: pos,
                            len,
                        });
                        pos += len;
                    }
                }
                let completions = engine.io_batch(stripe, ost_base, &batch);
                let read_done = completions
                    .iter()
                    .map(|c| c.completion)
                    .fold(start, f64::max);

                // Redistribution + per-fragment datatype processing: the
                // non-contiguous overhead the paper's Figures 15–16 show.
                let exits: Vec<f64> = inputs
                    .iter()
                    .map(|&(_, bytes, nfrags)| {
                        read_done
                            + cost.alltoall(p.min(readers.max(2)), bytes, bytes)
                            + nfrags as f64 * (cost.comm_latency + 2.0e-6)
                            + bytes as f64 * cost.byte_copy
                    })
                    .collect();
                ((), exits)
            },
        );
        Ok(got)
    }

    // ----- Staged two-phase collective I/O over the request layer ---------

    /// Builds the staged plan: allgathers every rank's `(offset, len)`
    /// span (clamping to `clamp_hi` when given — the read side must not
    /// plan past EOF), selects the aggregators, and cuts their
    /// stripe-aligned file domains. Collective.
    fn staged_plan(
        &self,
        comm: &mut Comm,
        offset: u64,
        len: u64,
        clamp_hi: Option<u64>,
    ) -> StagedPlan {
        let mut span = (offset, offset + len);
        if let Some(hi) = clamp_hi {
            span = (span.0.min(hi), span.1.min(hi));
        }
        let mut word = [0u8; 16];
        word[..8].copy_from_slice(&span.0.to_le_bytes());
        word[8..].copy_from_slice(&span.1.to_le_bytes());
        let spans: Vec<(u64, u64)> = comm
            .labeled("io.staged_plan", |c| c.allgather(word.to_vec()))
            .into_iter()
            .map(|w| {
                (
                    // audit: span words are 16 bytes; both ranges are exactly 8 bytes.
                    u64::from_le_bytes(w[..8].try_into().expect("span word")),
                    // audit: the range is exactly 8 bytes by construction.
                    u64::from_le_bytes(w[8..16].try_into().expect("span word")),
                )
            })
            .collect();
        let lo = spans.iter().filter(|s| s.1 > s.0).map(|s| s.0).min();
        let hi = spans.iter().filter(|s| s.1 > s.0).map(|s| s.1).max();
        let (domains, agg_ranks) = match (lo, hi) {
            (Some(lo), Some(hi)) => {
                let topo = comm.topology();
                let want = select_readers(
                    self.fs.config().kind,
                    self.file.stripe().count,
                    topo.nodes(),
                    self.hints.cb_nodes,
                );
                let domains = aggregator_domains(lo, hi, self.file.stripe().size, want);
                let agg_ranks = topo
                    .node_leaders()
                    .into_iter()
                    .cycle()
                    .take(domains.len())
                    .collect();
                (domains, agg_ranks)
            }
            _ => (Vec::new(), Vec::new()),
        };
        StagedPlan {
            spans,
            agg_ranks,
            domains,
        }
    }

    /// Chops the contiguous byte run `[lo, hi)` into `cb_buffer_size`
    /// cycles issued by aggregator `rank` at time `now`.
    fn cb_cycles(&self, rank: usize, node: usize, now: f64, lo: u64, hi: u64) -> Vec<IoRequest> {
        let cycle = self.hints.cb_buffer_size.max(1);
        let mut out = Vec::new();
        let mut pos = lo;
        while pos < hi {
            let len = (hi - pos).min(cycle);
            out.push(IoRequest {
                rank,
                node,
                now,
                offset: pos,
                len,
            });
            pos += len;
        }
        out
    }

    /// Staged `MPI_File_write_at_all`: ROMIO-style two-phase collective
    /// write in which the data **physically moves through the runtime**.
    /// Every rank ships the pieces of its buffer that fall into each
    /// aggregator's stripe-aligned file domain over [`Comm::isend`]; the
    /// aggregators collect their pieces with [`Comm::irecv`]/
    /// [`Comm::waitall`], coalesce contiguous runs, and flush them as
    /// large contiguous stripe writes in `cb_buffer_size` cycles through
    /// one deterministic [`SimFile::write_batch`]. All ranks exit at the
    /// global completion time (the collective-write barrier the
    /// simulator's other collectives also model).
    ///
    /// Aggregator count: the [`select_readers`] heuristic, lowered by the
    /// `cb_nodes` hint (which the I/O layers above wire to the
    /// [`AGGREGATORS_ENV`] knob). Overlapping source spans are assembled
    /// in rank order (later ranks win), matching `MPI_File_write_at_all`'s
    /// "undefined but deterministic" overlap behaviour.
    pub fn write_at_all_staged(&self, comm: &mut Comm, offset: u64, buf: &[u8]) -> Result<usize> {
        Self::check_count(buf.len() as u64)?;
        let plan = self.staged_plan(comm, offset, buf.len() as u64, None);
        let rank = comm.rank();
        let my_span = plan.spans[rank];

        // Phase 1: ship my pieces to the aggregators owning them.
        let mut sends = Vec::new();
        for (a, &dom) in plan.domains.iter().enumerate() {
            if let Some((lo, hi)) = intersect(my_span, dom) {
                let piece = &buf[(lo - offset) as usize..(hi - offset) as usize];
                sends.push(comm.isend(plan.agg_ranks[a], STAGED_WRITE_TAG, piece));
            }
        }

        // Aggregators: collect the pieces of my domain, in rank order.
        let gathered: Option<(usize, Vec<(u64, Vec<u8>)>)> = plan.agg_index(rank).map(|a| {
            let dom = plan.domains[a];
            let mut pieces = Vec::new();
            let mut reqs = Vec::new();
            for (src, &span) in plan.spans.iter().enumerate() {
                if let Some((lo, _)) = intersect(span, dom) {
                    pieces.push(lo);
                    reqs.push(comm.irecv(src, STAGED_WRITE_TAG));
                }
            }
            let data = comm.waitall(reqs);
            (a, pieces.into_iter().zip(data).collect())
        });
        comm.waitall(sends);

        // Coalesce each aggregator's pieces into contiguous runs and plan
        // the cb cycles from its post-gather clock.
        let my_batch: Option<(Vec<IoRequest>, Vec<Vec<u8>>)> = gathered.map(|(a, mut pieces)| {
            pieces.sort_by_key(|p| p.0);
            let mut runs: Vec<(u64, Vec<u8>)> = Vec::new();
            for (at, bytes) in pieces {
                match runs.last_mut() {
                    Some((start, run)) if *start + run.len() as u64 == at => {
                        run.extend_from_slice(&bytes)
                    }
                    _ => runs.push((at, bytes)),
                }
            }
            let now = comm.now();
            let node = comm.node();
            let agg_rank = plan.agg_ranks[a];
            let mut reqs = Vec::new();
            let mut bufs = Vec::new();
            for (start, run) in runs {
                for cyc in self.cb_cycles(agg_rank, node, now, start, start + run.len() as u64) {
                    let at = (cyc.offset - start) as usize;
                    bufs.push(run[at..at + cyc.len as usize].to_vec());
                    reqs.push(cyc);
                }
            }
            (reqs, bufs)
        });

        // Phase 2: one deterministic global flush. Every aggregator's
        // cycles are timed (and the bytes placed) in a single
        // `write_batch` under one engine lock, so the schedule is
        // independent of thread interleaving; everyone exits at the
        // global completion.
        let file = Arc::clone(&self.file);
        let (_, _) = comm.collective("io.staged_write.flush", my_batch, move |inputs, times| {
            let start = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let mut reqs = Vec::new();
            let mut bufs = Vec::new();
            for input in inputs.into_iter().flatten() {
                reqs.extend(input.0);
                bufs.extend(input.1);
            }
            let slices: Vec<&[u8]> = bufs.iter().map(|b| b.as_slice()).collect();
            let done = file
                .write_batch(&reqs, &slices)
                // audit: the batched requests were bounds- and count-validated when staged.
                .expect("staged write flush")
                .into_iter()
                .map(|c| c.completion)
                .fold(start, f64::max);
            ((), vec![done; times.len()])
        });
        Ok(buf.len())
    }

    /// Staged `MPI_File_read_at_all`: the inverse scatter of
    /// [`MpiFile::write_at_all_staged`]. Aggregators read their
    /// stripe-aligned domains in `cb_buffer_size` cycles through one
    /// deterministic [`SimFile::read_batch`], then ship each rank the
    /// pieces of its span over [`Comm::isend`]; ranks assemble their
    /// buffers from [`Comm::irecv`]s. Spans are clamped to EOF, so the
    /// returned count is short at end-of-file exactly like
    /// [`MpiFile::read_at`]. Non-aggregator ranks exit as soon as their
    /// own pieces have arrived (no write-side barrier is needed on read).
    /// Collective: every rank must call it (staged two-phase collective
    /// read).
    pub fn read_at_all_staged(
        &self,
        comm: &mut Comm,
        offset: u64,
        buf: &mut [u8],
    ) -> Result<usize> {
        Self::check_count(buf.len() as u64)?;
        let file_len = self.file.len();
        let plan = self.staged_plan(comm, offset.min(file_len), buf.len() as u64, Some(file_len));
        let rank = comm.rank();
        let my_span = plan.spans[rank];

        // Phase 1: one deterministic global read of every aggregator's
        // domain cycles under a single engine lock. The shared result
        // carries each aggregator's domain bytes; only that aggregator
        // consumes its entry.
        let now = comm.now();
        let node = comm.node();
        let my_cycles: Option<(usize, Vec<IoRequest>)> = plan.agg_index(rank).map(|a| {
            let (lo, hi) = plan.domains[a];
            (a, self.cb_cycles(rank, node, now, lo, hi))
        });
        let file = Arc::clone(&self.file);
        let n_aggs = plan.domains.len();
        let (read_result, _) =
            comm.collective("io.staged_read", my_cycles, move |inputs, times| {
                let start = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                // (domain bytes, completion) per aggregator index.
                let mut out: Vec<(Vec<u8>, f64)> =
                    (0..n_aggs).map(|_| (Vec::new(), start)).collect();
                let mut exits = vec![start; times.len()];
                for (src, input) in inputs.into_iter().enumerate() {
                    let Some((a, reqs)) = input else { continue };
                    let mut data: Vec<Vec<u8>> =
                        reqs.iter().map(|r| vec![0u8; r.len as usize]).collect();
                    let done = {
                        let mut slices: Vec<&mut [u8]> =
                            data.iter_mut().map(|d| d.as_mut_slice()).collect();
                        // audit: the batched requests were bounds- and count-validated when staged.
                        file.read_batch(&reqs, &mut slices).expect("staged read")
                    };
                    let mut domain = Vec::new();
                    let mut completion = start;
                    for (piece, c) in data.into_iter().zip(&done) {
                        domain.extend_from_slice(&piece[..c.bytes as usize]);
                        completion = completion.max(c.completion);
                    }
                    out[a] = (domain, completion);
                    exits[src] = exits[src].max(completion);
                }
                (out, exits)
            });

        // Phase 2: aggregators scatter each rank's pieces.
        let mut sends = Vec::new();
        if let Some(a) = plan.agg_index(rank) {
            let dom = plan.domains[a];
            let domain = &read_result[a].0;
            for (dst, &span) in plan.spans.iter().enumerate() {
                if let Some((lo, hi)) = intersect(span, dom) {
                    // Clamp to the bytes the read actually produced.
                    let avail = dom.0 + domain.len() as u64;
                    let hi = hi.min(avail);
                    let piece = if lo < hi {
                        &domain[(lo - dom.0) as usize..(hi - dom.0) as usize]
                    } else {
                        &[][..]
                    };
                    sends.push(comm.isend(dst, STAGED_READ_TAG, piece));
                }
            }
        }

        // Assemble my buffer from the aggregators covering my span, in
        // aggregator order (matching their deterministic send order).
        let mut got = 0usize;
        let mut recvs = Vec::new();
        let mut places = Vec::new();
        for (a, &dom) in plan.domains.iter().enumerate() {
            if let Some((lo, _)) = intersect(my_span, dom) {
                places.push(lo);
                recvs.push(comm.irecv(plan.agg_ranks[a], STAGED_READ_TAG));
            }
        }
        for (at, piece) in places.into_iter().zip(comm.waitall(recvs)) {
            let dst = (at - offset) as usize;
            buf[dst..dst + piece.len()].copy_from_slice(&piece);
            got += piece.len();
        }
        comm.waitall(sends);
        Ok(got)
    }
}

/// Environment variable overriding the aggregator count used by the
/// staged two-phase collective I/O paths ([`MpiFile::write_at_all_staged`]
/// / [`MpiFile::read_at_all_staged`]): a positive integer requests that
/// many aggregator nodes (still capped by the node count and, on Lustre,
/// the divisor rule); `0`, `auto` or unset defers to the
/// [`select_readers`] heuristic.
pub const AGGREGATORS_ENV: &str = "MVIO_IO_AGGREGATORS";

/// Resolves the [`AGGREGATORS_ENV`] knob.
///
/// # Panics
///
/// Panics on an unparseable value: silently falling back to the
/// heuristic would make every benchmark run under a typo'd knob measure
/// the wrong configuration (the same policy as the exchange-chunk knob).
pub fn aggregators_from_env() -> Option<usize> {
    let v = std::env::var(AGGREGATORS_ENV).ok()?;
    let t = v.trim();
    if t == "0" || t.eq_ignore_ascii_case("auto") {
        return None;
    }
    match t.parse::<usize>() {
        Ok(n) => Some(n),
        Err(_) => panic!(
            "invalid {AGGREGATORS_ENV} value {v:?}: expected a positive aggregator \
             count, or 0/auto for the heuristic"
        ),
    }
}

/// Tag carrying rank→aggregator payloads of a staged collective write.
const STAGED_WRITE_TAG: u64 = 0x5743;
/// Tag carrying aggregator→rank payloads of a staged collective read.
const STAGED_READ_TAG: u64 = 0x5244;

/// Splits the aggregate file domain `[lo, hi)` into at most `aggregators`
/// contiguous per-aggregator domains whose interior boundaries are
/// **stripe aligned**: the domain step is the per-aggregator share
/// rounded *up* to a whole number of stripes, so when `lo` itself sits on
/// a stripe boundary every aggregator issues stripe-aligned writes — the
/// access pattern the paper recommends. Alignment can merge trailing
/// domains, so fewer than `aggregators` entries may come back (never
/// more, never empty ones).
pub fn aggregator_domains(
    lo: u64,
    hi: u64,
    stripe_size: u64,
    aggregators: usize,
) -> Vec<(u64, u64)> {
    if hi <= lo {
        return Vec::new();
    }
    let span = hi - lo;
    let stripe = stripe_size.max(1);
    let raw = span.div_ceil(aggregators.max(1) as u64).max(1);
    let step = raw.div_ceil(stripe) * stripe;
    let mut out = Vec::new();
    let mut pos = lo;
    while pos < hi {
        let end = (pos + step).min(hi);
        out.push((pos, end));
        pos = end;
    }
    out
}

/// Half-open interval intersection; `None` when empty.
fn intersect(a: (u64, u64), b: (u64, u64)) -> Option<(u64, u64)> {
    let lo = a.0.max(b.0);
    let hi = a.1.min(b.1);
    (lo < hi).then_some((lo, hi))
}

/// The staged two-phase plan shared by [`MpiFile::write_at_all_staged`]
/// and [`MpiFile::read_at_all_staged`]: every rank's `(offset, len)` span
/// (allgathered), the aggregator ranks, and their stripe-aligned file
/// domains.
struct StagedPlan {
    /// Per-rank effective spans, indexed by rank (`len == world size`).
    spans: Vec<(u64, u64)>,
    /// Aggregator ranks, one per domain (node leaders, in node order).
    agg_ranks: Vec<usize>,
    /// Stripe-aligned contiguous file domain of each aggregator.
    domains: Vec<(u64, u64)>,
}

impl StagedPlan {
    /// Index of `rank` in the aggregator set, if it is one.
    fn agg_index(&self, rank: usize) -> Option<usize> {
        self.agg_ranks.iter().position(|&r| r == rank)
    }
}

/// The aggregator ("reader") selection rule.
///
/// Lustre/ROMIO (paper §5.1.1 and McLay et al. \[21\]): one aggregator per
/// node when the node count divides the stripe count; otherwise, when the
/// stripe count ≥ node count, the largest divisor of the stripe count that
/// is ≤ the node count; when the stripe count < node count, one aggregator
/// per OST. The `cb_nodes` hint only lowers the candidate node count.
///
/// GPFS: one aggregator per node (capped by `cb_nodes`).
pub fn select_readers(
    fs_kind: FsKind,
    stripe_count: u32,
    nodes: usize,
    cb_nodes: Option<usize>,
) -> usize {
    let target = cb_nodes.unwrap_or(nodes).min(nodes).max(1);
    match fs_kind {
        FsKind::Lustre => {
            let sc = stripe_count as usize;
            if sc >= target {
                (1..=target)
                    .rev()
                    .find(|d| sc.is_multiple_of(*d))
                    .unwrap_or(1)
            } else {
                sc
            }
        }
        FsKind::Gpfs => target,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Topology;
    use crate::world::{World, WorldConfig};
    use mvio_pfs::{FsConfig, StripeSpec};

    #[test]
    fn reader_rule_matches_papers_cases() {
        use FsKind::Lustre;
        // 64-OST file (Figure 11's stripe count):
        assert_eq!(select_readers(Lustre, 64, 16, None), 16); // divisor -> all nodes
        assert_eq!(select_readers(Lustre, 64, 24, None), 16); // paper: "only 16 readers"
        assert_eq!(select_readers(Lustre, 64, 32, None), 32);
        assert_eq!(select_readers(Lustre, 64, 48, None), 32); // paper: "32 readers"
        assert_eq!(select_readers(Lustre, 64, 64, None), 64);
        // stripe count below node count: one reader per OST.
        assert_eq!(select_readers(Lustre, 64, 72, None), 64);
        // 96 OSTs, 72 nodes: largest divisor of 96 <= 72 is 48.
        assert_eq!(select_readers(Lustre, 96, 72, None), 48);
        // cb_nodes only lowers the candidate count.
        assert_eq!(select_readers(Lustre, 64, 32, Some(8)), 8);
        // GPFS: per-node aggregators.
        assert_eq!(select_readers(FsKind::Gpfs, 16, 24, None), 24);
        assert_eq!(select_readers(FsKind::Gpfs, 16, 24, Some(4)), 4);
    }

    fn make_fs_with_file(bytes: usize, stripe: StripeSpec) -> Arc<SimFs> {
        let fs = SimFs::new(FsConfig::lustre_comet());
        let f = fs.create("data.bin", Some(stripe)).unwrap();
        let pattern: Vec<u8> = (0..bytes).map(|i| (i % 251) as u8).collect();
        f.append(pattern);
        fs
    }

    #[test]
    fn level0_reads_correct_bytes() {
        let fs = make_fs_with_file(1 << 20, StripeSpec::new(4, 64 << 10));
        let out = World::run(WorldConfig::new(Topology::new(2, 2)), |comm| {
            let f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
            let chunk = (1 << 20) / 4;
            let off = comm.rank() * chunk;
            let mut buf = vec![0u8; chunk];
            let n = f.read_at(comm, off as u64, &mut buf).unwrap();
            assert_eq!(n, chunk);
            // Verify contents against the generating pattern.
            for (i, &b) in buf.iter().enumerate() {
                assert_eq!(b, ((off + i) % 251) as u8);
            }
            comm.now()
        });
        assert!(out.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn level0_rejects_over_2gib() {
        let fs = make_fs_with_file(1024, StripeSpec::new(1, 1024));
        World::run(WorldConfig::new(Topology::single_node(1)), |comm| {
            let f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
            // A >2 GiB buffer would be absurd to allocate; check the guard
            // through write_at's length check with a fake huge slice is not
            // possible, so validate the checker directly.
            assert!(MpiFile::check_count(ROMIO_MAX_IO_BYTES).is_ok());
            assert!(matches!(
                MpiFile::check_count(ROMIO_MAX_IO_BYTES + 1),
                Err(MsimError::CountOverflow { .. })
            ));
            let mut small = [0u8; 8];
            f.read_at(comm, 0, &mut small).unwrap();
        });
    }

    #[test]
    fn level1_collective_read_delivers_data_and_time() {
        let total = 1 << 20;
        let fs = make_fs_with_file(total, StripeSpec::new(4, 64 << 10));
        let out = World::run(WorldConfig::new(Topology::new(4, 4)), |comm| {
            let f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
            let chunk = total / 16;
            let off = comm.rank() * chunk;
            let mut buf = vec![0u8; chunk];
            let n = f.read_at_all(comm, off as u64, &mut buf).unwrap();
            assert_eq!(n, chunk);
            for (i, &b) in buf.iter().enumerate() {
                assert_eq!(b, ((off + i) % 251) as u8);
            }
            comm.now()
        });
        // Collectives synchronize: completions are close but include
        // per-rank redistribution terms; all positive.
        assert!(out.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn level1_allows_zero_length_participants() {
        let fs = make_fs_with_file(4096, StripeSpec::new(2, 1024));
        World::run(WorldConfig::new(Topology::new(1, 4)), |comm| {
            let f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
            // Only rank 0 reads; others pass empty buffers (Algorithm 1's
            // last-iteration behaviour).
            let mut buf = vec![0u8; if comm.rank() == 0 { 4096 } else { 0 }];
            let n = f.read_at_all(comm, 0, &mut buf).unwrap();
            if comm.rank() == 0 {
                assert_eq!(n, 4096);
            } else {
                assert_eq!(n, 0);
            }
        });
    }

    #[test]
    fn level3_round_robin_view_reads_interleaved_blocks() {
        // File of 16 records of 32 bytes; 4 ranks read records round-robin
        // (rank r gets records r, r+4, r+8, r+12).
        let record = 32usize;
        let nrec = 16usize;
        let fs = make_fs_with_file(record * nrec, StripeSpec::new(2, 64));
        World::run(WorldConfig::new(Topology::new(2, 2)), |comm| {
            let mut f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
            let filetype = Datatype::contiguous(record, Datatype::Byte);
            f.set_view(FileView::new(0, filetype).unwrap());
            let mut buf = vec![0u8; record * nrec / 4];
            let n = f
                .read_all(comm, comm.rank() as u64, comm.size() as u64, &mut buf)
                .unwrap();
            assert_eq!(n, buf.len());
            // Record k starts at byte 32k; verify first byte of each of my
            // records.
            for (j, chunk) in buf.chunks(record).enumerate() {
                let k = comm.rank() + 4 * j;
                assert_eq!(chunk[0], ((k * record) % 251) as u8);
            }
        });
    }

    #[test]
    fn level3_requires_a_view() {
        let fs = make_fs_with_file(1024, StripeSpec::new(1, 1024));
        World::run(WorldConfig::new(Topology::single_node(1)), |comm| {
            let f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
            let mut buf = vec![0u8; 16];
            assert!(matches!(
                f.read_all(comm, 0, 1, &mut buf),
                Err(MsimError::Collective(_))
            ));
        });
    }

    #[test]
    fn collective_write_assembles_single_file() {
        // The paper's use case: per-rank grid output written so "the
        // output file is same as if produced sequentially".
        let fs = SimFs::new(FsConfig::lustre_comet());
        fs.create("out.bin", Some(StripeSpec::new(4, 1024)))
            .unwrap();
        World::run(WorldConfig::new(Topology::new(2, 2)), |comm| {
            let f = MpiFile::open(&fs, "out.bin", Hints::default()).unwrap();
            let chunk = vec![comm.rank() as u8 + 1; 512];
            let n = f
                .write_at_all(comm, comm.rank() as u64 * 512, &chunk)
                .unwrap();
            assert_eq!(n, 512);
            assert!(comm.now() > 0.0);
        });
        let data = fs.open("out.bin").unwrap().snapshot();
        assert_eq!(data.len(), 4 * 512);
        for rank in 0..4 {
            assert!(data[rank * 512..(rank + 1) * 512]
                .iter()
                .all(|&b| b == rank as u8 + 1));
        }
    }

    #[test]
    fn level3_write_scatters_round_robin_blocks() {
        // 4 ranks write 32-byte records round-robin: the row-major grid
        // output layout of Figure 4, in reverse direction.
        let record = 32usize;
        let nrec = 16usize;
        let fs = SimFs::new(FsConfig::lustre_comet());
        fs.create("grid.bin", Some(StripeSpec::new(2, 64))).unwrap();
        World::run(WorldConfig::new(Topology::new(2, 2)), |comm| {
            let mut f = MpiFile::open(&fs, "grid.bin", Hints::default()).unwrap();
            let filetype = Datatype::contiguous(record, Datatype::Byte);
            f.set_view(FileView::new(0, filetype).unwrap());
            // Rank r writes records r, r+4, r+8, r+12, each filled with
            // the record index.
            let my_records: Vec<usize> = (comm.rank()..nrec).step_by(comm.size()).collect();
            let mut buf = Vec::with_capacity(my_records.len() * record);
            for &k in &my_records {
                buf.extend(std::iter::repeat_n(k as u8, record));
            }
            let n = f
                .write_all(comm, comm.rank() as u64, comm.size() as u64, &buf)
                .unwrap();
            assert_eq!(n, buf.len());
        });
        // The assembled file must equal the sequential row-major layout.
        let data = fs.open("grid.bin").unwrap().snapshot();
        assert_eq!(data.len(), record * nrec);
        for k in 0..nrec {
            assert!(
                data[k * record..(k + 1) * record]
                    .iter()
                    .all(|&b| b == k as u8),
                "record {k} corrupted"
            );
        }
    }

    #[test]
    fn aggregator_domains_are_stripe_aligned_and_cover_the_span() {
        let stripe = 1024u64;
        let d = aggregator_domains(0, 10_000, stripe, 4);
        assert!(d.len() <= 4 && !d.is_empty());
        assert_eq!(d.first().unwrap().0, 0);
        assert_eq!(d.last().unwrap().1, 10_000);
        for w in d.windows(2) {
            assert_eq!(w[0].1, w[1].0, "contiguous");
            assert!(w[0].1.is_multiple_of(stripe), "interior cut aligned");
        }
        // Aligned lo keeps every domain start aligned.
        let d = aggregator_domains(2048, 2048 + 8192, stripe, 3);
        for (lo, _) in &d {
            assert!(lo.is_multiple_of(stripe));
        }
        // Degenerate cases.
        assert!(aggregator_domains(5, 5, 1024, 4).is_empty());
        assert_eq!(aggregator_domains(0, 10, 1024, 4), vec![(0, 10)]);
    }

    #[test]
    fn aggregators_env_knob_resolution() {
        // Only exercise the parse paths that don't touch the process
        // environment (the suite may run under MVIO_IO_AGGREGATORS).
        if std::env::var(AGGREGATORS_ENV).is_err() {
            assert_eq!(aggregators_from_env(), None);
        }
    }

    #[test]
    fn staged_collective_write_assembles_single_file() {
        let fs = SimFs::new(FsConfig::lustre_comet());
        fs.create("staged.bin", Some(StripeSpec::new(4, 1024)))
            .unwrap();
        World::run(WorldConfig::new(Topology::new(2, 2)), |comm| {
            let f = MpiFile::open(&fs, "staged.bin", Hints::default()).unwrap();
            let chunk = vec![comm.rank() as u8 + 1; 4096];
            let n = f
                .write_at_all_staged(comm, comm.rank() as u64 * 4096, &chunk)
                .unwrap();
            assert_eq!(n, 4096);
            assert!(comm.now() > 0.0);
        });
        let data = fs.open("staged.bin").unwrap().snapshot();
        assert_eq!(data.len(), 4 * 4096);
        for rank in 0..4 {
            assert!(data[rank * 4096..(rank + 1) * 4096]
                .iter()
                .all(|&b| b == rank as u8 + 1));
        }
        // The aggregators issued stripe-aligned flushes.
        assert!(fs.stats().stripe_aligned_ops() > 0);
    }

    #[test]
    fn staged_write_then_staged_read_round_trips() {
        let total = 1 << 18;
        let fs = SimFs::new(FsConfig::lustre_comet());
        fs.create("rt.bin", Some(StripeSpec::new(8, 16 << 10)))
            .unwrap();
        let out = World::run(WorldConfig::new(Topology::new(4, 2)), move |comm| {
            let f = MpiFile::open(&fs, "rt.bin", Hints::default()).unwrap();
            let chunk = total / comm.size();
            let off = (comm.rank() * chunk) as u64;
            let data: Vec<u8> = (0..chunk)
                .map(|i| ((comm.rank() * chunk + i) % 251) as u8)
                .collect();
            f.write_at_all_staged(comm, off, &data).unwrap();
            // Read back a *rotated* partition so every rank's bytes cross
            // rank (and aggregator) boundaries.
            let r_off = ((comm.rank() + 1) % comm.size()) * chunk;
            let mut buf = vec![0u8; chunk];
            let n = f.read_at_all_staged(comm, r_off as u64, &mut buf).unwrap();
            assert_eq!(n, chunk);
            for (i, &b) in buf.iter().enumerate() {
                assert_eq!(b, ((r_off + i) % 251) as u8);
            }
            comm.now()
        });
        assert!(out.iter().all(|&t| t > 0.0));
    }

    #[test]
    fn staged_read_is_short_at_eof_and_allows_empty_spans() {
        let fs = make_fs_with_file(3000, StripeSpec::new(2, 1024));
        World::run(WorldConfig::new(Topology::new(1, 4)), |comm| {
            let f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
            // Rank 0 reads past EOF (short); rank 1 starts past EOF
            // (zero); ranks 2-3 participate with empty buffers.
            let (off, want) = match comm.rank() {
                0 => (2000u64, 2048usize),
                1 => (5000, 64),
                _ => (0, 0),
            };
            let mut buf = vec![0xAAu8; want];
            let n = f.read_at_all_staged(comm, off, &mut buf).unwrap();
            match comm.rank() {
                0 => {
                    assert_eq!(n, 1000);
                    for (i, &b) in buf[..1000].iter().enumerate() {
                        assert_eq!(b, ((2000 + i) % 251) as u8);
                    }
                }
                _ => assert_eq!(n, 0),
            }
        });
    }

    #[test]
    fn staged_write_is_deterministic_and_faster_with_more_aggregators() {
        let total = 4 << 20;
        let run = |cb_nodes: Option<usize>| {
            let fs = SimFs::new(FsConfig::lustre_comet());
            fs.create("det.bin", Some(StripeSpec::new(8, 64 << 10)))
                .unwrap();
            fs.set_active_ranks(16);
            // A collective buffer smaller than the per-aggregator domain
            // forces multiple chained cb cycles — the regime where the
            // aggregator count matters (a lone aggregator leaves OSTs
            // idle between its cycles).
            let hints = Hints {
                cb_nodes,
                cb_buffer_size: 256 << 10,
            };
            let out = World::run(WorldConfig::new(Topology::new(8, 2)), move |comm| {
                let f = MpiFile::open(&fs, "det.bin", hints).unwrap();
                let chunk = total / comm.size();
                let data = vec![comm.rank() as u8; chunk];
                f.write_at_all_staged(comm, (comm.rank() * chunk) as u64, &data)
                    .unwrap();
                comm.now()
            });
            out.into_iter().fold(0.0, f64::max)
        };
        // Deterministic across repeated runs (thread interleaving must
        // not move the virtual clock).
        assert_eq!(run(Some(4)), run(Some(4)));
        // One aggregator serializes every cb cycle through one rank; the
        // divisor-rule width parallelizes across OSTs and node links.
        let one = run(Some(1));
        let wide = run(None);
        assert!(
            wide < one,
            "8 aggregators ({wide}) must beat 1 ({one}) for a 4 MiB striped write"
        );
    }

    #[test]
    fn collective_read_is_deterministic() {
        let total = 1 << 18;
        let run = || {
            let fs = make_fs_with_file(total, StripeSpec::new(4, 16 << 10));
            World::run(WorldConfig::new(Topology::new(2, 2)), |comm| {
                let f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
                let chunk = total / 4;
                let mut buf = vec![0u8; chunk];
                f.read_at_all(comm, (comm.rank() * chunk) as u64, &mut buf)
                    .unwrap();
                comm.now()
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn independent_beats_collective_for_contiguous_lustre_reads() {
        // The paper's headline contrast (contribution 2): Level 0 wins for
        // block-contiguous reads on Lustre because two-phase adds
        // redistribution work without reducing physical I/O.
        let total = 8 << 20;
        let topo = Topology::new(2, 4);
        let elapsed = |collective: bool| {
            let fs = make_fs_with_file(total, StripeSpec::new(8, 256 << 10));
            fs.set_active_ranks(topo.ranks());
            let out = World::run(WorldConfig::new(topo), move |comm| {
                let f = MpiFile::open(&fs, "data.bin", Hints::default()).unwrap();
                let chunk = total / 8;
                let off = (comm.rank() * chunk) as u64;
                let mut buf = vec![0u8; chunk];
                if collective {
                    f.read_at_all(comm, off, &mut buf).unwrap();
                } else {
                    f.read_at(comm, off, &mut buf).unwrap();
                }
                comm.now()
            });
            out.into_iter().fold(0.0, f64::max)
        };
        let indep = elapsed(false);
        let coll = elapsed(true);
        assert!(
            indep < coll,
            "independent {indep} should beat collective {coll} for contiguous reads"
        );
    }
}
