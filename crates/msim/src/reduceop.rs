//! User-defined reduction operators — the `MPI_Op_create` analogue.
//!
//! The paper's §4.2.2 defines new reduction operators (`MPI_MIN`,
//! `MPI_MAX` re-defined for lines and rectangles, and a new `MPI_UNION`
//! for MBRs) and notes that operators "can be non-commutative, but must be
//! associative". The runtime honours that: non-commutative operators are
//! combined strictly in rank order, exactly as MPI guarantees.

/// A binary reduction operator over `T`.
///
/// Implementations must be associative. Set [`ReduceOp::commutative`] to
/// `false` for order-sensitive operators; the runtime then folds inputs in
/// ascending rank order.
pub trait ReduceOp<T>: Send + Sync {
    /// Combines two values.
    fn combine(&self, a: &T, b: &T) -> T;

    /// Whether the operator commutes (default: yes).
    fn commutative(&self) -> bool {
        true
    }

    /// Stable identifier the collective-protocol verifier compares
    /// across ranks (see [`crate::check`]). The default — the
    /// implementor's type name — distinguishes every operator type and
    /// every closure call site, while staying identical across ranks of
    /// an SPMD job running the same code path.
    fn tag(&self) -> &'static str {
        std::any::type_name::<Self>()
    }
}

/// Blanket adapter so plain closures work as commutative operators:
/// `comm.allreduce(v, &|a, b| ...)`.
impl<T, F> ReduceOp<T> for F
where
    F: Fn(&T, &T) -> T + Send + Sync,
{
    fn combine(&self, a: &T, b: &T) -> T {
        self(a, b)
    }
}

/// Folds `values` (indexed by rank) with `op`, in rank order.
///
/// Rank order is the MPI-specified canonical reduction order; for
/// commutative ops any order is equivalent, so using rank order everywhere
/// is both correct and deterministic.
pub fn fold_in_rank_order<T: Clone>(values: &[T], op: &dyn ReduceOp<T>) -> T {
    assert!(!values.is_empty(), "reduction over empty input");
    let mut acc = values[0].clone();
    for v in &values[1..] {
        acc = op.combine(&acc, v);
    }
    acc
}

/// Computes the inclusive prefix scan (MPI_Scan): element `i` of the
/// result combines ranks `0..=i`.
pub fn scan_in_rank_order<T: Clone>(values: &[T], op: &dyn ReduceOp<T>) -> Vec<T> {
    let mut out = Vec::with_capacity(values.len());
    let mut acc: Option<T> = None;
    for v in values {
        let next = match acc.take() {
            None => v.clone(),
            Some(a) => op.combine(&a, v),
        };
        out.push(next.clone());
        acc = Some(next);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Concat;
    impl ReduceOp<String> for Concat {
        fn combine(&self, a: &String, b: &String) -> String {
            format!("{a}{b}")
        }
        fn commutative(&self) -> bool {
            false
        }
    }

    #[test]
    fn closures_are_reduce_ops() {
        let add = |a: &u64, b: &u64| a + b;
        assert_eq!(fold_in_rank_order(&[1, 2, 3, 4], &add), 10);
    }

    #[test]
    fn non_commutative_op_preserves_rank_order() {
        let vals: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        assert_eq!(fold_in_rank_order(&vals, &Concat), "abcd");
        assert!(!Concat.commutative());
    }

    #[test]
    fn scan_produces_prefixes() {
        let vals: Vec<String> = ["a", "b", "c"].iter().map(|s| s.to_string()).collect();
        assert_eq!(scan_in_rank_order(&vals, &Concat), vec!["a", "ab", "abc"]);
    }

    #[test]
    fn scan_with_numbers() {
        let add = |a: &i64, b: &i64| a + b;
        assert_eq!(scan_in_rank_order(&[1, 2, 3, 4], &add), vec![1, 3, 6, 10]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_reduction_panics() {
        let add = |a: &u64, b: &u64| a + b;
        let _ = fold_in_rank_order(&[], &add);
    }
}
