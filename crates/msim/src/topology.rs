//! Job topology: nodes × ranks-per-node.

/// Shape of a simulated job. The paper's experiments fix ranks-per-node
/// (16 on COMET, 20 on ROGER) and sweep node counts; the node boundary
/// matters because client-side I/O bandwidth and the ROMIO aggregator rule
/// are both per-*node* effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Topology {
    nodes: usize,
    ranks_per_node: usize,
}

impl Topology {
    /// Creates a topology of `nodes` × `ranks_per_node`.
    pub fn new(nodes: usize, ranks_per_node: usize) -> Self {
        assert!(
            nodes > 0 && ranks_per_node > 0,
            "topology must be non-empty"
        );
        Topology {
            nodes,
            ranks_per_node,
        }
    }

    /// A single-node topology with `ranks` ranks.
    pub fn single_node(ranks: usize) -> Self {
        Topology::new(1, ranks)
    }

    /// COMET-style topology: 16 MPI ranks per node (paper §5).
    pub fn comet(nodes: usize) -> Self {
        Topology::new(nodes, 16)
    }

    /// ROGER-style topology: 20 MPI ranks per node (paper §5).
    pub fn roger(nodes: usize) -> Self {
        Topology::new(nodes, 20)
    }

    /// Total ranks in the job.
    pub fn ranks(&self) -> usize {
        self.nodes * self.ranks_per_node
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Ranks per node.
    pub fn ranks_per_node(&self) -> usize {
        self.ranks_per_node
    }

    /// Node hosting `rank` (block placement: ranks 0..ppn on node 0, etc.,
    /// matching the usual `--map-by node` default of slurm/OpenMPI).
    pub fn node_of(&self, rank: usize) -> usize {
        debug_assert!(rank < self.ranks());
        rank / self.ranks_per_node
    }

    /// The first rank on each node — the candidates ROMIO picks
    /// aggregators from.
    pub fn node_leaders(&self) -> Vec<usize> {
        (0..self.nodes).map(|n| n * self.ranks_per_node).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_accounting() {
        let t = Topology::new(3, 4);
        assert_eq!(t.ranks(), 12);
        assert_eq!(t.nodes(), 3);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.node_of(11), 2);
        assert_eq!(t.node_leaders(), vec![0, 4, 8]);
    }

    #[test]
    fn presets_match_paper() {
        assert_eq!(Topology::comet(4).ranks(), 64);
        assert_eq!(Topology::roger(4).ranks(), 80);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_nodes_panics() {
        let _ = Topology::new(0, 4);
    }
}
