//! The per-rank communicator handle: point-to-point messaging, clock
//! management, and collectives.

use crate::check::{CollectiveKind, CollectiveSig, CollectiveVerifier};
use crate::collective::Hub;
use crate::reduceop::{fold_in_rank_order, scan_in_rank_order, ReduceOp};
use crate::request::{LeakGuard, ReqInner, Request};
use crate::time::{CostModel, Work};
use crate::topology::Topology;
use crossbeam::channel::{Receiver, Sender};
use std::sync::Arc;

/// A message in flight: payload plus the sender's virtual timestamp.
#[derive(Debug)]
pub(crate) struct Envelope {
    pub src: usize,
    pub tag: u64,
    pub data: Vec<u8>,
    pub send_time: f64,
}

/// Reserved tag delivered to wake blocked receivers when the job aborts.
pub(crate) const POISON_TAG: u64 = u64::MAX;

/// State shared by every rank of a world.
pub(crate) struct Shared {
    pub topo: Topology,
    pub cost: CostModel,
    pub senders: Vec<Sender<Envelope>>,
    pub hub: Hub,
    /// Collective-protocol verifier; `None` when `MVIO_CHECK` is off.
    pub check: Option<Arc<CollectiveVerifier>>,
}

/// The per-rank communicator — the analogue of `MPI_COMM_WORLD` plus the
/// rank's virtual clock.
///
/// A `Comm` is handed to each rank closure by [`crate::World::run`]. All
/// its operations advance the rank's virtual clock according to the
/// [`CostModel`]; wall-clock time is never consulted.
pub struct Comm {
    rank: usize,
    now: f64,
    gen: u64,
    shared: Arc<Shared>,
    rx: Receiver<Envelope>,
    /// Messages received but not yet matched by a `recv` (preserves
    /// per-(src, tag) FIFO order, like MPI's non-overtaking rule).
    stash: Vec<Envelope>,
    /// Call-site label stack ([`Comm::labeled`]); only maintained while
    /// the verifier is active.
    labels: Vec<String>,
}

impl Comm {
    pub(crate) fn new(rank: usize, shared: Arc<Shared>, rx: Receiver<Envelope>) -> Self {
        Comm {
            rank,
            now: 0.0,
            gen: 0,
            shared,
            rx,
            stash: Vec::new(),
            labels: Vec::new(),
        }
    }

    // ----- identity ------------------------------------------------------

    /// This rank's id in `0..size()`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size (number of ranks).
    pub fn size(&self) -> usize {
        self.shared.topo.ranks()
    }

    /// The node this rank runs on.
    pub fn node(&self) -> usize {
        self.shared.topo.node_of(self.rank)
    }

    /// Job topology.
    pub fn topology(&self) -> Topology {
        self.shared.topo
    }

    /// The job's cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.shared.cost
    }

    // ----- virtual clock --------------------------------------------------

    /// Current virtual time in seconds.
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the clock by `dt` seconds (dt ≥ 0).
    pub fn advance(&mut self, dt: f64) {
        debug_assert!(dt >= 0.0, "cannot advance clock backwards");
        self.now += dt;
    }

    /// Moves the clock forward to `t` if `t` is later.
    pub fn advance_to(&mut self, t: f64) {
        if t > self.now {
            self.now = t;
        }
    }

    /// Charges a quantum of accountable compute work.
    pub fn charge(&mut self, work: Work) {
        self.now += self.shared.cost.cost(work);
    }

    /// Charges a region of work executed by concurrent intra-rank worker
    /// lanes: the clock advances by the **slowest lane** (the virtual
    /// wall-time of a perfectly overlapped parallel region). Lane totals
    /// come from per-worker [`crate::WorkTally`] accounting; callers must
    /// assign work to lanes deterministically (e.g. `chunk % lanes`) so
    /// the charge is independent of OS scheduling. An empty slice charges
    /// nothing.
    pub fn advance_parallel(&mut self, lane_seconds: &[f64]) {
        let max = lane_seconds.iter().fold(0.0f64, |a, &b| a.max(b));
        debug_assert!(max.is_finite() && max >= 0.0, "lane totals must be finite");
        self.now += max;
    }

    /// Context handed to the simulated filesystem for independent I/O.
    pub fn io_ctx(&self) -> mvio_pfs::IoCtx {
        mvio_pfs::IoCtx {
            node: self.node(),
            now: self.now,
            world_nodes: self.shared.topo.nodes(),
        }
    }

    // ----- protocol verification ------------------------------------------

    /// True when the collective-protocol verifier is active
    /// (`MVIO_CHECK` on or strict; see [`crate::check`]).
    pub fn check_active(&self) -> bool {
        self.shared.check.is_some()
    }

    /// Runs `f` with `label` pushed on the call-site label stack; every
    /// collective entered inside carries the stack (nested scopes joined
    /// with `/`) in its verifier signature, and leaked requests report
    /// it. Free when the verifier is off.
    ///
    /// Labels are compared across ranks, so only attach one at a point
    /// every rank is guaranteed to execute — i.e. inside a function
    /// whose own contract is collective. A label that some ranks skip
    /// would itself read as a protocol divergence.
    pub fn labeled<R>(&mut self, label: &str, f: impl FnOnce(&mut Comm) -> R) -> R {
        if self.shared.check.is_none() {
            return f(self);
        }
        self.labels.push(label.to_string());
        let out = f(self);
        self.labels.pop();
        out
    }

    /// Number of collectives this rank has entered (the world's exit
    /// hook hands it to the verifier to detect stranded peers).
    pub(crate) fn collectives_entered(&self) -> u64 {
        self.gen
    }

    fn label_text(&self) -> String {
        self.labels.join("/")
    }

    /// Deposits this rank's signature for collective `gen` with the
    /// verifier (no-op when the verifier is off).
    fn record_collective(
        &self,
        gen: u64,
        kind: CollectiveKind,
        root: Option<usize>,
        op: Option<&'static str>,
        parts: Option<usize>,
    ) {
        if let Some(v) = &self.shared.check {
            v.record(
                self.rank,
                gen,
                CollectiveSig {
                    kind,
                    root,
                    op,
                    parts,
                    label: self.label_text(),
                },
            );
        }
    }

    /// Leak-detector context for a request initiated now (`None` when
    /// the verifier is off).
    fn leak_guard(&self, op: &'static str) -> Option<LeakGuard> {
        self.shared.check.as_ref().map(|v| {
            let label = self.label_text();
            let op = if label.is_empty() {
                op.to_string()
            } else {
                format!("{op} @ {label}")
            };
            LeakGuard::new(Arc::clone(v), self.rank, op)
        })
    }

    // ----- point-to-point -------------------------------------------------

    /// Sends `data` to `dst` with `tag`. Eager semantics: the call returns
    /// after the local buffer is handed off; the sender is charged the
    /// message-injection overhead (α plus a per-byte copy).
    pub fn send(&mut self, dst: usize, tag: u64, data: &[u8]) {
        let req = self.isend(dst, tag, data);
        self.wait(req);
    }

    /// Nonblocking send (`MPI_Isend`): the message is injected with the
    /// current timestamp but the sender's clock does not advance until the
    /// returned request completes, so compute charged in between overlaps
    /// the injection overhead.
    pub fn isend(&mut self, dst: usize, tag: u64, data: &[u8]) -> Request<()> {
        assert!(dst < self.size(), "send to rank {dst} out of range");
        let send_time = self.now;
        let done = self.now
            + self.shared.cost.comm_latency
            + self.shared.cost.cost(Work::CopyBytes {
                n: data.len() as u64,
            });
        self.shared.senders[dst]
            .send(Envelope {
                src: self.rank,
                tag,
                data: data.to_vec(),
                send_time,
            })
            // audit: mailbox receivers live in `Shared`, which outlives every rank thread.
            .expect("receiver outlives the job");
        Request::ready(done, ()).with_guard(self.leak_guard("isend"))
    }

    /// Blocking receive of the next message from `src` with `tag`
    /// (non-overtaking per (src, tag) pair). Returns the payload; its
    /// length is the `MPI_Get_count` value.
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<u8> {
        let req = self.irecv(src, tag);
        self.wait(req)
    }

    /// Nonblocking receive (`MPI_Irecv`): matching is deferred to
    /// completion, so posting receives before the corresponding sends —
    /// the symmetric-exchange pattern that deadlocks with blocking calls —
    /// is safe, and compute charged before [`Comm::wait`] overlaps the
    /// message flight.
    pub fn irecv(&mut self, src: usize, tag: u64) -> Request<Vec<u8>> {
        assert!(src < self.size(), "recv from rank {src} out of range");
        Request::pending_recv(src, tag).with_guard(self.leak_guard("irecv"))
    }

    // ----- request completion ---------------------------------------------

    /// Resolves a request to `(completion_time, value)` without touching
    /// the clock.
    fn resolve<T>(&mut self, mut req: Request<T>) -> (f64, T) {
        match req.take_inner() {
            ReqInner::Ready { at, value } => (at, value),
            ReqInner::PendingRecv { src, tag, wrap } => {
                let env = self.take_matching(src, tag);
                let arrival = env.send_time + self.shared.cost.p2p(env.data.len() as u64);
                (arrival, wrap(env.data))
            }
        }
    }

    /// `MPI_Wait`: completes `req`, advancing the clock to the operation's
    /// completion instant if that lies in the future (compute performed
    /// since initiation therefore overlaps the transfer).
    pub fn wait<T>(&mut self, req: Request<T>) -> T {
        let (at, value) = self.resolve(req);
        self.advance_to(at);
        value
    }

    /// `MPI_Waitall`: completes every request, advances the clock once to
    /// the latest completion, and returns the values in *request order*
    /// (never completion order). The final clock is independent of the
    /// order requests are listed in.
    pub fn waitall<T>(&mut self, reqs: impl IntoIterator<Item = Request<T>>) -> Vec<T> {
        let mut latest = self.now;
        let mut out = Vec::new();
        for req in reqs {
            let (at, value) = self.resolve(req);
            latest = latest.max(at);
            out.push(value);
        }
        self.advance_to(latest);
        out
    }

    /// `MPI_Test`: completes `req` and returns its value iff the operation
    /// has finished by the current *virtual* time; otherwise hands the
    /// request back untouched. Never advances the clock. The outcome
    /// depends only on deterministic virtual timestamps (for a pending
    /// receive this may physically block until the peer's message exists,
    /// like every blocking primitive in the runtime — see the
    /// [`crate::request`] module docs).
    pub fn test<T>(&mut self, mut req: Request<T>) -> std::result::Result<T, Request<T>> {
        match req.take_inner() {
            ReqInner::Ready { at, value } => {
                if at <= self.now {
                    Ok(value)
                } else {
                    Err(req.restore(ReqInner::Ready { at, value }))
                }
            }
            ReqInner::PendingRecv { src, tag, wrap } => {
                let len = self.stash_matching(src, tag);
                // audit: the envelope was pushed onto the stash in the loop above.
                let pos = self.stash_pos(src, tag).expect("just stashed");
                let arrival = self.stash[pos].send_time + self.shared.cost.p2p(len as u64);
                if arrival <= self.now {
                    let env = self.stash.remove(pos);
                    Ok(wrap(env.data))
                } else {
                    Err(req.restore(ReqInner::PendingRecv { src, tag, wrap }))
                }
            }
        }
    }

    /// Ensures a message from `(src, tag)` sits in the stash (pumping the
    /// channel as needed) and returns its byte length. Does not advance
    /// the clock.
    fn stash_matching(&mut self, src: usize, tag: u64) -> usize {
        if let Some(pos) = self.stash_pos(src, tag) {
            return self.stash[pos].data.len();
        }
        loop {
            // audit: every peer holds a sender until its thread exits, and the world joins all ranks before dropping mailboxes.
            let env = self.rx.recv().expect("world alive");
            if env.tag == POISON_TAG {
                panic!("{}", crate::collective::ABORT_MSG);
            }
            let matched = env.src == src && env.tag == tag;
            let len = env.data.len();
            self.stash.push(env);
            if matched {
                return len;
            }
        }
    }

    /// Blocks until a message from `(src, tag)` is available and returns
    /// its byte count without consuming it (`MPI_Probe` + `MPI_Get_count`).
    pub fn probe(&mut self, src: usize, tag: u64) -> usize {
        let len = self.stash_matching(src, tag);
        // audit: the envelope was pushed onto the stash in the loop above.
        let pos = self.stash_pos(src, tag).expect("just stashed");
        let arrival = self.stash[pos].send_time + self.shared.cost.p2p(len as u64);
        self.advance_to(arrival);
        len
    }

    fn stash_pos(&self, src: usize, tag: u64) -> Option<usize> {
        self.stash.iter().position(|e| e.src == src && e.tag == tag)
    }

    fn take_matching(&mut self, src: usize, tag: u64) -> Envelope {
        if let Some(pos) = self.stash_pos(src, tag) {
            return self.stash.remove(pos);
        }
        loop {
            // audit: every peer holds a sender until its thread exits, and the world joins all ranks before dropping mailboxes.
            let env = self.rx.recv().expect("world alive");
            if env.tag == POISON_TAG {
                panic!("{}", crate::collective::ABORT_MSG);
            }
            if env.src == src && env.tag == tag {
                return env;
            }
            self.stash.push(env);
        }
    }

    // ----- collectives ------------------------------------------------------

    fn next_gen(&mut self) -> u64 {
        let g = self.gen;
        self.gen += 1;
        g
    }

    /// `MPI_Barrier`.
    pub fn barrier(&mut self) {
        let gen = self.next_gen();
        self.record_collective(gen, CollectiveKind::Barrier, None, None, None);
        let p = self.size();
        let cost = self.shared.cost.barrier(p);
        let (_, exit) =
            self.shared
                .hub
                .exchange(self.rank, gen, self.now, (), |_: Vec<()>, times| {
                    let exit = max_time(times) + cost;
                    ((), vec![exit; times.len()])
                });
        self.now = exit;
    }

    /// `MPI_Bcast`: `data` is significant at `root`, the returned buffer at
    /// every rank.
    pub fn bcast(&mut self, root: usize, data: Vec<u8>) -> Vec<u8> {
        let gen = self.next_gen();
        self.record_collective(gen, CollectiveKind::Bcast, Some(root), None, None);
        let p = self.size();
        let cost_model = self.shared.cost;
        let input = if self.rank == root { Some(data) } else { None };
        let (result, exit) = self.shared.hub.exchange(
            self.rank,
            gen,
            self.now,
            input,
            move |inputs: Vec<Option<Vec<u8>>>, times| {
                let payload = inputs
                    .into_iter()
                    .flatten()
                    .next()
                    // audit: the root deposited its payload into the collective slot above.
                    .expect("root provided bcast payload");
                let exit = max_time(times) + cost_model.bcast(p, payload.len() as u64);
                (payload, vec![exit; times.len()])
            },
        );
        self.now = exit;
        (*result).clone()
    }

    /// `MPI_Gather` (variable-size, i.e. gatherv): every rank contributes
    /// `data`; `root` receives all contributions indexed by rank.
    pub fn gather(&mut self, root: usize, data: Vec<u8>) -> Option<Vec<Vec<u8>>> {
        let gen = self.next_gen();
        self.record_collective(gen, CollectiveKind::Gather, Some(root), None, None);
        let p = self.size();
        let cost_model = self.shared.cost;
        let (result, exit) = self.shared.hub.exchange(
            self.rank,
            gen,
            self.now,
            data,
            move |inputs: Vec<Vec<u8>>, times| {
                let total: u64 = inputs.iter().map(|v| v.len() as u64).sum();
                let exit = max_time(times) + cost_model.reduce(p, total);
                (inputs, vec![exit; times.len()])
            },
        );
        self.now = exit;
        if self.rank == root {
            Some((*result).clone())
        } else {
            None
        }
    }

    /// `MPI_Allgather` (variable-size): every rank receives every rank's
    /// contribution.
    pub fn allgather(&mut self, data: Vec<u8>) -> Vec<Vec<u8>> {
        let gen = self.next_gen();
        self.record_collective(gen, CollectiveKind::Allgather, None, None, None);
        let p = self.size();
        let cost_model = self.shared.cost;
        let (result, exit) = self.shared.hub.exchange(
            self.rank,
            gen,
            self.now,
            data,
            move |inputs: Vec<Vec<u8>>, times| {
                let total: u64 = inputs.iter().map(|v| v.len() as u64).sum();
                // ring allgather: log p startup + total volume.
                let exit = max_time(times) + cost_model.bcast(p, total);
                (inputs, vec![exit; times.len()])
            },
        );
        self.now = exit;
        (*result).clone()
    }

    /// Fixed-count `MPI_Alltoall` over one `u64` per peer — the first round
    /// of the paper's two-round exchange (peers swap buffer sizes before
    /// the payload `Alltoallv`).
    pub fn alltoall_u64(&mut self, sends: Vec<u64>) -> Vec<u64> {
        let req = self.ialltoall_u64(sends);
        self.wait(req)
    }

    /// Nonblocking [`Comm::alltoall_u64`] (`MPI_Ialltoall`): the exchange
    /// is initiated at the current timestamp; the clock does not advance
    /// until the returned request completes, so compute charged in between
    /// overlaps the collective.
    pub fn ialltoall_u64(&mut self, sends: Vec<u64>) -> Request<Vec<u64>> {
        assert_eq!(sends.len(), self.size(), "one value per destination");
        let gen = self.next_gen();
        self.record_collective(
            gen,
            CollectiveKind::AlltoallU64,
            None,
            None,
            Some(sends.len()),
        );
        let p = self.size();
        let cost_model = self.shared.cost;
        let rank = self.rank;
        let (result, exit) = self.shared.hub.exchange(
            self.rank,
            gen,
            self.now,
            sends,
            move |inputs: Vec<Vec<u64>>, times| {
                // transpose: out[dst][src] = inputs[src][dst]
                let mut matrix = vec![vec![0u64; p]; p];
                for (src, row) in inputs.iter().enumerate() {
                    for (dst, v) in row.iter().enumerate() {
                        matrix[dst][src] = *v;
                    }
                }
                let per = cost_model.alltoall(p, 8 * p as u64, 8 * p as u64);
                let exit = max_time(times) + per;
                (matrix, vec![exit; times.len()])
            },
        );
        Request::ready(exit, result[rank].clone()).with_guard(self.leak_guard("ialltoall_u64"))
    }

    /// `MPI_Alltoallv` over byte buffers: element `d` of `sends` goes to
    /// rank `d`; the result's element `s` came from rank `s`. Message
    /// sizes may differ arbitrarily — the variable-length-geometry case
    /// the paper §3 calls out as painful with raw MPI datatypes.
    pub fn alltoallv(&mut self, sends: Vec<Vec<u8>>) -> Vec<Vec<u8>> {
        let req = self.ialltoallv(sends);
        self.wait(req)
    }

    /// Nonblocking [`Comm::alltoallv`] (`MPI_Ialltoallv`), the core of the
    /// chunked overlapped exchange: post one round's payloads, keep
    /// computing (serializing the next round), then [`Comm::wait`]. Like
    /// every collective here the initiation physically rendezvouses with
    /// the peers, but the *virtual* completion — per-rank, sized by that
    /// rank's send and receive volumes — is deferred to the wait.
    pub fn ialltoallv(&mut self, sends: Vec<Vec<u8>>) -> Request<Vec<Vec<u8>>> {
        assert_eq!(sends.len(), self.size(), "one buffer per destination");
        let gen = self.next_gen();
        self.record_collective(
            gen,
            CollectiveKind::Alltoallv,
            None,
            None,
            Some(sends.len()),
        );
        let p = self.size();
        let cost_model = self.shared.cost;
        let rank = self.rank;
        let (result, exit) = self.shared.hub.exchange(
            self.rank,
            gen,
            self.now,
            sends,
            move |mut inputs: Vec<Vec<Vec<u8>>>, times| {
                let send_totals: Vec<u64> = inputs
                    .iter()
                    .map(|row| row.iter().map(|b| b.len() as u64).sum())
                    .collect();
                // transpose, moving buffers (no copies).
                let mut matrix: Vec<Vec<Vec<u8>>> = (0..p).map(|_| Vec::with_capacity(p)).collect();
                for row_slot in &mut inputs {
                    let row = std::mem::take(row_slot);
                    for (dst, buf) in row.into_iter().enumerate() {
                        matrix[dst].push(buf);
                    }
                }
                let recv_totals: Vec<u64> = matrix
                    .iter()
                    .map(|row| row.iter().map(|b| b.len() as u64).sum())
                    .collect();
                let start = max_time(times);
                let exits: Vec<f64> = (0..p)
                    .map(|r| start + cost_model.alltoall(p, send_totals[r], recv_totals[r]))
                    .collect();
                (matrix, exits)
            },
        );
        Request::ready(exit, result[rank].clone()).with_guard(self.leak_guard("ialltoallv"))
    }

    /// `MPI_Reduce` with a user-defined operator; the result is returned at
    /// `root` only. `bytes_hint` sizes the communication cost (use the
    /// serialized size of `T`).
    pub fn reduce<T>(
        &mut self,
        root: usize,
        value: T,
        bytes_hint: u64,
        op: &dyn ReduceOp<T>,
    ) -> Option<T>
    where
        T: Clone + Send + Sync + 'static,
    {
        let out = self.allreduce_inner(value, bytes_hint, op, CollectiveKind::Reduce, Some(root));
        if self.rank == root {
            Some(out)
        } else {
            None
        }
    }

    /// `MPI_Allreduce` with a user-defined operator.
    pub fn allreduce<T>(&mut self, value: T, bytes_hint: u64, op: &dyn ReduceOp<T>) -> T
    where
        T: Clone + Send + Sync + 'static,
    {
        self.allreduce_inner(value, bytes_hint, op, CollectiveKind::Allreduce, None)
    }

    fn allreduce_inner<T>(
        &mut self,
        value: T,
        bytes_hint: u64,
        op: &dyn ReduceOp<T>,
        kind: CollectiveKind,
        root: Option<usize>,
    ) -> T
    where
        T: Clone + Send + Sync + 'static,
    {
        let gen = self.next_gen();
        self.record_collective(gen, kind, root, Some(op.tag()), None);
        let p = self.size();
        let cost_model = self.shared.cost;
        let (result, exit) = self.shared.hub.exchange(
            self.rank,
            gen,
            self.now,
            value,
            move |inputs: Vec<T>, times| {
                let combined = fold_in_rank_order(&inputs, op);
                let exit = max_time(times) + cost_model.reduce(p, bytes_hint);
                (combined, vec![exit; times.len()])
            },
        );
        self.now = exit;
        (*result).clone()
    }

    /// Convenience `MPI_Allreduce` over a single `u64`.
    pub fn allreduce_u64(
        &mut self,
        value: u64,
        op: impl Fn(&u64, &u64) -> u64 + Send + Sync,
    ) -> u64 {
        self.allreduce(value, 8, &op)
    }

    /// `MPI_Scan` (inclusive prefix) with a user-defined operator; the
    /// paper's Figure 13 benchmarks this with the geometric-union operator.
    pub fn scan<T>(&mut self, value: T, bytes_hint: u64, op: &dyn ReduceOp<T>) -> T
    where
        T: Clone + Send + Sync + 'static,
    {
        let gen = self.next_gen();
        self.record_collective(gen, CollectiveKind::Scan, None, Some(op.tag()), None);
        let p = self.size();
        let rank = self.rank;
        let cost_model = self.shared.cost;
        let (result, exit) = self.shared.hub.exchange(
            self.rank,
            gen,
            self.now,
            value,
            move |inputs: Vec<T>, times| {
                let prefixes = scan_in_rank_order(&inputs, op);
                let exit = max_time(times) + cost_model.reduce(p, bytes_hint);
                (prefixes, vec![exit; times.len()])
            },
        );
        self.now = exit;
        result[rank].clone()
    }

    /// Access to the shared hub generation — used by the I/O layer to run
    /// its own collectives in the same ordered stream. `site` names the
    /// operation in the verifier's signature (e.g. `io.read_at_all`).
    pub(crate) fn collective<T, R, F>(
        &mut self,
        site: &'static str,
        input: T,
        combine: F,
    ) -> (Arc<R>, f64)
    where
        T: Send + 'static,
        R: Send + Sync + 'static,
        F: FnOnce(Vec<T>, &[f64]) -> (R, Vec<f64>),
    {
        let gen = self.next_gen();
        self.record_collective(gen, CollectiveKind::Custom(site), None, None, None);
        let (r, exit) = self
            .shared
            .hub
            .exchange(self.rank, gen, self.now, input, combine);
        self.now = exit;
        (r, exit)
    }
}

#[inline]
fn max_time(times: &[f64]) -> f64 {
    times.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}
