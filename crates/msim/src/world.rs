//! Job launcher: spawns one thread per rank, SPMD-style.

use crate::check::{CheckMode, CollectiveVerifier, Violation};
use crate::collective::Hub;
use crate::comm::{Comm, Shared};
use crate::time::CostModel;
use crate::topology::Topology;
use crossbeam::channel::unbounded;
use std::sync::Arc;

/// Configuration for one simulated job.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Node/rank layout.
    pub topology: Topology,
    /// Cost model shared by all ranks.
    pub cost: CostModel,
    /// Stack size per rank thread. Jobs with a thousand ranks need modest
    /// stacks; 1 MiB is ample since the library never recurses deeply.
    pub stack_size: usize,
    /// Collective-protocol verification mode (see [`crate::check`]);
    /// `None` resolves `MVIO_CHECK` from the environment at launch.
    pub check: Option<CheckMode>,
}

impl WorldConfig {
    /// Default configuration with the calibrated cost model.
    pub fn new(topology: Topology) -> Self {
        WorldConfig {
            topology,
            cost: CostModel::calibrated(),
            stack_size: 1 << 20,
            check: None,
        }
    }

    /// Overrides the cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Pins the verification mode, overriding `MVIO_CHECK`.
    pub fn with_check(mut self, mode: CheckMode) -> Self {
        self.check = Some(mode);
        self
    }
}

/// The job launcher.
pub struct World;

impl World {
    /// Runs `f` as an SPMD job: one OS thread per rank, each receiving its
    /// own [`Comm`]. Returns the per-rank results, indexed by rank.
    ///
    /// Panics in any rank propagate (the job aborts, like
    /// `MPI_Abort`-on-error behaviour).
    pub fn run<F, R>(cfg: WorldConfig, f: F) -> Vec<R>
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        Self::run_reporting(cfg, f).0
    }

    /// Like [`World::run`], but also returns the collective-protocol
    /// violations the verifier collected (always empty when the mode
    /// resolves to [`CheckMode::Off`]; under [`CheckMode::Strict`] the
    /// first violation panics instead of being returned). This is the
    /// queryable-from-tests surface of `MVIO_CHECK=on`.
    pub fn run_reporting<F, R>(cfg: WorldConfig, f: F) -> (Vec<R>, Vec<Violation>)
    where
        F: Fn(&mut Comm) -> R + Send + Sync,
        R: Send,
    {
        let p = cfg.topology.ranks();
        let mode = cfg.check.unwrap_or_else(CheckMode::from_env);
        let check = match mode {
            CheckMode::Off => None,
            m => Some(Arc::new(CollectiveVerifier::new(p, m == CheckMode::Strict))),
        };
        let mut senders = Vec::with_capacity(p);
        let mut receivers = Vec::with_capacity(p);
        for _ in 0..p {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            topo: cfg.topology,
            cost: cfg.cost,
            senders,
            hub: Hub::new(p),
            check: check.clone(),
        });

        let f = &f;
        let results = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p);
            for (rank, rx) in receivers.into_iter().enumerate() {
                let shared = Arc::clone(&shared);
                let handle = std::thread::Builder::new()
                    .name(format!("rank-{rank}"))
                    .stack_size(cfg.stack_size)
                    .spawn_scoped(scope, move || {
                        // MPI_Abort semantics: if this rank panics, poison
                        // the collectives and wake every blocked receiver
                        // so the whole job terminates instead of hanging.
                        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            let mut comm = Comm::new(rank, Arc::clone(&shared), rx);
                            let out = f(&mut comm);
                            // The closure returned: tell the verifier how
                            // far this rank got, so peers still inside (or
                            // later entering) a collective this rank never
                            // joined are reported as stranded. A strict-
                            // mode panic here still runs the poison path
                            // below, waking those peers.
                            if let Some(v) = &shared.check {
                                v.rank_finished(rank, comm.collectives_entered());
                            }
                            out
                        }));
                        if result.is_err() {
                            shared.hub.poison();
                            for s in &shared.senders {
                                let _ = s.send(crate::comm::Envelope {
                                    src: rank,
                                    tag: crate::comm::POISON_TAG,
                                    data: Vec::new(),
                                    send_time: 0.0,
                                });
                            }
                        }
                        result
                    })
                    // audit: spawn fails only on OS resource exhaustion; no meaningful recovery.
                    .expect("spawn rank thread");
                handles.push(handle);
            }
            let results: Vec<_> = handles
                .into_iter()
                // audit: rank closures run under `catch_unwind`, so the thread body cannot panic.
                .map(|h| h.join().expect("rank thread itself never panics"))
                .collect();
            // Prefer the originating panic over secondary abort panics.
            let mut abort_payload = None;
            let mut ok = Vec::with_capacity(p);
            for r in results {
                match r {
                    Ok(v) => ok.push(v),
                    Err(payload) => {
                        let is_secondary = payload
                            .downcast_ref::<String>()
                            .map(|s| s.contains(crate::collective::ABORT_MSG))
                            .or_else(|| {
                                payload
                                    .downcast_ref::<&str>()
                                    .map(|s| s.contains(crate::collective::ABORT_MSG))
                            })
                            .unwrap_or(false);
                        match (&abort_payload, is_secondary) {
                            (None, _) => abort_payload = Some((payload, is_secondary)),
                            (Some((_, true)), false) => {
                                abort_payload = Some((payload, false));
                            }
                            _ => {}
                        }
                    }
                }
            }
            if let Some((payload, _)) = abort_payload {
                std::panic::resume_unwind(payload);
            }
            ok
        });
        let violations = check.map(|v| v.reports()).unwrap_or_default();
        (results, violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Work;

    fn cfg(nodes: usize, ppn: usize) -> WorldConfig {
        WorldConfig::new(Topology::new(nodes, ppn))
    }

    #[test]
    fn ranks_see_their_identity() {
        let out = World::run(cfg(2, 3), |comm| (comm.rank(), comm.size(), comm.node()));
        assert_eq!(
            out,
            vec![
                (0, 6, 0),
                (1, 6, 0),
                (2, 6, 0),
                (3, 6, 1),
                (4, 6, 1),
                (5, 6, 1)
            ]
        );
    }

    #[test]
    fn send_recv_moves_data_and_time() {
        let out = World::run(cfg(1, 2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, b"payload");
                comm.now()
            } else {
                let data = comm.recv(0, 7);
                assert_eq!(data, b"payload");
                comm.now()
            }
        });
        // The receiver's clock must be at least the message flight time.
        assert!(out[1] > 0.0);
        // Sender is only charged injection overhead, less than the flight.
        assert!(out[0] < out[1]);
    }

    #[test]
    fn messages_do_not_overtake_within_src_tag() {
        let out = World::run(cfg(1, 2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, b"first");
                comm.send(1, 1, b"second");
                vec![]
            } else {
                vec![comm.recv(0, 1), comm.recv(0, 1)]
            }
        });
        assert_eq!(out[1], vec![b"first".to_vec(), b"second".to_vec()]);
    }

    #[test]
    fn recv_by_tag_picks_matching_message() {
        let out = World::run(cfg(1, 2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, b"five");
                comm.send(1, 9, b"nine");
                vec![]
            } else {
                // Receive tag 9 first even though tag 5 was sent first.
                let nine = comm.recv(0, 9);
                let five = comm.recv(0, 5);
                vec![nine, five]
            }
        });
        assert_eq!(out[1], vec![b"nine".to_vec(), b"five".to_vec()]);
    }

    #[test]
    fn probe_reports_size_without_consuming() {
        let out = World::run(cfg(1, 2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 3, b"0123456789");
                0
            } else {
                let n = comm.probe(0, 3);
                assert_eq!(n, 10);
                // Message still receivable afterwards.
                let data = comm.recv(0, 3);
                assert_eq!(data.len(), n);
                n
            }
        });
        assert_eq!(out[1], 10);
    }

    #[test]
    fn barrier_aligns_clocks() {
        let out = World::run(cfg(1, 4), |comm| {
            // Ranks do wildly different amounts of work first.
            comm.charge(Work::Seconds(comm.rank() as f64));
            comm.barrier();
            comm.now()
        });
        // All ranks leave the barrier at the same virtual instant, which is
        // at least the slowest rank's entry.
        assert!(out.iter().all(|&t| (t - out[0]).abs() < 1e-12));
        assert!(out[0] >= 3.0);
    }

    #[test]
    fn bcast_delivers_root_payload() {
        let out = World::run(cfg(1, 4), |comm| {
            let data = if comm.rank() == 2 {
                b"hello".to_vec()
            } else {
                vec![]
            };
            comm.bcast(2, data)
        });
        assert!(out.iter().all(|d| d == b"hello"));
    }

    #[test]
    fn gather_collects_by_rank_at_root() {
        let out = World::run(cfg(1, 3), |comm| {
            comm.gather(1, vec![comm.rank() as u8; comm.rank() + 1])
        });
        assert!(out[0].is_none() && out[2].is_none());
        assert_eq!(out[1].as_ref().unwrap().len(), 3);
        assert_eq!(out[1].as_ref().unwrap()[2], vec![2, 2, 2]);
    }

    #[test]
    fn allgather_gives_everyone_everything() {
        let out = World::run(cfg(1, 3), |comm| comm.allgather(vec![comm.rank() as u8]));
        for got in &out {
            assert_eq!(*got, vec![vec![0u8], vec![1u8], vec![2u8]]);
        }
    }

    #[test]
    fn alltoall_u64_transposes() {
        let out = World::run(cfg(1, 3), |comm| {
            // rank r sends value 10*r + dst to each dst.
            let sends: Vec<u64> = (0..3).map(|d| 10 * comm.rank() as u64 + d as u64).collect();
            comm.alltoall_u64(sends)
        });
        // rank d receives [10*0 + d, 10*1 + d, 10*2 + d].
        for (d, got) in out.iter().enumerate() {
            assert_eq!(*got, vec![d as u64, 10 + d as u64, 20 + d as u64]);
        }
    }

    #[test]
    fn alltoallv_routes_variable_buffers() {
        let out = World::run(cfg(1, 3), |comm| {
            let r = comm.rank();
            // rank r sends r+1 copies of byte r to each destination d,
            // tagged with d at the front.
            let sends: Vec<Vec<u8>> = (0..3)
                .map(|d| {
                    let mut v = vec![d as u8];
                    v.extend(std::iter::repeat_n(r as u8, r + 1));
                    v
                })
                .collect();
            comm.alltoallv(sends)
        });
        for (d, got) in out.iter().enumerate() {
            for (s, buf) in got.iter().enumerate() {
                assert_eq!(buf[0] as usize, d);
                assert_eq!(buf.len(), 1 + s + 1);
                assert!(buf[1..].iter().all(|&b| b as usize == s));
            }
        }
    }

    #[test]
    fn allreduce_sums() {
        let out = World::run(cfg(2, 2), |comm| {
            comm.allreduce_u64(comm.rank() as u64, |a, b| a + b)
        });
        assert_eq!(out, vec![6, 6, 6, 6]);
    }

    #[test]
    fn reduce_delivers_only_at_root() {
        let out = World::run(cfg(1, 4), |comm| {
            comm.reduce(0, comm.rank() as u64 + 1, 8, &|a: &u64, b: &u64| a * b)
        });
        assert_eq!(out[0], Some(24));
        assert!(out[1..].iter().all(Option::is_none));
    }

    #[test]
    fn scan_is_inclusive_prefix() {
        let out = World::run(cfg(1, 4), |comm| {
            comm.scan(comm.rank() as u64 + 1, 8, &|a: &u64, b: &u64| a + b)
        });
        assert_eq!(out, vec![1, 3, 6, 10]);
    }

    #[test]
    fn non_commutative_reduction_respects_rank_order() {
        struct Concat;
        impl crate::reduceop::ReduceOp<String> for Concat {
            fn combine(&self, a: &String, b: &String) -> String {
                format!("{a}{b}")
            }
            fn commutative(&self) -> bool {
                false
            }
        }
        let out = World::run(cfg(1, 4), |comm| {
            let letter = ((b'a' + comm.rank() as u8) as char).to_string();
            comm.allreduce(letter, 1, &Concat)
        });
        assert!(out.iter().all(|s| s == "abcd"));
    }

    #[test]
    fn ring_exchange_like_algorithm1() {
        // The even/odd send-recv ring from Algorithm 1 must not deadlock
        // and must deliver each rank's fragment to its successor.
        let p = 8;
        let out = World::run(cfg(2, 4), move |comm| {
            let rank = comm.rank();
            let frag = vec![rank as u8; rank + 1];
            let next = (rank + 1) % p;
            let prev = (rank + p - 1) % p;
            let got;
            if rank % 2 == 0 {
                comm.send(next, 0, &frag);
                got = comm.recv(prev, 0);
            } else {
                got = comm.recv(prev, 0);
                comm.send(next, 0, &frag);
            }
            got
        });
        for (rank, got) in out.iter().enumerate() {
            let prev = (rank + p - 1) % p;
            assert_eq!(got.len(), prev + 1);
            assert!(got.iter().all(|&b| b as usize == prev));
        }
    }

    #[test]
    fn collective_timing_is_deterministic_across_runs() {
        let run = || {
            World::run(cfg(2, 2), |comm| {
                comm.charge(Work::Seconds(0.1 * (comm.rank() as f64 + 1.0)));
                comm.barrier();
                let v = comm.allreduce_u64(1, |a, b| a + b);
                comm.alltoallv(vec![vec![0u8; 100]; 4]);
                (v, comm.now())
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rank_panic_aborts_job_instead_of_hanging() {
        // Rank 1 panics while rank 0 blocks on a recv that will never be
        // satisfied; MPI_Abort semantics must terminate the whole job.
        let result = std::panic::catch_unwind(|| {
            World::run(cfg(1, 2), |comm| {
                if comm.rank() == 1 {
                    panic!("deliberate failure in rank 1");
                }
                comm.recv(1, 99) // never sent
            })
        });
        let payload = result.expect_err("job must abort");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("deliberate failure"), "got: {msg}");
    }

    #[test]
    fn rank_panic_aborts_collectives_too() {
        let result = std::panic::catch_unwind(|| {
            World::run(cfg(1, 4), |comm| {
                if comm.rank() == 3 {
                    panic!("rank 3 died");
                }
                comm.barrier(); // would wait for rank 3 forever
            })
        });
        assert!(result.is_err());
    }

    #[test]
    fn large_world_smoke() {
        // 16 nodes x 16 ranks = 256 threads: exercise the hub at scale.
        let out = World::run(cfg(16, 16), |comm| {
            comm.allreduce_u64(comm.rank() as u64, |a, b| a + b)
        });
        let expect: u64 = (0..256).sum();
        assert!(out.iter().all(|&v| v == expect));
    }
}
