//! MPI-IO hints (`MPI_Info`): the knobs the paper tunes.

/// ROMIO's single-operation byte limit: the count argument is a 32-bit
/// int, so one read/write moves at most 2 GiB (paper §3).
pub const ROMIO_MAX_IO_BYTES: u64 = 2 * 1024 * 1024 * 1024;

/// Subset of MPI-IO hints relevant to the paper's experiments.
///
/// * `cb_nodes` — requested number of collective-buffering aggregator
///   nodes. On Lustre, ROMIO may *reduce* this based on the stripe count
///   (the divisor rule, Figure 11); the paper notes the user request is
///   only an upper bound.
/// * `cb_buffer_size` — per-aggregator staging buffer; large collective
///   reads split into multiple two-phase cycles of this size, which is
///   why "for larger block size, the two phase I/O algorithm is split into
///   multiple cycles … leads to sub-optimal performance" (§5.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hints {
    /// Requested aggregator node count (`cb_nodes`); `None` = one per node.
    pub cb_nodes: Option<usize>,
    /// Collective buffering cycle size (`cb_buffer_size`), bytes.
    pub cb_buffer_size: u64,
}

impl Default for Hints {
    fn default() -> Self {
        // ROMIO's historical default collective buffer is 16 MiB.
        Hints {
            cb_nodes: None,
            cb_buffer_size: 16 << 20,
        }
    }
}

impl Hints {
    /// Default hints.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets `cb_nodes`.
    pub fn with_cb_nodes(mut self, n: usize) -> Self {
        self.cb_nodes = Some(n);
        self
    }

    /// Sets `cb_buffer_size`.
    pub fn with_cb_buffer_size(mut self, bytes: u64) -> Self {
        self.cb_buffer_size = bytes;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_romio() {
        let h = Hints::default();
        assert_eq!(h.cb_buffer_size, 16 << 20);
        assert_eq!(h.cb_nodes, None);
    }

    #[test]
    fn builders_set_fields() {
        let h = Hints::new().with_cb_nodes(8).with_cb_buffer_size(1 << 20);
        assert_eq!(h.cb_nodes, Some(8));
        assert_eq!(h.cb_buffer_size, 1 << 20);
    }

    #[test]
    fn romio_limit_is_2gib() {
        assert_eq!(ROMIO_MAX_IO_BYTES, 1 << 31);
    }
}
