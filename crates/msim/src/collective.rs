//! The collective rendezvous hub: the synchronization core behind every
//! collective operation.
//!
//! MPI requires all ranks of a communicator to call collectives in the
//! same order; the hub exploits that to implement any collective as a
//! generation-numbered gather-combine-scatter:
//!
//! 1. every rank deposits its typed input and virtual entry time;
//! 2. the last arrival runs the *combiner* — a closure receiving all
//!    inputs and entry times, returning the shared result and one exit
//!    time per rank;
//! 3. all ranks pick up the shared result (via `Arc`) and their exit time.
//!
//! Generations keep back-to-back collectives separate even when fast ranks
//! re-enter the next collective before slow ranks have left the previous
//! one.

use parking_lot::{Condvar, Mutex};
use std::any::Any;
use std::sync::Arc;

type BoxedInput = Box<dyn Any + Send>;
type SharedResult = Arc<dyn Any + Send + Sync>;

struct HubState {
    /// Generation currently *collecting*. Distribution of generation `g`
    /// overlaps collection of nothing: gen advances only after all depart.
    gen: u64,
    collecting: bool,
    arrived: usize,
    departed: usize,
    inputs: Vec<Option<BoxedInput>>,
    entry_times: Vec<f64>,
    result: Option<SharedResult>,
    exit_times: Vec<f64>,
    /// Set when any rank panics: every waiter aborts (MPI_Abort
    /// semantics), so one failed rank cannot deadlock the job.
    poisoned: bool,
}

/// Panic message used for abort-propagation panics, so the launcher can
/// distinguish the originating failure from secondary aborts.
pub(crate) const ABORT_MSG: &str = "job aborted: another rank panicked";

/// One communicator-wide rendezvous point.
pub struct Hub {
    size: usize,
    state: Mutex<HubState>,
    cv: Condvar,
}

impl Hub {
    /// Creates a hub for `size` ranks.
    pub fn new(size: usize) -> Self {
        Hub {
            size,
            state: Mutex::new(HubState {
                gen: 0,
                collecting: true,
                arrived: 0,
                departed: 0,
                inputs: (0..size).map(|_| None).collect(),
                entry_times: vec![0.0; size],
                result: None,
                exit_times: vec![0.0; size],
                poisoned: false,
            }),
            cv: Condvar::new(),
        }
    }

    /// Marks the hub poisoned and wakes every waiter; they panic with
    /// `ABORT_MSG`. Idempotent.
    pub fn poison(&self) {
        let mut st = self.state.lock();
        st.poisoned = true;
        self.cv.notify_all();
    }

    /// Runs one collective. `gen` is the caller's collective-call counter
    /// (each [`crate::Comm`] increments it per call); `combine` executes
    /// exactly once, on the last-arriving rank.
    ///
    /// The combiner receives `(inputs, entry_times)` and must return the
    /// shared result plus per-rank exit times (commonly all equal to
    /// `max(entry_times) + cost`).
    pub fn exchange<T, R, F>(
        &self,
        rank: usize,
        gen: u64,
        now: f64,
        input: T,
        combine: F,
    ) -> (Arc<R>, f64)
    where
        T: Send + 'static,
        R: Send + Sync + 'static,
        F: FnOnce(Vec<T>, &[f64]) -> (R, Vec<f64>),
    {
        let mut st = self.state.lock();

        // Wait for our generation to start collecting.
        while !(st.gen == gen && st.collecting) {
            if st.poisoned {
                panic!("{ABORT_MSG}");
            }
            self.cv.wait(&mut st);
        }
        if st.poisoned {
            panic!("{ABORT_MSG}");
        }

        st.inputs[rank] = Some(Box::new(input));
        st.entry_times[rank] = now;
        st.arrived += 1;

        if st.arrived == self.size {
            // Last arrival: run the combiner.
            let inputs: Vec<T> = st
                .inputs
                .iter_mut()
                .map(|slot| {
                    *slot
                        .take()
                        // audit: the rendezvous gate admitted all ranks, so every slot is filled.
                        .expect("all ranks deposited")
                        .downcast::<T>()
                        // audit: SPMD ranks run the same code path, so deposited types match.
                        .expect("collective input types must match across ranks")
                })
                .collect();
            let times = st.entry_times.clone();
            let (result, exits) = combine(inputs, &times);
            assert_eq!(
                exits.len(),
                self.size,
                "combiner must return one exit time per rank"
            );
            st.result = Some(Arc::new(result));
            st.exit_times = exits;
            st.collecting = false;
            self.cv.notify_all();
        } else {
            while st.collecting && st.gen == gen {
                if st.poisoned {
                    panic!("{ABORT_MSG}");
                }
                self.cv.wait(&mut st);
            }
            if st.poisoned {
                panic!("{ABORT_MSG}");
            }
        }

        // Distribution phase for generation `gen`.
        let result = st
            .result
            .as_ref()
            // audit: the combiner stored the result before distribution began.
            .expect("result present during distribution")
            .clone()
            .downcast::<R>()
            // audit: the combiner's output type is the same for every rank.
            .expect("collective result types must match across ranks");
        let exit = st.exit_times[rank];
        st.departed += 1;
        if st.departed == self.size {
            // Reset for the next generation.
            st.gen += 1;
            st.collecting = true;
            st.arrived = 0;
            st.departed = 0;
            st.result = None;
            self.cv.notify_all();
        }
        (result, exit)
    }

    /// Communicator size this hub synchronizes.
    pub fn size(&self) -> usize {
        self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    /// Drives `n` threads through `rounds` collectives and returns the
    /// per-thread observations.
    fn drive<R: Send + Sync + Clone + 'static>(
        n: usize,
        rounds: usize,
        f: impl Fn(&Hub, usize, u64) -> (Arc<R>, f64) + Send + Sync + Copy + 'static,
    ) -> Vec<Vec<(R, f64)>> {
        let hub = Arc::new(Hub::new(n));
        let mut handles = Vec::new();
        for rank in 0..n {
            let hub = Arc::clone(&hub);
            handles.push(thread::spawn(move || {
                let mut obs = Vec::new();
                for g in 0..rounds {
                    let (r, t) = f(&hub, rank, g as u64);
                    obs.push(((*r).clone(), t));
                }
                obs
            }));
        }
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    }

    #[test]
    fn sum_collective_all_ranks_agree() {
        let per_thread = drive::<u64>(8, 1, |hub, rank, gen| {
            hub.exchange(rank, gen, rank as f64, rank as u64, |inputs, times| {
                let sum: u64 = inputs.iter().sum();
                let exit = times.iter().cloned().fold(0.0, f64::max) + 1.0;
                (sum, vec![exit; times.len()])
            })
        });
        for obs in &per_thread {
            assert_eq!(obs[0].0, (0..8).sum::<u64>());
            assert_eq!(obs[0].1, 7.0 + 1.0); // max entry (rank 7) + cost
        }
    }

    #[test]
    fn generations_do_not_interleave() {
        // Many back-to-back rounds: if generations leaked, inputs from
        // different rounds would mix and sums would be wrong.
        let rounds = 50;
        let per_thread = drive::<u64>(4, rounds, |hub, rank, gen| {
            hub.exchange(rank, gen, 0.0, gen * 10 + rank as u64, |inputs, times| {
                (inputs.iter().sum::<u64>(), vec![0.0; times.len()])
            })
        });
        for obs in &per_thread {
            for (g, (sum, _)) in obs.iter().enumerate() {
                let expect: u64 = (0..4).map(|r| g as u64 * 10 + r).sum();
                assert_eq!(*sum, expect, "round {g}");
            }
        }
    }

    #[test]
    fn per_rank_exit_times_are_delivered() {
        let per_thread = drive::<()>(4, 1, |hub, rank, gen| {
            hub.exchange(rank, gen, 0.0, (), |_, times| {
                ((), (0..times.len()).map(|r| r as f64 * 2.0).collect())
            })
        });
        for (rank, obs) in per_thread.iter().enumerate() {
            assert_eq!(obs[0].1, rank as f64 * 2.0);
        }
    }

    #[test]
    fn single_rank_hub_is_immediate() {
        let hub = Hub::new(1);
        let (r, t) = hub.exchange(0, 0, 3.0, 41u32, |mut v, times| {
            (v.pop().unwrap() + 1, vec![times[0]])
        });
        assert_eq!(*r, 42);
        assert_eq!(t, 3.0);
    }
}
