//! Nonblocking operation handles and the overlap progress engine.
//!
//! MPI programs hide communication latency behind compute by splitting
//! every operation into an *initiation* (`MPI_Isend`, `MPI_Irecv`,
//! `MPI_Ialltoallv`, …) that returns a request handle immediately and a
//! *completion* (`MPI_Wait`/`MPI_Test`) that blocks until the transfer
//! finished. This module is that split for the simulator.
//!
//! ## Virtual-time semantics
//!
//! Initiating an operation never advances the caller's clock. The
//! operation's completion instant is fixed by the same cost models the
//! blocking calls use, measured from the *initiation* time; compute
//! charged between initiation and [`Comm::wait`] therefore overlaps the
//! transfer, and `wait` advances the clock to
//! `max(clock, completion)` — the classic overlap identity. A blocking
//! call is exactly its nonblocking twin followed by an immediate `wait`
//! (and that is how [`Comm::send`], [`Comm::alltoallv`] and friends are
//! implemented), so the degenerate no-overlap schedule is bit-identical
//! in both data and virtual time.
//!
//! ## Physical-time caveat
//!
//! Like every blocking operation in this runtime, initiation of a
//! nonblocking *collective* physically rendezvouses with the other ranks
//! (the hub needs all inputs before it can combine them); only the
//! *virtual* completion is deferred to `wait`. `irecv` defers its
//! matching to completion, so the symmetric
//! `irecv → isend → wait` exchange pattern that would deadlock with
//! blocking calls works. [`Comm::test`] may likewise physically block
//! until the peer's message exists, but its *answer* — complete or not —
//! depends only on deterministic virtual times, never on OS scheduling.

use crate::check::CollectiveVerifier;
use crate::comm::Comm;
use crate::time::WorkTally;
use std::sync::Arc;

/// Handle for an in-flight nonblocking operation returning a `T` on
/// completion. Produced by [`Comm::isend`], [`Comm::irecv`],
/// [`Comm::ialltoall_u64`] and [`Comm::ialltoallv`]; consumed by
/// [`Comm::wait`], [`Comm::waitall`] or [`Comm::test`].
///
/// Dropping a request without completing it is an MPI resource leak;
/// when the collective-protocol verifier is active (`MVIO_CHECK` on or
/// strict, see [`crate::check`]) the `Drop` impl reports it as a
/// [`crate::check::Violation::RequestLeak`] attributed to the rank and
/// call-site label that initiated the operation.
#[derive(Debug)]
#[must_use = "a Request must be completed with wait/waitall/test"]
pub struct Request<T> {
    /// `None` once the request has been consumed by `wait`/`test`, so
    /// `Drop` can tell a completed handle from a leaked one.
    inner: Option<ReqInner<T>>,
    guard: Option<LeakGuard>,
}

#[derive(Debug)]
pub(crate) enum ReqInner<T> {
    /// Result already determined (sends and collectives resolve their
    /// payload at initiation; only the completion *time* is deferred).
    Ready { at: f64, value: T },
    /// A receive whose matching message is found at completion time.
    PendingRecv {
        src: usize,
        tag: u64,
        wrap: fn(Vec<u8>) -> T,
    },
}

/// Context for the leak detector: which rank initiated which operation,
/// under which call-site label. Only allocated when the verifier is on.
pub(crate) struct LeakGuard {
    verifier: Arc<CollectiveVerifier>,
    rank: usize,
    op: String,
}

impl std::fmt::Debug for LeakGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LeakGuard")
            .field("rank", &self.rank)
            .field("op", &self.op)
            .finish_non_exhaustive()
    }
}

impl LeakGuard {
    pub(crate) fn new(verifier: Arc<CollectiveVerifier>, rank: usize, op: String) -> Self {
        LeakGuard { verifier, rank, op }
    }
}

impl<T> Request<T> {
    pub(crate) fn ready(at: f64, value: T) -> Self {
        Request {
            inner: Some(ReqInner::Ready { at, value }),
            guard: None,
        }
    }

    /// Attaches leak-detector context (no-op when `guard` is `None`,
    /// i.e. when the verifier is off).
    pub(crate) fn with_guard(mut self, guard: Option<LeakGuard>) -> Self {
        self.guard = guard;
        self
    }

    /// Consumes the operation state, marking the request completed so
    /// `Drop` stays silent.
    pub(crate) fn take_inner(&mut self) -> ReqInner<T> {
        // audit: wait/test take the state exactly once by construction;
        // a second take would be a library bug, not a user error.
        self.inner.take().expect("request state already consumed")
    }

    /// Puts the operation state back (used by [`Comm::test`] when the
    /// operation has not virtually completed yet).
    pub(crate) fn restore(mut self, inner: ReqInner<T>) -> Self {
        self.inner = Some(inner);
        self
    }
}

impl<T> Drop for Request<T> {
    fn drop(&mut self) {
        if self.inner.is_none() {
            return;
        }
        if let Some(g) = self.guard.take() {
            // Suppress during unwinding: the job is already aborting and
            // a panic inside Drop would escalate to a process abort.
            if !std::thread::panicking() {
                g.verifier.leak(g.rank, &g.op);
            }
        }
    }
}

impl Request<Vec<u8>> {
    pub(crate) fn pending_recv(src: usize, tag: u64) -> Self {
        Request {
            inner: Some(ReqInner::PendingRecv {
                src,
                tag,
                wrap: |data| data,
            }),
            guard: None,
        }
    }
}

/// Deterministic progress engine for compute/communication overlap.
///
/// Worker threads cannot touch the rank clock, so overlapped regions
/// charge per-lane [`WorkTally`] totals here (same fixed
/// `work-item % lanes` rule as [`Comm::advance_parallel`]) while one or
/// more [`Request`]s are in flight. [`ProgressEngine::drive`] then folds
/// the slowest lane into the clock and completes the request, so the
/// rank's time advances to `max(compute, communication)` — and the
/// engine records how much communication was hidden under compute versus
/// exposed on the critical path, the quantity the overlap benchmarks
/// report.
#[derive(Debug)]
pub struct ProgressEngine {
    lanes: Vec<f64>,
    overlapped_compute: f64,
    exposed_wait: f64,
}

impl ProgressEngine {
    /// An engine folding overlapped compute into `lanes` worker lanes
    /// (`lanes >= 1`; one lane models a single-threaded overlap region).
    pub fn new(lanes: usize) -> Self {
        ProgressEngine {
            lanes: vec![0.0; lanes.max(1)],
            overlapped_compute: 0.0,
            exposed_wait: 0.0,
        }
    }

    /// Number of lanes the engine folds compute into.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Charges `seconds` of overlapped compute to `lane`, growing the lane
    /// set on demand (callers typically assign `work-item % workers`, the
    /// same deterministic rule as [`Comm::advance_parallel`]).
    pub fn charge(&mut self, lane: usize, seconds: f64) {
        debug_assert!(seconds.is_finite() && seconds >= 0.0);
        if lane >= self.lanes.len() {
            self.lanes.resize(lane + 1, 0.0);
        }
        self.lanes[lane] += seconds;
    }

    /// Charges a worker's accumulated [`WorkTally`] to `lane`.
    pub fn absorb(&mut self, lane: usize, tally: &WorkTally) {
        self.charge(lane, tally.seconds());
    }

    /// Folds the pending lane totals into the clock (slowest lane, as
    /// [`Comm::advance_parallel`]) and resets them.
    /// Not itself a collective entry — folds local compute into the clock;
    /// any collective matching happened when the operations were posted.
    pub fn flush(&mut self, comm: &mut Comm) {
        let max = self.lanes.iter().fold(0.0f64, |a, &b| a.max(b));
        self.overlapped_compute += max;
        comm.advance_parallel(&self.lanes);
        self.lanes.iter_mut().for_each(|l| *l = 0.0);
    }

    /// Flushes pending compute, then completes `req`, accounting how much
    /// of the communication was hidden under the compute charged so far
    /// versus exposed (the clock advance `wait` itself caused).
    /// Not itself a collective entry — completes an already-posted request;
    /// the collective (if any) was recorded at post time.
    pub fn drive<T>(&mut self, comm: &mut Comm, req: Request<T>) -> T {
        self.flush(comm);
        let before = comm.now();
        let value = comm.wait(req);
        self.exposed_wait += comm.now() - before;
        value
    }

    /// Total compute seconds folded in through this engine.
    pub fn overlapped_compute(&self) -> f64 {
        self.overlapped_compute
    }

    /// Communication seconds that remained on the critical path (the
    /// clock advance caused by `drive`'s waits after compute was folded
    /// in). Zero means every driven transfer finished under compute.
    pub fn exposed_wait(&self) -> f64 {
        self.exposed_wait
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Work;
    use crate::topology::Topology;
    use crate::world::{World, WorldConfig};

    fn cfg(ranks: usize) -> WorldConfig {
        WorldConfig::new(Topology::single_node(ranks))
    }

    #[test]
    fn isend_irecv_round_trip_matches_blocking() {
        // Same payloads, same clocks as the blocking pair.
        let nb = World::run(cfg(2), |comm| {
            if comm.rank() == 0 {
                let r = comm.isend(1, 9, b"abc");
                comm.wait(r);
                (Vec::new(), comm.now())
            } else {
                let r = comm.irecv(0, 9);
                (comm.wait(r), comm.now())
            }
        });
        let blocking = World::run(cfg(2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 9, b"abc");
                (Vec::new(), comm.now())
            } else {
                (comm.recv(0, 9), comm.now())
            }
        });
        assert_eq!(nb, blocking);
        assert_eq!(nb[1].0, b"abc");
    }

    #[test]
    fn symmetric_irecv_isend_exchange_does_not_deadlock() {
        // Both ranks post the receive first — fatal with blocking recv,
        // the canonical use of nonblocking point-to-point.
        let out = World::run(cfg(2), |comm| {
            let peer = 1 - comm.rank();
            let rx = comm.irecv(peer, 0);
            let tx = comm.isend(peer, 0, &[comm.rank() as u8; 4]);
            let got = comm.wait(rx);
            comm.wait(tx);
            got
        });
        assert_eq!(out[0], vec![1u8; 4]);
        assert_eq!(out[1], vec![0u8; 4]);
    }

    #[test]
    fn compute_overlaps_communication() {
        // A rank that computes for much longer than the message flight
        // between isend/irecv and wait pays only the compute time.
        let out = World::run(cfg(2), |comm| {
            let peer = 1 - comm.rank();
            let rx = comm.irecv(peer, 0);
            let tx = comm.isend(peer, 0, &vec![7u8; 1 << 10]);
            let t0 = comm.now();
            comm.charge(Work::Seconds(1.0)); // dwarfs the ~3us flight
            comm.wait(tx);
            let _ = comm.wait(rx);
            comm.now() - t0
        });
        for dt in out {
            assert!(
                (dt - 1.0).abs() < 1e-6,
                "communication must hide under compute, took {dt}"
            );
        }
    }

    #[test]
    fn ialltoallv_matches_blocking_alltoallv() {
        let run = |nonblocking: bool| {
            World::run(cfg(3), move |comm| {
                let sends: Vec<Vec<u8>> = (0..3).map(|d| vec![comm.rank() as u8; d + 1]).collect();
                let got = if nonblocking {
                    let req = comm.ialltoallv(sends);
                    comm.wait(req)
                } else {
                    comm.alltoallv(sends)
                };
                (got, comm.now())
            })
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn ialltoall_u64_matches_blocking() {
        let run = |nonblocking: bool| {
            World::run(cfg(4), move |comm| {
                let sends: Vec<u64> = (0..4).map(|d| (comm.rank() * 10 + d) as u64).collect();
                let got = if nonblocking {
                    let req = comm.ialltoall_u64(sends);
                    comm.wait(req)
                } else {
                    comm.alltoall_u64(sends)
                };
                (got, comm.now())
            })
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn waitall_is_order_independent_and_returns_in_request_order() {
        // Three tagged messages with very different flight times. Whatever
        // order the requests are listed in, waitall must land the clock at
        // the same instant (max completion) and hand payloads back in
        // *request-list* order, not completion order.
        let run = |order: [u64; 3]| {
            let out = World::run(cfg(2), move |comm| {
                if comm.rank() == 0 {
                    for (tag, len) in [(0u64, 10usize), (1, 100_000), (2, 1000)] {
                        comm.send(1, tag, &vec![tag as u8; len]);
                    }
                    (Vec::new(), 0.0)
                } else {
                    let reqs: Vec<Request<Vec<u8>>> =
                        order.iter().map(|&t| comm.irecv(0, t)).collect();
                    let got = comm.waitall(reqs);
                    let tags: Vec<u8> = got.iter().map(|d| d[0]).collect();
                    (tags, comm.now())
                }
            });
            out.into_iter().nth(1).unwrap()
        };
        let (tags_fwd, t_fwd) = run([0, 1, 2]);
        let (tags_rev, t_rev) = run([2, 1, 0]);
        let (tags_mix, t_mix) = run([1, 2, 0]);
        assert_eq!(tags_fwd, vec![0, 1, 2], "payloads follow request order");
        assert_eq!(tags_rev, vec![2, 1, 0]);
        assert_eq!(tags_mix, vec![1, 2, 0]);
        assert!((t_fwd - t_rev).abs() < 1e-15 && (t_fwd - t_mix).abs() < 1e-15);
    }

    #[test]
    fn test_completes_only_once_virtual_time_catches_up() {
        let out = World::run(cfg(2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 5, &vec![1u8; 1 << 20]); // ~175us flight
                0usize
            } else {
                let req = comm.irecv(0, 5);
                // Immediately after posting, the flight has not virtually
                // completed: test must decline.
                let req = match comm.test(req) {
                    Ok(_) => panic!("message cannot have arrived at t=0"),
                    Err(req) => req,
                };
                // After enough compute, the same test succeeds.
                comm.charge(Work::Seconds(1.0));
                match comm.test(req) {
                    Ok(data) => data.len(),
                    Err(_) => panic!("message must have arrived after 1s"),
                }
            }
        });
        assert_eq!(out[1], 1 << 20);
    }

    #[test]
    fn progress_engine_accounts_hidden_and_exposed_time() {
        // Transfer takes ~latency + 1MiB/6GBps ~= 178us. Charging 1s of
        // compute hides it completely; charging nothing exposes it fully.
        let flight = {
            let out = World::run(cfg(2), |comm| {
                if comm.rank() == 0 {
                    comm.send(1, 1, &vec![0u8; 1 << 20]);
                    0.0
                } else {
                    let t0 = comm.now();
                    let _ = comm.recv(0, 1);
                    comm.now() - t0
                }
            });
            out[1]
        };
        let out = World::run(cfg(2), move |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &vec![0u8; 1 << 20]);
                // Catch up past the receiver's 1.25s of compute so the
                // second message is genuinely still in flight at its wait.
                comm.charge(Work::Seconds(2.0));
                comm.send(1, 2, &vec![0u8; 1 << 20]);
                (0.0, 0.0, 0.0)
            } else {
                // Round 1: fully hidden under 1s of 2-lane compute.
                let mut eng = ProgressEngine::new(2);
                let rx = comm.irecv(0, 1);
                eng.charge(0, 1.0);
                eng.charge(1, 0.25);
                let _ = eng.drive(comm, rx);
                let hidden_exposed = eng.exposed_wait();
                // Round 2: no compute, the wait is fully exposed.
                let rx = comm.irecv(0, 2);
                let t0 = comm.now();
                let _ = eng.drive(comm, rx);
                (hidden_exposed, eng.exposed_wait(), comm.now() - t0)
            }
        });
        let (after_hidden, total_exposed, second_wait) = out[1];
        assert!(
            after_hidden < 1e-9,
            "1s of compute must hide a {flight}s flight, exposed {after_hidden}"
        );
        assert!(second_wait > 0.0, "uncovered wait must advance the clock");
        assert!(
            (total_exposed - second_wait).abs() < 1e-12,
            "exposed_wait must equal the uncovered clock advance"
        );
    }

    #[test]
    fn progress_engine_overlap_identity_max_of_compute_and_comm() {
        // The driven clock advance is max(compute, comm) for compute both
        // above and below the transfer time.
        let out = World::run(cfg(2), |comm| {
            if comm.rank() == 0 {
                comm.send(1, 1, &vec![0u8; 6_000_000]); // ~1ms transfer
                (0.0, 0.0)
            } else {
                let mut eng = ProgressEngine::new(1);
                let rx = comm.irecv(0, 1);
                let t0 = comm.now();
                eng.charge(0, 1e-4); // less than the flight: comm-bound
                let _ = eng.drive(comm, rx);
                let commbound = comm.now() - t0;
                (commbound, eng.overlapped_compute())
            }
        });
        let (commbound, folded) = out[1];
        assert!(commbound > 9e-4, "comm-bound region is the transfer time");
        assert!((folded - 1e-4).abs() < 1e-12);
    }
}
