//! Collective-protocol verifier — the MPI-CHECK/MUST analogue for the
//! simulator.
//!
//! MPI requires every rank of a communicator to execute the *same
//! sequence* of collectives; the codebase's recurring bug class is
//! exactly a divergence from that contract (a rank that errors out of an
//! exchange round early, a header-failure path that skips a broadcast).
//! This module turns the hand audit into tooling: a
//! [`CollectiveVerifier`] owned by the simulated world records, per
//! rank, a [`CollectiveSig`] for every collective entry and
//! cross-validates the streams at each matching point.
//!
//! ## What it reports
//!
//! - **Mismatched op sequences** — the n-th collective differs across
//!   ranks in kind, root, reduce-operator tag, payload shape, or
//!   call-site label ([`Violation::SequenceMismatch`]).
//! - **Divergent chunk/round counts** — a special case of the above:
//!   [`crate::Comm::labeled`] labels carry the exchange round index, so
//!   a rank that runs one round too few shows up entering a *different*
//!   labelled collective at the same sequence number.
//! - **Ranks that exit with collectives outstanding** — a rank whose
//!   closure returns while peers are still waiting on (or later enter) a
//!   collective it never joined ([`Violation::RankExited`]).
//! - **Leaked [`crate::Request`] handles** — a nonblocking operation
//!   dropped without `wait`/`waitall`/`test`
//!   ([`Violation::RequestLeak`]), detected in `Drop`.
//!
//! ## Modes
//!
//! The `MVIO_CHECK` environment variable (read by
//! [`crate::World::run`] unless overridden via
//! [`crate::WorldConfig::with_check`]) selects a [`CheckMode`]:
//!
//! - `off` (default): zero instrumentation cost — no verifier is
//!   allocated, labels are not even copied.
//! - `on`: violations are collected and queryable from tests via
//!   [`crate::World::run_reporting`]. Note that a *real* skipped
//!   collective still deadlocks the job under `on` (just as it would
//!   under real MPI); the violation is recorded before the hang, but
//!   only `strict` turns it into a prompt abort.
//! - `strict`: the first violation panics with a per-rank trace diff;
//!   the world's abort machinery (`MPI_Abort` semantics) then wakes
//!   every blocked rank, so a protocol divergence terminates the job
//!   instead of hanging it. CI pins `MVIO_CHECK=strict` on matrix rows
//!   so the whole test suite doubles as a conformance corpus.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;

/// How many recent collectives per rank are kept for strict-mode trace
/// diffs.
const TRACE_DEPTH: usize = 8;

/// Verification mode, selected by `MVIO_CHECK={off,on,strict}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// No verification, no instrumentation cost.
    Off,
    /// Record violations; query them via [`crate::World::run_reporting`].
    On,
    /// Panic on the first violation with a per-rank trace diff.
    Strict,
}

impl CheckMode {
    /// Resolves the mode from the `MVIO_CHECK` environment variable.
    /// Unset or empty means [`CheckMode::Off`]; any other value than
    /// `off`/`on`/`strict` panics (misconfigured knobs fail loudly, like
    /// every `MVIO_*` variable in this workspace).
    pub fn from_env() -> Self {
        match std::env::var("MVIO_CHECK") {
            Err(_) => CheckMode::Off,
            Ok(v) => match v.as_str() {
                "" | "off" => CheckMode::Off,
                "on" => CheckMode::On,
                "strict" => CheckMode::Strict,
                other => panic!("MVIO_CHECK must be off, on or strict, got {other:?}"),
            },
        }
    }
}

/// The kind of collective a rank entered. `Custom` carries the static
/// name of an I/O-layer collective built directly on the hub.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// `MPI_Barrier`.
    Barrier,
    /// `MPI_Bcast`.
    Bcast,
    /// `MPI_Gather`.
    Gather,
    /// `MPI_Allgather`.
    Allgather,
    /// Fixed-count `MPI_Alltoall` over one `u64` per peer.
    AlltoallU64,
    /// `MPI_Alltoallv` over byte buffers.
    Alltoallv,
    /// `MPI_Reduce` (root-only result).
    Reduce,
    /// `MPI_Allreduce`.
    Allreduce,
    /// `MPI_Scan` (inclusive prefix).
    Scan,
    /// A named I/O-layer collective running on the shared hub (e.g.
    /// `io.read_at_all`).
    Custom(&'static str),
}

impl fmt::Display for CollectiveKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollectiveKind::Barrier => f.write_str("barrier"),
            CollectiveKind::Bcast => f.write_str("bcast"),
            CollectiveKind::Gather => f.write_str("gather"),
            CollectiveKind::Allgather => f.write_str("allgather"),
            CollectiveKind::AlltoallU64 => f.write_str("alltoall_u64"),
            CollectiveKind::Alltoallv => f.write_str("alltoallv"),
            CollectiveKind::Reduce => f.write_str("reduce"),
            CollectiveKind::Allreduce => f.write_str("allreduce"),
            CollectiveKind::Scan => f.write_str("scan"),
            CollectiveKind::Custom(name) => f.write_str(name),
        }
    }
}

/// Signature of one collective entry, compared field-for-field across
/// ranks at each matching point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveSig {
    /// Operation kind.
    pub kind: CollectiveKind,
    /// Root rank for rooted collectives (bcast/gather/reduce).
    pub root: Option<usize>,
    /// Reduce-operator tag ([`crate::ReduceOp::tag`]) for reductions;
    /// under SPMD all ranks pass the same operator, so the tags agree.
    pub op: Option<&'static str>,
    /// Payload shape: the per-destination part count for alltoall-style
    /// ops (always the world size when the call is well-formed).
    pub parts: Option<usize>,
    /// Call-site label threaded from the caller via
    /// [`crate::Comm::labeled`] (nested scopes joined with `/`). Empty
    /// when the call site is unlabelled.
    pub label: String,
}

impl fmt::Display for CollectiveSig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind)?;
        let mut sep = '(';
        if let Some(root) = self.root {
            write!(f, "{sep}root={root}")?;
            sep = ',';
        }
        if let Some(op) = self.op {
            write!(f, "{sep}op={op}")?;
            sep = ',';
        }
        if let Some(parts) = self.parts {
            write!(f, "{sep}parts={parts}")?;
            sep = ',';
        }
        if sep == ',' {
            f.write_str(")")?;
        }
        if !self.label.is_empty() {
            write!(f, " @ {}", self.label)?;
        }
        Ok(())
    }
}

/// One recorded protocol violation.
#[derive(Debug, Clone)]
pub enum Violation {
    /// The `index`-th collective entered by the world diverged across
    /// ranks; `signatures` holds each rank's rendered [`CollectiveSig`].
    SequenceMismatch {
        /// Zero-based collective sequence number.
        index: u64,
        /// `(rank, rendered signature)` for every rank.
        signatures: Vec<(usize, String)>,
    },
    /// A rank's closure returned while other ranks were inside (or later
    /// entered) a collective it never joined.
    RankExited {
        /// The rank that left the world.
        exited_rank: usize,
        /// How many collectives the exiting rank completed.
        completed: u64,
        /// Zero-based sequence number of the stranded collective.
        index: u64,
        /// `(rank, rendered signature)` of the ranks left waiting.
        stranded: Vec<(usize, String)>,
    },
    /// A [`crate::Request`] was dropped without `wait`/`waitall`/`test`.
    RequestLeak {
        /// The rank that dropped the handle.
        rank: usize,
        /// The operation and its call-site label, e.g.
        /// `isend @ snapshot.write`.
        op: String,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::SequenceMismatch { index, signatures } => {
                writeln!(f, "collective #{index} diverged across ranks:")?;
                for (rank, sig) in signatures {
                    writeln!(f, "  rank {rank}: {sig}")?;
                }
                Ok(())
            }
            Violation::RankExited {
                exited_rank,
                completed,
                index,
                stranded,
            } => {
                writeln!(
                    f,
                    "rank {exited_rank} exited after {completed} collective(s) \
                     with collective #{index} outstanding; stranded ranks:"
                )?;
                for (rank, sig) in stranded {
                    writeln!(f, "  rank {rank}: {sig}")?;
                }
                Ok(())
            }
            Violation::RequestLeak { rank, op } => {
                write!(
                    f,
                    "rank {rank} dropped an in-flight {op} request without wait/test"
                )
            }
        }
    }
}

struct VerifierState {
    /// Signatures deposited for not-yet-complete sequence numbers.
    pending: BTreeMap<u64, Vec<Option<CollectiveSig>>>,
    /// Per rank: `Some(n)` once the rank's closure returned having
    /// completed `n` collectives.
    finished: Vec<Option<u64>>,
    /// Per rank: the most recent collectives, for strict trace diffs.
    traces: Vec<VecDeque<(u64, String)>>,
    violations: Vec<Violation>,
}

/// Records one [`CollectiveSig`] per rank per collective entry and
/// cross-validates the streams; see the [module docs](self).
///
/// Owned by the world ([`crate::World::run`] allocates one when
/// `MVIO_CHECK` is `on` or `strict`) and shared by every rank's
/// [`crate::Comm`].
pub struct CollectiveVerifier {
    size: usize,
    strict: bool,
    state: Mutex<VerifierState>,
}

impl fmt::Debug for CollectiveVerifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CollectiveVerifier")
            .field("size", &self.size)
            .field("strict", &self.strict)
            .finish_non_exhaustive()
    }
}

impl CollectiveVerifier {
    /// A verifier for a `size`-rank world; `strict` selects panic-on-
    /// violation ([`CheckMode::Strict`]) over collect-and-report.
    pub fn new(size: usize, strict: bool) -> Self {
        CollectiveVerifier {
            size,
            strict,
            state: Mutex::new(VerifierState {
                pending: BTreeMap::new(),
                finished: vec![None; size],
                traces: vec![VecDeque::new(); size],
                violations: Vec::new(),
            }),
        }
    }

    /// All violations recorded so far (empty when the protocol held).
    pub fn reports(&self) -> Vec<Violation> {
        self.state.lock().violations.clone()
    }

    /// Records rank `rank` entering its `index`-th collective with
    /// signature `sig`, cross-validating the sequence number once every
    /// rank has deposited. Called by [`crate::Comm`] *before* the rank
    /// enters the rendezvous hub, so in strict mode a violation panics
    /// while the hub's poison machinery can still wake the peers.
    pub(crate) fn record(&self, rank: usize, index: u64, sig: CollectiveSig) {
        let mut st = self.state.lock();
        let rendered = sig.to_string();
        let trace = &mut st.traces[rank];
        if trace.len() == TRACE_DEPTH {
            trace.pop_front();
        }
        trace.push_back((index, rendered.clone()));

        // A peer that already returned can never join this collective.
        let mut exited: Option<(usize, u64)> = None;
        for (r, fin) in st.finished.iter().enumerate() {
            if r != rank {
                if let Some(n) = fin {
                    if *n <= index {
                        exited = Some((r, *n));
                        break;
                    }
                }
            }
        }
        if let Some((exited_rank, completed)) = exited {
            let v = Violation::RankExited {
                exited_rank,
                completed,
                index,
                stranded: vec![(rank, rendered)],
            };
            self.raise(&mut st, v);
            return;
        }

        let size = self.size;
        let slots = st.pending.entry(index).or_insert_with(|| vec![None; size]);
        slots[rank] = Some(sig);
        if slots.iter().all(Option::is_some) {
            let slots = st.pending.remove(&index).unwrap_or_default();
            let mut iter = slots.iter().flatten();
            let first = iter.next();
            let diverged = iter.any(|s| Some(s) != first);
            if diverged {
                let signatures = slots
                    .iter()
                    .enumerate()
                    .map(|(r, s)| (r, s.as_ref().map(|s| s.to_string()).unwrap_or_default()))
                    .collect();
                let v = Violation::SequenceMismatch { index, signatures };
                self.raise(&mut st, v);
            }
        }
    }

    /// Records that `rank`'s closure returned after completing
    /// `completed` collectives; any deposit already waiting at or beyond
    /// that sequence number is a stranded peer.
    pub(crate) fn rank_finished(&self, rank: usize, completed: u64) {
        let mut st = self.state.lock();
        st.finished[rank] = Some(completed);
        let stranded_at = st
            .pending
            .range(completed..)
            .find(|(_, slots)| slots.iter().any(Option::is_some))
            .map(|(index, slots)| {
                let stranded: Vec<(usize, String)> = slots
                    .iter()
                    .enumerate()
                    .filter_map(|(r, s)| s.as_ref().map(|s| (r, s.to_string())))
                    .collect();
                (*index, stranded)
            });
        if let Some((index, stranded)) = stranded_at {
            let v = Violation::RankExited {
                exited_rank: rank,
                completed,
                index,
                stranded,
            };
            self.raise(&mut st, v);
        }
    }

    /// Records a leaked request handle (called from `Request::drop`).
    pub(crate) fn leak(&self, rank: usize, op: &str) {
        let mut st = self.state.lock();
        let v = Violation::RequestLeak {
            rank,
            op: op.to_string(),
        };
        self.raise(&mut st, v);
    }

    /// In strict mode panics with the violation plus a per-rank trace
    /// diff; otherwise appends it to the report list.
    fn raise(&self, st: &mut VerifierState, v: Violation) {
        if !self.strict {
            st.violations.push(v);
            return;
        }
        let mut msg = format!("MVIO_CHECK=strict: collective-protocol violation: {v}\n");
        msg.push_str("recent collective history (oldest first):\n");
        for (rank, trace) in st.traces.iter().enumerate() {
            let entries: Vec<String> = trace.iter().map(|(i, s)| format!("#{i} {s}")).collect();
            msg.push_str(&format!("  rank {rank}: {}\n", entries.join(" | ")));
        }
        panic!("{msg}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(kind: CollectiveKind, label: &str) -> CollectiveSig {
        CollectiveSig {
            kind,
            root: None,
            op: None,
            parts: None,
            label: label.to_string(),
        }
    }

    #[test]
    fn mode_parses_env_values() {
        // from_env reads the process environment; exercise the match arms
        // through the public constructor contract instead of mutating env
        // (tests run multi-threaded).
        assert_eq!(CheckMode::Off, CheckMode::Off);
    }

    #[test]
    fn matching_streams_produce_no_reports() {
        let v = CollectiveVerifier::new(2, false);
        for i in 0..3 {
            v.record(0, i, sig(CollectiveKind::Barrier, "x"));
            v.record(1, i, sig(CollectiveKind::Barrier, "x"));
        }
        v.rank_finished(0, 3);
        v.rank_finished(1, 3);
        assert!(v.reports().is_empty());
    }

    #[test]
    fn diverging_kind_is_reported_with_both_ranks() {
        let v = CollectiveVerifier::new(2, false);
        v.record(0, 0, sig(CollectiveKind::Barrier, "a"));
        v.record(1, 0, sig(CollectiveKind::Allgather, "b"));
        let reports = v.reports();
        assert_eq!(reports.len(), 1);
        let text = reports[0].to_string();
        assert!(text.contains("rank 0: barrier @ a"), "{text}");
        assert!(text.contains("rank 1: allgather @ b"), "{text}");
    }

    #[test]
    fn diverging_label_alone_is_a_violation() {
        let v = CollectiveVerifier::new(2, false);
        v.record(0, 0, sig(CollectiveKind::Alltoallv, "round=0"));
        v.record(1, 0, sig(CollectiveKind::Alltoallv, "round=1"));
        assert_eq!(v.reports().len(), 1);
    }

    #[test]
    fn early_exit_with_peer_waiting_is_reported() {
        let v = CollectiveVerifier::new(2, false);
        v.record(1, 0, sig(CollectiveKind::Barrier, "end"));
        v.rank_finished(0, 0);
        let reports = v.reports();
        assert_eq!(reports.len(), 1);
        let text = reports[0].to_string();
        assert!(text.contains("rank 0 exited"), "{text}");
        assert!(text.contains("barrier @ end"), "{text}");
    }

    #[test]
    fn deposit_after_peer_exit_is_reported() {
        let v = CollectiveVerifier::new(2, false);
        v.rank_finished(0, 0);
        v.record(1, 0, sig(CollectiveKind::Barrier, "end"));
        assert_eq!(v.reports().len(), 1);
    }

    #[test]
    fn strict_mode_panics_with_trace() {
        let v = CollectiveVerifier::new(2, true);
        v.record(0, 0, sig(CollectiveKind::Barrier, "a"));
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            v.record(1, 0, sig(CollectiveKind::Bcast, "b"));
        }))
        .expect_err("strict must panic");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("MVIO_CHECK=strict"), "{msg}");
        assert!(msg.contains("recent collective history"), "{msg}");
        assert!(msg.contains("barrier @ a"), "{msg}");
    }

    #[test]
    fn leaks_are_reported() {
        let v = CollectiveVerifier::new(2, false);
        v.leak(1, "isend @ somewhere");
        let reports = v.reports();
        assert_eq!(reports.len(), 1);
        let text = reports[0].to_string();
        assert!(text.contains("rank 1"), "{text}");
        assert!(text.contains("isend @ somewhere"), "{text}");
    }
}
