//! # mvio-msim — an in-process SPMD runtime with virtual time
//!
//! The paper runs on MPI (Open MPI 1.8.4 / MPICH 3.1.4) across up to 72
//! nodes × 16 ranks. This crate substitutes an in-process runtime that
//! preserves MPI's *semantics* and models its *performance*:
//!
//! * **SPMD execution** — [`World::run`] spawns one OS thread per rank and
//!   hands each a [`Comm`], the analogue of `MPI_COMM_WORLD`.
//! * **Point-to-point** — `send`/`recv`/`probe` with tag and source
//!   matching, message ordering per (source, tag) pair, and
//!   `MPI_Get_count`-style length discovery.
//! * **Collectives** — barrier, bcast, gather, allgather, alltoall,
//!   alltoallv, reduce, allreduce and scan, including user-defined
//!   reduction operators over arbitrary `T` (the hook the paper's
//!   `MPI_UNION` spatial reduction plugs into). Non-commutative but
//!   associative operators are honoured by combining strictly in rank
//!   order.
//! * **Nonblocking operations** — `isend`/`irecv`/`ialltoall_u64`/
//!   `ialltoallv` return [`request::Request`] handles completed by
//!   `wait`/`waitall`/`test`; compute charged between initiation and
//!   completion overlaps the transfer deterministically, with
//!   [`request::ProgressEngine`] extending the pipeline's per-lane
//!   [`time::WorkTally`] accounting into overlap regions.
//! * **Derived datatypes** — contiguous, vector, indexed and struct
//!   ([`datatype::Datatype`]), with size/extent, pack/unpack, and
//!   flattening into file-view fragments.
//! * **MPI-IO** — [`io::MpiFile`] implements the paper's three access
//!   levels over an [`mvio_pfs::SimFs`]: Level 0 (contiguous +
//!   independent), Level 1 (contiguous + collective, two-phase I/O with
//!   ROMIO's Lustre aggregator-selection rule), and Level 3
//!   (non-contiguous + collective through file views). The ROMIO 2 GB
//!   single-operation limit is enforced, as the paper discusses (§3).
//! * **Virtual time** — every rank carries a clock; communication charges
//!   an α–β model, collectives charge log-tree costs, compute phases
//!   charge the calibrated [`time::CostModel`], and I/O charges the pfs
//!   engine. Reported times are virtual seconds.
//!
//! ## Example
//!
//! ```
//! use mvio_msim::{World, WorldConfig, Topology};
//!
//! let cfg = WorldConfig::new(Topology::new(2, 2)); // 2 nodes x 2 ranks
//! let sums = World::run(cfg, |comm| {
//!     let mine = (comm.rank() + 1) as u64;
//!     comm.allreduce_u64(mine, |a, b| a + b)
//! });
//! assert_eq!(sums, vec![10, 10, 10, 10]);
//! ```

pub mod check;
pub mod collective;
pub mod comm;
pub mod datatype;
pub mod hints;
pub mod io;
pub mod reduceop;
pub mod request;
pub mod time;
pub mod topology;
pub mod world;

pub use check::{CheckMode, CollectiveKind, CollectiveSig, CollectiveVerifier, Violation};
pub use comm::Comm;
pub use datatype::Datatype;
pub use hints::Hints;
pub use io::{
    aggregator_domains, aggregators_from_env, select_readers, AccessLevel, MpiFile, AGGREGATORS_ENV,
};
pub use reduceop::ReduceOp;
pub use request::{ProgressEngine, Request};
pub use time::{CostModel, ShapeClass, Work, WorkTally};
pub use topology::Topology;
pub use world::{World, WorldConfig};

/// Errors surfaced by the runtime.
#[derive(Debug, Clone, PartialEq)]
pub enum MsimError {
    /// Underlying simulated-filesystem failure.
    Pfs(mvio_pfs::PfsError),
    /// The ROMIO 2 GB single-operation limit (paper §3: "an MPI process
    /// can not read/write more than 2 GB of data in a single operation").
    CountOverflow { requested: u64 },
    /// A derived-datatype description was inconsistent.
    BadDatatype(String),
    /// Mismatched collective usage detected at runtime.
    Collective(String),
}

impl std::fmt::Display for MsimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MsimError::Pfs(e) => write!(f, "pfs: {e}"),
            MsimError::CountOverflow { requested } => write!(
                f,
                "ROMIO limit: single I/O of {requested} bytes exceeds 2 GiB"
            ),
            MsimError::BadDatatype(m) => write!(f, "bad datatype: {m}"),
            MsimError::Collective(m) => write!(f, "collective misuse: {m}"),
        }
    }
}

impl std::error::Error for MsimError {}

impl From<mvio_pfs::PfsError> for MsimError {
    fn from(e: mvio_pfs::PfsError) -> Self {
        MsimError::Pfs(e)
    }
}

/// Result alias for runtime operations.
pub type Result<T> = std::result::Result<T, MsimError>;
