//! Distributed spatial indexing (paper Figure 20: "indexing up to 700M
//! geometries in 137 GB single file in 90 seconds" with 320 processes).

use crate::breakdown::{PhaseBreakdown, PhaseTimer};
use mvio_core::decomp::{self, DecompConfig, DecompPolicy};
use mvio_core::exchange::{exchange_features, ExchangeOptions};
use mvio_core::grid::GridSpec;
use mvio_core::partition::{read_features, ReadOptions};
use mvio_core::reader::WktLineParser;
use mvio_core::{Feature, Result};
use mvio_geom::index::RTree;
use mvio_geom::Rect;
use mvio_msim::{Comm, Work};
use mvio_pfs::SimFs;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-rank outcome of distributed index construction.
pub struct IndexReport {
    /// The per-cell R-trees this rank owns (cell id → index over the
    /// cell's features).
    pub cell_indexes: BTreeMap<u32, RTree<Feature>>,
    /// Total features indexed on this rank (replicas included).
    pub indexed: u64,
    /// Global max-over-ranks breakdown (partition / communication /
    /// indexing).
    pub breakdown: PhaseBreakdown,
}

/// Reads a WKT dataset, globally partitions it under `policy` over
/// `grid`, and builds one R-tree per owned cell — the paper's in-memory
/// spatial indexing workload.
/// Collective: every rank must call it.
pub fn build_distributed_index(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    path: &str,
    grid: GridSpec,
    policy: DecompPolicy,
    read: &ReadOptions,
) -> Result<IndexReport> {
    let mut timer = PhaseTimer::start(comm);

    // Partition phase: read + parse + project.
    let features = read_features(comm, fs, path, read, &WktLineParser)?;
    let cfg = DecompConfig { grid, policy };
    let sd = decomp::build_global(comm, &[&features], &cfg);
    let rtree = decomp::build_cell_rtree(comm, &*sd);
    let pairs = decomp::project_to_cells(comm, &rtree, &features);
    let owned: Vec<(u32, Feature)> = pairs
        .into_iter()
        .map(|(cell, idx)| (cell, features[idx].clone()))
        .collect();
    timer.end_partition(comm);

    // Communication phase. Default options: single window, chunk policy
    // from the `MVIO_EXCHANGE_CHUNK` knob (the received pairs are
    // bit-identical under every policy).
    let opts = ExchangeOptions::default();
    let (mine, _) = exchange_features(comm, owned, &*sd, &opts)?;
    timer.end_communication(comm);

    // Indexing phase: bulk-build one R-tree per owned cell.
    let mut by_cell: BTreeMap<u32, Vec<(Rect, Feature)>> = BTreeMap::new();
    let mut indexed = 0u64;
    for (cell, f) in mine {
        let mbr = f.geometry.envelope();
        by_cell.entry(cell).or_default().push((mbr, f));
        indexed += 1;
    }
    comm.charge(Work::RtreeInserts { n: indexed });
    let cell_indexes: BTreeMap<u32, RTree<Feature>> = by_cell
        .into_iter()
        .map(|(cell, items)| (cell, RTree::bulk_load(items)))
        .collect();
    timer.end_compute(comm);

    let local = timer.finish(comm);
    let breakdown = PhaseBreakdown::reduce_max(comm, local);
    Ok(IndexReport {
        cell_indexes,
        indexed,
        breakdown,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvio_msim::{Topology, World, WorldConfig};
    use mvio_pfs::FsConfig;

    fn build_dataset(fs: &Arc<SimFs>, n: usize) {
        let f = fs.create("data.wkt", None).unwrap();
        let mut text = String::new();
        for i in 0..n {
            let x = (i % 20) as f64;
            let y = (i / 20) as f64;
            text.push_str(&format!(
                "POLYGON (({x} {y}, {} {y}, {} {}, {x} {}, {x} {y}))\tid={i}\n",
                x + 0.5,
                x + 0.5,
                y + 0.5,
                y + 0.5
            ));
        }
        f.append(text.as_bytes());
    }

    #[test]
    fn index_covers_every_feature() {
        let fs = SimFs::new(FsConfig::gpfs_roger());
        build_dataset(&fs, 200);
        let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            let rep = build_distributed_index(
                comm,
                &fs,
                "data.wkt",
                GridSpec::square(4),
                DecompPolicy::Uniform(mvio_core::grid::CellMap::RoundRobin),
                &ReadOptions::default(),
            )
            .unwrap();
            (rep.indexed, rep.cell_indexes.len(), rep.breakdown)
        });
        // Non-spanning features appear exactly once; these squares sit
        // strictly inside the grid so most are single-cell. Every feature
        // appears at least once across ranks.
        let total: u64 = out.iter().map(|(n, _, _)| n).sum();
        assert!(total >= 200, "indexed {total}");
        // All 16 cells are owned somewhere.
        let cells: usize = out.iter().map(|(_, c, _)| c).sum();
        assert!(cells >= 16);
        assert!(out[0].2.total > 0.0);
    }

    #[test]
    fn indexes_answer_queries_locally() {
        let fs = SimFs::new(FsConfig::gpfs_roger());
        build_dataset(&fs, 100);
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let rep = build_distributed_index(
                comm,
                &fs,
                "data.wkt",
                GridSpec::square(2),
                DecompPolicy::Uniform(mvio_core::grid::CellMap::RoundRobin),
                &ReadOptions::default(),
            )
            .unwrap();
            // Count features whose MBR touches a probe box, across my cells.
            let probe = Rect::new(0.0, 0.0, 3.0, 3.0);
            rep.cell_indexes
                .values()
                .map(|t| t.count(&probe))
                .sum::<usize>()
        });
        let found: usize = out.iter().sum();
        // Squares with x in 0..=3 (cols 0..3) and y in 0..=3 intersect;
        // possibly counted once per overlapping cell replica, so >= exact.
        assert!(found >= 16, "found {found}");
    }

    #[test]
    fn breakdown_phases_scale_down_with_ranks() {
        // Enough data that parsing (which parallelizes) dominates the
        // per-request I/O latency floor.
        let n = 6000;
        let fs1 = SimFs::new(FsConfig::gpfs_roger());
        build_dataset(&fs1, n);
        let b1 = World::run(WorldConfig::new(Topology::single_node(1)), move |comm| {
            build_distributed_index(
                comm,
                &fs1,
                "data.wkt",
                GridSpec::square(4),
                DecompPolicy::Uniform(mvio_core::grid::CellMap::RoundRobin),
                &ReadOptions::default(),
            )
            .unwrap()
            .breakdown
        })[0];
        let fs4 = SimFs::new(FsConfig::gpfs_roger());
        build_dataset(&fs4, n);
        let b4 = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            build_distributed_index(
                comm,
                &fs4,
                "data.wkt",
                GridSpec::square(4),
                DecompPolicy::Uniform(mvio_core::grid::CellMap::RoundRobin),
                &ReadOptions::default(),
            )
            .unwrap()
            .breakdown
        })[0];
        // The dominant partition (read+parse) phase must shrink with more
        // ranks — Figure 20's scaling claim.
        assert!(
            b4.partition < b1.partition,
            "partition {} -> {}",
            b1.partition,
            b4.partition
        );
    }
}
