//! Distributed range query: the "less compute intensive" workload the
//! paper contrasts with join when discussing block-size granularity
//! (§5.1.1: "a user can specify coarse-grained block size if the
//! application is less compute intensive e.g. range query").

use crate::breakdown::{PhaseBreakdown, PhaseTimer};
use crate::engine::{self, EngineOptions, Query, QueryEngine};
use mvio_core::decomp::{self, DecompConfig, SpatialDecomposition};
use mvio_core::exchange::{exchange_features, ExchangeOptions};
use mvio_core::grid::GridSpec;
use mvio_core::partition::{read_features, ReadOptions};
use mvio_core::reader::WktLineParser;
use mvio_core::{Feature, Result};
use mvio_geom::Rect;
use mvio_msim::Comm;
use mvio_pfs::SimFs;
use std::sync::Arc;

/// Shared partition+exchange front half of the one-shot query paths:
/// read the WKT layer, build the global decomposition (policy from the
/// `MVIO_DECOMP` knob), project to cells, and exchange to owners.
fn read_and_partition(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    path: &str,
    grid: GridSpec,
    read: &ReadOptions,
    timer: Option<&mut PhaseTimer>,
) -> Result<(Box<dyn SpatialDecomposition>, Vec<(u32, Feature)>)> {
    let features = read_features(comm, fs, path, read, &WktLineParser)?;
    let sd = decomp::build_global(comm, &[&features], &DecompConfig::from_env(grid));
    let rtree = decomp::build_cell_rtree(comm, &*sd);
    let pairs = decomp::project_to_cells(comm, &rtree, &features);
    let owned: Vec<(u32, Feature)> = pairs
        .into_iter()
        .map(|(cell, idx)| (cell, features[idx].clone()))
        .collect();
    if let Some(timer) = timer {
        timer.end_partition(comm);
    }
    let (mine, _) = exchange_features(comm, owned, &*sd, &ExchangeOptions::default())?;
    Ok((sd, mine))
}

/// Per-rank outcome of a distributed range query.
#[derive(Debug, Clone)]
pub struct RangeQueryReport {
    /// Userdata of matching features found by this rank (duplicate-free:
    /// each replica is claimed only by the cell containing its MBR's
    /// reference corner).
    pub matches: Vec<String>,
    /// Global match count (allreduced; identical on every rank).
    pub total_matches: u64,
    /// Global max-over-ranks breakdown.
    pub breakdown: PhaseBreakdown,
}

/// Finds all features intersecting `query`: filter on cell/MBR overlap,
/// refine with the exact predicate. The decomposition policy comes from
/// the `MVIO_DECOMP` knob (default: the paper's uniform round-robin
/// grid); the answer is identical under every policy.
///
/// A one-shot wrapper over [`crate::engine::QueryEngine`]: the
/// partition/communication phases build a throwaway engine and the
/// compute phase is its local filter+refine walk, so this path and the
/// resident serving path share one claiming/refine implementation. The
/// query rect is validated up front (NaN or inverted rects are a typed
/// [`mvio_core::CoreError::InvalidOptions`]); every rank passes the same
/// rect, so rejection is symmetric and nobody is stranded mid-collective.
pub fn range_query(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    path: &str,
    query: Rect,
    grid: GridSpec,
    read: &ReadOptions,
) -> Result<RangeQueryReport> {
    engine::validate_query(&Query::Range(query))?;
    let mut timer = PhaseTimer::start(comm);
    let (sd, mine) = read_and_partition(comm, fs, path, grid, read, Some(&mut timer))?;
    timer.end_communication(comm);

    let eng = QueryEngine::from_parts(comm, sd, mine, &EngineOptions::one_shot());
    let matches = eng.local_range_matches(comm, &query)?;
    timer.end_compute(comm);

    let local = timer.finish(comm);
    let breakdown = PhaseBreakdown::reduce_max(comm, local);
    let total_matches = comm.allreduce_u64(matches.len() as u64, |a, b| a + b);
    Ok(RangeQueryReport {
        matches,
        total_matches,
        breakdown,
    })
}

/// Distributed **batch** query: many windows answered in one pass over
/// the pipeline (paper §4.3: "for spatial query workload, the second
/// collection can be treated as geometries from batch query").
///
/// Every rank passes the same `queries` slice; the result is the global
/// per-query match count (identical on every rank). Queries are not
/// exchanged — they are replicated, and each owned cell answers the
/// queries overlapping it, deduplicated by the reference-point rule.
/// Collective: every rank must call it with its own batch.
pub fn batch_query(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    path: &str,
    queries: &[Rect],
    grid: GridSpec,
    read: &ReadOptions,
) -> Result<Vec<u64>> {
    let (sd, mine) = read_and_partition(comm, fs, path, grid, read, None)?;
    let mut eng = QueryEngine::from_parts(comm, sd, mine, &EngineOptions::one_shot());
    // Every rank issues the whole batch, so every rank receives the full
    // global answer for every query — the counts come out identical
    // everywhere without a final reduction.
    let qs: Vec<Query> = queries.iter().map(|r| Query::Range(*r)).collect();
    let report = eng.serve(comm, &qs)?;
    Ok(report.answers.iter().map(|a| a.len() as u64).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvio_msim::{Topology, World, WorldConfig};
    use mvio_pfs::FsConfig;

    fn build(fs: &Arc<SimFs>) {
        let f = fs.create("pts.wkt", None).unwrap();
        let mut text = String::new();
        // 10x10 lattice of points labelled by coordinates.
        for y in 0..10 {
            for x in 0..10 {
                text.push_str(&format!("POINT ({x} {y})\tp{x}_{y}\n"));
            }
        }
        f.append(text.as_bytes());
    }

    #[test]
    fn range_query_finds_exact_lattice_subset() {
        let fs = SimFs::new(FsConfig::gpfs_roger());
        build(&fs);
        let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            range_query(
                comm,
                &fs,
                "pts.wkt",
                Rect::new(2.5, 2.5, 5.5, 4.5),
                GridSpec::square(4),
                &ReadOptions::default(),
            )
            .unwrap()
        });
        // Points with x in {3,4,5}, y in {3,4}: 6 matches.
        assert!(out.iter().all(|r| r.total_matches == 6));
        let mut all: Vec<String> = out.iter().flat_map(|r| r.matches.clone()).collect();
        all.sort();
        assert_eq!(all, vec!["p3_3", "p3_4", "p4_3", "p4_4", "p5_3", "p5_4"]);
    }

    #[test]
    fn empty_query_region_matches_nothing() {
        let fs = SimFs::new(FsConfig::gpfs_roger());
        build(&fs);
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            range_query(
                comm,
                &fs,
                "pts.wkt",
                Rect::new(50.0, 50.0, 60.0, 60.0),
                GridSpec::square(4),
                &ReadOptions::default(),
            )
            .unwrap()
            .total_matches
        });
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn batch_query_matches_individual_queries() {
        let fs = SimFs::new(FsConfig::gpfs_roger());
        build(&fs);
        let queries = vec![
            Rect::new(2.5, 2.5, 5.5, 4.5),     // 6 lattice points
            Rect::new(0.0, 0.0, 1.0, 1.0),     // 4 corner points
            Rect::new(50.0, 50.0, 60.0, 60.0), // none
            Rect::new(-1.0, -1.0, 9.5, 9.5),   // 100 points
        ];
        let q = queries.clone();
        let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            batch_query(
                comm,
                &fs,
                "pts.wkt",
                &q,
                GridSpec::square(4),
                &ReadOptions::default(),
            )
            .unwrap()
        });
        for counts in &out {
            assert_eq!(counts, &vec![6, 4, 0, 100]);
        }
    }

    #[test]
    fn boundary_touching_points_match() {
        let fs = SimFs::new(FsConfig::gpfs_roger());
        build(&fs);
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            range_query(
                comm,
                &fs,
                "pts.wkt",
                Rect::new(0.0, 0.0, 1.0, 1.0),
                GridSpec::square(4),
                &ReadOptions::default(),
            )
            .unwrap()
            .total_matches
        });
        // Points (0,0), (1,0), (0,1), (1,1) all touch the closed box.
        assert_eq!(out, vec![4, 4]);
    }
}
