//! The end-to-end distributed spatial join (paper §5.2, Figures 17–19).

use crate::breakdown::{PhaseBreakdown, PhaseTimer};
use mvio_core::decomp::{
    self, DecompConfig, DecompPolicy, HilbertDecomposition, SpatialDecomposition,
    UniformDecomposition,
};
use mvio_core::exchange::{
    exchange_features_frames_windows, exchange_features_windows, ExchangeChunk, ExchangeOptions,
    FrameStore, ZeroCopy,
};
use mvio_core::framework::{claims_reference, FilterRefine};
use mvio_core::grid::{GridSpec, UniformGrid};
use mvio_core::partition::{read_partition_text, ReadOptions};
use mvio_core::pipeline::{parse_chunked, PipelineOptions};
use mvio_core::reader::WktLineParser;
use mvio_core::snapshot::{self, SnapshotReadOptions};
use mvio_core::{CoreError, Feature, Result};
use mvio_geom::index::RTree;
use mvio_geom::refkernel::{envelope_batch, filter_pairs_batch, RefineArena};
use mvio_geom::wkb::GeomRef;
use mvio_geom::{algo, Rect};
use mvio_msim::{Comm, Work};
use mvio_pfs::SimFs;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Options for one distributed join.
#[derive(Debug, Clone, Copy)]
pub struct JoinOptions {
    /// Grid resolution (the Figure 17 sweep axis).
    pub grid: GridSpec,
    /// Spatial decomposition policy (cell tiling + cell→rank assignment).
    /// Defaults to [`DecompPolicy::from_env`]: the paper's uniform
    /// round-robin grid unless `MVIO_DECOMP` selects `hilbert` or
    /// `adaptive`. The join *answer* is identical under every policy —
    /// only the load distribution and phase times move.
    pub decomp: DecompPolicy,
    /// File read configuration for both layers.
    pub read: ReadOptions,
    /// Sliding-window phases for the exchange.
    pub windows: u32,
    /// Per-destination byte cap for each pipelined exchange round.
    /// Defaults to [`ExchangeChunk::Auto`] (the `MVIO_EXCHANGE_CHUNK`
    /// knob); the join *answer* is identical for every chunk policy —
    /// finite chunks only overlap the transfer with serialization and
    /// stream the received rounds into the refine phase incrementally.
    pub chunk: ExchangeChunk,
    /// Intra-rank streaming pipeline configuration for the parse stage.
    /// The parsed features are bit-identical for any worker count, so
    /// this only affects the virtual-time breakdown, never the join
    /// result. Defaults to **1 worker** (not the `MVIO_PIPELINE_WORKERS`
    /// auto knob) so the repro harness's paper figures stay identical
    /// across hosts and environments; opt into multi-worker parsing with
    /// `pipeline: PipelineOptions::default().with_workers(n)` (or `0`
    /// for env/host resolution).
    pub pipeline: PipelineOptions,
    /// Zero-copy read path selection. Defaults to [`ZeroCopy::Auto`]
    /// (the `MVIO_ZEROCOPY` knob, on unless overridden): the exchange
    /// hands the refine phase validated wire frames that are decoded in
    /// place — no per-record materialization on the receive side. The
    /// join *answer* is bit-identical either way; only the virtual-time
    /// breakdown and resident allocations move.
    pub zerocopy: ZeroCopy,
}

impl Default for JoinOptions {
    fn default() -> Self {
        JoinOptions {
            grid: GridSpec::square(16),
            decomp: DecompPolicy::from_env(),
            read: ReadOptions::default(),
            windows: 1,
            chunk: ExchangeChunk::Auto,
            pipeline: PipelineOptions::default().with_workers(1),
            zerocopy: ZeroCopy::Auto,
        }
    }
}

/// Per-rank result of a distributed join.
#[derive(Debug, Clone)]
pub struct JoinReport {
    /// Intersecting pairs found by this rank, as `(left userdata, right
    /// userdata)` — duplicate-free across all ranks thanks to the
    /// reference-point rule.
    pub pairs: Vec<(String, String)>,
    /// Candidate pairs surviving the MBR filter on this rank.
    pub filter_candidates: u64,
    /// Exact-geometry tests performed (post-dedup).
    pub refine_tests: u64,
    /// Peak geometry-payload heap allocations resident on this rank
    /// during the join phase. The owned path materializes every received
    /// record up front (one-plus allocations each, resident for the whole
    /// phase); the zero-copy path keeps records as borrowed wire frames
    /// and only counts the refine arena's peak of live scratch buffers.
    pub max_resident_allocs: u64,
    /// Global max-over-ranks phase breakdown (identical on every rank).
    pub breakdown: PhaseBreakdown,
}

/// Runs the full distributed spatial join of two WKT files. Every rank
/// must call this; each returns its share of the result pairs plus the
/// global breakdown.
/// Collective: every rank must call it with the same options.
pub fn spatial_join(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    left_path: &str,
    right_path: &str,
    opts: &JoinOptions,
) -> Result<JoinReport> {
    let mut timer = PhaseTimer::start(comm);

    // --- Partitioning phase: read, parse, project to grid cells. ---------
    // Parsing streams through the multi-worker ingest pipeline; the
    // worker count only compresses the virtual parse time (max-lane
    // accounting), the features are bit-identical to a sequential parse.
    let mut read_and_parse = |path: &str| -> Result<Vec<Feature>> {
        let text = read_partition_text(comm, fs, path, &opts.read)?;
        let (features, _) = parse_chunked(comm, &text, &WktLineParser, &opts.pipeline)?;
        Ok(features)
    };
    let left = read_and_parse(left_path)?;
    let right = read_and_parse(right_path)?;

    let local_mbr = left
        .iter()
        .chain(&right)
        .fold(Rect::EMPTY, |acc, f| acc.union(&f.geometry.envelope()));
    let cfg = DecompConfig {
        grid: opts.grid,
        policy: opts.decomp,
    };
    let sd = decomp::build_global_from_mbr(comm, local_mbr, &[&left, &right], &cfg);
    let rtree = decomp::build_cell_rtree(comm, &*sd);

    let left_pairs = project_owned(comm, &rtree, left);
    let right_pairs = project_owned(comm, &rtree, right);
    timer.end_partition(comm);

    // --- Communication phase: global spatial partitioning. ---------------
    // The staged exchange deserializes each chunked round while later
    // rounds are in flight and hands back one source-ordered batch per
    // sliding window; the batches feed the refine phase without a
    // concatenation pass, and are bit-identical for every chunk policy,
    // so the join result never depends on the MVIO_EXCHANGE_CHUNK knob.
    let ex_opts = ExchangeOptions {
        windows: opts.windows,
        chunk: opts.chunk,
    };
    let mut filter_candidates = 0u64;
    let mut refine_tests = 0u64;
    let (pairs, max_resident_allocs) = if opts.zerocopy.resolve() {
        // Zero-copy: the received rounds stay as validated wire frames;
        // the refine phase decodes borrowed views in place and only
        // materializes the pairs that survive the batched MBR filter.
        let (left_stores, _) = exchange_features_frames_windows(comm, left_pairs, &*sd, &ex_opts)?;
        let (right_stores, _) =
            exchange_features_frames_windows(comm, right_pairs, &*sd, &ex_opts)?;
        timer.end_communication(comm);

        // --- Join phase: batched filter + arena refine over frames. ------
        run_refine_frames(
            comm,
            &*sd,
            &left_stores,
            &right_stores,
            &mut filter_candidates,
            &mut refine_tests,
        )
    } else {
        let (left_batches, _) = exchange_features_windows(comm, left_pairs, &*sd, &ex_opts)?;
        let (right_batches, _) = exchange_features_windows(comm, right_pairs, &*sd, &ex_opts)?;
        timer.end_communication(comm);

        // --- Join phase: per-cell index, filter, dedup, refine. ----------
        let resident = (left_batches.iter().map(Vec::len).sum::<usize>()
            + right_batches.iter().map(Vec::len).sum::<usize>()) as u64;
        let pairs = FilterRefine::run_refine_batched(
            comm,
            &*sd,
            left_batches.iter().map(|b| b.as_slice()),
            right_batches.iter().map(|b| b.as_slice()),
            |comm, task| {
                join_cell(
                    comm,
                    &*sd,
                    task.cell,
                    &task.left,
                    &task.right,
                    &mut filter_candidates,
                    &mut refine_tests,
                )
            },
        );
        (pairs, resident)
    };
    timer.end_compute(comm);

    let local = timer.finish(comm);
    let breakdown = PhaseBreakdown::reduce_max(comm, local);
    Ok(JoinReport {
        pairs,
        filter_candidates,
        refine_tests,
        max_resident_allocs,
        breakdown,
    })
}

/// Options for a join over two binary snapshots.
#[derive(Debug, Clone, Copy)]
pub struct SnapshotJoinOptions {
    /// Cell→rank assignment rebuilt for the reader world over the
    /// snapshots' shared grid. Must be [`DecompPolicy::Uniform`] or
    /// [`DecompPolicy::Hilbert`]: adaptive bisection needs the feature
    /// histogram, which a snapshot does not carry.
    pub decomp: DecompPolicy,
    /// Collective-read + routing-exchange configuration.
    pub read: SnapshotReadOptions,
    /// Zero-copy read path selection, as in [`JoinOptions::zerocopy`]:
    /// with it on, the collective reads leave the routed records as
    /// validated wire frames and the refine phase decodes them in place.
    pub zerocopy: ZeroCopy,
}

impl Default for SnapshotJoinOptions {
    fn default() -> Self {
        SnapshotJoinOptions {
            decomp: DecompPolicy::Uniform(mvio_core::grid::CellMap::RoundRobin),
            read: SnapshotReadOptions::default(),
            zerocopy: ZeroCopy::Auto,
        }
    }
}

/// Runs the distributed spatial join directly off two **binary
/// snapshots** written by [`mvio_core::snapshot::write_partitioned`] —
/// no WKT parsing, no cell projection: the persisted records already
/// carry their cells, so the partitioning phase collapses to a header
/// read plus the decomposition rebuild, and the communication phase is
/// the two collective reads (each with its routing exchange). Both
/// snapshots must tile the same grid over the same bounds (they were
/// partitioned together, or with the same decomposition). The join
/// answer is identical to [`spatial_join`] over the original text
/// layers. Collective: every rank must call it.
pub fn spatial_join_snapshots(
    comm: &mut Comm,
    fs: &Arc<SimFs>,
    left_path: &str,
    right_path: &str,
    opts: &SnapshotJoinOptions,
) -> Result<JoinReport> {
    let mut timer = PhaseTimer::start(comm);

    // --- Partitioning phase: headers + decomposition rebuild. ------------
    // Both metas decode from identical bytes on every rank, so every
    // rejection below is symmetric — nobody enters the collective reads
    // unless everybody does. The timed reads charge the header I/O to
    // this phase (the docs promise partitioning "collapses to a header
    // read" — it must not cost zero virtual seconds).
    let left_meta = snapshot::read_meta_timed(comm, fs, left_path)?;
    let right_meta = snapshot::read_meta_timed(comm, fs, right_path)?;
    if left_meta.spec != right_meta.spec || left_meta.bounds != right_meta.bounds {
        return Err(CoreError::Snapshot(format!(
            "snapshot layers disagree: left tiles {}x{} over {:?}, right {}x{} over {:?}",
            left_meta.spec.cells_x,
            left_meta.spec.cells_y,
            left_meta.bounds,
            right_meta.spec.cells_x,
            right_meta.spec.cells_y,
            right_meta.bounds,
        )));
    }
    let grid = UniformGrid::try_new(left_meta.bounds, left_meta.spec)?;
    let sd: Box<dyn SpatialDecomposition> = match opts.decomp {
        DecompPolicy::Uniform(map) => Box::new(UniformDecomposition::new(grid, map, comm.size())),
        DecompPolicy::Hilbert => Box::new(HilbertDecomposition::new(grid, comm.size())),
        DecompPolicy::Adaptive { .. } => {
            return Err(CoreError::InvalidOptions(
                "adaptive bisection needs the feature histogram, which a snapshot \
                 does not carry; join snapshots with the uniform or hilbert policy"
                    .into(),
            ))
        }
    };
    timer.end_partition(comm);

    // --- Communication phase: collective reads + routing exchanges. ------
    let mut filter_candidates = 0u64;
    let mut refine_tests = 0u64;
    let (pairs, max_resident_allocs) = if opts.zerocopy.resolve() {
        let (left, _) = snapshot::read_partitioned_frames(comm, fs, left_path, &*sd, &opts.read)?;
        let (right, _) = snapshot::read_partitioned_frames(comm, fs, right_path, &*sd, &opts.read)?;
        timer.end_communication(comm);

        // --- Join phase: batched filter + arena refine over frames. ------
        run_refine_frames(
            comm,
            &*sd,
            std::slice::from_ref(&left),
            std::slice::from_ref(&right),
            &mut filter_candidates,
            &mut refine_tests,
        )
    } else {
        let (left, _) = snapshot::read_partitioned(comm, fs, left_path, &*sd, &opts.read)?;
        let (right, _) = snapshot::read_partitioned(comm, fs, right_path, &*sd, &opts.read)?;
        timer.end_communication(comm);

        // --- Join phase: identical to the text path. ----------------------
        let resident = (left.len() + right.len()) as u64;
        let pairs = FilterRefine::run_refine_batched(
            comm,
            &*sd,
            std::iter::once(left.as_slice()),
            std::iter::once(right.as_slice()),
            |comm, task| {
                join_cell(
                    comm,
                    &*sd,
                    task.cell,
                    &task.left,
                    &task.right,
                    &mut filter_candidates,
                    &mut refine_tests,
                )
            },
        );
        (pairs, resident)
    };
    timer.end_compute(comm);

    let local = timer.finish(comm);
    let breakdown = PhaseBreakdown::reduce_max(comm, local);
    Ok(JoinReport {
        pairs,
        filter_candidates,
        refine_tests,
        max_resident_allocs,
        breakdown,
    })
}

/// Projects features to cells and pairs each replica with its owned
/// feature (cloning only for spanning cells).
fn project_owned(
    comm: &mut Comm,
    rtree: &RTree<u32>,
    features: Vec<Feature>,
) -> Vec<(u32, Feature)> {
    let pairs = decomp::project_to_cells(comm, rtree, &features);
    pairs
        .into_iter()
        .map(|(cell, idx)| (cell, features[idx].clone()))
        .collect()
}

/// Joins one cell: R-tree over the left layer, MBR probes from the right,
/// reference-point dedup, then exact refine.
#[allow(clippy::too_many_arguments)]
fn join_cell(
    comm: &mut Comm,
    sd: &dyn SpatialDecomposition,
    cell: u32,
    left: &[&Feature],
    right: &[&Feature],
    filter_candidates: &mut u64,
    refine_tests: &mut u64,
) -> Vec<(String, String)> {
    if left.is_empty() || right.is_empty() {
        return Vec::new();
    }
    // Envelopes once per batch — the inner candidate loop below reuses
    // them by index instead of recomputing per hit (an O(candidates ×
    // vertices) rescan on polygon-heavy cells).
    let left_mbrs: Vec<Rect> = left.iter().map(|f| f.geometry.envelope()).collect();
    // Filter index: bulk R-tree over left MBRs (the paper uses GEOS's
    // STRtree the same way).
    let items: Vec<(Rect, usize)> = left_mbrs.iter().copied().zip(0..left.len()).collect();
    comm.charge(Work::RtreeInserts {
        n: left.len() as u64,
    });
    let index = RTree::bulk_load(items);

    let mut results = Vec::new();
    let mut total_hits = 0u64;
    for r in right {
        let r_mbr = r.geometry.envelope();
        let hits = index.query(&r_mbr);
        total_hits += hits.len() as u64;
        for &li in hits {
            let l = left[li];
            *filter_candidates += 1;
            // Duplicate avoidance: only the reference cell reports this
            // candidate (geometries are replicated across cells).
            if !claims_reference(sd, cell, &left_mbrs[li], &r_mbr) {
                continue;
            }
            *refine_tests += 1;
            comm.charge(Work::RefinePair {
                verts_a: l.geometry.num_points() as u64,
                verts_b: r.geometry.num_points() as u64,
            });
            if algo::intersects(&l.geometry, &r.geometry) {
                results.push((l.userdata.clone(), r.userdata.clone()));
            }
        }
    }
    comm.charge(Work::RtreeQueries {
        n: right.len() as u64,
        results: total_hits,
    });
    results
}

/// The zero-copy join phase: groups two sides of received wire frames by
/// cell, filters candidate pairs in batch over precomputed MBRs
/// ([`envelope_batch`] + [`filter_pairs_batch`] with the reference-cell
/// claim), and only then materializes the surviving pairs into a reusable
/// [`RefineArena`] for the exact intersection tests. Results, counters
/// and charged refine work are bit-identical to
/// [`FilterRefine::run_refine_batched`] + [`join_cell`] over the owned
/// records; per-record heap allocation on the receive side is zero by
/// construction. Returns the pairs plus the arena's peak of live scratch
/// buffers (the `max_resident_allocs` metric).
/// Not collective — refinement is cell-local; the communicator only
/// charges compute.
fn run_refine_frames(
    comm: &mut Comm,
    sd: &dyn SpatialDecomposition,
    left_stores: &[FrameStore],
    right_stores: &[FrameStore],
    filter_candidates: &mut u64,
    refine_tests: &mut u64,
) -> (Vec<(String, String)>, u64) {
    let rank = comm.rank();
    // Flatten batch-then-source order — exactly the owned path's record
    // order — and decode each frame's borrowed view once.
    let left: Vec<_> = left_stores.iter().flat_map(FrameStore::frames).collect();
    let right: Vec<_> = right_stores.iter().flat_map(FrameStore::frames).collect();
    fn view(wkb: &[u8]) -> GeomRef<'_> {
        // audit: FrameStore only holds buffers the exchange validated.
        mvio_geom::wkb::decode_ref(wkb).expect("validated frame").0
    }
    let left_refs: Vec<GeomRef<'_>> = left.iter().map(|fr| view(fr.wkb)).collect();
    let right_refs: Vec<GeomRef<'_>> = right.iter().map(|fr| view(fr.wkb)).collect();
    let (mut left_mbrs, mut right_mbrs) = (Vec::new(), Vec::new());
    envelope_batch(&left_refs, &mut left_mbrs);
    envelope_batch(&right_refs, &mut right_mbrs);

    // Group by cell (ascending — the owned path's BTreeMap order); within
    // a cell, indices keep flattened record order.
    let mut by_cell: BTreeMap<u32, (Vec<usize>, Vec<usize>)> = BTreeMap::new();
    for (i, fr) in left.iter().enumerate() {
        debug_assert_eq!(sd.cell_to_rank(fr.cell), rank, "left frame misrouted");
        by_cell.entry(fr.cell).or_default().0.push(i);
    }
    for (i, fr) in right.iter().enumerate() {
        debug_assert_eq!(sd.cell_to_rank(fr.cell), rank, "right frame misrouted");
        by_cell.entry(fr.cell).or_default().1.push(i);
    }

    let mut arena = RefineArena::new();
    let mut results = Vec::new();
    let mut candidates: Vec<(usize, usize)> = Vec::new();
    let mut surviving: Vec<(usize, usize)> = Vec::new();
    for (cell, (ls, rs)) in by_cell {
        if ls.is_empty() || rs.is_empty() {
            continue;
        }
        let items: Vec<(Rect, usize)> = ls.iter().map(|&i| (left_mbrs[i], i)).collect();
        comm.charge(Work::RtreeInserts { n: ls.len() as u64 });
        let index = RTree::bulk_load(items);

        // Candidate enumeration in (right outer, hit inner) order — the
        // owned inner loop's order, so survivors refine identically.
        candidates.clear();
        let mut total_hits = 0u64;
        for &ri in &rs {
            let hits = index.query(&right_mbrs[ri]);
            total_hits += hits.len() as u64;
            candidates.extend(hits.iter().map(|&&li| (li, ri)));
        }
        *filter_candidates += candidates.len() as u64;
        filter_pairs_batch(
            &candidates,
            &left_mbrs,
            &right_mbrs,
            |a, b| claims_reference(sd, cell, a, b),
            &mut surviving,
        );

        // Exact refine only for the survivors, through the reusable
        // arena: materialize, test, recycle — per window/cell reset keeps
        // the pool of live buffers tiny regardless of record counts.
        arena.reset();
        for &(li, ri) in &surviving {
            *refine_tests += 1;
            comm.charge(Work::RefinePair {
                verts_a: left_refs[li].num_points() as u64,
                verts_b: right_refs[ri].num_points() as u64,
            });
            let lg = arena.materialize(&left_refs[li]);
            let rg = arena.materialize(&right_refs[ri]);
            if algo::intersects(&lg, &rg) {
                results.push((
                    left[li].userdata.to_string(),
                    right[ri].userdata.to_string(),
                ));
            }
            arena.recycle(lg);
            arena.recycle(rg);
        }
        comm.charge(Work::RtreeQueries {
            n: rs.len() as u64,
            results: total_hits,
        });
    }
    (results, arena.peak_resident() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvio_geom::wkt;
    use mvio_msim::{Topology, World, WorldConfig};
    use mvio_pfs::FsConfig;

    /// Builds two tiny layers with a known exact join answer.
    fn build_layers(fs: &Arc<SimFs>) {
        // Left: 4 unit squares labelled L0..L3 at x = 0, 10, 20, 30.
        let left = fs.create("left.wkt", None).unwrap();
        let mut text = String::new();
        for i in 0..4 {
            let x = i as f64 * 10.0;
            text.push_str(&format!(
                "POLYGON (({x} 0, {} 0, {} 1, {x} 1, {x} 0))\tL{i}\n",
                x + 1.0,
                x + 1.0
            ));
        }
        left.append(text.as_bytes());
        // Right: squares overlapping L1 and L3 only, plus one far away.
        let right = fs.create("right.wkt", None).unwrap();
        let mut text = String::new();
        text.push_str("POLYGON ((10.5 0.5, 11.5 0.5, 11.5 1.5, 10.5 1.5, 10.5 0.5))\tR_a\n");
        text.push_str("POLYGON ((30.2 0.2, 30.8 0.2, 30.8 0.8, 30.2 0.8, 30.2 0.2))\tR_b\n");
        text.push_str("POLYGON ((90 90, 91 90, 91 91, 90 91, 90 90))\tR_far\n");
        right.append(text.as_bytes());
    }

    fn expected() -> Vec<(String, String)> {
        vec![
            ("L1".to_string(), "R_a".to_string()),
            ("L3".to_string(), "R_b".to_string()),
        ]
    }

    fn run_join(topo: Topology, opts: JoinOptions) -> (Vec<(String, String)>, PhaseBreakdown) {
        let fs = SimFs::new(FsConfig::gpfs_roger());
        build_layers(&fs);
        // Tiny test files: keep the block comfortably above one record so
        // the equal split never lands inside a record with many ranks.
        let mut opts = opts;
        opts.read.block_size = Some(512);
        let out = World::run(WorldConfig::new(topo), move |comm| {
            spatial_join(comm, &fs, "left.wkt", "right.wkt", &opts).unwrap()
        });
        let mut pairs: Vec<(String, String)> = out.iter().flat_map(|r| r.pairs.clone()).collect();
        pairs.sort();
        (pairs, out[0].breakdown)
    }

    #[test]
    fn join_finds_exact_pairs_single_rank() {
        let (pairs, b) = run_join(Topology::single_node(1), JoinOptions::default());
        assert_eq!(pairs, expected());
        assert!(b.total > 0.0);
    }

    #[test]
    fn join_is_identical_across_rank_counts() {
        let (p1, _) = run_join(Topology::single_node(1), JoinOptions::default());
        let (p4, _) = run_join(Topology::new(2, 2), JoinOptions::default());
        let (p6, _) = run_join(Topology::new(3, 2), JoinOptions::default());
        assert_eq!(p1, p4);
        assert_eq!(p1, p6);
    }

    #[test]
    fn join_is_identical_across_grid_sizes_no_duplicates() {
        // Finer grids replicate more; dedup must keep results exact.
        for cells in [1u32, 2, 8, 32] {
            let opts = JoinOptions {
                grid: GridSpec::square(cells),
                ..Default::default()
            };
            let (pairs, _) = run_join(Topology::new(2, 2), opts);
            assert_eq!(pairs, expected(), "grid {cells}x{cells}");
        }
    }

    #[test]
    fn join_with_block_map_and_windows() {
        let opts = JoinOptions {
            decomp: DecompPolicy::Uniform(mvio_core::grid::CellMap::Block),
            windows: 4,
            grid: GridSpec::square(8),
            ..Default::default()
        };
        let (pairs, _) = run_join(Topology::new(2, 2), opts);
        assert_eq!(pairs, expected());
    }

    #[test]
    fn join_answer_is_identical_for_every_chunk_policy() {
        // Finite chunks pipeline the exchange in rounds, but each
        // window's batch is reassembled in source order before refine —
        // so the per-rank output must be identical *unsorted*, not just
        // as a set, to the blocking configuration.
        let run_raw = |chunk: ExchangeChunk| -> Vec<Vec<(String, String)>> {
            let fs = SimFs::new(FsConfig::gpfs_roger());
            build_layers(&fs);
            let mut opts = JoinOptions {
                chunk,
                grid: GridSpec::square(8),
                ..Default::default()
            };
            opts.read.block_size = Some(512);
            World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
                spatial_join(comm, &fs, "left.wkt", "right.wkt", &opts)
                    .unwrap()
                    .pairs
            })
        };
        let blocking = run_raw(ExchangeChunk::Unlimited);
        for chunk in [ExchangeChunk::Bytes(64), ExchangeChunk::Bytes(4096)] {
            assert_eq!(run_raw(chunk), blocking, "{chunk:?}");
        }
        let mut all: Vec<(String, String)> = blocking.into_iter().flatten().collect();
        all.sort();
        assert_eq!(all, expected());
    }

    /// The tentpole oracle at join scale: per-rank outputs (unsorted) and
    /// the filter/refine counters must be identical with the zero-copy
    /// read path on and off, across grid sizes, chunking and windows.
    /// Only `max_resident_allocs` may differ — and the zero-copy side
    /// must stay bounded by the arena pool, not the record count.
    #[test]
    fn join_answer_is_bit_identical_zerocopy_on_and_off() {
        let run_raw = |zerocopy: ZeroCopy, chunk: ExchangeChunk, windows: u32| {
            let fs = SimFs::new(FsConfig::gpfs_roger());
            build_layers(&fs);
            let mut opts = JoinOptions {
                zerocopy,
                chunk,
                windows,
                grid: GridSpec::square(8),
                ..Default::default()
            };
            opts.read.block_size = Some(512);
            World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
                let r = spatial_join(comm, &fs, "left.wkt", "right.wkt", &opts).unwrap();
                (
                    r.pairs,
                    r.filter_candidates,
                    r.refine_tests,
                    r.max_resident_allocs,
                )
            })
        };
        for chunk in [ExchangeChunk::Unlimited, ExchangeChunk::Bytes(64)] {
            for windows in [1u32, 3] {
                let on = run_raw(ZeroCopy::On, chunk, windows);
                let off = run_raw(ZeroCopy::Off, chunk, windows);
                for (rank, (r_on, r_off)) in on.iter().zip(&off).enumerate() {
                    assert_eq!(r_on.0, r_off.0, "pairs rank {rank} {chunk:?} w={windows}");
                    assert_eq!(r_on.1, r_off.1, "filter_candidates rank {rank}");
                    assert_eq!(r_on.2, r_off.2, "refine_tests rank {rank}");
                    // Owned residency scales with records; the arena's
                    // peak stays at a handful of scratch buffers.
                    assert!(r_on.3 <= 8, "arena peak {} should stay pool-sized", r_on.3);
                }
            }
        }
    }

    #[test]
    fn join_answer_is_identical_under_every_decomposition_policy() {
        for policy in [
            DecompPolicy::Uniform(mvio_core::grid::CellMap::RoundRobin),
            DecompPolicy::Hilbert,
            DecompPolicy::adaptive(),
        ] {
            let opts = JoinOptions {
                decomp: policy,
                grid: GridSpec::square(8),
                ..Default::default()
            };
            let (pairs, _) = run_join(Topology::new(2, 2), opts);
            assert_eq!(pairs, expected(), "{policy:?}");
        }
    }

    #[test]
    fn snapshot_join_matches_the_text_join() {
        use mvio_core::snapshot::SnapshotWriteOptions;
        // Reference answer from the text path.
        let (expect_pairs, _) = run_join(Topology::new(2, 2), JoinOptions::default());
        assert_eq!(expect_pairs, expected());

        // Persist both layers as snapshots from a single-rank world
        // (every pair is owned by rank 0 there), sharing one
        // decomposition so the layers tile the same grid.
        let fs = SimFs::new(FsConfig::gpfs_roger());
        build_layers(&fs);
        {
            let fs = Arc::clone(&fs);
            World::run(WorldConfig::new(Topology::single_node(1)), move |comm| {
                let read = ReadOptions::default().with_block_size(512);
                let parse = |comm: &mut mvio_msim::Comm, path: &str| -> Vec<Feature> {
                    let text = read_partition_text(comm, &fs, path, &read).unwrap();
                    parse_chunked(comm, &text, &WktLineParser, &PipelineOptions::default())
                        .unwrap()
                        .0
                };
                let left = parse(comm, "left.wkt");
                let right = parse(comm, "right.wkt");
                let mbr = left
                    .iter()
                    .chain(&right)
                    .fold(mvio_geom::Rect::EMPTY, |a, f| {
                        a.union(&f.geometry.envelope())
                    });
                let cfg = DecompConfig::uniform(GridSpec::square(8));
                let sd = decomp::build_global_from_mbr(comm, mbr, &[&left, &right], &cfg);
                let pairs_of = |feats: &[Feature]| -> Vec<(u32, Feature)> {
                    feats
                        .iter()
                        .flat_map(|f| {
                            sd.cells_for_rect_vec(&f.geometry.envelope())
                                .into_iter()
                                .map(|c| (c, f.clone()))
                                .collect::<Vec<_>>()
                        })
                        .collect()
                };
                snapshot::write_partitioned(
                    comm,
                    &fs,
                    "left.snap",
                    &pairs_of(&left),
                    &*sd,
                    &SnapshotWriteOptions::default(),
                )
                .unwrap();
                snapshot::write_partitioned(
                    comm,
                    &fs,
                    "right.snap",
                    &pairs_of(&right),
                    &*sd,
                    &SnapshotWriteOptions::default(),
                )
                .unwrap();
            });
        }

        // Join straight off the snapshots, at several world sizes and
        // rebuild policies: the answer must match the text join exactly.
        for policy in [
            DecompPolicy::Uniform(mvio_core::grid::CellMap::RoundRobin),
            DecompPolicy::Hilbert,
        ] {
            for topo in [Topology::single_node(1), Topology::new(2, 2)] {
                let fs = Arc::clone(&fs);
                let out = World::run(WorldConfig::new(topo), move |comm| {
                    let opts = SnapshotJoinOptions {
                        decomp: policy,
                        ..Default::default()
                    };
                    spatial_join_snapshots(comm, &fs, "left.snap", "right.snap", &opts).unwrap()
                });
                let mut pairs: Vec<(String, String)> =
                    out.iter().flat_map(|r| r.pairs.clone()).collect();
                pairs.sort();
                assert_eq!(pairs, expected(), "{policy:?} {topo:?}");
                assert!(out[0].breakdown.total > 0.0);
            }
        }

        // Adaptive cannot be rebuilt from a snapshot: typed rejection.
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let opts = SnapshotJoinOptions {
                decomp: DecompPolicy::adaptive(),
                ..Default::default()
            };
            matches!(
                spatial_join_snapshots(comm, &fs, "left.snap", "right.snap", &opts),
                Err(mvio_core::CoreError::InvalidOptions(_))
            )
        });
        assert!(out.iter().all(|&ok| ok));
    }

    #[test]
    fn breakdown_phases_are_populated() {
        let (_, b) = run_join(Topology::new(2, 2), JoinOptions::default());
        assert!(b.partition > 0.0, "partition {:?}", b);
        assert!(b.communication > 0.0);
        assert!(b.compute >= 0.0);
        assert!(b.total > 0.0);
        // Max-over-ranks phases can exceed the max total, but each phase
        // alone cannot.
        assert!(b.partition <= b.total + 1e-9);
    }

    #[test]
    fn self_join_reports_every_overlap_once() {
        let fs = SimFs::new(FsConfig::gpfs_roger());
        // A layer of two overlapping squares, self-joined.
        let layer = fs.create("layer.wkt", None).unwrap();
        layer.append(
            "POLYGON ((0 0, 2 0, 2 2, 0 2, 0 0))\tA\n\
             POLYGON ((1 1, 3 1, 3 3, 1 3, 1 1))\tB\n"
                .as_bytes(),
        );
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let opts = JoinOptions {
                grid: GridSpec::square(4),
                ..Default::default()
            };
            spatial_join(comm, &fs, "layer.wkt", "layer.wkt", &opts).unwrap()
        });
        let mut pairs: Vec<(String, String)> = out.iter().flat_map(|r| r.pairs.clone()).collect();
        pairs.sort();
        // A∩A, A∩B, B∩A, B∩B — each exactly once.
        assert_eq!(
            pairs,
            vec![
                ("A".into(), "A".into()),
                ("A".into(), "B".into()),
                ("B".into(), "A".into()),
                ("B".into(), "B".into()),
            ]
        );
    }

    #[test]
    fn join_against_brute_force_on_random_data() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(31);
        let mut left_wkt = String::new();
        let mut right_wkt = String::new();
        let mut left_rects = Vec::new();
        let mut right_rects = Vec::new();
        for i in 0..40 {
            let x = rng.gen_range(0.0..50.0);
            let y = rng.gen_range(0.0..50.0);
            let w = rng.gen_range(0.5..4.0);
            let h = rng.gen_range(0.5..4.0);
            let r = Rect::new(x, y, x + w, y + h);
            let poly = format!(
                "POLYGON (({} {}, {} {}, {} {}, {} {}, {} {}))",
                r.min_x,
                r.min_y,
                r.max_x,
                r.min_y,
                r.max_x,
                r.max_y,
                r.min_x,
                r.max_y,
                r.min_x,
                r.min_y
            );
            if i % 2 == 0 {
                left_wkt.push_str(&format!("{poly}\tL{i}\n"));
                left_rects.push((format!("L{i}"), r));
            } else {
                right_wkt.push_str(&format!("{poly}\tR{i}\n"));
                right_rects.push((format!("R{i}"), r));
            }
        }
        // Brute-force ground truth (axis-aligned rects: MBR test is exact).
        let mut expect: Vec<(String, String)> = Vec::new();
        for (ln, lr) in &left_rects {
            for (rn, rr) in &right_rects {
                if lr.intersects(rr) {
                    expect.push((ln.clone(), rn.clone()));
                }
            }
        }
        expect.sort();

        let fs = SimFs::new(FsConfig::gpfs_roger());
        fs.create("l.wkt", None)
            .unwrap()
            .append(left_wkt.as_bytes());
        fs.create("r.wkt", None)
            .unwrap()
            .append(right_wkt.as_bytes());
        let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            let opts = JoinOptions {
                grid: GridSpec::square(6),
                ..Default::default()
            };
            spatial_join(comm, &fs, "l.wkt", "r.wkt", &opts).unwrap()
        });
        let mut pairs: Vec<(String, String)> = out.iter().flat_map(|r| r.pairs.clone()).collect();
        pairs.sort();
        assert_eq!(pairs, expect);
        let _ = wkt::parse("POINT (0 0)").unwrap(); // keep wkt import used
    }
}
