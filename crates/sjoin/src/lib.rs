//! # mvio-sjoin — distributed spatial join and indexing on MPI-Vector-IO
//!
//! The paper's exemplar applications (§5.2): an end-to-end **spatial
//! join** ("find all pairs of rivers and cities that intersect") and
//! distributed **spatial indexing** of a whole dataset, both driven
//! through the MPI-Vector-IO pipeline:
//!
//! ```text
//! read + parse file partitions      (partitioning phase)
//!   → project to grid cells
//!   → all-to-all exchange           (communication phase)
//!   → per-cell R-tree filter
//!   → exact-geometry refine + dedup (join/index phase)
//! ```
//!
//! Per-phase virtual times are collected with max-over-ranks semantics —
//! exactly how the paper reports its breakdown figures ("we note the time
//! taken by each process and take the maximum time for each of the
//! components", §5.2, which is also why the stacked phases can exceed the
//! total).

pub mod breakdown;
pub mod engine;
pub mod index;
pub mod join;
pub mod query;

pub use breakdown::PhaseBreakdown;
pub use engine::{
    EngineOptions, Neighbor, Query, QueryAnswer, QueryEngine, ServeCache, ServeReport, ServeStats,
    SERVE_CACHE_ENV,
};
pub use index::{build_distributed_index, IndexReport};
pub use join::{
    spatial_join, spatial_join_snapshots, JoinOptions, JoinReport, SnapshotJoinOptions,
};
pub use mvio_core::rebalance::{RebalancePolicy, RebalanceReport, Update, UpdateStats};
pub use query::{batch_query, range_query, RangeQueryReport};
