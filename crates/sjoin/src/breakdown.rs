//! Per-phase timing with the paper's max-over-ranks reporting.

use mvio_msim::Comm;

/// Virtual seconds spent in each pipeline phase, reported as the maximum
/// over all ranks (paper §5.2). `total` is the max end-to-end time, which
/// is ≤ the sum of phase maxima ("the total time is less than the sum of
/// different phases because here we report the maximum time among all
/// processes for each phase").
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseBreakdown {
    /// Reading file partitions, parsing, and populating grid cells.
    pub partition: f64,
    /// Serialization, the two-round exchange, and deserialization.
    pub communication: f64,
    /// Local spatial indexing plus the refine computation.
    pub compute: f64,
    /// End-to-end elapsed virtual time.
    pub total: f64,
}

impl PhaseBreakdown {
    /// Combines local phase durations into the global max-over-ranks
    /// breakdown (an allreduce per field).
    /// Collective: every rank must call it (one reduction per field).
    pub fn reduce_max(comm: &mut Comm, local: PhaseBreakdown) -> PhaseBreakdown {
        let max = |a: &f64, b: &f64| a.max(*b);
        PhaseBreakdown {
            partition: comm.allreduce(local.partition, 8, &max),
            communication: comm.allreduce(local.communication, 8, &max),
            compute: comm.allreduce(local.compute, 8, &max),
            total: comm.allreduce(local.total, 8, &max),
        }
    }

    /// Formats one breakdown row for the repro harness.
    pub fn row(&self, label: &str) -> String {
        format!(
            "{label:>18}  partition {:>9.3}s  comm {:>9.3}s  compute {:>9.3}s  total {:>9.3}s",
            self.partition, self.communication, self.compute, self.total
        )
    }
}

/// Tracks phase boundaries on one rank's virtual clock.
pub struct PhaseTimer {
    start: f64,
    last: f64,
    pub breakdown: PhaseBreakdown,
}

impl PhaseTimer {
    /// Starts timing at the rank's current clock.
    pub fn start(comm: &Comm) -> Self {
        let now = comm.now();
        PhaseTimer {
            start: now,
            last: now,
            breakdown: PhaseBreakdown::default(),
        }
    }

    fn lap(&mut self, comm: &Comm) -> f64 {
        let now = comm.now();
        let dt = now - self.last;
        self.last = now;
        dt
    }

    /// Ends the partition phase.
    pub fn end_partition(&mut self, comm: &Comm) {
        self.breakdown.partition += self.lap(comm);
    }

    /// Ends the communication phase.
    pub fn end_communication(&mut self, comm: &Comm) {
        self.breakdown.communication += self.lap(comm);
    }

    /// Ends the compute (join/index) phase.
    pub fn end_compute(&mut self, comm: &Comm) {
        self.breakdown.compute += self.lap(comm);
    }

    /// Finishes and records the total.
    pub fn finish(mut self, comm: &Comm) -> PhaseBreakdown {
        self.breakdown.total = comm.now() - self.start;
        self.breakdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvio_msim::{Topology, Work, World, WorldConfig};

    #[test]
    fn timer_attributes_phases() {
        let out = World::run(WorldConfig::new(Topology::single_node(1)), |comm| {
            let mut t = PhaseTimer::start(comm);
            comm.charge(Work::Seconds(1.0));
            t.end_partition(comm);
            comm.charge(Work::Seconds(2.0));
            t.end_communication(comm);
            comm.charge(Work::Seconds(3.0));
            t.end_compute(comm);
            t.finish(comm)
        });
        let b = out[0];
        assert!((b.partition - 1.0).abs() < 1e-9);
        assert!((b.communication - 2.0).abs() < 1e-9);
        assert!((b.compute - 3.0).abs() < 1e-9);
        assert!((b.total - 6.0).abs() < 1e-9);
    }

    #[test]
    fn reduce_max_takes_slowest_rank_per_phase() {
        let out = World::run(WorldConfig::new(Topology::single_node(3)), |comm| {
            let local = PhaseBreakdown {
                partition: comm.rank() as f64,
                communication: 10.0 - comm.rank() as f64,
                compute: 1.0,
                total: 5.0 + comm.rank() as f64,
            };
            PhaseBreakdown::reduce_max(comm, local)
        });
        for b in out {
            assert_eq!(b.partition, 2.0);
            assert_eq!(b.communication, 10.0);
            assert_eq!(b.compute, 1.0);
            assert_eq!(b.total, 7.0);
        }
    }
}
