//! Resident distributed query serving: the ROADMAP "serve millions of
//! queries" shape over the partitioned spatial index.
//!
//! Everything else in the workspace is one-shot batch ingest→answer;
//! [`QueryEngine`] is the long-lived counterpart. It is constructed once
//! — from an [`IngestOutput`] or a binary snapshot — and keeps the
//! per-rank R-tree and the global [`SpatialDecomposition`] resident
//! across [`QueryEngine::serve`] calls, so a serving batch costs only
//! routing + tree walks + two pipelined exchanges instead of a full
//! read/partition/exchange pass per query.
//!
//! ## Serving protocol
//!
//! One [`QueryEngine::serve`] call is collective and runs five steps:
//!
//! 1. **Validate** every query locally, then agree globally (one
//!    `allreduce`) whether any rank holds an invalid query. Rejection is
//!    symmetric: every rank returns a typed
//!    [`CoreError::InvalidOptions`] and nobody enters the exchange, so a
//!    bad batch can never strand a peer in a collective. The engine
//!    stays usable for the next batch.
//! 2. **Cache lookup**: answers already in the hot-query LRU (see
//!    [`ServeCache`]) are returned without shipping anything — the peers
//!    still rendezvous in the exchange, where this rank simply
//!    contributes fewer records.
//! 3. **Route + ship**: each remaining query is serialized once per
//!    destination rank (the owners of the cells overlapping a
//!    range/point query; every cell-owning rank for kNN) and shipped
//!    through the chunked nonblocking [`ExchangePlan`]. Received queries
//!    are answered in the exchange *sink*, so later query rounds are
//!    still in flight while this rank walks its R-tree — query shipping
//!    overlaps local tree walks.
//! 4. **Ship results back** over a second plan run: each match travels
//!    as one wire record tagged with the issuing rank's query index.
//! 5. **Merge**: per query, results are sorted (lexicographic for
//!    matches, by `(distance, userdata)` for kNN) and truncated to `k`
//!    where applicable, inserted into the cache, and returned aligned
//!    with the input slice.
//!
//! Duplicate-free semantics follow `range_query`'s reference-corner rule
//! ([`mvio_core::framework::claims_reference`]): a feature replicated
//! into several cells is claimed by exactly one owner, so an answer
//! contains each matching feature exactly once — deterministically, in
//! sorted order, regardless of decomposition policy, chunk size, rank
//! count, or cache state.
//!
//! ## Mutability
//!
//! The engine is no longer write-once: [`QueryEngine::apply_updates`]
//! absorbs streaming inserts/deletes between serve batches (routing them
//! to the owning ranks over the same staged exchange), and
//! [`QueryEngine::maybe_rebalance`] re-decomposes and migrates only the
//! cells whose owner changed once the drifted load crosses the
//! [`RebalancePolicy`] threshold — see [`mvio_core::rebalance`].
//!
//! # Example
//!
//! A two-rank world builds a resident engine, absorbs a streaming
//! insert, and serves a range query over the mutated dataset:
//!
//! ```
//! use mvio_core::decomp::{SpatialDecomposition, UniformDecomposition};
//! use mvio_core::grid::{CellMap, GridSpec, UniformGrid};
//! use mvio_core::rebalance::Update;
//! use mvio_core::Feature;
//! use mvio_geom::{Geometry, Point, Rect};
//! use mvio_msim::{Topology, World, WorldConfig};
//! use mvio_sjoin::{EngineOptions, Query, QueryAnswer, QueryEngine};
//!
//! let out = World::run(WorldConfig::new(Topology::single_node(2)), |comm| {
//!     // Every rank fabricates the same tiny dataset and keeps the
//!     // replicas it owns — the state an ingest would have produced.
//!     let grid = UniformGrid::new(Rect::new(0.0, 0.0, 4.0, 4.0), GridSpec::square(2));
//!     let sd: Box<dyn SpatialDecomposition> =
//!         Box::new(UniformDecomposition::new(grid, CellMap::RoundRobin, comm.size()));
//!     let f = Feature::with_userdata(Geometry::Point(Point::new(1.0, 1.0)), "a");
//!     let owned: Vec<(u32, Feature)> = sd
//!         .cells_for_rect_vec(&f.geometry.envelope())
//!         .into_iter()
//!         .filter(|&c| sd.cell_to_rank(c) == comm.rank())
//!         .map(|c| (c, f.clone()))
//!         .collect();
//!     let mut eng = QueryEngine::from_parts(comm, sd, owned, &EngineOptions::one_shot());
//!     // Rank 0 submits a streaming insert; the batch is collective.
//!     let updates = if comm.rank() == 0 {
//!         vec![Update::Insert(Feature::with_userdata(
//!             Geometry::Point(Point::new(3.0, 3.0)),
//!             "b",
//!         ))]
//!     } else {
//!         Vec::new()
//!     };
//!     eng.apply_updates(comm, &updates).unwrap();
//!     let report = eng
//!         .serve(comm, &[Query::Range(Rect::new(0.0, 0.0, 4.0, 4.0))])
//!         .unwrap();
//!     report.answers
//! });
//! for answers in out {
//!     assert_eq!(
//!         answers,
//!         vec![QueryAnswer::Matches(vec!["a".into(), "b".into()])]
//!     );
//! }
//! ```

use mvio_core::decomp::{
    DecompPolicy, HilbertDecomposition, SpatialDecomposition, UniformDecomposition,
};
use mvio_core::exchange::{
    record_frames, serialize_record, ExchangeChunk, ExchangeOptions, ExchangePlan, ExchangeStats,
    RecordFrame, SerializedBatch, ZeroCopy,
};
use mvio_core::grid::UniformGrid;
use mvio_core::pipeline::IngestOutput;
use mvio_core::rebalance::{
    self, RebalancePolicy, RebalanceReport, Rebalancer, Update, UpdateStats,
};
use mvio_core::snapshot::{self, SnapshotReadOptions};
use mvio_core::{CoreError, Feature, Result};
use mvio_geom::index::RTree;
use mvio_geom::{algo, Geometry, LineString, Point, Rect};
use mvio_msim::{Comm, Work};
use mvio_pfs::SimFs;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Environment knob selecting the result-cache capacity: unset, `0` or
/// `off` disables the cache; `on` enables it at the default capacity;
/// an integer pins the capacity in entries.
pub const SERVE_CACHE_ENV: &str = "MVIO_SERVE_CACHE";

/// Capacity used when [`SERVE_CACHE_ENV`] is `on` (entries).
pub const DEFAULT_CACHE_ENTRIES: usize = 1024;

/// One query in a serving batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Query {
    /// All features intersecting the (closed) rectangle.
    Range(Rect),
    /// All features containing or touching the point — a degenerate
    /// [`Query::Range`].
    Point(Point),
    /// The `k` nearest features by euclidean point-to-geometry distance
    /// ([`algo::point_geometry_distance`]); ties break on userdata.
    Knn {
        /// Query centre.
        at: Point,
        /// Neighbours requested (must be ≥ 1; capped by dataset size).
        k: u32,
    },
}

/// One kNN result.
#[derive(Debug, Clone, PartialEq)]
pub struct Neighbor {
    /// Euclidean distance from the query centre to the feature.
    pub distance: f64,
    /// The feature's userdata.
    pub userdata: String,
}

/// The engine's answer to one [`Query`], aligned with the input batch.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryAnswer {
    /// Range/point result: matching userdata, sorted, duplicate-free
    /// across replicas (multiset: distinct features sharing userdata
    /// each appear).
    Matches(Vec<String>),
    /// kNN result: at most `k` neighbours sorted by
    /// `(distance, userdata)`.
    Neighbors(Vec<Neighbor>),
}

impl QueryAnswer {
    /// Number of results in the answer.
    pub fn len(&self) -> usize {
        match self {
            QueryAnswer::Matches(v) => v.len(),
            QueryAnswer::Neighbors(v) => v.len(),
        }
    }

    /// Whether the answer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Result-cache sizing policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServeCache {
    /// Resolve through [`SERVE_CACHE_ENV`] (the default); unset means
    /// off.
    #[default]
    Auto,
    /// No caching.
    Off,
    /// LRU over at most this many query→answer entries.
    Entries(usize),
}

impl ServeCache {
    /// The capacity this policy resolves to (`None` = caching off).
    ///
    /// # Panics
    ///
    /// `Auto` panics on an unparseable [`SERVE_CACHE_ENV`] value —
    /// silently serving uncached under a typo'd knob would make every
    /// benchmark measure the wrong configuration (same contract as
    /// [`ExchangeChunk::resolve`]).
    pub fn resolve(self) -> Option<usize> {
        match self {
            ServeCache::Auto => {
                let v = std::env::var(SERVE_CACHE_ENV).ok()?;
                let t = v.trim();
                if t == "0" || t.eq_ignore_ascii_case("off") {
                    return None;
                }
                if t.eq_ignore_ascii_case("on") {
                    return Some(DEFAULT_CACHE_ENTRIES);
                }
                let n: usize = t.parse().unwrap_or_else(|_| {
                    panic!(
                        "invalid {SERVE_CACHE_ENV} value {v:?}: expected an entry count, \
                         `on`, or 0/off"
                    )
                });
                Some(n.max(1))
            }
            ServeCache::Off => None,
            ServeCache::Entries(n) => Some(n.max(1)),
        }
    }
}

/// Construction-time engine configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineOptions {
    /// Per-destination byte cap for each pipelined exchange round used
    /// by [`QueryEngine::serve`] (both the query and the result trip).
    pub chunk: ExchangeChunk,
    /// Hot-query result cache policy.
    pub cache: ServeCache,
    /// Zero-copy read path selection for both serve trips, resolved once
    /// at construction (defaults to the `MVIO_ZEROCOPY` knob, on unless
    /// overridden). With it on, received query and result records are
    /// decoded as borrowed wire frames — answers are bit-identical
    /// either way.
    pub zerocopy: ZeroCopy,
    /// Online-rebalance policy for [`QueryEngine::maybe_rebalance`]
    /// (defaults to the `MVIO_REBALANCE` knob, off unless overridden).
    /// Must be identical on every rank — the rebalance decision is
    /// collective.
    pub rebalance: RebalancePolicy,
}

impl EngineOptions {
    /// Options for a one-shot wrapper: blocking exchange, no cache, no
    /// rebalancing.
    pub fn one_shot() -> Self {
        EngineOptions {
            chunk: ExchangeChunk::Unlimited,
            cache: ServeCache::Off,
            zerocopy: ZeroCopy::Auto,
            rebalance: RebalancePolicy::Off,
        }
    }
}

/// Per-rank counters for one [`QueryEngine::serve`] call.
#[derive(Debug, Clone, Default)]
pub struct ServeStats {
    /// Queries this rank submitted in the batch.
    pub queries: u64,
    /// Queries answered straight from the LRU cache (nothing shipped).
    pub answered_from_cache: u64,
    /// Queries that went through routing and the exchange.
    pub routed: u64,
    /// Query records shipped (one per query per destination rank).
    pub shipped_records: u64,
    /// Result records received back for this rank's queries.
    pub result_records: u64,
    /// Exchange counters for the query-shipping trip.
    pub query_exchange: ExchangeStats,
    /// Exchange counters for the result return trip.
    pub result_exchange: ExchangeStats,
}

/// Per-rank outcome of one [`QueryEngine::serve`] call.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// One answer per submitted query, same order as the input slice.
    pub answers: Vec<QueryAnswer>,
    /// Counters for this call.
    pub stats: ServeStats,
}

/// Rejects queries the engine cannot answer meaningfully: non-finite or
/// inverted (`min > max`) range rects, non-finite points, and `k = 0`
/// kNN requests, each with a typed [`CoreError::InvalidOptions`].
///
/// This is the serving boundary's input firewall — the WKT parsers
/// reject NaN coordinates in *data*, but nothing upstream guards
/// *queries*, and a NaN rect silently matches nothing while looking like
/// a valid empty answer.
pub fn validate_query(q: &Query) -> Result<()> {
    let bad = |msg: String| Err(CoreError::InvalidOptions(msg));
    match q {
        Query::Range(r) => {
            if !(r.min_x.is_finite()
                && r.min_y.is_finite()
                && r.max_x.is_finite()
                && r.max_y.is_finite())
            {
                return bad(format!(
                    "range query rect has non-finite coordinates: {r:?}"
                ));
            }
            if r.min_x > r.max_x || r.min_y > r.max_y {
                return bad(format!("range query rect is inverted (min > max): {r:?}"));
            }
            Ok(())
        }
        Query::Point(p) => {
            if !p.is_finite() {
                return bad(format!("point query has non-finite coordinates: {p:?}"));
            }
            Ok(())
        }
        Query::Knn { at, k } => {
            if !at.is_finite() {
                return bad(format!(
                    "knn query centre has non-finite coordinates: {at:?}"
                ));
            }
            if *k == 0 {
                return bad("knn query needs k >= 1 (k = 0 selects nothing)".into());
            }
            Ok(())
        }
    }
}

/// Hashable identity of a query for the result cache (`f64` coordinates
/// compared bit-exactly; sound because validation already rejected NaN).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct QueryKey {
    tag: u8,
    a: u64,
    b: u64,
    c: u64,
    d: u64,
    k: u32,
}

fn query_key(q: &Query) -> QueryKey {
    match q {
        Query::Range(r) => QueryKey {
            tag: 0,
            a: r.min_x.to_bits(),
            b: r.min_y.to_bits(),
            c: r.max_x.to_bits(),
            d: r.max_y.to_bits(),
            k: 0,
        },
        Query::Point(p) => QueryKey {
            tag: 1,
            a: p.x.to_bits(),
            b: p.y.to_bits(),
            c: 0,
            d: 0,
            k: 0,
        },
        Query::Knn { at, k } => QueryKey {
            tag: 2,
            a: at.x.to_bits(),
            b: at.y.to_bits(),
            c: 0,
            d: 0,
            k: *k,
        },
    }
}

/// LRU map from query identity to its full answer. Sound because the
/// dataset only changes through [`QueryEngine::apply_updates`], which
/// clears the cache (a rebalance migrates replicas without changing the
/// dataset, so cached answers survive it). Recency is tracked with lazy
/// deletion — `get`/
/// `insert` push `(key, tick)` markers and eviction skips markers whose
/// tick no longer matches the live entry.
#[derive(Debug)]
struct ResultCache {
    cap: usize,
    map: HashMap<QueryKey, (QueryAnswer, u64)>,
    order: VecDeque<(QueryKey, u64)>,
    tick: u64,
}

impl ResultCache {
    fn new(cap: usize) -> Self {
        ResultCache {
            cap: cap.max(1),
            map: HashMap::new(),
            order: VecDeque::new(),
            tick: 0,
        }
    }

    fn get(&mut self, key: &QueryKey) -> Option<QueryAnswer> {
        self.tick += 1;
        let tick = self.tick;
        let entry = self.map.get_mut(key)?;
        entry.1 = tick;
        let ans = entry.0.clone();
        self.order.push_back((key.clone(), tick));
        self.compact();
        Some(ans)
    }

    fn insert(&mut self, key: QueryKey, ans: QueryAnswer) {
        self.tick += 1;
        self.order.push_back((key.clone(), self.tick));
        self.map.insert(key, (ans, self.tick));
        while self.map.len() > self.cap {
            let Some((key, tick)) = self.order.pop_front() else {
                break;
            };
            if self.map.get(&key).is_some_and(|(_, t)| *t == tick) {
                self.map.remove(&key);
            }
        }
    }

    /// Drops every entry (the dataset changed under the cache).
    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Bounds the stale-marker backlog that hit-heavy workloads build up.
    fn compact(&mut self) {
        if self.order.len() <= self.cap.saturating_mul(8).max(64) {
            return;
        }
        let mut live: Vec<(QueryKey, u64)> =
            self.map.iter().map(|(k, (_, t))| (k.clone(), *t)).collect();
        live.sort_unstable_by_key(|(_, t)| *t);
        self.order = live.into();
    }
}

/// The per-rank resident state: owned replicas, their envelopes, the
/// R-tree over them, and the global decomposition. Split out from
/// [`QueryEngine`] so `serve` can walk it from inside exchange sinks
/// while the cache (a sibling field) stays independently borrowable.
struct ResidentIndex {
    sd: Box<dyn SpatialDecomposition>,
    owned: Vec<(u32, Feature)>,
    envelopes: Vec<Rect>,
    rtree: RTree<usize>,
    /// Whether `owned[i]` is the replica in its feature's reference cell
    /// — the one copy that represents the feature in kNN scans.
    reference: Vec<bool>,
    /// One representative cell per rank (`None` for ranks owning no
    /// cells), used to route kNN queries to every data-holding rank.
    rank_cells: Vec<Option<u32>>,
}

impl ResidentIndex {
    /// Indexes an owned replica set under its decomposition (charged as
    /// [`Work::RtreeInserts`]). Local — the communicator only charges.
    fn build(
        comm: &mut Comm,
        sd: Box<dyn SpatialDecomposition>,
        owned: Vec<(u32, Feature)>,
    ) -> Self {
        let mut index = ResidentIndex {
            sd,
            owned,
            envelopes: Vec::new(),
            rtree: RTree::bulk_load(Vec::new()),
            reference: Vec::new(),
            rank_cells: Vec::new(),
        };
        index.reindex(comm);
        index
    }

    /// Recomputes every derived structure — envelopes, R-tree,
    /// reference-replica flags, per-rank routing cells — from the
    /// current `sd` + `owned`. Called at construction and again after
    /// updates or a migration mutate the replica set.
    fn reindex(&mut self, comm: &mut Comm) {
        self.envelopes = self
            .owned
            .iter()
            .map(|(_, f)| f.geometry.envelope())
            .collect();
        comm.charge(Work::RtreeInserts {
            n: self.owned.len() as u64,
        });
        self.rtree = RTree::bulk_load(
            self.envelopes
                .iter()
                .enumerate()
                .map(|(i, r)| (*r, i))
                .collect(),
        );
        self.reference = self
            .owned
            .iter()
            .zip(&self.envelopes)
            .map(|((cell, _), mbr)| match self.sd.reference_cell(mbr) {
                Some(c) => c == *cell,
                // Degenerate (out-of-bounds reference corner): claim in
                // the lowest overlapping cell — deterministic everywhere.
                None => self.sd.cells_for_rect_vec(mbr).first() == Some(cell),
            })
            .collect();
        self.rank_cells = vec![None; self.sd.num_ranks()];
        for cell in 0..self.sd.num_cells() {
            let r = self.sd.cell_to_rank(cell);
            if self.rank_cells[r].is_none() {
                self.rank_cells[r] = Some(cell);
            }
        }
    }

    /// Filter + refine for one rectangle over the local replicas,
    /// returning the claimed matches' userdata **sorted**. Identical
    /// claiming rule to `range_query`: cell overlap, MBR overlap,
    /// reference-corner dedup, exact predicate.
    fn rect_matches(&self, comm: &mut Comm, query: &Rect) -> Vec<String> {
        let mut hits: Vec<usize> = Vec::new();
        self.rtree.query_with(query, &mut |i| hits.push(*i));
        comm.charge(Work::RtreeQueries {
            n: 1,
            results: hits.len() as u64,
        });
        let mut out = Vec::new();
        for i in hits {
            let (cell, f) = &self.owned[i];
            if !self.sd.cell_rect(*cell).intersects(query) {
                continue;
            }
            let mbr = &self.envelopes[i];
            comm.charge(Work::MbrTests { n: 1 });
            if !mvio_core::framework::claims_reference(&*self.sd, *cell, mbr, query) {
                continue;
            }
            comm.charge(Work::RefinePair {
                verts_a: f.geometry.num_points() as u64,
                verts_b: 4,
            });
            if algo::rect_intersects_geometry(query, &f.geometry) {
                out.push(f.userdata.clone());
            }
        }
        out.sort_unstable();
        out
    }

    /// Local top-`k` by `(distance, userdata)` over the reference
    /// replicas (each feature counted exactly once globally).
    fn knn_local(&self, comm: &mut Comm, at: &Point, k: usize) -> Vec<(f64, String)> {
        let mut verts = 0u64;
        let mut cands = 0u64;
        let mut best: Vec<(f64, &str)> = Vec::new();
        for (i, (_, f)) in self.owned.iter().enumerate() {
            if !self.reference[i] {
                continue;
            }
            cands += 1;
            verts += f.geometry.num_points() as u64;
            best.push((
                algo::point_geometry_distance(at, &f.geometry),
                f.userdata.as_str(),
            ));
        }
        comm.charge(Work::MbrTests { n: cands });
        comm.charge(Work::RefinePair {
            verts_a: verts,
            verts_b: 1,
        });
        best.sort_unstable_by(|x, y| x.0.total_cmp(&y.0).then_with(|| x.1.cmp(y.1)));
        best.truncate(k);
        best.into_iter()
            .map(|(d, ud)| (d, ud.to_string()))
            .collect()
    }

    /// Answers one query record received off the wire, serializing each
    /// result as a record tagged with the issuer's query index. kNN
    /// queries ride as a `Point` with `k=<n>` userdata; range and point
    /// queries as the diagonal of their rect (whose envelope recovers it
    /// exactly). Result records carry the distance in the point's `x`.
    fn serve_one(
        &self,
        comm: &mut Comm,
        qid: u32,
        qf: &Feature,
        scratch: &mut Vec<u8>,
        out: &mut Vec<u8>,
        produced: &mut u64,
    ) -> Result<()> {
        if let Some(kstr) = qf.userdata.strip_prefix("k=") {
            let k: usize = kstr.parse().map_err(|_| {
                CoreError::Partition(format!(
                    "serve protocol: malformed knn payload {:?}",
                    qf.userdata
                ))
            })?;
            let at = match &qf.geometry {
                Geometry::Point(p) => *p,
                g => {
                    return Err(CoreError::Partition(format!(
                        "serve protocol: knn query carries a {:?} geometry",
                        g.geometry_type()
                    )))
                }
            };
            for (distance, userdata) in self.knn_local(comm, &at, k) {
                let rec =
                    Feature::with_userdata(Geometry::Point(Point::new(distance, 0.0)), userdata);
                serialize_record(qid, &rec, scratch, out)?;
                *produced += 1;
            }
        } else {
            let rect = qf.geometry.envelope();
            for userdata in self.rect_matches(comm, &rect) {
                let rec = Feature::with_userdata(Geometry::Point(Point::new(0.0, 0.0)), userdata);
                serialize_record(qid, &rec, scratch, out)?;
                *produced += 1;
            }
        }
        Ok(())
    }

    /// The zero-copy twin of [`ResidentIndex::serve_one`]: answers one
    /// query frame straight off the received wire buffer — the query
    /// geometry is decoded as a borrowed view, never materialized.
    /// Answers, result records and protocol errors are bit-identical to
    /// the owned variant.
    fn serve_one_frame(
        &self,
        comm: &mut Comm,
        fr: &RecordFrame<'_>,
        scratch: &mut Vec<u8>,
        out: &mut Vec<u8>,
        produced: &mut u64,
    ) -> Result<()> {
        let qid = fr.cell;
        // audit: the exchange validated every frame before the sink ran.
        let (g, _) = mvio_geom::wkb::decode_ref(fr.wkb).expect("validated frame");
        if let Some(kstr) = fr.userdata.strip_prefix("k=") {
            let k: usize = kstr.parse().map_err(|_| {
                CoreError::Partition(format!(
                    "serve protocol: malformed knn payload {:?}",
                    fr.userdata
                ))
            })?;
            let at = match &g {
                mvio_geom::wkb::GeomRef::Point(p) => p.point(),
                g => {
                    return Err(CoreError::Partition(format!(
                        "serve protocol: knn query carries a {:?} geometry",
                        g.geometry_type()
                    )))
                }
            };
            for (distance, userdata) in self.knn_local(comm, &at, k) {
                let rec =
                    Feature::with_userdata(Geometry::Point(Point::new(distance, 0.0)), userdata);
                serialize_record(qid, &rec, scratch, out)?;
                *produced += 1;
            }
        } else {
            let rect = g.envelope();
            for userdata in self.rect_matches(comm, &rect) {
                let rec = Feature::with_userdata(Geometry::Point(Point::new(0.0, 0.0)), userdata);
                serialize_record(qid, &rec, scratch, out)?;
                *produced += 1;
            }
        }
        Ok(())
    }
}

/// Encodes a query rect as the 2-point diagonal linestring whose
/// envelope recovers it exactly (WKB coordinates round-trip `f64`s
/// bit-for-bit).
fn wire_rect(r: &Rect) -> Feature {
    let diagonal = LineString::new(vec![
        Point::new(r.min_x, r.min_y),
        Point::new(r.max_x, r.max_y),
    ])
    // audit: a validated rectangle's corners always form a >= 2-point linestring.
    .expect("validated rect corners form a linestring");
    Feature::with_userdata(Geometry::LineString(diagonal), String::new())
}

/// A resident distributed query engine (see the [module docs](self)).
///
/// Collective lifecycle: every rank constructs it together (the
/// constructors run collective exchanges/reads) and every rank calls
/// [`QueryEngine::serve`] together, each with its own — possibly empty,
/// possibly different-sized — query batch.
pub struct QueryEngine {
    index: ResidentIndex,
    chunk: ExchangeChunk,
    cache: Option<ResultCache>,
    /// [`EngineOptions::zerocopy`] resolved once at construction, so a
    /// resident engine never flips read paths between serve calls.
    zerocopy: bool,
    /// The online-rebalance driver (`None` when the policy resolves to
    /// off); its drift tracker absorbs every applied update.
    rebalancer: Option<Rebalancer>,
}

impl QueryEngine {
    /// Builds the engine from an ingest run's output, indexing the owned
    /// replicas (charged as [`Work::RtreeInserts`]).
    /// Collective: every rank must call it.
    pub fn from_ingest(comm: &mut Comm, out: IngestOutput, opts: &EngineOptions) -> Self {
        Self::from_parts(comm, out.decomp, out.owned, opts)
    }

    /// Builds the engine from an already-partitioned `(cell, feature)`
    /// set and its decomposition — the seam `range_query` and
    /// `batch_query` drive after their own read/exchange phases.
    /// Collective: every rank must call it.
    pub fn from_parts(
        comm: &mut Comm,
        sd: Box<dyn SpatialDecomposition>,
        owned: Vec<(u32, Feature)>,
        opts: &EngineOptions,
    ) -> Self {
        let index = ResidentIndex::build(comm, sd, owned);
        let rebalancer = Rebalancer::from_policy(opts.rebalance, &*index.sd, &index.owned);
        QueryEngine {
            index,
            chunk: opts.chunk,
            cache: opts.cache.resolve().map(ResultCache::new),
            zerocopy: opts.zerocopy.resolve(),
            rebalancer,
        }
    }

    /// Builds the engine from a PR 5 binary snapshot: header read,
    /// decomposition rebuild under `policy`, collective
    /// [`snapshot::read_partitioned`]. The adaptive policy is rejected
    /// with [`CoreError::InvalidOptions`] — a snapshot does not carry
    /// the feature histogram it needs (same contract as snapshot joins).
    pub fn from_snapshot(
        comm: &mut Comm,
        fs: &Arc<SimFs>,
        path: &str,
        policy: DecompPolicy,
        read: &SnapshotReadOptions,
        opts: &EngineOptions,
    ) -> Result<Self> {
        let meta = snapshot::read_meta_timed(comm, fs, path)?;
        let grid = UniformGrid::try_new(meta.bounds, meta.spec)?;
        let sd: Box<dyn SpatialDecomposition> = match policy {
            DecompPolicy::Uniform(map) => {
                Box::new(UniformDecomposition::new(grid, map, comm.size()))
            }
            DecompPolicy::Hilbert => Box::new(HilbertDecomposition::new(grid, comm.size())),
            DecompPolicy::Adaptive { .. } => {
                return Err(CoreError::InvalidOptions(
                    "adaptive bisection needs the feature histogram, which a snapshot \
                     does not carry; serve snapshots with the uniform or hilbert policy"
                        .into(),
                ))
            }
        };
        let (owned, _) = snapshot::read_partitioned(comm, fs, path, &*sd, read)?;
        Ok(Self::from_parts(comm, sd, owned, opts))
    }

    /// The resident decomposition (e.g. for generating in-bounds query
    /// workloads against `bounds()`).
    pub fn decomposition(&self) -> &dyn SpatialDecomposition {
        &*self.index.sd
    }

    /// Number of feature replicas resident on this rank.
    pub fn resident_replicas(&self) -> usize {
        self.index.owned.len()
    }

    /// Read-only view of this rank's resident `(cell, feature)` replicas
    /// — what a full re-shuffle would have to ship. The rebalance
    /// experiment serializes these to report migrated bytes as a
    /// fraction of the partition.
    pub fn resident(&self) -> &[(u32, Feature)] {
        &self.index.owned
    }

    /// Answers one rectangle against this rank's replicas only — no
    /// communication, no cache. The one-shot `range_query` wrapper uses
    /// this for its compute phase; the union of every rank's local
    /// matches is the global answer (duplicate-free by the
    /// reference-corner rule).
    /// Not collective — answers from this rank's replicas only; the
    /// communicator only charges the tree walk.
    pub fn local_range_matches(&self, comm: &mut Comm, query: &Rect) -> Result<Vec<String>> {
        validate_query(&Query::Range(*query))?;
        Ok(self.index.rect_matches(comm, query))
    }

    /// The configured rebalance threshold (`None` = rebalancing off).
    pub fn rebalance_threshold(&self) -> Option<f64> {
        self.rebalancer.as_ref().map(Rebalancer::threshold)
    }

    /// Applies a batch of streaming [`Update`]s to the resident
    /// partition, reindexes the local replicas, and drops the result
    /// cache (cached answers may name deleted features or miss inserted
    /// ones; see [`rebalance::apply_updates`] for the routing protocol
    /// and the drift-histogram bookkeeping).
    /// Collective — every rank must call it together, each with its own
    /// (possibly empty) batch. Invalid updates anywhere in the world
    /// reject the whole call symmetrically with
    /// [`CoreError::InvalidOptions`] before anything ships, leaving the
    /// engine untouched and usable for the next batch.
    pub fn apply_updates(&mut self, comm: &mut Comm, updates: &[Update]) -> Result<UpdateStats> {
        let result = rebalance::apply_updates(
            comm,
            &*self.index.sd,
            &mut self.index.owned,
            updates,
            self.chunk,
            self.rebalancer.as_mut().map(Rebalancer::tracker_mut),
        );
        // Reindex and invalidate even on the deferred-error path: the
        // exchange applies whatever arrived before winding down, and a
        // remote rank's updates can stale this rank's cached answers
        // without shipping this rank a single record.
        self.index.reindex(comm);
        if let Some(cache) = self.cache.as_mut() {
            cache.clear();
        }
        result
    }

    /// Checks the drifted load balance and — when the configured
    /// threshold has tripped — re-decomposes over the same cell tiling
    /// and migrates only the cells whose owner changed (see
    /// [`Rebalancer::maybe_rebalance`]). A no-op all-zero report comes
    /// back when rebalancing is off. The result cache survives: a
    /// migration moves replicas between ranks without changing the
    /// dataset, so cached answers stay exact.
    /// Collective — every rank must call it together (the construction
    /// contract requires the same policy on every rank, so all ranks
    /// take the same branch).
    pub fn maybe_rebalance(&mut self, comm: &mut Comm) -> Result<RebalanceReport> {
        let Some(reb) = self.rebalancer.as_mut() else {
            return Ok(RebalanceReport::default());
        };
        let report =
            reb.maybe_rebalance(comm, &mut self.index.sd, &mut self.index.owned, self.chunk)?;
        if report.rebalanced {
            self.index.reindex(comm);
        }
        Ok(report)
    }

    /// Serves one batch of queries; collective — every rank must call it
    /// (with its own batch; empty is fine).
    ///
    /// Answers come back aligned with `queries`, deterministic and
    /// duplicate-free (module docs). Invalid queries anywhere in the
    /// world reject the whole call symmetrically with
    /// [`CoreError::InvalidOptions`] before any shipping; the engine
    /// remains usable for the next batch.
    pub fn serve(&mut self, comm: &mut Comm, queries: &[Query]) -> Result<ServeReport> {
        let p = comm.size();

        // 1. Validate locally, agree globally. The u32 wire limit on
        // query indices folds into the same symmetric rejection.
        let mut local_err = queries.iter().map(validate_query).find_map(Result::err);
        if local_err.is_none() && queries.len() > u32::MAX as usize {
            local_err = Some(CoreError::InvalidOptions(format!(
                "serve batch of {} queries exceeds the u32 wire-format index space",
                queries.len()
            )));
        }
        let bad_ranks = comm.labeled("serve.status", |c| {
            c.allreduce_u64(u64::from(local_err.is_some()), |a, b| a + b)
        });
        if bad_ranks > 0 {
            return Err(local_err.unwrap_or_else(|| {
                CoreError::InvalidOptions(format!(
                    "query batch aborted: {bad_ranks} rank(s) submitted invalid queries"
                ))
            }));
        }

        let mut stats = ServeStats {
            queries: queries.len() as u64,
            ..Default::default()
        };

        // 2. Cache lookups.
        let mut answers: Vec<Option<QueryAnswer>> = vec![None; queries.len()];
        let mut routed: Vec<usize> = Vec::new();
        for (qi, q) in queries.iter().enumerate() {
            if let Some(cache) = self.cache.as_mut() {
                if let Some(ans) = cache.get(&query_key(q)) {
                    answers[qi] = Some(ans);
                    stats.answered_from_cache += 1;
                    continue;
                }
            }
            routed.push(qi);
        }
        stats.routed = routed.len() as u64;

        // 3. Serialize each routed query once per destination rank.
        let mut qbatch = SerializedBatch::empty(p);
        let mut scratch = Vec::new();
        let mut cells: Vec<u32> = Vec::new();
        let mut dests: Vec<usize> = Vec::new();
        for &qi in &routed {
            let q = &queries[qi];
            dests.clear();
            let feat = match q {
                Query::Range(r) => {
                    self.index.sd.cells_for_rect(r, &mut cells);
                    dests.extend(cells.iter().map(|&c| self.index.sd.cell_to_rank(c)));
                    wire_rect(r)
                }
                Query::Point(pt) => {
                    self.index.sd.cells_for_rect(&pt.envelope(), &mut cells);
                    dests.extend(cells.iter().map(|&c| self.index.sd.cell_to_rank(c)));
                    wire_rect(&pt.envelope())
                }
                Query::Knn { at, k } => {
                    dests.extend(
                        self.index
                            .rank_cells
                            .iter()
                            .enumerate()
                            .filter_map(|(r, c)| c.map(|_| r)),
                    );
                    Feature::with_userdata(Geometry::Point(*at), format!("k={k}"))
                }
            };
            dests.sort_unstable();
            dests.dedup();
            for &d in &dests {
                // audit: qi indexes the caller's query slice, far below u32::MAX.
                serialize_record(qi as u32, &feat, &mut scratch, &mut qbatch.bufs[d])?;
                qbatch.records[d] += 1;
            }
        }
        stats.shipped_records = qbatch.records.iter().sum();
        comm.charge(Work::SerializeGeoms {
            n: stats.shipped_records,
            bytes: qbatch.bufs.iter().map(|b| b.len() as u64).sum(),
        });

        // 4. Ship queries; answer each received round in the sink while
        // later rounds fly. Per-rank failures wind down inside the plan
        // (empty rounds), and this rank still runs the result trip so
        // the collectives stay matched world-wide.
        let plan = ExchangePlan::new(comm, &ExchangeOptions::with_chunk(self.chunk));
        let mut rbatch = SerializedBatch::empty(p);
        let mut rscratch = Vec::new();
        let index = &self.index;
        let zerocopy = self.zerocopy;
        let mut deferred: Option<CoreError> = None;
        match comm.labeled("serve.queries", |c| {
            if zerocopy {
                plan.run_batch_rounds_frames(c, qbatch, &mut |comm, _round, bufs| {
                    for (src, buf) in bufs.iter().enumerate() {
                        let before = rbatch.bufs[src].len() as u64;
                        let mut produced = 0u64;
                        for fr in record_frames(buf) {
                            index.serve_one_frame(
                                comm,
                                &fr,
                                &mut rscratch,
                                &mut rbatch.bufs[src],
                                &mut produced,
                            )?;
                        }
                        rbatch.records[src] += produced;
                        comm.charge(Work::SerializeGeoms {
                            n: produced,
                            bytes: rbatch.bufs[src].len() as u64 - before,
                        });
                    }
                    Ok(())
                })
            } else {
                plan.run_batch_rounds_ctx(c, qbatch, &mut |comm, _round, per_src| {
                    for (src, records) in per_src.into_iter().enumerate() {
                        let before = rbatch.bufs[src].len() as u64;
                        let mut produced = 0u64;
                        for (qid, qf) in records {
                            index.serve_one(
                                comm,
                                qid,
                                &qf,
                                &mut rscratch,
                                &mut rbatch.bufs[src],
                                &mut produced,
                            )?;
                        }
                        rbatch.records[src] += produced;
                        comm.charge(Work::SerializeGeoms {
                            n: produced,
                            bytes: rbatch.bufs[src].len() as u64 - before,
                        });
                    }
                    Ok(())
                })
            }
        }) {
            Ok(s) => stats.query_exchange = s,
            Err(e) => {
                deferred = Some(e);
                rbatch = SerializedBatch::empty(p);
            }
        }

        // 5. Ship results back to the issuing ranks.
        let mut collected: Vec<Vec<(f64, String)>> = vec![Vec::new(); queries.len()];
        match comm.labeled("serve.results", |c| {
            if zerocopy {
                plan.run_batch_rounds_frames(c, rbatch, &mut |_, _round, bufs| {
                    for buf in &bufs {
                        for fr in record_frames(buf) {
                            let qid = fr.cell;
                            // audit: u32 → usize is lossless; get_mut rejects out-of-range ids.
                            let slot = collected.get_mut(qid as usize).ok_or_else(|| {
                                CoreError::Partition(format!(
                                    "serve protocol: result for unknown query index {qid}"
                                ))
                            })?;
                            let (g, _) =
                                mvio_geom::wkb::decode_ref(fr.wkb).expect("validated frame"); // audit: the exchange validated every frame.
                            let distance = match &g {
                                mvio_geom::wkb::GeomRef::Point(pt) => pt.x(),
                                _ => 0.0,
                            };
                            slot.push((distance, fr.userdata.to_string()));
                        }
                    }
                    Ok(())
                })
            } else {
                plan.run_batch_rounds_ctx(c, rbatch, &mut |_, _round, per_src| {
                    for records in per_src {
                        for (qid, f) in records {
                            // audit: u32 → usize is lossless; get_mut rejects out-of-range ids.
                            let slot = collected.get_mut(qid as usize).ok_or_else(|| {
                                CoreError::Partition(format!(
                                    "serve protocol: result for unknown query index {qid}"
                                ))
                            })?;
                            let distance = match &f.geometry {
                                Geometry::Point(pt) => pt.x,
                                _ => 0.0,
                            };
                            slot.push((distance, f.userdata));
                        }
                    }
                    Ok(())
                })
            }
        }) {
            Ok(s) => stats.result_exchange = s,
            Err(e) => {
                if deferred.is_none() {
                    deferred = Some(e);
                }
            }
        }
        if let Some(e) = deferred {
            return Err(e);
        }
        stats.result_records = stats.result_exchange.records_received;

        // 6. Merge, cache, align.
        for &qi in &routed {
            let ans = match &queries[qi] {
                Query::Range(_) | Query::Point(_) => {
                    let mut v: Vec<String> = collected[qi].drain(..).map(|(_, ud)| ud).collect();
                    v.sort_unstable();
                    QueryAnswer::Matches(v)
                }
                Query::Knn { k, .. } => {
                    let mut v = std::mem::take(&mut collected[qi]);
                    v.sort_unstable_by(|x, y| x.0.total_cmp(&y.0).then_with(|| x.1.cmp(&y.1)));
                    // audit: u32 → usize is lossless on every supported target.
                    v.truncate(*k as usize);
                    QueryAnswer::Neighbors(
                        v.into_iter()
                            .map(|(distance, userdata)| Neighbor { distance, userdata })
                            .collect(),
                    )
                }
            };
            if let Some(cache) = self.cache.as_mut() {
                cache.insert(query_key(&queries[qi]), ans.clone());
            }
            answers[qi] = Some(ans);
        }
        let answers = answers
            .into_iter()
            .map(|a| a.unwrap_or(QueryAnswer::Matches(Vec::new())))
            .collect();
        Ok(ServeReport { answers, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvio_core::decomp::{self, DecompConfig};
    use mvio_core::exchange::exchange_features;
    use mvio_core::grid::{CellMap, GridSpec};
    use mvio_core::partition::{read_features, ReadOptions};
    use mvio_core::reader::WktLineParser;
    use mvio_msim::{Topology, World, WorldConfig};
    use mvio_pfs::FsConfig;

    fn lattice_fs(n: u32) -> Arc<SimFs> {
        let fs = SimFs::new(FsConfig::gpfs_roger());
        let f = fs.create("pts.wkt", None).unwrap();
        let mut text = String::new();
        for y in 0..n {
            for x in 0..n {
                text.push_str(&format!("POINT ({x} {y})\tp{x}_{y}\n"));
            }
        }
        f.append(text.as_bytes());
        fs
    }

    fn build_engine(comm: &mut Comm, fs: &Arc<SimFs>, opts: &EngineOptions) -> QueryEngine {
        let features =
            read_features(comm, fs, "pts.wkt", &ReadOptions::default(), &WktLineParser).unwrap();
        let cfg = DecompConfig {
            grid: GridSpec::square(4),
            policy: DecompPolicy::Uniform(CellMap::RoundRobin),
        };
        let sd = decomp::build_global(comm, &[&features], &cfg);
        let rtree = decomp::build_cell_rtree(comm, &*sd);
        let pairs = decomp::project_to_cells(comm, &rtree, &features);
        let owned: Vec<(u32, Feature)> = pairs
            .into_iter()
            .map(|(cell, idx)| (cell, features[idx].clone()))
            .collect();
        let (mine, _) = exchange_features(comm, owned, &*sd, &ExchangeOptions::default()).unwrap();
        QueryEngine::from_parts(comm, sd, mine, opts)
    }

    #[test]
    fn serve_answers_mixed_batch_identically_on_every_rank() {
        let fs = lattice_fs(10);
        let out = World::run(WorldConfig::new(Topology::new(2, 2)), move |comm| {
            let mut eng = build_engine(comm, &fs, &EngineOptions::default());
            let batch = vec![
                Query::Range(Rect::new(2.5, 2.5, 5.5, 4.5)),
                Query::Point(Point::new(7.0, 7.0)),
                Query::Point(Point::new(7.5, 7.5)),
                Query::Knn {
                    at: Point::new(0.2, 0.0),
                    k: 2,
                },
            ];
            eng.serve(comm, &batch).unwrap().answers
        });
        for answers in &out {
            assert_eq!(
                answers[0],
                QueryAnswer::Matches(
                    ["p3_3", "p3_4", "p4_3", "p4_4", "p5_3", "p5_4"]
                        .map(String::from)
                        .to_vec()
                )
            );
            assert_eq!(answers[1], QueryAnswer::Matches(vec!["p7_7".into()]));
            assert_eq!(answers[2], QueryAnswer::Matches(vec![]));
            let QueryAnswer::Neighbors(nb) = &answers[3] else {
                panic!("knn answer expected");
            };
            let labels: Vec<&str> = nb.iter().map(|n| n.userdata.as_str()).collect();
            assert_eq!(labels, vec!["p0_0", "p1_0"]);
        }
    }

    #[test]
    fn knn_handles_ties_and_oversized_k() {
        let fs = lattice_fs(3); // 9 points
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let mut eng = build_engine(comm, &fs, &EngineOptions::default());
            let batch = vec![
                // Centre of the lattice: 4 neighbours at distance 1 tie;
                // ties break lexicographically on userdata.
                Query::Knn {
                    at: Point::new(1.0, 1.0),
                    k: 5,
                },
                // k beyond the dataset returns everything.
                Query::Knn {
                    at: Point::new(0.0, 0.0),
                    k: 100,
                },
            ];
            eng.serve(comm, &batch).unwrap().answers
        });
        for answers in &out {
            let QueryAnswer::Neighbors(nb) = &answers[0] else {
                panic!()
            };
            let labels: Vec<&str> = nb.iter().map(|n| n.userdata.as_str()).collect();
            assert_eq!(labels, vec!["p1_1", "p0_1", "p1_0", "p1_2", "p2_1"]);
            assert_eq!(answers[1].len(), 9);
        }
    }

    #[test]
    fn cache_hits_preserve_answers() {
        let fs = lattice_fs(10);
        let out = World::run(WorldConfig::new(Topology::single_node(4)), move |comm| {
            let mut eng = build_engine(
                comm,
                &fs,
                &EngineOptions {
                    cache: ServeCache::Entries(8),
                    ..Default::default()
                },
            );
            let batch = vec![
                Query::Range(Rect::new(2.5, 2.5, 5.5, 4.5)),
                Query::Knn {
                    at: Point::new(0.0, 0.0),
                    k: 3,
                },
            ];
            let first = eng.serve(comm, &batch).unwrap();
            let second = eng.serve(comm, &batch).unwrap();
            assert_eq!(first.stats.answered_from_cache, 0);
            assert_eq!(second.stats.answered_from_cache, 2);
            assert_eq!(second.stats.shipped_records, 0);
            (first.answers, second.answers)
        });
        for (first, second) in &out {
            assert_eq!(first, second);
        }
    }

    #[test]
    fn lru_evicts_oldest_entry() {
        let mut cache = ResultCache::new(2);
        let k = |i: u32| QueryKey {
            tag: 0,
            a: i as u64,
            b: 0,
            c: 0,
            d: 0,
            k: 0,
        };
        cache.insert(k(1), QueryAnswer::Matches(vec!["a".into()]));
        cache.insert(k(2), QueryAnswer::Matches(vec!["b".into()]));
        assert!(cache.get(&k(1)).is_some()); // touch 1: now 2 is LRU
        cache.insert(k(3), QueryAnswer::Matches(vec!["c".into()]));
        assert!(cache.get(&k(1)).is_some());
        assert!(cache.get(&k(2)).is_none());
        assert!(cache.get(&k(3)).is_some());
    }

    #[test]
    fn snapshot_engine_matches_ingest_engine() {
        let fs = lattice_fs(8);
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let mut eng = build_engine(comm, &fs, &EngineOptions::default());
            // Round-trip through a snapshot and serve the same query.
            let query = vec![Query::Range(Rect::new(1.5, 1.5, 4.5, 4.5))];
            let direct = eng.serve(comm, &query).unwrap().answers;
            let owned: Vec<(u32, Feature)> = eng.index.owned.clone();
            snapshot::write_partitioned(
                comm,
                &fs,
                "pts.snap",
                &owned,
                &*eng.index.sd,
                &Default::default(),
            )
            .unwrap();
            let mut snap_eng = QueryEngine::from_snapshot(
                comm,
                &fs,
                "pts.snap",
                DecompPolicy::Uniform(CellMap::RoundRobin),
                &SnapshotReadOptions::default(),
                &EngineOptions::default(),
            )
            .unwrap();
            let from_snap = snap_eng.serve(comm, &query).unwrap().answers;
            (direct, from_snap)
        });
        for (direct, from_snap) in &out {
            assert_eq!(direct, from_snap);
            assert!(!direct[0].is_empty());
        }
    }

    #[test]
    fn snapshot_engine_rejects_adaptive_policy() {
        let fs = lattice_fs(4);
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let mut eng = build_engine(comm, &fs, &EngineOptions::default());
            let owned: Vec<(u32, Feature)> = eng.index.owned.clone();
            snapshot::write_partitioned(
                comm,
                &fs,
                "pts.snap",
                &owned,
                &*eng.index.sd,
                &Default::default(),
            )
            .unwrap();
            // Keep `eng` alive so the borrowck story stays simple.
            let _ = eng.serve(comm, &[]).unwrap();
            QueryEngine::from_snapshot(
                comm,
                &fs,
                "pts.snap",
                DecompPolicy::adaptive(),
                &SnapshotReadOptions::default(),
                &EngineOptions::default(),
            )
            .err()
            .map(|e| matches!(e, CoreError::InvalidOptions(_)))
        });
        assert_eq!(out, vec![Some(true), Some(true)]);
    }

    #[test]
    fn updates_invalidate_cached_answers() {
        let fs = lattice_fs(6);
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let mut eng = build_engine(
                comm,
                &fs,
                &EngineOptions {
                    cache: ServeCache::Entries(8),
                    ..Default::default()
                },
            );
            let batch = vec![Query::Range(Rect::new(1.5, 1.5, 3.5, 3.5))];
            let first = eng.serve(comm, &batch).unwrap();
            // Rank 0 deletes p2_2 (inside the window) and inserts a new
            // point there; a stale cache would replay the old answer.
            let updates = if comm.rank() == 0 {
                vec![
                    Update::Delete(Feature::with_userdata(
                        Geometry::Point(Point::new(2.0, 2.0)),
                        "p2_2",
                    )),
                    Update::Insert(Feature::with_userdata(
                        Geometry::Point(Point::new(2.1, 2.1)),
                        "fresh",
                    )),
                ]
            } else {
                Vec::new()
            };
            eng.apply_updates(comm, &updates).unwrap();
            let second = eng.serve(comm, &batch).unwrap();
            assert_eq!(second.stats.answered_from_cache, 0, "cache must be cold");
            (first.answers, second.answers)
        });
        for (first, second) in &out {
            let QueryAnswer::Matches(before) = &first[0] else {
                panic!()
            };
            let QueryAnswer::Matches(after) = &second[0] else {
                panic!()
            };
            assert!(before.contains(&"p2_2".to_string()));
            assert!(!after.contains(&"p2_2".to_string()));
            assert!(after.contains(&"fresh".to_string()));
        }
    }

    #[test]
    fn rebalance_triggers_under_drift_and_preserves_answers() {
        let fs = lattice_fs(8);
        let out = World::run(WorldConfig::new(Topology::single_node(4)), move |comm| {
            let mut eng = build_engine(
                comm,
                &fs,
                &EngineOptions {
                    rebalance: RebalancePolicy::Threshold(1.5),
                    ..Default::default()
                },
            );
            assert_eq!(eng.rebalance_threshold(), Some(1.5));
            // Pour a hotspot into the bottom-left quarter of the world:
            // rank 0 submits all of it, the batch lands spread by cell.
            let updates: Vec<Update> = if comm.rank() == 0 {
                (0..96)
                    .map(|i| {
                        let x = 0.05 + (i % 10) as f64 * 0.33;
                        let y = 0.05 + ((i / 10) % 10) as f64 * 0.33;
                        Update::Insert(Feature::with_userdata(
                            Geometry::Point(Point::new(x, y)),
                            format!("h{i:02}"),
                        ))
                    })
                    .collect()
            } else {
                Vec::new()
            };
            eng.apply_updates(comm, &updates).unwrap();
            let batch = vec![
                Query::Range(Rect::new(0.0, 0.0, 3.0, 3.0)),
                Query::Knn {
                    at: Point::new(1.0, 1.0),
                    k: 7,
                },
            ];
            let before = eng.serve(comm, &batch).unwrap().answers;
            let report = eng.maybe_rebalance(comm).unwrap();
            assert!(report.rebalanced, "drift must trip the 1.5 threshold");
            assert!(report.imbalance_after < report.imbalance_before);
            let after = eng.serve(comm, &batch).unwrap().answers;
            assert_eq!(before, after, "a migration must not change answers");
            // A second check right away is a no-op: nothing drifted.
            let again = eng.maybe_rebalance(comm).unwrap();
            assert!(!again.rebalanced);
            (report.imbalance_before, report.imbalance_after)
        });
        for (before, after) in &out {
            assert!(before > &1.5, "hotspot should degrade balance: {before}");
            assert!(after < before);
        }
    }

    #[test]
    fn rebalance_off_is_a_noop() {
        let fs = lattice_fs(4);
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let mut eng = build_engine(comm, &fs, &EngineOptions::default());
            assert_eq!(eng.rebalance_threshold(), None);
            let report = eng.maybe_rebalance(comm).unwrap();
            (report.rebalanced, report.migration.shipped_bytes)
        });
        assert_eq!(out, vec![(false, 0), (false, 0)]);
    }

    #[test]
    fn validate_rejects_malformed_queries() {
        assert!(validate_query(&Query::Range(Rect::new(0.0, 0.0, 1.0, 1.0))).is_ok());
        assert!(validate_query(&Query::Range(Rect::new(f64::NAN, 0.0, 1.0, 1.0))).is_err());
        assert!(validate_query(&Query::Range(Rect::new(2.0, 0.0, 1.0, 1.0))).is_err());
        assert!(validate_query(&Query::Point(Point::new(f64::INFINITY, 0.0))).is_err());
        assert!(validate_query(&Query::Knn {
            at: Point::new(0.0, 0.0),
            k: 0
        })
        .is_err());
        assert!(validate_query(&Query::Knn {
            at: Point::new(0.0, 0.0),
            k: 1
        })
        .is_ok());
    }
}
