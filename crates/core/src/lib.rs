//! # mvio-core — MPI-Vector-IO
//!
//! The paper's primary contribution: a parallel I/O and partitioning
//! library for geospatial *vector* data (WKT text and fixed-record binary)
//! layered on MPI-IO, "making MPI aware of spatial data".
//!
//! ## The pipeline (paper Figure 7)
//!
//! 1. **File partitioning** ([`partition`]) — a single huge text file of
//!    variable-length geometries is split among ranks without ever
//!    cutting a geometry in half. Two strategies, benchmarked against
//!    each other in Figure 10:
//!    * *message-based dynamic partitioning* (Algorithm 1): fixed
//!      non-overlapping blocks + an even/odd ring exchange of the
//!      incomplete tail fragments;
//!    * *overlap/halo reads*: each rank redundantly reads an extra
//!      `max_geometry_bytes` past its block and resolves ownership
//!      locally.
//! 2. **Parsing** ([`reader`]) — a pluggable [`reader::GeometryParser`]
//!    turns each record into a [`Feature`] (geometry + userdata), exactly
//!    like the paper's `WKTParser` returning GEOS geometries.
//! 3. **Spatial-aware MPI** ([`sptypes`], [`spops`]) — `MPI_POINT`,
//!    `MPI_LINE`, `MPI_RECT` derived datatypes and `MPI_MIN`/`MPI_MAX`/
//!    `MPI_UNION` reduction operators (Table 2), usable in
//!    reduce/allreduce/scan.
//! 4. **Spatial decomposition** ([`decomp`], [`grid`]) — per-rank local
//!    MBRs are combined with a `MPI_UNION` allreduce into a global cell
//!    tiling; every geometry is mapped (via an R-tree over cell
//!    boundaries) to all overlapping cells, replicating spanners. The
//!    tiling and the cell→rank assignment are pluggable behind the
//!    [`decomp::SpatialDecomposition`] trait: the paper's uniform grid,
//!    Hilbert-order runs, or skew-aware adaptive bisection.
//! 5. **Exchange** ([`exchange`]) — the two-round `Alltoall` (sizes) +
//!    `Alltoallv` (payload) personalized exchange that produces the global
//!    spatial partitioning, with a sliding-window variant for
//!    memory-bounded runs.
//! 6. **Filter-and-refine** ([`framework`]) — cell-local computations over
//!    the exchanged data; `mvio-sjoin` plugs spatial join in here.
//!
//! Non-contiguous file views for fixed-size and variable-length records
//! (Level-3 access, Figures 15–16) live in [`views`].

pub mod decomp;
pub mod exchange;
pub mod framework;
pub mod grid;
pub mod partition;
pub mod pipeline;
pub mod reader;
pub mod rebalance;
pub mod snapshot;
pub mod spops;
pub mod sptypes;
pub mod views;

pub use decomp::{
    AdaptiveBisection, DecompConfig, DecompPolicy, HilbertDecomposition, SpatialDecomposition,
    UniformDecomposition,
};
pub use exchange::{
    ExchangeChunk, ExchangeOptions, ExchangePlan, ExchangeRound, ExchangeStats, FrameStore,
    RecordFrame, SerializedBatch, ZeroCopy,
};
pub use framework::{FilterRefine, RefineTask};
pub use grid::{CellMap, GridSpec, UniformGrid};
pub use partition::{BoundaryStrategy, ReadOptions};
pub use pipeline::{IngestOutput, PipelineOptions, PipelineStats};
pub use reader::{CsvPointParser, GeometryParser, WktLineParser};
pub use rebalance::{
    apply_updates, migrate_cells, DriftTracker, MigrationStats, RebalancePolicy, RebalanceReport,
    Rebalancer, Update, UpdateStats,
};
pub use snapshot::{
    read_partitioned, read_partitioned_frames, write_partitioned, SnapshotMeta,
    SnapshotReadOptions, SnapshotReadReport, SnapshotWriteOptions, SnapshotWriteReport,
};

use mvio_geom::Geometry;

/// A geometry plus its associated non-spatial attributes — the analogue of
/// a GEOS geometry with the paper's `userdata` field.
#[derive(Debug, Clone, PartialEq)]
pub struct Feature {
    /// The shape.
    pub geometry: Geometry,
    /// Attribute payload carried alongside (tab-separated remainder of the
    /// input record; empty if none).
    pub userdata: String,
}

impl Feature {
    /// Wraps a bare geometry.
    pub fn new(geometry: Geometry) -> Self {
        Feature {
            geometry,
            userdata: String::new(),
        }
    }

    /// Wraps a geometry with attributes.
    pub fn with_userdata(geometry: Geometry, userdata: impl Into<String>) -> Self {
        Feature {
            geometry,
            userdata: userdata.into(),
        }
    }
}

/// Errors surfaced by the library.
#[derive(Debug)]
pub enum CoreError {
    /// Runtime / MPI-IO failure.
    Msim(mvio_msim::MsimError),
    /// Filesystem failure.
    Pfs(mvio_pfs::PfsError),
    /// Geometry parse failure, with the offending record for diagnosis.
    Parse {
        record: String,
        source: mvio_geom::GeomError,
    },
    /// File partitioning could not make progress (e.g. a geometry larger
    /// than the block size and the halo).
    Partition(String),
    /// Grid construction rejected the requested decomposition (empty
    /// bounds, zero cells, or a cell count overflowing the `u32` id space).
    Grid(String),
    /// Caller-supplied options failed validation before any I/O started
    /// (e.g. a zero block size or zero maximum geometry size, which would
    /// otherwise divide by zero or silently read empty halos).
    InvalidOptions(String),
    /// A pre-serialized exchange batch did not match the communicator: a
    /// [`SerializedBatch`] must carry exactly one buffer and one record
    /// count per destination rank. Caught before any collective is
    /// posted, so a malformed producer cannot truncate payloads or
    /// deadlock the exchange.
    BatchShape {
        /// World size of the communicator the batch was submitted to.
        comm_size: usize,
        /// `bufs.len()` of the offending batch.
        bufs: usize,
        /// `records.len()` of the offending batch.
        records: usize,
    },
    /// A binary snapshot file was rejected: bad magic, unsupported
    /// version, a truncated or self-inconsistent header/section table, or
    /// a payload that disagrees with the decomposition it is being loaded
    /// under. See [`snapshot`] for the format.
    Snapshot(String),
    /// A serialized exchange record frame was corrupt: truncated,
    /// carrying a length field that does not fit the buffer, or a cell
    /// word whose value exceeds the `u32` cell-id space. Decoding uses
    /// checked conversions throughout, so corruption surfaces here
    /// instead of as a silently truncated cast.
    Frame(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Msim(e) => write!(f, "runtime: {e}"),
            CoreError::Pfs(e) => write!(f, "pfs: {e}"),
            CoreError::Parse { record, source } => {
                let head: String = record.chars().take(60).collect();
                write!(f, "parse error on record {head:?}…: {source}")
            }
            CoreError::Partition(m) => write!(f, "partitioning: {m}"),
            CoreError::Grid(m) => write!(f, "grid: {m}"),
            CoreError::InvalidOptions(m) => write!(f, "invalid options: {m}"),
            CoreError::BatchShape {
                comm_size,
                bufs,
                records,
            } => write!(
                f,
                "serialized batch shaped for the wrong world: {bufs} buffers / \
                 {records} record counts on a {comm_size}-rank communicator"
            ),
            CoreError::Snapshot(m) => write!(f, "snapshot: {m}"),
            CoreError::Frame(m) => write!(f, "corrupt wire frame: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<mvio_msim::MsimError> for CoreError {
    fn from(e: mvio_msim::MsimError) -> Self {
        CoreError::Msim(e)
    }
}

impl From<mvio_pfs::PfsError> for CoreError {
    fn from(e: mvio_pfs::PfsError) -> Self {
        CoreError::Pfs(e)
    }
}

/// Result alias for library operations.
pub type Result<T> = std::result::Result<T, CoreError>;
