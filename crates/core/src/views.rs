//! Non-contiguous file views for spatial data (paper §4.1, Figures 4, 15,
//! 16): Level-3 access through derived datatypes.
//!
//! Two flavours:
//! * **Fixed-size records** (points, segments, MBRs): a contiguous record
//!   type tiled round-robin across ranks — "cells are distributed among
//!   MPI processes in a round-robin fashion for load-balancing".
//! * **Variable-length geometries** (polygons/polylines): requires the
//!   preprocessing step the paper describes — "vertex count and
//!   displacement arrays … are populated as a preprocessing step. Using
//!   these auxiliary arrays, MPI_type_indexed derived data type is
//!   created".

use crate::sptypes::{decode_points, decode_rects, POINT_RECORD_BYTES, RECT_RECORD_BYTES};
use crate::Result;
use mvio_geom::{Point, Rect};
use mvio_msim::io::FileView;
use mvio_msim::{Comm, Datatype, MpiFile};

/// Builds the Level-3 view for blocks of `records_per_block` fixed-size
/// records of `record_bytes` each. Rank `r` of `p` reads block instances
/// `r, r+p, r+2p, …` (Figure 4's round-robin layout).
pub fn fixed_record_view(records_per_block: usize, record_bytes: usize) -> Result<FileView> {
    let record = Datatype::contiguous(record_bytes, Datatype::Byte);
    let block = Datatype::contiguous(records_per_block, record);
    Ok(FileView::new(0, block)?)
}

/// Builds an `MPI_type_indexed` view for variable-length geometries from
/// the preprocessed per-geometry byte lengths and file offsets. The
/// `assigned` list selects which geometries this rank reads (e.g. its
/// round-robin share).
pub fn indexed_geometry_view(
    lengths: &[u64],
    offsets: &[u64],
    assigned: &[usize],
) -> Result<FileView> {
    let blocklens: Vec<usize> = assigned.iter().map(|&i| lengths[i] as usize).collect();
    let displs: Vec<usize> = assigned.iter().map(|&i| offsets[i] as usize).collect();
    let ty = Datatype::indexed(blocklens, displs, Datatype::Byte);
    ty.validate()?;
    Ok(FileView::new(0, ty)?)
}

/// Reads this rank's round-robin share of a binary rect-record file via a
/// Level-3 collective read. `records_per_block` controls the granularity
/// (the block-size axis of Figure 15).
pub fn read_rects_level3(
    comm: &mut Comm,
    file: &mut MpiFile,
    total_records: u64,
    records_per_block: usize,
) -> Result<Vec<Rect>> {
    let p = comm.size() as u64;
    let rank = comm.rank() as u64;
    let blocks_total = total_records.div_ceil(records_per_block as u64);
    let my_blocks = (rank..blocks_total).step_by(p as usize).count() as u64;
    let my_records = count_my_records(
        total_records,
        records_per_block as u64,
        blocks_total,
        rank,
        p,
    );
    file.set_view(fixed_record_view(records_per_block, RECT_RECORD_BYTES)?);
    let mut buf = vec![0u8; (my_records * RECT_RECORD_BYTES as u64) as usize];
    let _ = my_blocks;
    let n = file.read_all(comm, rank, p, &mut buf)?;
    buf.truncate(n - n % RECT_RECORD_BYTES);
    Ok(decode_rects(&buf))
}

/// Point-record counterpart of [`read_rects_level3`].
/// Collective: every rank must call it (Level-3 collective I/O over a
/// shared file view).
pub fn read_points_level3(
    comm: &mut Comm,
    file: &mut MpiFile,
    total_records: u64,
    records_per_block: usize,
) -> Result<Vec<Point>> {
    let p = comm.size() as u64;
    let rank = comm.rank() as u64;
    let blocks_total = total_records.div_ceil(records_per_block as u64);
    let my_records = count_my_records(
        total_records,
        records_per_block as u64,
        blocks_total,
        rank,
        p,
    );
    file.set_view(fixed_record_view(records_per_block, POINT_RECORD_BYTES)?);
    let mut buf = vec![0u8; (my_records * POINT_RECORD_BYTES as u64) as usize];
    let n = file.read_all(comm, rank, p, &mut buf)?;
    buf.truncate(n - n % POINT_RECORD_BYTES);
    Ok(decode_points(&buf))
}

/// Reads this rank's assigned *WKB* geometries through an indexed
/// Level-3 view — the unformatted-binary counterpart of the WKT pipeline
/// (the paper supports "both formatted as well as unformatted data").
/// `lengths`/`offsets` come from the preprocessing step; `assigned`
/// selects this rank's records.
/// Collective: every rank must call it (Level-3 collective I/O over a
/// shared file view).
pub fn read_wkb_geometries_level3(
    comm: &mut Comm,
    file: &mut MpiFile,
    lengths: &[u64],
    offsets: &[u64],
    assigned: &[usize],
) -> Result<Vec<mvio_geom::Geometry>> {
    let view = indexed_geometry_view(lengths, offsets, assigned)?;
    let payload: usize = assigned.iter().map(|&i| lengths[i] as usize).sum();
    file.set_view(view);
    let mut buf = vec![0u8; payload];
    let n = file.read_all(comm, 0, 1, &mut buf)?;
    buf.truncate(n);
    mvio_geom::wkb::decode_all(&buf).map_err(|source| crate::CoreError::Parse {
        record: "<wkb stream>".into(),
        source,
    })
}

/// Records owned by `rank` under round-robin block distribution where the
/// final block may be short.
fn count_my_records(total: u64, per_block: u64, blocks_total: u64, rank: u64, p: u64) -> u64 {
    let mut n = 0;
    let mut b = rank;
    while b < blocks_total {
        let start = b * per_block;
        n += per_block.min(total - start);
        b += p;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sptypes::encode_rects;
    use mvio_msim::{Hints, Topology, World, WorldConfig};
    use mvio_pfs::{FsConfig, SimFs, StripeSpec};

    #[test]
    fn count_my_records_handles_short_final_block() {
        // 10 records, blocks of 4 -> blocks of sizes 4, 4, 2.
        assert_eq!(count_my_records(10, 4, 3, 0, 2), 4 + 2); // blocks 0, 2
        assert_eq!(count_my_records(10, 4, 3, 1, 2), 4); // block 1
    }

    #[test]
    fn fixed_view_fragments_are_record_aligned() {
        let v = fixed_record_view(8, RECT_RECORD_BYTES).unwrap();
        assert_eq!(v.filetype.size(), 8 * 32);
        // Rank 1 of 4 reads instance 1 at byte 8*32.
        let frags = v.fragments(1, 4, 8 * 32);
        assert_eq!(frags, vec![(8 * 32, 8 * 32_u64)]);
    }

    #[test]
    fn round_robin_rect_read_partitions_disjointly() {
        let total = 64u64;
        let rects: Vec<Rect> = (0..total)
            .map(|i| Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0))
            .collect();
        let fs = SimFs::new(FsConfig::lustre_comet());
        let f = fs
            .create("rects.bin", Some(StripeSpec::new(4, 1 << 20)))
            .unwrap();
        f.append(encode_rects(&rects));

        let out = World::run(WorldConfig::new(Topology::new(2, 2)), |comm| {
            let mut file = MpiFile::open(&fs, "rects.bin", Hints::default()).unwrap();
            read_rects_level3(comm, &mut file, total, 4).unwrap()
        });
        // Every record exactly once across ranks.
        let mut all: Vec<f64> = out.iter().flatten().map(|r| r.min_x).collect();
        all.sort_by(f64::total_cmp);
        let expect: Vec<f64> = (0..total).map(|i| i as f64).collect();
        assert_eq!(all, expect);
        // Rank 0 got blocks 0, 4, 8, 12 -> records 0..4, 16..20, ...
        assert_eq!(out[0][0].min_x, 0.0);
        assert_eq!(out[0][4].min_x, 16.0);
        // Declustering: each rank's records are spread, not contiguous
        // (Figure 5b's fine-grained declustered partitioning).
        let r0: Vec<f64> = out[0].iter().map(|r| r.min_x).collect();
        assert!(r0.windows(2).any(|w| w[1] - w[0] > 1.0));
    }

    #[test]
    fn wkb_stream_reads_round_robin_geometries() {
        use mvio_geom::{wkb, wkt};
        // A binary file of concatenated WKB geometries + offset index.
        let geoms: Vec<mvio_geom::Geometry> = (0..6)
            .map(|i| {
                let x = i as f64 * 10.0;
                wkt::parse(&format!(
                    "POLYGON (({x} 0, {} 0, {} 1, {x} 0))",
                    x + 1.0,
                    x + 1.0
                ))
                .unwrap()
            })
            .collect();
        let mut data = Vec::new();
        let mut lengths = Vec::new();
        let mut offsets = Vec::new();
        for g in &geoms {
            let bytes = wkb::encode(g);
            offsets.push(data.len() as u64);
            lengths.push(bytes.len() as u64);
            data.extend_from_slice(&bytes);
        }
        let fs = SimFs::new(FsConfig::lustre_comet());
        fs.create("geoms.wkb", None).unwrap().append(&data);

        let geoms2 = geoms.clone();
        let out = World::run(WorldConfig::new(Topology::single_node(2)), move |comm| {
            let assigned: Vec<usize> = (comm.rank()..6).step_by(2).collect();
            let mut file = MpiFile::open(&fs, "geoms.wkb", Hints::default()).unwrap();
            let got =
                read_wkb_geometries_level3(comm, &mut file, &lengths, &offsets, &assigned).unwrap();
            for (j, g) in got.iter().enumerate() {
                assert_eq!(*g, geoms2[assigned[j]], "geometry {j} round-trips");
            }
            got.len()
        });
        assert_eq!(out.iter().sum::<usize>(), 6);
    }

    #[test]
    fn indexed_view_reads_scattered_geometries() {
        // A "file" with 4 variable-length blobs at known offsets.
        let blobs: Vec<Vec<u8>> = (1..=4u8).map(|i| vec![i; i as usize * 3]).collect();
        let mut data = Vec::new();
        let mut offsets = Vec::new();
        let mut lengths = Vec::new();
        for b in &blobs {
            offsets.push(data.len() as u64);
            lengths.push(b.len() as u64);
            data.extend_from_slice(b);
        }
        let fs = SimFs::new(FsConfig::lustre_comet());
        let f = fs.create("blobs.bin", None).unwrap();
        f.append(&data);

        let out = World::run(WorldConfig::new(Topology::single_node(2)), |comm| {
            // Rank 0 takes blobs 0 and 2, rank 1 takes 1 and 3.
            let assigned: Vec<usize> = (comm.rank()..4).step_by(2).collect();
            let view = indexed_geometry_view(&lengths, &offsets, &assigned).unwrap();
            let payload: usize = assigned.iter().map(|&i| lengths[i] as usize).sum();
            let mut file = MpiFile::open(&fs, "blobs.bin", Hints::default()).unwrap();
            file.set_view(view);
            let mut buf = vec![0u8; payload];
            // Each rank's view already encodes its own blocks; read one
            // instance (skip 0, stride 1).
            let n = file.read_all(comm, 0, 1, &mut buf).unwrap();
            assert_eq!(n, payload);
            buf
        });
        assert_eq!(out[0], [vec![1u8; 3], vec![3u8; 9]].concat());
        assert_eq!(out[1], [vec![2u8; 6], vec![4u8; 12]].concat());
    }
}
