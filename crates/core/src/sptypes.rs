//! Spatial derived datatypes (paper Table 2): `MPI_POINT`, `MPI_LINE`,
//! `MPI_RECT`, and their wire encodings for binary record files.
//!
//! Fixed-length spatial types (points, segments, MBRs) are stored in
//! binary as plain structs so "MPI-IO functions then directly read the
//! data as MPI datatypes" (§4.1) — regular, fast access, and easy custom
//! file views. This module provides the datatype descriptions plus the
//! encode/decode between those records and the geometry types.

use mvio_geom::{Point, Rect};
use mvio_msim::Datatype;

/// Byte width of one `MPI_POINT` record (2 doubles).
pub const POINT_RECORD_BYTES: usize = 16;
/// Byte width of one `MPI_LINE` (segment) record (4 doubles).
pub const LINE_RECORD_BYTES: usize = 32;
/// Byte width of one `MPI_RECT` record (4 doubles).
pub const RECT_RECORD_BYTES: usize = 32;

/// `MPI_POINT`: two contiguous doubles.
pub fn mpi_point() -> Datatype {
    Datatype::mpi_point()
}

/// `MPI_LINE`: two contiguous points (one segment).
pub fn mpi_line() -> Datatype {
    Datatype::mpi_line()
}

/// `MPI_RECT`: four contiguous doubles (paper §4.2.1).
pub fn mpi_rect() -> Datatype {
    Datatype::mpi_rect()
}

/// `MPI_RECT` as an explicit `MPI_Type_struct` — the variant Figure 12
/// benchmarks.
pub fn mpi_rect_struct() -> Datatype {
    Datatype::mpi_rect_struct()
}

// ---- Compound spatial types (paper §4.2.1: "Additional compound types
// such as multi-point, multi-line, and fixed-size polygon are defined by
// nesting basic spatial types"). -----------------------------------------

/// `MPI_MULTI_POINT(n)`: `n` nested `MPI_POINT`s.
pub fn mpi_multi_point(n: usize) -> Datatype {
    Datatype::contiguous(n, mpi_point())
}

/// `MPI_MULTI_LINE(n)`: `n` nested `MPI_LINE` segments.
pub fn mpi_multi_line(n: usize) -> Datatype {
    Datatype::contiguous(n, mpi_line())
}

/// `MPI_FIXED_POLYGON(n)`: a closed ring of exactly `n` vertices (the
/// closing vertex stored explicitly, WKT-style), nested points.
pub fn mpi_fixed_polygon(n: usize) -> Datatype {
    Datatype::contiguous(n, mpi_point())
}

/// Encodes a fixed-size polygon's exterior ring into its record. The
/// ring must have exactly `n` stored vertices (including the closing
/// repeat); returns `None` on mismatch.
pub fn encode_fixed_polygon(poly: &mvio_geom::Polygon, n: usize, out: &mut Vec<u8>) -> Option<()> {
    let pts = poly.exterior().points();
    if pts.len() != n {
        return None;
    }
    for p in pts {
        encode_point(p, out);
    }
    Some(())
}

/// Decodes a fixed-size polygon record of `n` vertices.
pub fn decode_fixed_polygon(buf: &[u8], n: usize) -> mvio_geom::Result<mvio_geom::Polygon> {
    let pts: Vec<Point> = (0..n)
        .map(|i| decode_point(&buf[i * POINT_RECORD_BYTES..]))
        .collect();
    mvio_geom::Polygon::from_coords(pts, vec![])
}

/// Encodes a point into its little-endian record.
pub fn encode_point(p: &Point, out: &mut Vec<u8>) {
    out.extend_from_slice(&p.x.to_le_bytes());
    out.extend_from_slice(&p.y.to_le_bytes());
}

/// Decodes a point record.
pub fn decode_point(buf: &[u8]) -> Point {
    debug_assert!(buf.len() >= POINT_RECORD_BYTES);
    Point::new(f64_at(buf, 0), f64_at(buf, 8))
}

/// Encodes a segment `(a, b)` into its record.
pub fn encode_line(a: &Point, b: &Point, out: &mut Vec<u8>) {
    encode_point(a, out);
    encode_point(b, out);
}

/// Decodes a segment record.
pub fn decode_line(buf: &[u8]) -> (Point, Point) {
    debug_assert!(buf.len() >= LINE_RECORD_BYTES);
    (decode_point(buf), decode_point(&buf[16..]))
}

/// Encodes a rectangle into its record.
pub fn encode_rect(r: &Rect, out: &mut Vec<u8>) {
    for v in r.to_array() {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Decodes a rectangle record.
pub fn decode_rect(buf: &[u8]) -> Rect {
    debug_assert!(buf.len() >= RECT_RECORD_BYTES);
    Rect::from_array([
        f64_at(buf, 0),
        f64_at(buf, 8),
        f64_at(buf, 16),
        f64_at(buf, 24),
    ])
}

/// Decodes a whole buffer of back-to-back rect records.
pub fn decode_rects(buf: &[u8]) -> Vec<Rect> {
    buf.chunks_exact(RECT_RECORD_BYTES)
        .map(decode_rect)
        .collect()
}

/// Encodes a slice of rectangles into back-to-back records.
pub fn encode_rects(rects: &[Rect]) -> Vec<u8> {
    let mut out = Vec::with_capacity(rects.len() * RECT_RECORD_BYTES);
    for r in rects {
        encode_rect(r, &mut out);
    }
    out
}

/// Decodes a whole buffer of back-to-back point records.
pub fn decode_points(buf: &[u8]) -> Vec<Point> {
    buf.chunks_exact(POINT_RECORD_BYTES)
        .map(decode_point)
        .collect()
}

/// Encodes a slice of points into back-to-back records.
pub fn encode_points(points: &[Point]) -> Vec<u8> {
    let mut out = Vec::with_capacity(points.len() * POINT_RECORD_BYTES);
    for p in points {
        encode_point(p, &mut out);
    }
    out
}

#[inline]
fn f64_at(buf: &[u8], off: usize) -> f64 {
    // audit: the range is exactly 8 bytes by construction.
    f64::from_le_bytes(buf[off..off + 8].try_into().expect("8 bytes"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datatype_sizes_match_record_widths() {
        assert_eq!(mpi_point().size(), POINT_RECORD_BYTES);
        assert_eq!(mpi_line().size(), LINE_RECORD_BYTES);
        assert_eq!(mpi_rect().size(), RECT_RECORD_BYTES);
        assert_eq!(mpi_rect_struct().size(), RECT_RECORD_BYTES);
    }

    #[test]
    fn point_round_trip() {
        let p = Point::new(1.5, -2.25);
        let mut buf = Vec::new();
        encode_point(&p, &mut buf);
        assert_eq!(buf.len(), POINT_RECORD_BYTES);
        assert_eq!(decode_point(&buf), p);
    }

    #[test]
    fn line_round_trip() {
        let (a, b) = (Point::new(0.0, 1.0), Point::new(2.0, 3.0));
        let mut buf = Vec::new();
        encode_line(&a, &b, &mut buf);
        assert_eq!(decode_line(&buf), (a, b));
    }

    #[test]
    fn rect_round_trip() {
        let r = Rect::new(-1.0, -2.0, 3.0, 4.0);
        let mut buf = Vec::new();
        encode_rect(&r, &mut buf);
        assert_eq!(decode_rect(&buf), r);
    }

    #[test]
    fn compound_types_nest_basic_types() {
        assert_eq!(mpi_multi_point(5).size(), 5 * POINT_RECORD_BYTES);
        assert_eq!(mpi_multi_line(3).size(), 3 * LINE_RECORD_BYTES);
        assert_eq!(mpi_fixed_polygon(4).size(), 4 * POINT_RECORD_BYTES);
        assert!(mpi_multi_point(8).is_dense());
        assert_eq!(mpi_fixed_polygon(4).fragments(), vec![(0, 64)]);
    }

    #[test]
    fn fixed_polygon_round_trip() {
        let poly = mvio_geom::Polygon::from_coords(
            vec![
                Point::new(0.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(1.0, 2.0),
                Point::new(0.0, 0.0),
            ],
            vec![],
        )
        .unwrap();
        let mut buf = Vec::new();
        encode_fixed_polygon(&poly, 4, &mut buf).expect("4 stored vertices");
        assert_eq!(buf.len(), 4 * POINT_RECORD_BYTES);
        let back = decode_fixed_polygon(&buf, 4).unwrap();
        assert_eq!(back, poly);
        // Wrong arity is rejected, not mis-encoded.
        assert!(encode_fixed_polygon(&poly, 5, &mut Vec::new()).is_none());
    }

    #[test]
    fn bulk_round_trips() {
        let rects: Vec<Rect> = (0..10)
            .map(|i| Rect::new(i as f64, 0.0, i as f64 + 1.0, 1.0))
            .collect();
        assert_eq!(decode_rects(&encode_rects(&rects)), rects);
        let points: Vec<Point> = (0..10).map(|i| Point::new(i as f64, -(i as f64))).collect();
        assert_eq!(decode_points(&encode_points(&points)), points);
    }
}
