//! Cellular grid partitioning (paper §4, Figures 1–2): the global spatial
//! decomposition that gives the system its unit of work.
//!
//! After local parsing, each rank holds an arbitrary subset of geometries.
//! The grid phase:
//!
//! 1. computes the **global extent** by `MPI_UNION`-allreducing the local
//!    MBRs (the paper's marquee use of its new reduction operator);
//! 2. overlays a uniform `nx × ny` cell grid on that extent;
//! 3. maps every geometry to **all** cells its MBR overlaps ("if a
//!    geometry spans multiple cells, then it is simply replicated to
//!    these cells" — duplicate results are weeded out in refine);
//! 4. assigns cells to ranks with a [`CellMap`] (round-robin by default,
//!    the declustering heuristic of Shekhar et al. the paper cites).
//!
//! The cell lookup can run arithmetically (O(1) for a uniform grid) or
//! through an R-tree built over the cell boundaries — the paper's actual
//! mechanism ("an R-tree is first built by inserting the individual cell
//! boundaries"), kept here for fidelity and exercised by the benchmarks.
//!
//! This module is the uniform *building block*; the pluggable
//! decomposition layer lives in [`crate::decomp`], where
//! [`UniformGrid`] + [`CellMap`] form the first
//! [`crate::decomp::SpatialDecomposition`] implementor alongside the
//! Hilbert-mapped and adaptive-bisection policies.

use crate::spops::UnionRect;
use crate::Feature;
use mvio_geom::Rect;
use mvio_msim::Comm;

/// Requested grid resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridSpec {
    pub cells_x: u32,
    pub cells_y: u32,
}

impl GridSpec {
    /// A square grid with `cells_per_side²` cells.
    pub fn square(cells_per_side: u32) -> Self {
        GridSpec {
            cells_x: cells_per_side,
            cells_y: cells_per_side,
        }
    }

    /// Exact total cell count, computed in `u64` so huge specs (e.g.
    /// `100_000 × 100_000`) cannot overflow.
    pub fn num_cells_u64(&self) -> u64 {
        self.cells_x as u64 * self.cells_y as u64
    }

    /// Total cell count as the `u32` used for cell ids, or `None` when
    /// the product exceeds `u32::MAX` (such a grid is unusable: cell ids
    /// themselves are 32-bit).
    pub fn try_num_cells(&self) -> Option<u32> {
        u32::try_from(self.num_cells_u64()).ok()
    }

    /// Total cell count.
    ///
    /// # Panics
    /// Panics when `cells_x * cells_y` exceeds `u32::MAX` (previously this
    /// silently wrapped in release builds, corrupting every downstream
    /// cell-id computation). Use [`GridSpec::try_num_cells`] or
    /// [`UniformGrid::try_new`] to handle oversized specs as errors.
    pub fn num_cells(&self) -> u32 {
        self.try_num_cells().unwrap_or_else(|| {
            panic!(
                "grid of {} x {} cells exceeds u32::MAX cell ids",
                self.cells_x, self.cells_y
            )
        })
    }
}

/// A uniform grid over a bounding rectangle. Cell ids are row-major:
/// `id = row * cells_x + col`.
#[derive(Debug, Clone, PartialEq)]
pub struct UniformGrid {
    bounds: Rect,
    spec: GridSpec,
    cell_w: f64,
    cell_h: f64,
}

impl UniformGrid {
    /// Creates a grid over `bounds` (must be non-empty).
    ///
    /// # Panics
    /// Panics on empty bounds, a zero-cell spec, or a spec whose cell
    /// count overflows `u32` — see [`UniformGrid::try_new`] for the
    /// non-panicking variant.
    pub fn new(bounds: Rect, spec: GridSpec) -> Self {
        Self::try_new(bounds, spec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible grid construction: rejects empty bounds, zero-cell specs,
    /// and specs whose total cell count does not fit the `u32` cell-id
    /// space.
    pub fn try_new(bounds: Rect, spec: GridSpec) -> crate::Result<Self> {
        if bounds.is_empty() {
            return Err(crate::CoreError::Grid(
                "grid bounds must be non-empty".into(),
            ));
        }
        if spec.cells_x == 0 || spec.cells_y == 0 {
            return Err(crate::CoreError::Grid("grid must have cells".into()));
        }
        if spec.try_num_cells().is_none() {
            return Err(crate::CoreError::Grid(format!(
                "grid of {} x {} cells exceeds u32::MAX cell ids",
                spec.cells_x, spec.cells_y
            )));
        }
        Ok(UniformGrid {
            bounds,
            spec,
            cell_w: bounds.width() / spec.cells_x as f64,
            cell_h: bounds.height() / spec.cells_y as f64,
        })
    }

    /// Builds the **global** grid collectively: allreduce the union of
    /// every rank's local MBR (the paper's `MPI_UNION` use case), then
    /// overlay `spec`.
    pub fn build_global(comm: &mut Comm, local_features: &[Feature], spec: GridSpec) -> Self {
        let local_mbr = local_features
            .iter()
            .fold(Rect::EMPTY, |acc, f| acc.union(&f.geometry.envelope()));
        Self::build_global_from_mbr(comm, local_mbr, spec)
    }

    /// Collective grid construction from an already-computed local MBR
    /// (used when the extent spans several layers, as in spatial join).
    pub fn build_global_from_mbr(comm: &mut Comm, local_mbr: Rect, spec: GridSpec) -> Self {
        let global = comm.allreduce(local_mbr, 32, &UnionRect);
        // Degenerate global extents (no data anywhere, or all identical
        // points) get a unit square so the grid stays well-formed.
        let global = if global.is_empty() || global.area() == 0.0 {
            global.union(&Rect::new(0.0, 0.0, 1.0, 1.0))
        } else {
            global
        };
        UniformGrid::new(global, spec)
    }

    /// Grid bounds.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Grid resolution.
    pub fn spec(&self) -> GridSpec {
        self.spec
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> u32 {
        self.spec.num_cells()
    }

    /// The rectangle of cell `id`.
    pub fn cell_rect(&self, id: u32) -> Rect {
        debug_assert!(id < self.num_cells());
        let col = (id % self.spec.cells_x) as f64;
        let row = (id / self.spec.cells_x) as f64;
        Rect::new(
            self.bounds.min_x + col * self.cell_w,
            self.bounds.min_y + row * self.cell_h,
            self.bounds.min_x + (col + 1.0) * self.cell_w,
            self.bounds.min_y + (row + 1.0) * self.cell_h,
        )
    }

    /// Cells whose rectangles intersect `rect`, computed arithmetically.
    pub fn cells_overlapping(&self, rect: &Rect) -> Vec<u32> {
        let mut out = Vec::new();
        self.cells_overlapping_into(rect, &mut out);
        out
    }

    /// Streaming variant of [`UniformGrid::cells_overlapping`]: clears and
    /// fills a caller-owned buffer, so hot loops (the ingest pipeline maps
    /// millions of features) can reuse one allocation across features.
    /// Cell ids are appended in row-major ascending order.
    pub fn cells_overlapping_into(&self, rect: &Rect, out: &mut Vec<u32>) {
        out.clear();
        if rect.is_empty() || !rect.intersects(&self.bounds) {
            return;
        }
        let clamp = |v: f64, hi: u32| -> u32 { (v.max(0.0) as u32).min(hi - 1) };
        let c0 = clamp(
            (rect.min_x - self.bounds.min_x) / self.cell_w,
            self.spec.cells_x,
        );
        let c1 = clamp(
            (rect.max_x - self.bounds.min_x) / self.cell_w,
            self.spec.cells_x,
        );
        let r0 = clamp(
            (rect.min_y - self.bounds.min_y) / self.cell_h,
            self.spec.cells_y,
        );
        let r1 = clamp(
            (rect.max_y - self.bounds.min_y) / self.cell_h,
            self.spec.cells_y,
        );
        // Span product computed in u64: a rect covering most of a huge
        // grid would overflow the old u32 arithmetic.
        let span = (c1 - c0 + 1) as u64 * (r1 - r0 + 1) as u64;
        out.reserve(span as usize);
        for row in r0..=r1 {
            for col in c0..=c1 {
                out.push(row * self.spec.cells_x + col);
            }
        }
    }
}

/// Cell → rank assignment policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CellMap {
    /// `rank = cell % p`: the declustering round-robin the paper uses for
    /// load balancing.
    RoundRobin,
    /// Contiguous blocks of cells per rank (the coarse partitioning of
    /// Figure 5a, prone to skew).
    Block,
    /// Locality-aware: contiguous equal runs along the Hilbert curve
    /// through the cell grid, so each rank owns a compact spatial region
    /// — the "locality-aware" partitioning the paper lists as future work
    /// (§5.2). Carries the grid's column count to recover 2-D cell
    /// coordinates.
    Hilbert { cells_x: u32 },
}

impl CellMap {
    /// Locality-aware map for a given grid.
    pub fn hilbert(spec: GridSpec) -> CellMap {
        CellMap::Hilbert {
            cells_x: spec.cells_x,
        }
    }

    /// The rank owning `cell`.
    pub fn rank_of(&self, cell: u32, num_cells: u32, ranks: usize) -> usize {
        match *self {
            CellMap::RoundRobin => (cell as usize) % ranks,
            CellMap::Block => {
                let per = num_cells.div_ceil(ranks as u32).max(1);
                ((cell / per) as usize).min(ranks - 1)
            }
            CellMap::Hilbert { cells_x } => {
                let cells_x = cells_x.max(1);
                let cells_y = num_cells.div_ceil(cells_x).max(1);
                let col = cell % cells_x;
                let row = cell / cells_x;
                // Position along the Hilbert curve, scaled into rank
                // buckets of equal curve length — compact regions with
                // balanced cell counts.
                let key = mvio_geom::curve::hilbert_key_cells(
                    scale_to_order(col, cells_x),
                    scale_to_order(row, cells_y),
                );
                let side = 1u64 << mvio_geom::curve::ORDER;
                let frac = key as f64 / (side * side) as f64;
                ((frac * ranks as f64) as usize).min(ranks - 1)
            }
        }
    }

    /// All cells owned by `rank`.
    pub fn cells_of(&self, rank: usize, num_cells: u32, ranks: usize) -> Vec<u32> {
        (0..num_cells)
            .filter(|&c| self.rank_of(c, num_cells, ranks) == rank)
            .collect()
    }
}

/// Maps a cell coordinate in `0..cells` onto the curve's `2^ORDER` grid
/// (cell centers, so the first and last cells stay inside the curve).
/// Shared with [`crate::decomp::HilbertDecomposition`], which must agree
/// with [`CellMap::Hilbert`] about curve positions.
pub(crate) fn scale_to_order(v: u32, cells: u32) -> u32 {
    let side = 1u64 << mvio_geom::curve::ORDER;
    (((v as u64 * 2 + 1) * side) / (2 * cells.max(1) as u64)) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvio_geom::index::RTree;
    use mvio_geom::{wkt, Point};
    use mvio_msim::{Topology, World, WorldConfig};

    fn grid4() -> UniformGrid {
        UniformGrid::new(Rect::new(0.0, 0.0, 4.0, 4.0), GridSpec::square(4))
    }

    #[test]
    fn cell_rects_tile_the_bounds() {
        let g = grid4();
        assert_eq!(g.num_cells(), 16);
        assert_eq!(g.cell_rect(0), Rect::new(0.0, 0.0, 1.0, 1.0));
        assert_eq!(g.cell_rect(5), Rect::new(1.0, 1.0, 2.0, 2.0));
        assert_eq!(g.cell_rect(15), Rect::new(3.0, 3.0, 4.0, 4.0));
        // Union of all cells == bounds.
        let union = (0..16).fold(Rect::EMPTY, |acc, id| acc.union(&g.cell_rect(id)));
        assert_eq!(union, g.bounds());
    }

    #[test]
    fn arithmetic_lookup_matches_rtree_lookup() {
        let g = grid4();
        let items: Vec<(Rect, u32)> = (0..16).map(|id| (g.cell_rect(id), id)).collect();
        let tree = RTree::bulk_load(items);
        for probe in [
            Rect::new(0.5, 0.5, 0.6, 0.6),
            Rect::new(0.5, 0.5, 2.5, 1.5),
            Rect::new(-5.0, -5.0, 10.0, 10.0),
            Rect::new(3.9, 3.9, 5.0, 5.0),
        ] {
            let mut a = g.cells_overlapping(&probe);
            let mut b: Vec<u32> = tree.query(&probe).into_iter().copied().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "probe {probe:?}");
        }
    }

    #[test]
    fn spanning_geometry_replicates_to_all_cells() {
        let g = grid4();
        // A rect spanning a 2x2 block of cells.
        let cells = g.cells_overlapping(&Rect::new(0.5, 0.5, 1.5, 1.5));
        assert_eq!(cells, vec![0, 1, 4, 5]);
    }

    #[test]
    fn interior_edge_points_map_to_exactly_one_cell() {
        let g = grid4();
        // A point exactly on the x=1 edge shared by cells 0 and 1:
        // half-open cell assignment gives it to the upper cell only.
        assert_eq!(g.cells_overlapping(&Rect::new(1.0, 0.5, 1.0, 0.5)), vec![1]);
        // A point on a shared corner touches four cells; exactly one
        // (up-and-right of the corner) claims it.
        assert_eq!(
            g.cells_overlapping(&Rect::new(2.0, 2.0, 2.0, 2.0)),
            vec![10]
        );
        // An envelope *ending* on that edge still replicates across it,
        // so an edge point and an edge-touching envelope meet in cell 1.
        assert_eq!(
            g.cells_overlapping(&Rect::new(0.5, 0.5, 1.0, 0.5)),
            vec![0, 1]
        );
    }

    #[test]
    fn extent_max_corner_maps_to_the_last_cell() {
        let g = grid4();
        assert_eq!(
            g.cells_overlapping(&Rect::new(4.0, 4.0, 4.0, 4.0)),
            vec![15]
        );
        // Max edges (not just the corner) clamp into the last row/column.
        assert_eq!(g.cells_overlapping(&Rect::new(4.0, 1.5, 4.0, 1.5)), vec![7]);
        assert_eq!(
            g.cells_overlapping(&Rect::new(1.5, 4.0, 1.5, 4.0)),
            vec![13]
        );
    }

    #[test]
    fn degenerate_extents_build_well_formed_global_grids() {
        // Every rank holds the same single point: the global extent is a
        // zero-area rect, which build_global pads to a unit square.
        let out = World::run(WorldConfig::new(Topology::single_node(2)), |comm| {
            let f = Feature::new(mvio_geom::Geometry::Point(Point::new(3.0, 7.0)));
            let grid =
                UniformGrid::build_global(comm, std::slice::from_ref(&f), GridSpec::square(4));
            let cells = grid.cells_overlapping(&f.geometry.envelope());
            (grid.bounds().area(), cells)
        });
        for (area, cells) in &out {
            assert!(*area > 0.0, "degenerate extent must be padded");
            assert_eq!(cells.len(), 1, "the lone point must map to one cell");
        }
        // Zero-width extent (all data on one vertical line).
        let out = World::run(WorldConfig::new(Topology::single_node(1)), |comm| {
            let feats: Vec<Feature> = [0.0, 2.5, 5.0]
                .iter()
                .map(|&y| Feature::new(mvio_geom::Geometry::Point(Point::new(2.0, y))))
                .collect();
            let grid = UniformGrid::build_global(comm, &feats, GridSpec::square(4));
            feats
                .iter()
                .map(|f| grid.cells_overlapping(&f.geometry.envelope()).len())
                .collect::<Vec<_>>()
        });
        assert_eq!(
            out[0],
            vec![1, 1, 1],
            "every point lands in exactly one cell"
        );
    }

    #[test]
    fn oversized_grid_specs_are_rejected_not_wrapped() {
        let spec = GridSpec {
            cells_x: 1 << 20,
            cells_y: 1 << 20,
        };
        assert_eq!(spec.num_cells_u64(), 1u64 << 40);
        assert!(spec.try_num_cells().is_none());
        let err = UniformGrid::try_new(Rect::new(0.0, 0.0, 1.0, 1.0), spec).unwrap_err();
        assert!(matches!(err, crate::CoreError::Grid(_)), "{err}");
        // Near the limit the product is fine: 65536 * 65535 < u32::MAX.
        let big = GridSpec {
            cells_x: 1 << 16,
            cells_y: (1 << 16) - 1,
        };
        assert_eq!(big.num_cells() as u64, big.num_cells_u64());
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn num_cells_panics_instead_of_wrapping() {
        // 2^16 * 2^16 = 2^32 wrapped to 0 in release builds before.
        let _ = GridSpec {
            cells_x: 1 << 16,
            cells_y: 1 << 16,
        }
        .num_cells();
    }

    #[test]
    fn out_of_bounds_rect_maps_nowhere() {
        let g = grid4();
        assert!(g
            .cells_overlapping(&Rect::new(10.0, 10.0, 11.0, 11.0))
            .is_empty());
        assert!(g.cells_overlapping(&Rect::EMPTY).is_empty());
    }

    #[test]
    fn all_maps_cover_all_cells_exactly_once() {
        for map in [
            CellMap::RoundRobin,
            CellMap::Block,
            CellMap::Hilbert { cells_x: 8 },
        ] {
            let mut owned = vec![0u32; 64];
            for rank in 0..5 {
                for c in map.cells_of(rank, 64, 5) {
                    owned[c as usize] += 1;
                }
            }
            assert!(
                owned.iter().all(|&n| n == 1),
                "{map:?} must assign each cell once"
            );
        }
    }

    #[test]
    fn hilbert_map_regions_are_compact() {
        // On a 16x16 grid split over 4 ranks, the Hilbert map's regions
        // must be far more compact (smaller bounding boxes) than
        // round-robin's scatter.
        let spec = GridSpec::square(16);
        let grid = UniformGrid::new(Rect::new(0.0, 0.0, 16.0, 16.0), spec);
        let compactness = |map: CellMap| -> f64 {
            (0..4)
                .map(|rank| {
                    let cells = map.cells_of(rank, spec.num_cells(), 4);
                    let bbox = cells
                        .iter()
                        .fold(Rect::EMPTY, |a, &c| a.union(&grid.cell_rect(c)));
                    bbox.area() / cells.len() as f64 // area per owned cell
                })
                .sum::<f64>()
                / 4.0
        };
        let hilbert = compactness(CellMap::hilbert(spec));
        let rr = compactness(CellMap::RoundRobin);
        assert!(
            hilbert < rr / 2.0,
            "hilbert area/cell {hilbert} must be far below round-robin {rr}"
        );
    }

    #[test]
    fn hilbert_map_balances_cell_counts() {
        let spec = GridSpec::square(16);
        let counts: Vec<usize> = (0..4)
            .map(|r| {
                CellMap::hilbert(spec)
                    .cells_of(r, spec.num_cells(), 4)
                    .len()
            })
            .collect();
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        assert!(max - min <= 16, "counts {counts:?} reasonably balanced");
    }

    #[test]
    fn round_robin_interleaves_block_does_not() {
        assert_eq!(CellMap::RoundRobin.rank_of(0, 16, 4), 0);
        assert_eq!(CellMap::RoundRobin.rank_of(1, 16, 4), 1);
        assert_eq!(CellMap::Block.rank_of(0, 16, 4), 0);
        assert_eq!(CellMap::Block.rank_of(3, 16, 4), 0);
        assert_eq!(CellMap::Block.rank_of(4, 16, 4), 1);
    }

    #[test]
    fn global_grid_unifies_rank_extents() {
        let out = World::run(WorldConfig::new(Topology::new(2, 2)), |comm| {
            let r = comm.rank() as f64;
            let f = Feature::new(wkt::parse(&format!("POINT ({} {})", r * 10.0, r * 5.0)).unwrap());
            let grid = UniformGrid::build_global(comm, &[f], GridSpec::square(8));
            grid.bounds()
        });
        let expect = Rect::new(0.0, 0.0, 30.0, 15.0);
        assert!(out.iter().all(|b| *b == expect));
    }

    #[test]
    fn global_grid_with_no_data_is_well_formed() {
        let out = World::run(WorldConfig::new(Topology::single_node(2)), |comm| {
            let grid = UniformGrid::build_global(comm, &[], GridSpec::square(4));
            grid.num_cells()
        });
        assert_eq!(out, vec![16, 16]);
    }

    #[test]
    fn projection_replicates_spanners_and_charges_time() {
        let out = World::run(WorldConfig::new(Topology::single_node(1)), |comm| {
            let decomp = crate::decomp::UniformDecomposition::new(grid4(), CellMap::RoundRobin, 1);
            let tree = crate::decomp::build_cell_rtree(comm, &decomp);
            let feats = vec![
                Feature::new(mvio_geom::Geometry::Point(Point::new(0.5, 0.5))),
                Feature::new(
                    wkt::parse("POLYGON ((0.5 0.5, 2.5 0.5, 2.5 2.5, 0.5 2.5, 0.5 0.5))").unwrap(),
                ),
            ];
            let before = comm.now();
            let pairs = crate::decomp::project_to_cells(comm, &tree, &feats);
            (pairs, comm.now() - before)
        });
        let (pairs, dt) = &out[0];
        // Point lands in one cell; the 2x2-ish polygon in 9 cells (it spans
        // 3x3 cells: columns 0..2, rows 0..2).
        let point_cells: Vec<_> = pairs.iter().filter(|(_, i)| *i == 0).collect();
        let poly_cells: Vec<_> = pairs.iter().filter(|(_, i)| *i == 1).collect();
        assert_eq!(point_cells.len(), 1);
        assert_eq!(poly_cells.len(), 9);
        assert!(*dt > 0.0);
    }
}
